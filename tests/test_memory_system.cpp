/**
 * @file
 * Unit tests of the memory hierarchy glue: level-by-level latencies,
 * counters, TLB integration and write-back cascades.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.h"

namespace smite::sim {
namespace {

MachineConfig
tinyConfig()
{
    MachineConfig config;
    config.numCores = 2;
    config.l1d = CacheConfig{"L1D", 1024, 2, 4};   // 16 lines
    config.l1i = CacheConfig{"L1I", 1024, 2, 4};
    config.l2 = CacheConfig{"L2", 4096, 4, 12};    // 64 lines
    config.l3 = CacheConfig{"L3", 16384, 4, 30};   // 256 lines
    config.dtlb = TlbConfig{4, 25};
    config.itlb = TlbConfig{4, 20};
    config.dram = DramConfig{100, 4};
    return config;
}

struct Harness {
    MachineConfig config = tinyConfig();
    MemorySystem mem{config};
    CounterBlock ctr;
    Tlb dtlb{config.dtlb};
    Tlb itlb{config.itlb};

    Cycle
    load(Addr addr, Cycle now = 0)
    {
        return mem.dataAccess(0, false, addr, now, ctr, dtlb);
    }

    Cycle
    store(Addr addr, Cycle now = 0)
    {
        return mem.dataAccess(0, true, addr, now, ctr, dtlb);
    }
};

TEST(MemorySystem, ColdMissGoesToDram)
{
    Harness h;
    // Cold: TLB walk (25) + L3 latency (30) + DRAM (100).
    EXPECT_EQ(h.load(0), 25u + 30u + 100u);
    EXPECT_EQ(h.ctr.l1dMisses, 1u);
    EXPECT_EQ(h.ctr.l2Misses, 1u);
    EXPECT_EQ(h.ctr.l3Misses, 1u);
    EXPECT_EQ(h.ctr.dtlbLoadMisses, 1u);
}

TEST(MemorySystem, WarmHitIsL1Latency)
{
    Harness h;
    h.load(0);
    EXPECT_EQ(h.load(0), 4u);
    EXPECT_EQ(h.ctr.l1dHits, 1u);
}

TEST(MemorySystem, L2HitAfterL1Eviction)
{
    Harness h;
    h.load(0);
    // Evict line 0 from L1 set 0 (2 ways; lines 0, 16, 32 conflict:
    // 16 lines per L1 => set = line % 16).
    h.load(16 * 64);
    h.load(32 * 64);
    h.ctr = CounterBlock{};
    const Cycle latency = h.load(0);
    EXPECT_EQ(latency, 12u);  // L2 hit, TLB warm
    EXPECT_EQ(h.ctr.l2Hits, 1u);
}

TEST(MemorySystem, PrewarmInstallsIntoL3)
{
    Harness h;
    h.mem.prewarmData(0);
    // TLB still cold (25), L1/L2 miss, L3 hit (30).
    EXPECT_EQ(h.load(0), 25u + 30u);
    EXPECT_EQ(h.ctr.l3Hits, 1u);
    EXPECT_EQ(h.ctr.l3Misses, 0u);
}

TEST(MemorySystem, InstructionPathCountsIcacheMisses)
{
    Harness h;
    EXPECT_GT(h.mem.instrAccess(0, 0, 0, h.ctr, h.itlb),
              h.mem.l1iHitLatency());
    EXPECT_EQ(h.ctr.icacheMisses, 1u);
    EXPECT_EQ(h.ctr.itlbMisses, 1u);
    EXPECT_EQ(h.mem.instrAccess(0, 0, 0, h.ctr, h.itlb),
              h.mem.l1iHitLatency());
}

TEST(MemorySystem, CoresHavePrivateL1L2)
{
    Harness h;
    h.load(0);  // core 0 warm
    CounterBlock other;
    Tlb other_tlb{h.config.dtlb};
    // Core 1 misses its private L1/L2 but hits the shared L3.
    const Cycle latency =
        h.mem.dataAccess(1, false, 0, 0, other, other_tlb);
    EXPECT_EQ(latency, 25u + 30u);
    EXPECT_EQ(other.l3Hits, 1u);
}

TEST(MemorySystem, DirtyEvictionsReachDramEventually)
{
    Harness h;
    // Write lines far beyond total capacity; dirty lines must be
    // written back, consuming DRAM transfers beyond the demand ones.
    const int lines = 2048;
    for (int i = 0; i < lines; ++i)
        h.store(static_cast<Addr>(i) * 64, i);
    EXPECT_GT(h.mem.dram().transfers(),
              static_cast<std::uint64_t>(lines));
}

TEST(MemorySystem, TlbWalkAddsToHitLatency)
{
    Harness h;
    h.load(0);
    // Warm the line, then overflow the 4-entry dTLB with four other
    // pages. The probe addresses are offset by one line per page so
    // they fall in distinct cache sets and leave line 0 resident.
    for (int p = 1; p <= 4; ++p)
        h.load(static_cast<Addr>(p) * (kPageBytes + kLineBytes));
    h.ctr = CounterBlock{};
    const Cycle latency = h.load(0);  // line was evicted? L1 16 lines
    // The five loads touched five lines; line 0 still resident.
    EXPECT_EQ(latency, 25u + 4u);
    EXPECT_EQ(h.ctr.dtlbLoadMisses, 1u);
    EXPECT_EQ(h.ctr.l1dHits, 1u);
}

TEST(MemorySystem, StoreMissCountsAsStoreTlbMiss)
{
    Harness h;
    h.store(0);
    EXPECT_EQ(h.ctr.dtlbStoreMisses, 1u);
    EXPECT_EQ(h.ctr.dtlbLoadMisses, 0u);
}

TEST(CounterBlock, PmuRatesShape)
{
    CounterBlock c;
    c.cycles = 100;
    c.uops = 250;
    c.l1dHits = 50;
    const auto rates = c.pmuRates();
    EXPECT_NEAR(rates[0], 2.5, 1e-12);   // IPC
    EXPECT_NEAR(rates[5], 0.5, 1e-12);   // L1D hits / cycle
}

TEST(CounterBlock, DifferenceOperator)
{
    CounterBlock a, b;
    a.cycles = 100;
    a.uops = 300;
    a.portIssued[1] = 42;
    b.cycles = 40;
    b.uops = 100;
    b.portIssued[1] = 10;
    const CounterBlock d = a - b;
    EXPECT_EQ(d.cycles, 60u);
    EXPECT_EQ(d.uops, 200u);
    EXPECT_EQ(d.portIssued[1], 32u);
}

} // namespace
} // namespace smite::sim
