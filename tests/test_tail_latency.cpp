/**
 * @file
 * Tests for the tail-latency predictor (Equations 4-6 applied to
 * workload queueing parameters).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/tail_latency.h"
#include "workload/cloudsuite.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

TEST(TailLatency, RequiresQueueingParameters)
{
    EXPECT_THROW(
        TailLatencyPredictor(workload::spec2006::byName("429.mcf")),
        std::invalid_argument);
    EXPECT_NO_THROW(TailLatencyPredictor(
        workload::cloudsuite::byName("Web-Search")));
}

TEST(TailLatency, SoloPercentileMatchesClosedForm)
{
    const auto &ws = workload::cloudsuite::byName("Web-Search");
    const TailLatencyPredictor predictor(ws);
    const double expected = -std::log(1.0 - 0.9) /
                            (ws.serviceRate - ws.arrivalRate);
    EXPECT_NEAR(predictor.soloPercentile(0.9), expected, 1e-12);
}

TEST(TailLatency, PredictionGrowsWithDegradation)
{
    const TailLatencyPredictor predictor(
        workload::cloudsuite::byName("Data-Caching"));
    const double t0 = predictor.predictPercentile(0.9, 0.0);
    const double t1 = predictor.predictPercentile(0.9, 0.1);
    const double t2 = predictor.predictPercentile(0.9, 0.2);
    EXPECT_GT(t1, t0);
    EXPECT_GT(t2, t1);
    // Super-linear growth: the queueing amplification the paper
    // leans on in Section IV-D.
    EXPECT_GT(t2 - t1, t1 - t0);
}

TEST(TailLatency, NegativePredictionClampedToSolo)
{
    const TailLatencyPredictor predictor(
        workload::cloudsuite::byName("Data-Caching"));
    EXPECT_NEAR(predictor.predictPercentile(0.9, -0.05),
                predictor.soloPercentile(0.9), 1e-12);
}

TEST(TailLatency, MeasuredPercentileTracksClosedForm)
{
    const TailLatencyPredictor predictor(
        workload::cloudsuite::byName("Web-Search"));
    const double deg = 0.15;
    const double measured =
        predictor.measurePercentile(0.9, deg, 300000, 3);
    const double analytic = predictor.predictPercentile(0.9, deg);
    EXPECT_NEAR(measured / analytic, 1.0, 0.08);
}

TEST(TailLatency, MeasureRejectsFullDegradation)
{
    const TailLatencyPredictor predictor(
        workload::cloudsuite::byName("Web-Search"));
    EXPECT_THROW(predictor.measurePercentile(0.9, 1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace smite::core
