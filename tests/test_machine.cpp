/**
 * @file
 * Integration-level tests of the SMT machine model: issue-port
 * arbitration, dependence handling, SMT vs CMP sharing, determinism.
 */

#include <memory>

#include <gtest/gtest.h>

#include "rulers/ruler.h"
#include "sim/machine.h"
#include "workload/generator.h"
#include "workload/spec2006.h"

namespace smite::sim {
namespace {

/** Minimal source emitting one fixed uop type forever. */
class MonoSource : public UopSource
{
  public:
    explicit MonoSource(UopType type, std::uint8_t dep = 0)
        : type_(type), dep_(dep)
    {}

    Uop
    next() override
    {
        Uop uop;
        uop.type = type_;
        uop.srcDist1 = dep_;
        uop.pc = pc_;
        pc_ = (pc_ + 4) % 256;
        return uop;
    }

    void reset() override { pc_ = 0; }

  private:
    UopType type_;
    std::uint8_t dep_;
    Addr pc_ = 0;
};

Machine
ivb()
{
    return Machine(MachineConfig::ivyBridge());
}

TEST(Machine, TableOneConfigs)
{
    const auto snb = MachineConfig::sandyBridgeEN();
    EXPECT_EQ(snb.numCores, 6);
    EXPECT_EQ(snb.totalContexts(), 12);
    EXPECT_EQ(snb.l3.sizeBytes, 15ull * 1024 * 1024);
    EXPECT_EQ(snb.microarchitecture, "Sandy Bridge-EN");

    const auto ivy = MachineConfig::ivyBridge();
    EXPECT_EQ(ivy.numCores, 4);
    EXPECT_EQ(ivy.l3.sizeBytes, 8ull * 1024 * 1024);
}

TEST(Machine, SinglePortTypeSaturatesAtOneIpc)
{
    MonoSource mul(UopType::kFpMul);
    const auto c = ivb().runSolo(mul, 2000, 20000);
    EXPECT_NEAR(c.ipc(), 1.0, 0.01);
    EXPECT_NEAR(c.portUtilization(0), 1.0, 0.01);
}

TEST(Machine, TriPortTypeSaturatesAtThreeIpc)
{
    MonoSource add(UopType::kIntAdd);
    const auto c = ivb().runSolo(add, 2000, 20000);
    EXPECT_NEAR(c.ipc(), 3.0, 0.02);
}

TEST(Machine, SerialDependenceChainRunsAtChainLatency)
{
    // Every uop depends on its predecessor: IPC = 1/latency.
    MonoSource chain(UopType::kFpAdd, /*dep=*/1);
    const auto c = ivb().runSolo(chain, 2000, 20000);
    EXPECT_NEAR(c.ipc(), 1.0 / execLatency(UopType::kFpAdd), 0.02);
}

TEST(Machine, SmtSharingOfOnePortHalvesThroughput)
{
    // Two FP_MUL streams on one core fight for port 0.
    MonoSource a(UopType::kFpMul), b(UopType::kFpMul);
    const auto counters = ivb().runPairSmt(a, b, 2000, 20000);
    EXPECT_NEAR(counters[0].ipc(), 0.5, 0.03);
    EXPECT_NEAR(counters[1].ipc(), 0.5, 0.03);
}

TEST(Machine, CmpPlacementremovesPortContention)
{
    // The same two streams on different cores do not interfere.
    MonoSource a(UopType::kFpMul), b(UopType::kFpMul);
    const auto counters = ivb().runPairCmp(a, b, 2000, 20000);
    EXPECT_NEAR(counters[0].ipc(), 1.0, 0.02);
    EXPECT_NEAR(counters[1].ipc(), 1.0, 0.02);
}

TEST(Machine, DisjointPortsCoexistOnSmt)
{
    // FP_MUL (port 0) + FP_ADD (port 1) share a core without port
    // conflicts; both sustain full throughput.
    MonoSource a(UopType::kFpMul), b(UopType::kFpAdd);
    const auto counters = ivb().runPairSmt(a, b, 2000, 20000);
    EXPECT_NEAR(counters[0].ipc(), 1.0, 0.05);
    EXPECT_NEAR(counters[1].ipc(), 1.0, 0.05);
}

TEST(Machine, RunsAreDeterministic)
{
    const auto &profile = workload::spec2006::byName("403.gcc");
    workload::ProfileUopSource s1(profile), s2(profile);
    const auto a = ivb().runSolo(s1, 5000, 30000);
    const auto b = ivb().runSolo(s2, 5000, 30000);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(Machine, RejectsBadPlacements)
{
    MonoSource src(UopType::kIntAdd);
    const Machine machine = ivb();
    EXPECT_THROW(machine.run({Placement{99, 0, &src}}, 10, 10),
                 std::invalid_argument);
    EXPECT_THROW(machine.run({Placement{0, 7, &src}}, 10, 10),
                 std::invalid_argument);
    EXPECT_THROW(machine.run({Placement{0, 0, nullptr}}, 10, 10),
                 std::invalid_argument);
}

TEST(Machine, CountersOnlyCoverMeasurementWindow)
{
    MonoSource src(UopType::kIntAdd);
    const auto c = ivb().runSolo(src, 5000, 10000);
    EXPECT_EQ(c.cycles, 10000u);
    EXPECT_NEAR(static_cast<double>(c.uops), 3.0 * 10000, 200);
}

TEST(Machine, BranchMispredictsReduceThroughput)
{
    class BranchySource : public UopSource
    {
      public:
        explicit BranchySource(double rate) : rate_(rate) {}
        Uop
        next() override
        {
            Uop uop;
            uop.pc = pc_;
            pc_ = (pc_ + 4) % 256;
            if (++count_ % 4 == 0) {
                uop.type = UopType::kBranch;
                // Deterministic mispredict pattern.
                mispredict_acc_ += rate_;
                if (mispredict_acc_ >= 1.0) {
                    mispredict_acc_ -= 1.0;
                    uop.mispredict = true;
                }
            } else {
                uop.type = UopType::kIntAdd;
            }
            return uop;
        }
        void
        reset() override
        {
            count_ = 0;
            pc_ = 0;
            mispredict_acc_ = 0;
        }

      private:
        double rate_;
        std::uint64_t count_ = 0;
        Addr pc_ = 0;
        double mispredict_acc_ = 0;
    };

    BranchySource perfect(0.0), noisy(0.2);
    const auto good = ivb().runSolo(perfect, 2000, 20000);
    const auto bad = ivb().runSolo(noisy, 2000, 20000);
    EXPECT_GT(good.ipc(), bad.ipc() * 1.3);
    EXPECT_EQ(good.branchMispredicts, 0u);
    EXPECT_GT(bad.branchMispredicts, 0u);
}

TEST(Machine, LoadLatencyBoundByCacheLevel)
{
    // Serial dependent loads over a tiny set: L1 hit latency bound.
    class ChasedLoads : public UopSource
    {
      public:
        Uop
        next() override
        {
            Uop uop;
            uop.type = UopType::kLoad;
            uop.srcDist1 = 1;  // serial pointer chase
            uop.addr = (count_++ % 64) * 8;  // 512B working set
            uop.pc = 0;
            return uop;
        }
        void reset() override { count_ = 0; }

      private:
        std::uint64_t count_ = 0;
    };

    ChasedLoads chase;
    const auto c = ivb().runSolo(chase, 2000, 20000);
    const double expected =
        1.0 / static_cast<double>(MachineConfig().l1d.hitLatency);
    EXPECT_NEAR(c.ipc(), expected, 0.02);
}

TEST(Machine, SmtPairDegradationIsNonNegativeForSpecApps)
{
    const Machine machine = ivb();
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("470.lbm");
    workload::ProfileUopSource solo_a(a);
    const double solo = machine.runSolo(solo_a).ipc();
    workload::ProfileUopSource pa(a), pb(b);
    const auto pair = machine.runPairSmt(pa, pb);
    EXPECT_LT(pair[0].ipc(), solo * 1.02);
}

TEST(Machine, SmtInterferesMoreThanCmpForComputeApps)
{
    // Compute-bound pairs share ports under SMT but nothing under
    // CMP; SMT must hurt strictly more.
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("435.gromacs");
    const Machine machine = ivb();
    workload::ProfileUopSource s1(a), s2(b), s3(a), s4(b);
    const auto smt = machine.runPairSmt(s1, s2);
    const auto cmp = machine.runPairCmp(s3, s4);
    EXPECT_LT(smt[0].ipc(), cmp[0].ipc());
}

} // namespace
} // namespace smite::sim
