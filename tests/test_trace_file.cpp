/**
 * @file
 * Tests for trace capture and replay.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/spec2006.h"
#include "workload/trace_file.h"

namespace smite::workload {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        for (const auto &p : created_)
            std::remove(p.c_str());
    }

    std::string
    path(const char *name)
    {
        created_.push_back(tempPath(name));
        return created_.back();
    }

  private:
    std::vector<std::string> created_;
};

TEST_F(TraceFileTest, RoundTripPreservesUops)
{
    const auto &profile = spec2006::byName("403.gcc");
    ProfileUopSource source(profile, 11);
    const std::string file = path("smite_trace_roundtrip.txt");
    recordTrace(source, 5000, file);

    ProfileUopSource reference(profile, 11);
    TraceReplaySource replay(file);
    ASSERT_EQ(replay.traceLength(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        const sim::Uop expected = reference.next();
        const sim::Uop got = replay.next();
        ASSERT_EQ(got.type, expected.type) << i;
        ASSERT_EQ(got.srcDist1, expected.srcDist1) << i;
        ASSERT_EQ(got.srcDist2, expected.srcDist2) << i;
        ASSERT_EQ(got.mispredict, expected.mispredict) << i;
        ASSERT_EQ(got.addr, expected.addr) << i;
        ASSERT_EQ(got.pc, expected.pc) << i;
    }
}

TEST_F(TraceFileTest, ReplayLoops)
{
    std::vector<sim::Uop> uops(3);
    uops[0].type = sim::UopType::kFpMul;
    uops[1].type = sim::UopType::kLoad;
    uops[2].type = sim::UopType::kBranch;
    TraceReplaySource replay(uops);
    for (int loop = 0; loop < 3; ++loop) {
        EXPECT_EQ(replay.next().type, sim::UopType::kFpMul);
        EXPECT_EQ(replay.next().type, sim::UopType::kLoad);
        EXPECT_EQ(replay.next().type, sim::UopType::kBranch);
    }
    replay.next();
    replay.reset();
    EXPECT_EQ(replay.next().type, sim::UopType::kFpMul);
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_THROW(TraceReplaySource("/nonexistent/trace.txt"),
                 std::runtime_error);
}

TEST_F(TraceFileTest, RejectsWrongHeader)
{
    const std::string file = path("smite_trace_bad_header.txt");
    std::ofstream(file) << "not a trace\n0 0 0 0 0 0\n";
    EXPECT_THROW(TraceReplaySource{file}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsMalformedRecord)
{
    const std::string file = path("smite_trace_bad_record.txt");
    std::ofstream(file) << "smite-trace v1\n9999 0 0 0 0 0\n";
    EXPECT_THROW(TraceReplaySource{file}, std::runtime_error);
}

TEST_F(TraceFileTest, RejectsEmptyTrace)
{
    const std::string file = path("smite_trace_empty.txt");
    std::ofstream(file) << "smite-trace v1\n";
    EXPECT_THROW(TraceReplaySource{file}, std::runtime_error);
    EXPECT_THROW(TraceReplaySource{std::vector<sim::Uop>{}},
                 std::runtime_error);
}

} // namespace
} // namespace smite::workload
