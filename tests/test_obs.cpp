/**
 * @file
 * Observability layer: JSON round-trips, metric semantics under the
 * thread pool, trace-session validity, run-report structure, and the
 * off-by-default contract (nothing collected or emitted when the
 * SMITE_METRICS / SMITE_TRACE environment variables are unset).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "obs/obs.h"

namespace obs = smite::obs;
namespace json = smite::obs::json;

namespace {

/** Fresh global state for every test in the suite. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::Registry::global().resetForTesting();
        obs::TraceSession::global().clearForTesting();
        obs::TraceSession::global().setEnabledForTesting(false);
        obs::setMetricsEnabledForTesting(false);
    }

    void TearDown() override { SetUp(); }
};

} // namespace

TEST_F(ObsTest, JsonDumpParseRoundTrip)
{
    json::Value doc = json::Value::object();
    doc.set("bool", json::Value(true));
    doc.set("int", json::Value(42));
    doc.set("float", json::Value(2.5));
    doc.set("string", json::Value("a \"quoted\"\nline\t\\"));
    doc.set("null", json::Value());
    json::Value arr = json::Value::array();
    arr.push(json::Value(1));
    arr.push(json::Value("two"));
    json::Value nested = json::Value::object();
    nested.set("k", json::Value(-0.125));
    arr.push(std::move(nested));
    doc.set("arr", std::move(arr));

    for (const int indent : {-1, 0, 2}) {
        json::Value parsed;
        std::string error;
        ASSERT_TRUE(
            json::Value::parse(doc.dump(indent), &parsed, &error))
            << error;
        EXPECT_EQ(parsed.dump(), doc.dump());
    }

    // Insertion order is preserved so documents diff cleanly.
    EXPECT_EQ(doc.fields()[0].first, "bool");
    EXPECT_EQ(doc.fields()[5].first, "arr");
    EXPECT_EQ(doc.find("string")->asString(), "a \"quoted\"\nline\t\\");
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST_F(ObsTest, JsonParseRejectsMalformedDocuments)
{
    json::Value out;
    EXPECT_FALSE(json::Value::parse("", &out));
    EXPECT_FALSE(json::Value::parse("{", &out));
    EXPECT_FALSE(json::Value::parse("{} trailing", &out));
    EXPECT_FALSE(json::Value::parse("{\"a\":}", &out));
    EXPECT_FALSE(json::Value::parse("[1,]", &out));
    EXPECT_FALSE(json::Value::parse("\"bad \\q escape\"", &out));
    EXPECT_FALSE(json::Value::parse("nul", &out));

    std::string error;
    EXPECT_FALSE(json::Value::parse("[1, 2", &out, &error));
    EXPECT_FALSE(error.empty());
}

TEST_F(ObsTest, CounterIsExactUnderThreadPool)
{
    obs::Counter &hits =
        obs::Registry::global().counter("test.pool.hits");
    constexpr std::size_t kIterations = 10'000;
    smite::core::parallelFor(
        kIterations, [&](std::size_t i) { hits.add(i % 3 + 1); }, 4);

    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kIterations; ++i)
        expected += i % 3 + 1;
    EXPECT_EQ(hits.value(), expected);

    hits.reset();
    EXPECT_EQ(hits.value(), 0u);
}

TEST_F(ObsTest, HistogramSummarizesConcurrentSamples)
{
    obs::Histogram &h =
        obs::Registry::global().histogram("test.pool.samples");
    constexpr std::size_t kIterations = 4'096;
    smite::core::parallelFor(
        kIterations,
        [&](std::size_t i) { h.observe(static_cast<double>(i + 1)); },
        4);

    EXPECT_EQ(h.count(), kIterations);
    EXPECT_DOUBLE_EQ(h.sum(),
                     kIterations * (kIterations + 1) / 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kIterations));
    EXPECT_NEAR(h.mean(), (kIterations + 1) / 2.0, 1e-9);

    // Quantiles are bucket-resolution approximations: monotone in p
    // and clamped to the observed range.
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, h.max());
    EXPECT_GT(p50, kIterations / 4.0);

    const json::Value summary = h.summaryJson();
    for (const char *field :
         {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}) {
        ASSERT_NE(summary.find(field), nullptr) << field;
        EXPECT_TRUE(summary.find(field)->isNumber()) << field;
    }
}

TEST_F(ObsTest, RegistryReturnsStableReferences)
{
    obs::Registry &registry = obs::Registry::global();
    obs::Counter &a = registry.counter("test.registry.counter");
    obs::Counter &b = registry.counter("test.registry.counter");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(&registry.gauge("test.registry.gauge"),
              &registry.gauge("test.registry.gauge"));
    EXPECT_EQ(&registry.histogram("test.registry.hist"),
              &registry.histogram("test.registry.hist"));

    a.add(7);
    registry.gauge("test.registry.gauge").set(0.5);
    registry.histogram("test.registry.hist").observe(3.0);

    const std::vector<std::string> names = registry.names();
    const std::set<std::string> name_set(names.begin(), names.end());
    EXPECT_TRUE(name_set.count("test.registry.counter"));
    EXPECT_TRUE(name_set.count("test.registry.gauge"));
    EXPECT_TRUE(name_set.count("test.registry.hist"));
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

    // resetForTesting zeroes values but keeps references valid.
    registry.resetForTesting();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(registry.gauge("test.registry.gauge").value(), 0.0);
    a.add(1);
    EXPECT_EQ(registry.counter("test.registry.counter").value(), 1u);
}

TEST_F(ObsTest, SpansRecordValidChromeTraceJson)
{
    obs::TraceSession &session = obs::TraceSession::global();
    session.setEnabledForTesting(true);
    {
        obs::Span outer("test.outer", "detail text");
        obs::Span inner("test.inner");
    }
    ASSERT_EQ(session.eventCount(), 2u);
    const std::vector<std::string> names = session.spanNames();
    EXPECT_EQ(names,
              (std::vector<std::string>{"test.inner", "test.outer"}));

    // The serialized document must survive a strict re-parse and
    // carry the Chrome trace_event shape.
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(
        json::Value::parse(session.toJson().dump(2), &parsed, &error))
        << error;
    const json::Value *events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->items().size(), 2u);
    for (const json::Value &e : events->items()) {
        EXPECT_EQ(e.find("ph")->asString(), "X");
        EXPECT_EQ(e.find("cat")->asString(), "smite");
        EXPECT_TRUE(e.find("ts")->isNumber());
        EXPECT_TRUE(e.find("dur")->isNumber());
        EXPECT_TRUE(e.find("tid")->isNumber());
    }
    // Spans record at destruction, so the inner span lands in the
    // buffer first; look the outer one up by name for its detail.
    const json::Value *outer = nullptr;
    for (const json::Value &e : events->items()) {
        if (e.find("name")->asString() == "test.outer")
            outer = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(outer->find("args"), nullptr);
    EXPECT_EQ(outer->find("args")->find("detail")->asString(),
              "detail text");
}

TEST_F(ObsTest, DisabledTracingCollectsNothing)
{
    obs::TraceSession &session = obs::TraceSession::global();
    ASSERT_FALSE(session.enabled());
    {
        obs::Span span("test.invisible", "never recorded");
    }
    EXPECT_EQ(session.eventCount(), 0u);
    EXPECT_TRUE(session.spanNames().empty());
}

TEST_F(ObsTest, SpanEnabledAtEntryGovernsRecording)
{
    obs::TraceSession &session = obs::TraceSession::global();
    // A span that starts while tracing is disabled stays a no-op even
    // if tracing turns on before it closes.
    {
        obs::Span span("test.late");
        session.setEnabledForTesting(true);
    }
    EXPECT_EQ(session.eventCount(), 0u);
}

TEST_F(ObsTest, RunReportRoundTripsThroughParser)
{
    obs::setMetricsEnabledForTesting(true);
    obs::Registry::global().counter("test.report.counter").add(11);
    obs::Registry::global().gauge("test.report.gauge").set(0.75);
    obs::Registry::global().histogram("test.report.hist").observe(2.0);

    obs::RunReport report("test_report_run");
    report.setConfig("threads", json::Value(4));
    report.setConfig("machine", json::Value("Ivy Bridge"));
    report.addTiming("total_s", 1.5);
    report.addResult("avg_error", json::Value(0.028));

    json::Value parsed;
    std::string error;
    ASSERT_TRUE(
        json::Value::parse(report.toJson().dump(2), &parsed, &error))
        << error;

    EXPECT_EQ(parsed.find("schema")->asString(),
              obs::kRunReportSchema);
    EXPECT_EQ(parsed.find("name")->asString(), "test_report_run");
    EXPECT_EQ(parsed.find("config")->find("threads")->asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(
        parsed.find("timings")->find("total_s")->asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(
        parsed.find("results")->find("avg_error")->asNumber(), 0.028);

    const json::Value *metrics = parsed.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("counters")
                  ->find("test.report.counter")
                  ->asNumber(),
              11.0);
    EXPECT_DOUBLE_EQ(
        metrics->find("gauges")->find("test.report.gauge")->asNumber(),
        0.75);
    const json::Value *hist =
        metrics->find("histograms")->find("test.report.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->asNumber(), 1.0);
}

TEST_F(ObsTest, ReportAndTraceFilesWriteAndParse)
{
    obs::TraceSession &session = obs::TraceSession::global();
    session.setEnabledForTesting(true);
    {
        obs::Span span("test.file", "round-trip");
    }
    obs::RunReport report("test_file_run");
    report.addTiming("total_s", 0.25);

    const std::string trace_path =
        ::testing::TempDir() + "/obs_test.trace.json";
    const std::string report_path =
        ::testing::TempDir() + "/obs_test.report.json";
    ASSERT_TRUE(session.writeTo(trace_path));
    ASSERT_TRUE(report.writeTo(report_path));

    for (const std::string &path : {trace_path, report_path}) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr) << path;
        std::string text;
        char buffer[4096];
        std::size_t n = 0;
        while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
            text.append(buffer, n);
        std::fclose(f);
        std::remove(path.c_str());

        json::Value parsed;
        std::string error;
        EXPECT_TRUE(json::Value::parse(text, &parsed, &error))
            << path << ": " << error;
    }
}

TEST_F(ObsTest, MetricsEnabledHonoursTestOverride)
{
    EXPECT_FALSE(obs::metricsEnabled());
    obs::setMetricsEnabledForTesting(true);
    EXPECT_TRUE(obs::metricsEnabled());
    obs::setMetricsEnabledForTesting(false);
    EXPECT_FALSE(obs::metricsEnabled());
}

namespace {

/** Parse a JSON literal that is known to be valid. */
json::Value
mustParse(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::Value::parse(text, &v, &error)) << error;
    return v;
}

} // namespace

TEST_F(ObsTest, DiffReportsEquivalentDocumentsIsEmpty)
{
    const json::Value a = mustParse(
        R"({"name":"fig10","results":{"rmse":0.031,"pairs":[1,2,3]},)"
        R"("timings":{"wall_s":12.0}})");
    const json::Value b = mustParse(
        R"({"name":"fig10","results":{"rmse":0.031,"pairs":[1,2,3]},)"
        R"("timings":{"wall_s":99.0}})");
    // Identical results; timings differ but are never compared.
    EXPECT_TRUE(obs::diffReports(a, b).empty());
}

TEST_F(ObsTest, DiffReportsFlagsNumericDriftBeyondTolerance)
{
    const json::Value a =
        mustParse(R"({"name":"x","results":{"rmse":0.031}})");
    const json::Value b =
        mustParse(R"({"name":"x","results":{"rmse":0.032}})");
    const auto diffs = obs::diffReports(a, b);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].path, "results.rmse");

    // A loose tolerance accepts the same drift.
    obs::ReportDiffOptions loose;
    loose.tolerance = 0.1;
    EXPECT_TRUE(obs::diffReports(a, b, loose).empty());
}

TEST_F(ObsTest, DiffReportsFlagsMissingKeysAndTypeChanges)
{
    const json::Value a = mustParse(
        R"({"name":"x","results":{"rmse":0.03,"extra":1}})");
    const json::Value b = mustParse(
        R"({"name":"x","results":{"rmse":"0.03"}})");
    const auto diffs = obs::diffReports(a, b);
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0].path, "results.rmse");
    EXPECT_EQ(diffs[0].detail, "number vs string");
    EXPECT_EQ(diffs[1].path, "results.extra");
    EXPECT_EQ(diffs[1].detail, "present vs missing");
}

TEST_F(ObsTest, DiffReportsFlagsPartialVersusComplete)
{
    const json::Value a = mustParse(
        R"({"name":"x","results":{},"partial":true,)"
        R"("incidents":["solo 429.mcf failed"]})");
    const json::Value b = mustParse(R"({"name":"x","results":{}})");
    const auto diffs = obs::diffReports(a, b);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].path, "partial");
    EXPECT_EQ(diffs[0].detail, "partial vs complete");
    // Metrics only compared on request.
    EXPECT_TRUE(obs::diffReports(a, a).empty());
}

TEST_F(ObsTest, PartialReportEmitsIncidents)
{
    obs::RunReport report("chaos");
    report.addResult("rmse", json::Value(0.5));
    report.markPartial({"solo 429.mcf#1 failed after 3 attempts"});
    EXPECT_TRUE(report.partial());
    const json::Value doc = report.toJson();
    ASSERT_NE(doc.find("partial"), nullptr);
    EXPECT_TRUE(doc.find("partial")->asBool());
    ASSERT_NE(doc.find("incidents"), nullptr);
    ASSERT_EQ(doc.find("incidents")->items().size(), 1u);

    // A clean report carries neither field.
    obs::RunReport clean("ok");
    const json::Value clean_doc = clean.toJson();
    EXPECT_EQ(clean_doc.find("partial"), nullptr);
    EXPECT_EQ(clean_doc.find("incidents"), nullptr);
}

TEST_F(ObsTest, IncidentLogCapsStoredEntries)
{
    obs::IncidentLog &log = obs::IncidentLog::global();
    log.clearForTesting();
    for (int i = 0; i < 300; ++i)
        log.record("incident " + std::to_string(i));
    EXPECT_EQ(log.count(), 300u);
    const std::vector<std::string> snap = log.snapshot();
    // kMaxEntries stored lines plus one "... and N more" summary.
    ASSERT_EQ(snap.size(),
              static_cast<std::size_t>(obs::IncidentLog::kMaxEntries) + 1);
    EXPECT_NE(snap.back().find("44 more"), std::string::npos);
    log.clearForTesting();
    EXPECT_EQ(log.count(), 0u);
    EXPECT_TRUE(log.snapshot().empty());
}
