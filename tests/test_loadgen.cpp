/**
 * @file
 * Tests for the open-loop load subsystem: arrival processes, the
 * multi-server DES, stepped sweeps, knee searches, the `des.*` chaos
 * sites, and the scheduler's load-aware admission.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "fault/fault.h"
#include "loadgen/knee.h"
#include "loadgen/loadgen.h"
#include "obs/metrics.h"
#include "scheduler/online.h"

namespace smite::loadgen {
namespace {

/** Mean rate over the first @p n arrivals of @p config. */
double
meanRate(const ArrivalConfig &config, std::size_t n)
{
    ArrivalStream stream(config);
    const auto times = stream.generate(n);
    return static_cast<double>(n) / times.back();
}

class FaultGuard
{
  public:
    FaultGuard() { fault::FaultPlan::global().reset(); }
    ~FaultGuard() { fault::FaultPlan::global().reset(); }
};

// --- Arrival processes ----------------------------------------------

TEST(Arrival, SameConfigReplaysByteIdentically)
{
    ArrivalConfig config;
    config.rate = 500.0;
    config.seed = 9;
    ArrivalStream a(config);
    ArrivalStream b(config);
    const auto ta = a.generate(2000);
    const auto tb = b.generate(2000);
    EXPECT_EQ(ta, tb); // exact, not approximate
}

TEST(Arrival, StreamsAreIndependent)
{
    ArrivalConfig config;
    config.seed = 9;
    ArrivalConfig other = config;
    other.stream = 1;
    EXPECT_NE(ArrivalStream(config).generate(100),
              ArrivalStream(other).generate(100));
}

TEST(Arrival, AllKindsPreserveTheMeanRate)
{
    ArrivalConfig config;
    config.rate = 1000.0;
    config.seed = 4;
    EXPECT_NEAR(meanRate(config, 200000), 1000.0, 20.0);

    config.kind = ArrivalKind::kOnOff;
    EXPECT_NEAR(meanRate(config, 200000), 1000.0, 50.0);

    config.kind = ArrivalKind::kDiurnal;
    config.profile = {1.0, 3.0, 2.0, 0.5};
    EXPECT_NEAR(meanRate(config, 200000), 1000.0, 30.0);
}

TEST(Arrival, OnOffIsBurstierThanPoisson)
{
    // Dispersion of per-window arrival counts: ~1 for Poisson,
    // substantially above 1 for the two-state MMPP.
    auto dispersion = [](const ArrivalConfig &config) {
        ArrivalStream stream(config);
        const auto times = stream.generate(100000);
        const double window = 0.01;
        std::vector<double> counts;
        std::size_t i = 0;
        for (double t = window; t < times.back(); t += window) {
            double c = 0;
            while (i < times.size() && times[i] < t) {
                ++c;
                ++i;
            }
            counts.push_back(c);
        }
        double mean = 0;
        for (double c : counts)
            mean += c;
        mean /= static_cast<double>(counts.size());
        double var = 0;
        for (double c : counts)
            var += (c - mean) * (c - mean);
        var /= static_cast<double>(counts.size());
        return var / mean;
    };
    ArrivalConfig poisson;
    poisson.rate = 2000.0;
    poisson.seed = 5;
    ArrivalConfig onoff = poisson;
    onoff.kind = ArrivalKind::kOnOff;
    EXPECT_LT(dispersion(poisson), 1.5);
    EXPECT_GT(dispersion(onoff), 2.0);
}

TEST(Arrival, DiurnalFollowsTheProfile)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::kDiurnal;
    config.rate = 1000.0;
    config.profile = {3.0, 1.0}; // first half-period 3x the second
    config.periodSeconds = 1.0;
    config.seed = 11;
    ArrivalStream stream(config);
    const auto times = stream.generate(100000);
    std::size_t first_half = 0, second_half = 0;
    for (double t : times) {
        const double phase = std::fmod(t, 1.0);
        (phase < 0.5 ? first_half : second_half) += 1;
    }
    const double ratio = static_cast<double>(first_half) /
                         static_cast<double>(second_half);
    EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Arrival, RejectsNonRealizableConfigs)
{
    ArrivalConfig config;
    config.rate = 0.0;
    EXPECT_THROW(ArrivalStream{config}, std::invalid_argument);

    config = ArrivalConfig{};
    config.kind = ArrivalKind::kOnOff;
    config.burstFactor = 5.0;
    config.onFraction = 0.5; // burstFactor * onFraction > 1
    EXPECT_THROW(ArrivalStream{config}, std::invalid_argument);

    config = ArrivalConfig{};
    config.kind = ArrivalKind::kDiurnal; // empty profile
    EXPECT_THROW(ArrivalStream{config}, std::invalid_argument);
}

// --- Open-loop DES ---------------------------------------------------

TEST(OpenLoop, BoundedQueueDropsAndAccounts)
{
    ArrivalConfig arrival;
    arrival.rate = 3000.0; // 1.5x the service rate: heavy overload
    arrival.seed = 3;
    queueing::OpenLoopConfig config;
    config.serviceRates = {2000.0};
    config.queueCapacity = 10;
    config.seed = 3;
    const auto result = queueing::simulateOpenLoop(
        ArrivalStream(arrival).generate(20000), config);
    EXPECT_GT(result.droppedQueueFull, 0u);
    EXPECT_EQ(result.dropped,
              result.droppedQueueFull + result.droppedByFault);
    EXPECT_EQ(result.offered, result.completed + result.dropped);
    EXPECT_EQ(result.responseTimes.size(), 20000u);
    // A bounded queue bounds the sojourn: <= capacity service times,
    // so the p99 stays far below the unbounded overload divergence.
    EXPECT_LT(result.percentile(0.99), 0.1);
}

TEST(OpenLoop, DeadlineMissesAreCounted)
{
    ArrivalConfig arrival;
    arrival.rate = 1800.0;
    arrival.seed = 5;
    queueing::OpenLoopConfig config;
    config.serviceRates = {2000.0};
    config.deadline = 0.002;
    config.seed = 5;
    const auto result = queueing::simulateOpenLoop(
        ArrivalStream(arrival).generate(20000), config);
    EXPECT_GT(result.deadlineMisses, 0u);
    EXPECT_LT(result.deadlineMisses, result.completed);
}

TEST(OpenLoop, LeastLoadedBeatsRoundRobinOnTail)
{
    ArrivalConfig arrival;
    arrival.rate = 3000.0;
    arrival.seed = 7;
    const auto arrivals = ArrivalStream(arrival).generate(40000);
    queueing::OpenLoopConfig config;
    config.serviceRates = {2000.0, 2000.0};
    config.seed = 7;
    const auto balanced = queueing::simulateOpenLoop(arrivals, config);
    config.leastLoaded = false;
    const auto rr = queueing::simulateOpenLoop(arrivals, config);
    // Both serve everything (no bound), but least-loaded smooths the
    // queues and cannot lose on the tail.
    EXPECT_LE(balanced.percentile(0.99), rr.percentile(0.99));
    int servers_used[2] = {0, 0};
    for (const auto s : balanced.servedBy)
        servers_used[s] += 1;
    EXPECT_GT(servers_used[0], 0);
    EXPECT_GT(servers_used[1], 0);
}

TEST(OpenLoop, CommonRandomNumbersMakeDegradationMonotone)
{
    // Same seed, degraded service rate: every single response time
    // must be >= its counterpart (the knee search's foundation).
    ArrivalConfig arrival;
    arrival.rate = 1200.0;
    arrival.seed = 13;
    const auto arrivals = ArrivalStream(arrival).generate(20000);
    queueing::OpenLoopConfig fast;
    fast.serviceRates = {2000.0};
    fast.seed = 13;
    queueing::OpenLoopConfig slow = fast;
    slow.serviceRates = {1600.0};
    const auto f = queueing::simulateOpenLoop(arrivals, fast);
    const auto s = queueing::simulateOpenLoop(arrivals, slow);
    for (std::size_t i = 0; i < f.responseTimes.size(); ++i)
        EXPECT_GE(s.responseTimes[i], f.responseTimes[i]);
}

// --- Stepped sweeps --------------------------------------------------

SweepConfig
smallSweep()
{
    SweepConfig config;
    config.arrival.seed = 21;
    config.servers.serviceRates = {2000.0};
    config.servers.seed = 21;
    config.startQps = 400.0;
    config.stepSize = 400.0;
    config.stepStop = 1600.0;
    config.preRequests = 500;
    config.measureRequests = 3000;
    config.postRequests = 100;
    return config;
}

TEST(Sweep, LatencyRisesWithOfferedLoad)
{
    const SweepResult result = runSweep(smallSweep());
    ASSERT_EQ(result.steps.size(), 4u);
    EXPECT_LT(result.steps.front().percentileValue,
              result.steps.back().percentileValue);
    for (const auto &step : result.steps)
        EXPECT_EQ(step.completed, step.offered);
}

TEST(Sweep, SampleLogIsByteIdenticalAcrossRepeats)
{
    const std::string log = runSweep(smallSweep()).sampleLog();
    EXPECT_FALSE(log.empty());
    EXPECT_EQ(log, runSweep(smallSweep()).sampleLog());
}

TEST(Sweep, SampleLogIsThreadCountInvariant)
{
    // Sweeps fanned across a pool must equal the serial run, byte
    // for byte, whatever worker executes which sweep.
    const int kSweeps = 8;
    std::vector<std::string> parallel_logs(kSweeps);
    core::parallelFor(kSweeps, [&](std::size_t i) {
        SweepConfig config = smallSweep();
        config.arrival.seed = 100 + i;
        config.servers.seed = 100 + i;
        parallel_logs[i] = runSweep(config).sampleLog();
    });
    for (int i = 0; i < kSweeps; ++i) {
        SweepConfig config = smallSweep();
        config.arrival.seed = 100 + static_cast<std::uint64_t>(i);
        config.servers.seed = 100 + static_cast<std::uint64_t>(i);
        EXPECT_EQ(parallel_logs[static_cast<std::size_t>(i)],
                  runSweep(config).sampleLog());
    }
}

TEST(Sweep, PublishesLoadgenCounters)
{
    obs::Counter &steps =
        obs::Registry::global().counter("loadgen.steps");
    obs::Counter &requests =
        obs::Registry::global().counter("loadgen.requests");
    const std::uint64_t steps_before = steps.value();
    const std::uint64_t requests_before = requests.value();
    runSweep(smallSweep());
    EXPECT_EQ(steps.value() - steps_before, 4u);
    EXPECT_EQ(requests.value() - requests_before, 4u * 3600u);
}

// --- Knee search -----------------------------------------------------

KneeConfig
kneeConfig(double mu)
{
    KneeConfig config;
    config.probe = smallSweep();
    config.probe.servers.serviceRates = {mu};
    config.probe.preRequests = 1000;
    config.probe.measureRequests = 10000;
    config.probe.percentile = 0.95;
    config.targetLatency = 0.006;
    config.qpsLo = 100.0;
    config.tolerance = 4.0;
    return config;
}

TEST(Knee, MatchesTheClosedFormPrediction)
{
    // M/M/1: p95(lambda) = -ln(0.05) / (mu - lambda) hits the target
    // at lambda* = mu - (-ln(0.05)) / target.
    const double mu = 2000.0;
    const KneeResult result = findKnee(kneeConfig(mu));
    const double predicted = mu + std::log(0.05) / 0.006;
    EXPECT_NEAR(result.kneeQps, predicted, 0.05 * predicted);
    EXPECT_LE(result.latencyAtKnee, 0.006);
    EXPECT_GT(result.probes, 2u);
}

TEST(Knee, MonotoneInServiceRate)
{
    const KneeResult fast = findKnee(kneeConfig(2000.0));
    const KneeResult medium = findKnee(kneeConfig(1700.0));
    const KneeResult slow = findKnee(kneeConfig(1400.0));
    EXPECT_GT(fast.kneeQps, medium.kneeQps);
    EXPECT_GT(medium.kneeQps, slow.kneeQps);
}

TEST(Knee, ReportsZeroWhenTheBracketFails)
{
    KneeConfig config = kneeConfig(2000.0);
    config.targetLatency = 1e-6; // unmeetable
    const KneeResult result = findKnee(config);
    EXPECT_EQ(result.kneeQps, 0.0);
}

// --- des.* chaos sites ----------------------------------------------

TEST(Chaos, DesSitesAreDeterministicAndCounted)
{
    FaultGuard guard;
    fault::FaultPlan &faults = fault::FaultPlan::global();

    const SweepConfig config = smallSweep();
    const std::string baseline = runSweep(config).sampleLog();

    faults.arm("des.drop", fault::SiteSpec{.probability = 0.01,
                                           .seed = 41});
    faults.arm("des.server_stall",
               fault::SiteSpec{.probability = 0.05,
                               .seed = 43,
                               .sigma = 0.5});
    faults.arm("des.arrival_burst",
               fault::SiteSpec{.probability = 0.02,
                               .seed = 47,
                               .sigma = 1.0});

    const std::string chaos_a = runSweep(config).sampleLog();
    const std::string chaos_b = runSweep(config).sampleLog();
    // Pinned plan: byte-identical across repeats, different from the
    // clean run, with every site's injection counter live.
    EXPECT_EQ(chaos_a, chaos_b);
    EXPECT_NE(chaos_a, baseline);
    obs::Registry &registry = obs::Registry::global();
    EXPECT_GT(registry.counter("fault.des.drop.injected").value(), 0u);
    EXPECT_GT(
        registry.counter("fault.des.server_stall.injected").value(),
        0u);
    EXPECT_GT(
        registry.counter("fault.des.arrival_burst.injected").value(),
        0u);

    // Disarmed again, the subsystem returns to the clean bytes: the
    // fault layer at rest changes nothing.
    faults.reset();
    EXPECT_EQ(runSweep(config).sampleLog(), baseline);
}

TEST(Chaos, DropSiteDropsAndStallSiteStretches)
{
    FaultGuard guard;
    fault::FaultPlan &faults = fault::FaultPlan::global();

    ArrivalConfig arrival;
    arrival.rate = 1000.0;
    arrival.seed = 51;
    const auto arrivals = ArrivalStream(arrival).generate(10000);
    queueing::OpenLoopConfig config;
    config.serviceRates = {2000.0};
    config.seed = 51;
    const auto clean = queueing::simulateOpenLoop(arrivals, config);

    faults.arm("des.drop",
               fault::SiteSpec{.probability = 0.05, .seed = 53});
    const auto dropped = queueing::simulateOpenLoop(arrivals, config);
    EXPECT_GT(dropped.droppedByFault, 0u);
    EXPECT_EQ(dropped.offered,
              dropped.completed + dropped.dropped);
    faults.reset();

    faults.arm("des.server_stall",
               fault::SiteSpec{.probability = 0.10,
                               .seed = 57,
                               .sigma = 1.0});
    const auto stalled = queueing::simulateOpenLoop(arrivals, config);
    EXPECT_EQ(stalled.completed, clean.completed);
    // Stalls only stretch: every response >= the clean counterpart.
    for (std::size_t i = 0; i < clean.responseTimes.size(); ++i)
        EXPECT_GE(stalled.responseTimes[i], clean.responseTimes[i]);
    EXPECT_GT(stalled.percentile(0.99), clean.percentile(0.99));
}

// --- Load-aware online scheduling -----------------------------------

scheduler::Pairing
linearPairing(double per_instance, int max_instances = 6)
{
    scheduler::Pairing p;
    p.latencyApp = "svc";
    p.batchApp = "batch";
    for (int k = 1; k <= max_instances; ++k) {
        scheduler::CoLocationOption option;
        option.actualQos = 1.0 - per_instance * k;
        option.predictedQos = option.actualQos;
        p.byInstances.push_back(option);
    }
    return p;
}

/** Knee row: linear decay from @p solo by @p per_depth per depth. */
std::vector<double>
linearKnees(double solo, double per_depth, int max_instances = 6)
{
    std::vector<double> row;
    for (int d = 0; d <= max_instances; ++d)
        row.push_back(solo - per_depth * d);
    return row;
}

TEST(LoadAware, ValidatesItsConfiguration)
{
    const scheduler::Cluster cluster(
        {linearPairing(0.02)}, {"svc"}, 10);
    scheduler::OnlineConfig config;
    config.loadAware.enabled = true;
    config.loadAware.baseQps = 0.0; // invalid
    config.loadAware.kneeByPairing = {linearKnees(1500, 100)};
    EXPECT_THROW(scheduler::OnlineScheduler(cluster, config),
                 std::invalid_argument);
    config.loadAware.baseQps = 400.0;
    config.loadAware.kneeByPairing.clear(); // missing table
    EXPECT_THROW(scheduler::OnlineScheduler(cluster, config),
                 std::invalid_argument);
    config.loadAware.kneeByPairing = {{1500, 1400}}; // short row
    EXPECT_THROW(scheduler::OnlineScheduler(cluster, config),
                 std::invalid_argument);
}

TEST(LoadAware, DisabledMatchesBaselineExactly)
{
    FaultGuard guard;
    fault::FaultPlan::global().arm(
        "server.fail", fault::SiteSpec{.probability = 0.05,
                                       .seed = 61});
    const scheduler::Cluster cluster(
        {linearPairing(0.02)}, {"svc"}, 100);
    scheduler::OnlineConfig config;
    config.epochs = 10;
    const auto baseline =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    config.loadAware.kneeByPairing = {linearKnees(1500, 100)};
    config.loadAware.baseQps = 400.0;
    // Not enabled: the table is inert and the run identical.
    const auto inert =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    ASSERT_EQ(baseline.timeline.size(), inert.timeline.size());
    for (std::size_t e = 0; e < baseline.timeline.size(); ++e) {
        EXPECT_EQ(baseline.timeline[e].totalInstances,
                  inert.timeline[e].totalInstances);
        EXPECT_EQ(baseline.timeline[e].utilization,
                  inert.timeline[e].utilization);
        EXPECT_EQ(inert.timeline[e].fillerInstances, 0.0);
        EXPECT_EQ(inert.timeline[e].fillersShed, 0);
        EXPECT_EQ(inert.timeline[e].loadSpikes, 0);
    }
    EXPECT_EQ(baseline.final.totalInstances,
              inert.final.totalInstances);
}

TEST(LoadAware, KneeCapsGuaranteedAdmission)
{
    // QoS alone would admit 5 instances (2%/instance at target 0.90),
    // but the knee table only carries the base load to depth 3.
    const scheduler::Cluster cluster(
        {linearPairing(0.02)}, {"svc"}, 50);
    scheduler::OnlineConfig config;
    config.epochs = 4;
    config.loadAware.enabled = true;
    config.loadAware.baseQps = 400.0;
    // knee(3) = 500 >= 400 > knee(4) = 300.
    config.loadAware.kneeByPairing = {linearKnees(1100, 200)};
    const auto run =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    // 50 servers x depth 3 guaranteed; fillers cannot exceed the
    // knee either, so the total stays at the load cap.
    EXPECT_EQ(run.timeline.back().totalInstances, 150.0);
    EXPECT_EQ(run.timeline.back().fillerInstances, 0.0);
    EXPECT_EQ(run.final.violatedServers, 0);
}

TEST(LoadAware, FillersPackIdleContextsAtBaseLoad)
{
    const scheduler::Cluster cluster(
        {linearPairing(0.04)}, {"svc"}, 50);
    scheduler::OnlineConfig config;
    config.epochs = 6;
    config.loadAware.enabled = true;
    config.loadAware.baseQps = 400.0;
    // Generous knees: depth 6 still carries 900 QPS.
    config.loadAware.kneeByPairing = {linearKnees(1500, 100)};
    const auto run =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    const auto &last = run.timeline.back();
    // QoS admits 2 guaranteed (4%/instance); fillers take the rest.
    EXPECT_EQ(last.totalInstances, 100.0);
    EXPECT_EQ(last.fillerInstances, 200.0);
    EXPECT_EQ(last.loadViolations, 0);
}

TEST(LoadAware, SpikesShedFillersNeverGuaranteed)
{
    FaultGuard guard;
    // Intermittent spikes: base offered 400 fits depth 6 (knee(6) =
    // 700), a 2x spike (800) only depth 5 (knee(5) = 800). Spiked
    // servers shed one filler; calm epochs grow it back.
    fault::FaultPlan::global().arm(
        "des.arrival_burst",
        fault::SiteSpec{.probability = 0.5, .seed = 67, .sigma = 0.5});
    const scheduler::Cluster cluster(
        {linearPairing(0.04)}, {"svc"}, 50);
    scheduler::OnlineConfig config;
    config.epochs = 6;
    // Unreachable headroom suppresses QoS probes: the test isolates
    // the filler dynamics from probe/evict convergence noise.
    config.headroom = 0.5;
    config.loadAware.enabled = true;
    config.loadAware.baseQps = 400.0;
    config.loadAware.spikeFactor = 2.0;
    config.loadAware.kneeByPairing = {linearKnees(1300, 100)};
    const auto run =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    int spikes = 0, shed = 0, load_violations = 0;
    for (const auto &e : run.timeline) {
        spikes += e.loadSpikes;
        shed += e.fillersShed;
        load_violations += e.loadViolations;
        // Guaranteed tier (2 instances per server) is untouched.
        EXPECT_EQ(e.totalInstances, 100.0);
        // Per-server fillers stay between the spike depth (3 fillers)
        // and the calm depth (4 fillers).
        EXPECT_GE(e.fillerInstances, 150.0);
        EXPECT_LE(e.fillerInstances, 200.0);
    }
    EXPECT_GT(spikes, 0);
    EXPECT_LT(spikes, 6 * 50);
    // Graceful degradation is exercised, never at the guaranteed
    // tier's expense.
    EXPECT_GT(shed, 0);
    EXPECT_EQ(load_violations, 0);
    EXPECT_EQ(run.final.violatedServers, 0);
}

TEST(LoadAware, UndersizedGuaranteedKneeIsCountedNotEvicted)
{
    FaultGuard guard;
    fault::FaultPlan::global().arm(
        "des.arrival_burst",
        fault::SiteSpec{.probability = 1.0, .seed = 71, .sigma = 0.5});
    const scheduler::Cluster cluster(
        {linearPairing(0.02)}, {"svc"}, 20);
    scheduler::OnlineConfig config;
    config.epochs = 3;
    config.loadAware.enabled = true;
    config.loadAware.baseQps = 400.0;
    config.loadAware.spikeFactor = 2.0;
    // Base load fits depth 5 (knee 450), but the spike (800) exceeds
    // even knee(5): the guaranteed tier itself is past its knee.
    config.loadAware.kneeByPairing = {linearKnees(1450, 200)};
    const auto run =
        scheduler::OnlineScheduler(cluster, config).run(0.90);
    int load_violations = 0;
    for (const auto &e : run.timeline) {
        load_violations += e.loadViolations;
        // Counted, never evicted: the guaranteed tier stays put.
        EXPECT_EQ(e.totalInstances, 100.0);
    }
    EXPECT_GT(load_violations, 0);
}

} // namespace
} // namespace smite::loadgen
