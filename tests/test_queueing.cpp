/**
 * @file
 * Unit and property tests for the M/M/1 closed form (Equations 4-6)
 * and its validation against the discrete-event simulator.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "loadgen/arrival.h"
#include "queueing/des.h"
#include "queueing/mm1.h"

namespace smite::queueing {
namespace {

TEST(Mm1, BasicProperties)
{
    const Mm1 q(50.0, 100.0);
    EXPECT_NEAR(q.utilization(), 0.5, 1e-12);
    EXPECT_TRUE(q.stable());
    EXPECT_NEAR(q.meanResponseTime(), 1.0 / 50.0, 1e-12);
}

TEST(Mm1, RejectsNonPositiveRates)
{
    EXPECT_THROW(Mm1(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Mm1(1.0, -1.0), std::invalid_argument);
}

TEST(Mm1, PdfIntegratesToCdf)
{
    const Mm1 q(30.0, 100.0);
    // Numerically integrate the PDF and compare with the CDF.
    const double t_end = 0.05;
    const int steps = 20000;
    double integral = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double t = (i + 0.5) * t_end / steps;
        integral += q.responseTimePdf(t) * (t_end / steps);
    }
    EXPECT_NEAR(integral, q.responseTimeCdf(t_end), 1e-4);
}

TEST(Mm1, PercentileInvertsCdf)
{
    const Mm1 q(700.0, 1000.0);
    for (double p : {0.5, 0.9, 0.95, 0.99}) {
        const double t = q.percentileLatency(p);
        EXPECT_NEAR(q.responseTimeCdf(t), p, 1e-12) << "p=" << p;
    }
}

TEST(Mm1, DegradedPercentileMatchesEquation6)
{
    const Mm1 q(1200.0, 2000.0);
    const double p = 0.9, deg = 0.2;
    const double expected =
        -std::log(1.0 - p) / ((1.0 - deg) * 2000.0 - 1200.0);
    EXPECT_NEAR(q.degradedPercentileLatency(p, deg), expected, 1e-12);
}

TEST(Mm1, DegradationToInstabilityIsInfinite)
{
    const Mm1 q(900.0, 1000.0);
    EXPECT_TRUE(std::isinf(q.degradedPercentileLatency(0.9, 0.2)));
}

TEST(Mm1, ZeroDegradationIsSolo)
{
    const Mm1 q(1200.0, 2000.0);
    EXPECT_NEAR(q.degradedPercentileLatency(0.9, 0.0),
                q.percentileLatency(0.9), 1e-12);
}

TEST(Mm1, TailGrowsSuperLinearlyWithDegradation)
{
    // The paper's motivation for Figure 16: tail latency grows
    // super-linearly with throughput degradation.
    const Mm1 q(1200.0, 2000.0);
    const double t0 = q.percentileLatency(0.9);
    const double t10 = q.degradedPercentileLatency(0.9, 0.10);
    const double t20 = q.degradedPercentileLatency(0.9, 0.20);
    EXPECT_GT((t20 - t10), (t10 - t0));
}

TEST(Mm1, UnstableQueueThrows)
{
    const Mm1 q(2.0, 1.0);
    EXPECT_FALSE(q.stable());
    EXPECT_THROW(q.percentileLatency(0.9), std::logic_error);
    EXPECT_THROW(q.meanResponseTime(), std::logic_error);
}

TEST(QueueSim, RejectsBadArguments)
{
    EXPECT_THROW(simulateMm1(-1.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(simulateMm1(1.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(simulateMm1(1.0, 2.0, 10, 1, 10),
                 std::invalid_argument);  // warmup eats everything
}

TEST(QueueSim, WarmupBoundary)
{
    // warmup == requests leaves nothing to measure; one fewer works.
    EXPECT_THROW(simulateMm1(50.0, 100.0, 1000, 1, 1000),
                 std::invalid_argument);
    const auto r = simulateMm1(50.0, 100.0, 1000, 1, 999);
    EXPECT_EQ(r.responseTimes.size(), 1u);
}

TEST(QueueSim, Deterministic)
{
    const auto a = simulateMm1(50, 100, 5000, 3);
    const auto b = simulateMm1(50, 100, 5000, 3);
    ASSERT_EQ(a.responseTimes.size(), b.responseTimes.size());
    EXPECT_EQ(a.responseTimes, b.responseTimes);
}

/**
 * Property: the simulated percentile matches the closed form across
 * utilizations (this is the validation the paper's Equation 6 rests
 * on).
 */
class ClosedFormVsSim : public ::testing::TestWithParam<double>
{
};

TEST_P(ClosedFormVsSim, NinetiethPercentileAgrees)
{
    const double rho = GetParam();
    const double mu = 1000.0;
    const double lambda = rho * mu;
    const Mm1 q(lambda, mu);
    const auto sim = simulateMm1(lambda, mu, 400000, 11);
    const double analytic = q.percentileLatency(0.9);
    const double simulated = sim.percentile(0.9);
    EXPECT_NEAR(simulated / analytic, 1.0, 0.06)
        << "rho=" << rho << " analytic=" << analytic
        << " simulated=" << simulated;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, ClosedFormVsSim,
                         ::testing::Values(0.1, 0.3, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

TEST(QueueSim, MeanMatchesClosedForm)
{
    const Mm1 q(600.0, 1000.0);
    const auto sim = simulateMm1(600, 1000, 400000, 5);
    EXPECT_NEAR(sim.meanResponse() / q.meanResponseTime(), 1.0, 0.05);
}

TEST(OpenLoop, SingleServerMatchesClosedForm)
{
    // The generalized open-loop DES fed a keyed Poisson stream must
    // reproduce the M/M/1 closed form, exactly like simulateMm1.
    const double lambda = 700.0, mu = 1000.0;
    loadgen::ArrivalConfig arrival;
    arrival.rate = lambda;
    arrival.seed = 19;
    OpenLoopConfig config;
    config.serviceRates = {mu};
    config.seed = 19;
    const auto sim = simulateOpenLoop(
        loadgen::ArrivalStream(arrival).generate(400000), config);
    EXPECT_EQ(sim.completed, sim.offered);
    const Mm1 q(lambda, mu);
    EXPECT_NEAR(sim.percentile(0.9, 1000) / q.percentileLatency(0.9),
                1.0, 0.06);
    EXPECT_NEAR(sim.meanResponse(1000) / q.meanResponseTime(), 1.0,
                0.05);
}

TEST(OpenLoop, Deterministic)
{
    loadgen::ArrivalConfig arrival;
    arrival.rate = 800.0;
    arrival.seed = 23;
    const auto arrivals =
        loadgen::ArrivalStream(arrival).generate(10000);
    OpenLoopConfig config;
    config.serviceRates = {1000.0, 1000.0};
    config.seed = 23;
    const auto a = simulateOpenLoop(arrivals, config);
    const auto b = simulateOpenLoop(arrivals, config);
    EXPECT_EQ(a.responseTimes, b.responseTimes);
    EXPECT_EQ(a.servedBy, b.servedBy);
}

TEST(OpenLoop, RejectsBadServiceRates)
{
    OpenLoopConfig config;
    EXPECT_THROW(simulateOpenLoop({0.0}, config),
                 std::invalid_argument); // no servers
    config.serviceRates = {1000.0, 0.0};
    EXPECT_THROW(simulateOpenLoop({0.0}, config),
                 std::invalid_argument); // non-positive rate
}

} // namespace
} // namespace smite::queueing
