/**
 * @file
 * Golden-equivalence suite for the optimized simulator kernels.
 *
 * The flattened cache/TLB arrays and the fast-path core loops (see
 * docs/PERFORMANCE.md) are pure optimizations: they must reproduce the
 * seed model's behavior bit for bit. This file enforces that two ways:
 *
 *  1. Reference-model fuzzing: ReferenceSetAssocCache / ReferenceTlb
 *     below are literal ports of the seed (pre-flattening) algorithms.
 *     Long randomized access/probe/invalidate/flush traces over many
 *     geometries must produce identical outcomes from both models.
 *
 *  2. End-to-end goldens: full Machine::run scenarios whose complete
 *     CounterBlocks were captured from the seed-behavior build and
 *     hard-coded here. Any divergence — one extra TLB miss, one
 *     different LRU victim — shifts these counters and fails the test,
 *     so byte-identical counters imply identical fig/table outputs.
 *
 * Regenerating the goldens (only when *intentionally* changing model
 * semantics): run with SMITE_DUMP_GOLDEN=1 and paste the printed
 * scenario arrays over the kGolden table below.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/tlb.h"
#include "workload/generator.h"
#include "workload/rng.h"
#include "workload/spec2006.h"

namespace smite::sim {
namespace {

// ===================================================================
// Reference models: the seed implementations, kept verbatim.
// ===================================================================

/** Seed-behavior set-associative LRU cache (array-of-structs). */
class ReferenceSetAssocCache
{
  public:
    explicit ReferenceSetAssocCache(const CacheConfig &config)
        : config_(config)
    {
        const std::uint64_t lines = config.sizeBytes / kLineBytes;
        numSets_ = lines / config.assoc;
        lines_.resize(lines);
    }

    SetAssocCache::AccessResult
    access(Addr line, bool write)
    {
        SetAssocCache::AccessResult result;
        const std::uint64_t set = line % numSets_;
        Line *base = &lines_[set * config_.assoc];
        ++useClock_;

        Line *victim = base;
        for (int w = 0; w < config_.assoc; ++w) {
            Line &entry = base[w];
            if (entry.tag == line) {
                entry.lastUse = useClock_;
                entry.dirty = entry.dirty || write;
                result.hit = true;
                return result;
            }
            if (entry.tag == kNoTag) {
                if (victim->tag != kNoTag ||
                    victim->lastUse > entry.lastUse)
                    victim = &entry;
            } else if (victim->tag != kNoTag &&
                       entry.lastUse < victim->lastUse) {
                victim = &entry;
            }
        }

        if (victim->tag != kNoTag) {
            result.evictedValid = true;
            result.evictedDirty = victim->dirty;
            result.evictedLine = victim->tag;
        }
        victim->tag = line;
        victim->lastUse = useClock_;
        victim->dirty = write;
        return result;
    }

    bool
    probe(Addr line) const
    {
        const std::uint64_t set = line % numSets_;
        const Line *base = &lines_[set * config_.assoc];
        for (int w = 0; w < config_.assoc; ++w) {
            if (base[w].tag == line)
                return true;
        }
        return false;
    }

    bool
    invalidate(Addr line)
    {
        const std::uint64_t set = line % numSets_;
        Line *base = &lines_[set * config_.assoc];
        for (int w = 0; w < config_.assoc; ++w) {
            if (base[w].tag == line) {
                base[w] = Line{};
                return true;
            }
        }
        return false;
    }

    void
    flush()
    {
        for (Line &entry : lines_)
            entry = Line{};
        useClock_ = 0;
    }

  private:
    struct Line {
        Addr tag = ~Addr{0};
        std::uint64_t lastUse = 0;
        bool dirty = false;
    };
    static constexpr Addr kNoTag = ~Addr{0};

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_;
};

/** Seed-behavior fully-associative LRU TLB (linear scan). */
class ReferenceTlb
{
  public:
    explicit ReferenceTlb(const TlbConfig &config)
        : entries_(config.entries)
    {}

    bool
    access(Addr page)
    {
        ++useClock_;
        Entry *victim = &entries_[0];
        for (Entry &entry : entries_) {
            if (entry.page == page) {
                entry.lastUse = useClock_;
                return true;
            }
            if (entry.lastUse < victim->lastUse)
                victim = &entry;
        }
        victim->page = page;
        victim->lastUse = useClock_;
        return false;
    }

    void
    flush()
    {
        for (Entry &entry : entries_)
            entry = Entry{};
        useClock_ = 0;
    }

  private:
    struct Entry {
        Addr page = ~Addr{0};
        std::uint64_t lastUse = 0;
    };
    std::uint64_t useClock_ = 0;
    std::vector<Entry> entries_;
};

// ===================================================================
// Fuzz equivalence: optimized vs reference under random traces.
// ===================================================================

struct CacheGeometry {
    std::uint64_t sizeBytes;
    int assoc;
};

class CacheEquivalence : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheEquivalence, RandomTraceMatchesReference)
{
    const auto [size, assoc] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    SetAssocCache fast(config);
    ReferenceSetAssocCache ref(config);
    ASSERT_EQ(fast.numSets(), size / kLineBytes / assoc);

    // Address pool ~2x capacity so hits, misses, clean and dirty
    // evictions all occur; sprinkle probes, invalidates and flushes.
    const std::uint64_t lines = 2 * size / kLineBytes + 7;
    workload::Rng rng(0xC0FFEE ^ size ^ assoc);
    for (int i = 0; i < 60'000; ++i) {
        const Addr line = rng.nextBelow(lines);
        const int op = static_cast<int>(rng.nextBelow(16));
        if (op < 12) {
            const bool write = rng.nextBelow(4) == 0;
            const auto a = fast.access(line, write);
            const auto b = ref.access(line, write);
            ASSERT_EQ(a.hit, b.hit) << "step " << i;
            ASSERT_EQ(a.evictedValid, b.evictedValid) << "step " << i;
            ASSERT_EQ(a.evictedDirty, b.evictedDirty) << "step " << i;
            if (a.evictedValid) {
                ASSERT_EQ(a.evictedLine, b.evictedLine) << "step " << i;
            }
        } else if (op < 14) {
            ASSERT_EQ(fast.probe(line), ref.probe(line)) << "step " << i;
        } else if (op < 15) {
            ASSERT_EQ(fast.invalidate(line), ref.invalidate(line))
                << "step " << i;
        } else if (rng.nextBelow(256) == 0) {
            fast.flush();
            ref.flush();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalence,
    ::testing::Values(CacheGeometry{1024, 1},      // direct-mapped
                      CacheGeometry{4096, 2},
                      CacheGeometry{8192, 4},
                      CacheGeometry{32 * 1024, 8},
                      CacheGeometry{64 * 1024, 16},
                      // Non-power-of-two sets and ways (the L3 of the
                      // Sandy Bridge-EN preset is 20-way, 12288 sets).
                      CacheGeometry{192 * 64, 4},  // 48 sets
                      CacheGeometry{15 * 64 * 20, 20}));  // 15 sets

class TlbEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(TlbEquivalence, RandomTraceMatchesReference)
{
    TlbConfig config;
    config.entries = GetParam();
    Tlb fast(config);
    ReferenceTlb ref(config);

    // Phase between a small hot page set (mostly hits) and a wide
    // range (capacity churn) so LRU order and victim choice are both
    // exercised; occasional flushes reset the clock.
    workload::Rng rng(0xBADF00D + config.entries);
    for (int i = 0; i < 120'000; ++i) {
        const bool hot = rng.nextBelow(3) != 0;
        const std::uint64_t span =
            hot ? static_cast<std::uint64_t>(config.entries) / 2 + 1
                : static_cast<std::uint64_t>(config.entries) * 3 + 11;
        const Addr page = rng.nextBelow(span);
        ASSERT_EQ(fast.access(page), ref.access(page)) << "step " << i;
        if (rng.nextBelow(20'000) == 0) {
            fast.flush();
            ref.flush();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbEquivalence,
                         ::testing::Values(1, 2, 7, 64, 128, 512));

// ===================================================================
// End-to-end goldens: seed-captured CounterBlocks, bit for bit.
// ===================================================================

/** CounterBlock flattened to a fixed field order for comparison. */
constexpr int kNumFields = 23;

std::array<std::uint64_t, kNumFields>
flatten(const CounterBlock &c)
{
    return {c.cycles,       c.uops,           c.portIssued[0],
            c.portIssued[1], c.portIssued[2], c.portIssued[3],
            c.portIssued[4], c.portIssued[5], c.loads,
            c.stores,        c.branches,      c.branchMispredicts,
            c.l1dHits,       c.l1dMisses,     c.l2Hits,
            c.l2Misses,      c.l3Hits,        c.l3Misses,
            c.icacheMisses,  c.itlbMisses,    c.dtlbLoadMisses,
            c.dtlbStoreMisses, c.fetchStallCycles};
}

constexpr const char *kFieldNames[kNumFields] = {
    "cycles",       "uops",         "port0",     "port1",
    "port2",        "port3",        "port4",     "port5",
    "loads",        "stores",       "branches",  "branchMispredicts",
    "l1dHits",      "l1dMisses",    "l2Hits",    "l2Misses",
    "l3Hits",       "l3Misses",     "icacheMisses", "itlbMisses",
    "dtlbLoadMisses", "dtlbStoreMisses", "fetchStallCycles"};

struct GoldenScenario {
    const char *name;
    std::vector<std::vector<std::uint64_t>> expected;  // per placement
};

/** Machine + placements of scenario @p index; appends run results. */
std::vector<CounterBlock>
runScenario(int index)
{
    constexpr Cycle kWarmup = 3'000;
    constexpr Cycle kMeasure = 12'000;
    const auto src = [](const char *name) {
        return workload::ProfileUopSource(
            workload::spec2006::byName(name));
    };
    switch (index) {
      case 0: {  // solo, power-of-two geometry everywhere
        const Machine machine(MachineConfig::ivyBridge());
        auto a = src("456.hmmer");
        return {machine.runSolo(a, kWarmup, kMeasure)};
      }
      case 1: {  // SMT pair: shared L1/L2 contention
        const Machine machine(MachineConfig::ivyBridge());
        auto a = src("456.hmmer");
        auto b = src("470.lbm");
        return machine.runPairSmt(a, b, kWarmup, kMeasure);
      }
      case 2: {  // CMP pair: shared L3/DRAM only
        const Machine machine(MachineConfig::ivyBridge());
        auto a = src("429.mcf");
        auto b = src("462.libquantum");
        return machine.runPairCmp(a, b, kWarmup, kMeasure);
      }
      case 3: {  // ICOUNT fetch policy exercises the min-scan path
        MachineConfig config = MachineConfig::ivyBridge();
        config.core.fetchPolicy = FetchPolicy::kIcount;
        const Machine machine(config);
        auto a = src("403.gcc");
        auto b = src("433.milc");
        return machine.runPairSmt(a, b, kWarmup, kMeasure);
      }
      case 4: {  // inclusive L3 + L2 prefetch: invalidate()/probe() hot
        MachineConfig config = MachineConfig::ivyBridge();
        config.inclusiveL3 = true;
        config.l2NextLinePrefetch = true;
        const Machine machine(config);
        auto a = src("470.lbm");
        auto b = src("482.sphinx3");
        return machine.runPairSmt(a, b, kWarmup, kMeasure);
      }
      case 5: {  // Sandy Bridge-EN: non-power-of-two L3 sets/ways,
                 // four placements over two cores
        const Machine machine(MachineConfig::sandyBridgeEN());
        auto a = src("456.hmmer");
        auto b = src("470.lbm");
        auto c = src("401.bzip2");
        auto d = src("429.mcf");
        return machine.run({Placement{0, 0, &a}, Placement{0, 1, &b},
                            Placement{1, 0, &c}, Placement{1, 1, &d}},
                           kWarmup, kMeasure);
      }
      case 6: {  // multi-core CMP: four cores, one context each — the
                 // shape where per-core wake times matter most (cores
                 // sharing only L3/DRAM are rarely simultaneously idle)
        const Machine machine(MachineConfig::ivyBridge());
        auto a = src("456.hmmer");
        auto b = src("470.lbm");
        auto c = src("429.mcf");
        auto d = src("462.libquantum");
        return machine.run({Placement{0, 0, &a}, Placement{1, 0, &b},
                            Placement{2, 0, &c}, Placement{3, 0, &d}},
                           kWarmup, kMeasure);
      }
      case 7: {  // 4-context SMT: one core, four hardware threads
                 // (Navarro-style wide SMT; exercises the shared
                 // fetch/issue arbitration rotation beyond 2 ways)
        MachineConfig config = MachineConfig::ivyBridge();
        config.contextsPerCore = 4;
        const Machine machine(config);
        auto a = src("456.hmmer");
        auto b = src("470.lbm");
        auto c = src("403.gcc");
        auto d = src("433.milc");
        return machine.run({Placement{0, 0, &a}, Placement{0, 1, &b},
                            Placement{0, 2, &c}, Placement{0, 3, &d}},
                           kWarmup, kMeasure);
      }
      default:
        throw std::logic_error("unknown scenario");
    }
}

constexpr int kNumScenarios = 8;

/**
 * Seed-captured goldens. Captured from the pre-optimization model at
 * commit d3f58f5 with SMITE_DUMP_GOLDEN=1; the optimized kernels must
 * reproduce them exactly.
 */
const std::vector<GoldenScenario> &
goldens()
{
    static const std::vector<GoldenScenario> kGolden = {
        {"ivy_solo_hmmer",
         {{12000, 14541, 1604, 924, 2236, 944, 1378, 2845, 3180, 1378, 865, 3, 4337, 221, 0, 434, 259, 175, 213, 6, 12, 3, 6362}}},
        {"ivy_smt_hmmer_lbm",
         {{12000, 14013, 1500, 846, 2050, 909, 1308, 2691, 2959, 1308, 807, 4, 3740, 527, 286, 431, 232, 199, 190, 5, 11, 3, 5334},
          {12000, 7622, 1087, 2539, 1259, 621, 982, 647, 1880, 982, 71, 1, 2146, 716, 12, 720, 117, 603, 16, 1, 230, 102, 332}}},
        {"ivy_cmp_mcf_libquantum",
         {{12000, 3147, 189, 38, 511, 291, 216, 792, 802, 216, 367, 12, 164, 854, 23, 860, 235, 625, 29, 0, 561, 158, 2183},
          {12000, 6954, 866, 463, 1298, 698, 1050, 1727, 1996, 1050, 880, 6, 2447, 599, 0, 689, 151, 538, 90, 2, 136, 68, 2741}}},
        {"ivy_icount_gcc_milc",
         {{12000, 7410, 801, 340, 1136, 535, 662, 1839, 1671, 662, 1142, 32, 1572, 761, 295, 579, 143, 436, 113, 4, 84, 33, 3841},
          {12000, 6214, 1244, 1357, 965, 596, 525, 912, 1561, 525, 171, 0, 1158, 928, 97, 847, 214, 633, 16, 1, 389, 133, 447}}},
        {"ivy_inclusive_prefetch_lbm_sphinx3",
         {{12000, 8769, 1256, 2849, 1480, 678, 1145, 796, 2158, 1145, 78, 1, 2474, 829, 372, 473, 180, 293, 16, 1, 252, 127, 429},
          {12000, 11950, 1802, 2561, 1779, 803, 622, 1803, 2582, 622, 503, 7, 1582, 1622, 447, 1191, 984, 207, 16, 1, 179, 54, 855}}},
        {"sandy_quad_hmmer_lbm_bzip2_mcf",
         {{12000, 14071, 1538, 866, 2106, 938, 1314, 2728, 3044, 1314, 816, 3, 3826, 532, 333, 391, 197, 194, 192, 5, 11, 3, 5328},
          {12000, 8199, 1176, 2695, 1335, 681, 1050, 701, 2016, 1050, 78, 1, 2297, 769, 14, 771, 118, 653, 16, 1, 240, 115, 430},
          {12000, 8058, 1242, 664, 1446, 717, 751, 2083, 2163, 751, 1138, 40, 1970, 944, 451, 565, 72, 493, 72, 2, 90, 29, 2967},
          {12000, 4715, 312, 79, 777, 415, 294, 1148, 1192, 294, 588, 28, 179, 1307, 117, 1242, 635, 607, 52, 1, 843, 198, 2282}}},
        {"ivy_cmp_quad_4core",
         {{12000, 4517, 452, 245, 661, 286, 395, 900, 947, 395, 234, 1, 1073, 269, 0, 333, 64, 269, 64, 2, 8, 2, 1906},
          {12000, 3530, 485, 1207, 635, 318, 478, 295, 953, 478, 33, 0, 1080, 351, 0, 351, 51, 300, 0, 0, 116, 45, 0},
          {12000, 1329, 82, 13, 238, 135, 100, 389, 373, 100, 161, 3, 58, 415, 2, 445, 87, 358, 32, 1, 266, 77, 1566},
          {12000, 3824, 418, 220, 684, 345, 565, 895, 1029, 565, 444, 4, 1299, 295, 0, 359, 85, 274, 64, 1, 68, 29, 1912}}},
        {"ivy_smt4_quad",
         {{12000, 3832, 400, 212, 545, 254, 339, 755, 799, 339, 198, 1, 578, 560, 294, 330, 65, 265, 64, 2, 6, 2, 1795},
          {12000, 3201, 438, 1074, 563, 307, 438, 270, 870, 438, 33, 0, 978, 330, 3, 327, 13, 314, 0, 0, 111, 45, 0},
          {12000, 2584, 301, 138, 426, 235, 285, 756, 661, 285, 449, 13, 433, 513, 202, 366, 59, 307, 55, 2, 40, 14, 1972},
          {12000, 3257, 521, 599, 463, 292, 256, 423, 755, 256, 90, 0, 523, 488, 50, 438, 140, 298, 0, 0, 201, 69, 0}}},
    };
    return kGolden;
}

TEST(GoldenMachine, CountersMatchSeedBehavior)
{
    if (std::getenv("SMITE_DUMP_GOLDEN") != nullptr) {
        // Regeneration mode: print the golden table source.
        for (int s = 0; s < kNumScenarios; ++s) {
            const auto results = runScenario(s);
            std::printf("        {\"scenario_%d\",\n         {", s);
            for (size_t p = 0; p < results.size(); ++p) {
                const auto flat = flatten(results[p]);
                std::printf("{");
                for (int f = 0; f < kNumFields; ++f)
                    std::printf("%llu%s",
                                static_cast<unsigned long long>(flat[f]),
                                f + 1 < kNumFields ? ", " : "");
                std::printf("}%s", p + 1 < results.size() ? ",\n          "
                                                          : "");
            }
            std::printf("}},\n");
        }
        GTEST_SKIP() << "golden dump mode; no comparison performed";
    }

    const auto &golden = goldens();
    ASSERT_EQ(golden.size(), static_cast<size_t>(kNumScenarios));
    for (int s = 0; s < kNumScenarios; ++s) {
        SCOPED_TRACE(golden[s].name);
        const auto results = runScenario(s);
        ASSERT_EQ(results.size(), golden[s].expected.size());
        for (size_t p = 0; p < results.size(); ++p) {
            const auto flat = flatten(results[p]);
            ASSERT_EQ(golden[s].expected[p].size(),
                      static_cast<size_t>(kNumFields));
            for (int f = 0; f < kNumFields; ++f) {
                EXPECT_EQ(flat[f], golden[s].expected[p][f])
                    << "placement " << p << " field " << kFieldNames[f];
            }
        }
    }
}

// ===================================================================
// Event-driven vs. reference per-tick execution: randomized shapes.
// ===================================================================

/**
 * The event-driven machine loop (per-core wake times, bulk idle
 * accounting) claims byte-identity with ticking every live core every
 * cycle. The golden pins above check fixed shapes; this suite draws
 * random machine shapes, workload mixes and (short) interval lengths,
 * runs each placement set through both execution modes, and requires
 * every counter of every placement to match exactly.
 */
TEST(EventDrivenEquivalence, RandomShapesMatchPerTickReference)
{
    const auto &pool = workload::spec2006::all();
    workload::Rng rng(0xE4E2'72024ull);

    constexpr int kTrials = 24;
    for (int t = 0; t < kTrials; ++t) {
        SCOPED_TRACE("trial " + std::to_string(t));

        MachineConfig config = (rng.nextU64() & 1) != 0
                                   ? MachineConfig::ivyBridge()
                                   : MachineConfig::sandyBridgeEN();
        if ((rng.nextU64() & 3) == 0)
            config.contextsPerCore = 4;
        if ((rng.nextU64() & 3) == 0)
            config.inclusiveL3 = true;
        if ((rng.nextU64() & 3) == 0)
            config.l2NextLinePrefetch = true;
        if ((rng.nextU64() & 3) == 0)
            config.core.fetchPolicy = FetchPolicy::kIcount;

        // 1-4 streams over distinct (core, context) slots.
        const int n_streams = 1 + static_cast<int>(rng.nextU64() % 4);
        std::vector<std::pair<int, int>> slots;
        for (int c = 0; c < config.numCores; ++c)
            for (int k = 0; k < config.contextsPerCore; ++k)
                slots.emplace_back(c, k);
        for (size_t i = slots.size(); i > 1; --i)
            std::swap(slots[i - 1], slots[rng.nextU64() % i]);

        std::vector<const workload::WorkloadProfile *> profiles;
        for (int i = 0; i < n_streams; ++i)
            profiles.push_back(&pool[rng.nextU64() % pool.size()]);

        const Cycle warmup = rng.nextU64() % 2'000;
        const Cycle measure = 500 + rng.nextU64() % 4'000;

        // Fresh sources per mode: bind() resets them, but separate
        // objects make the two runs trivially independent.
        const auto run_mode = [&](bool reference) {
            Machine machine(config);
            machine.setReferenceTicking(reference);
            std::vector<workload::ProfileUopSource> sources;
            sources.reserve(profiles.size());
            for (const auto *p : profiles)
                sources.emplace_back(*p);
            std::vector<Placement> placements;
            for (int i = 0; i < n_streams; ++i) {
                placements.push_back(Placement{
                    slots[i].first, slots[i].second, &sources[i]});
            }
            return machine.run(placements, warmup, measure);
        };

        const auto event_driven = run_mode(false);
        const auto reference = run_mode(true);
        ASSERT_EQ(event_driven.size(), reference.size());
        for (size_t p = 0; p < event_driven.size(); ++p) {
            const auto got = flatten(event_driven[p]);
            const auto want = flatten(reference[p]);
            for (int f = 0; f < kNumFields; ++f) {
                EXPECT_EQ(got[f], want[f])
                    << "placement " << p << " field " << kFieldNames[f];
            }
        }
    }
}

/** Two consecutive runs of the same scenario must be bit-identical. */
TEST(GoldenMachine, RepeatRunsAreIdentical)
{
    const auto first = runScenario(1);
    const auto second = runScenario(1);
    ASSERT_EQ(first.size(), second.size());
    for (size_t p = 0; p < first.size(); ++p)
        EXPECT_EQ(flatten(first[p]), flatten(second[p]));
}

} // namespace
} // namespace smite::sim
