/**
 * @file
 * Unit tests for the uop/port model (the Figure 1 binding table).
 */

#include <gtest/gtest.h>

#include "sim/uop.h"

namespace smite::sim {
namespace {

TEST(Uop, PortSpecificBindings)
{
    // The paper's port-specific operations (Figure 1).
    EXPECT_EQ(portMask(UopType::kFpMul), 0b000001u);   // port 0 only
    EXPECT_EQ(portMask(UopType::kFpAdd), 0b000010u);   // port 1 only
    EXPECT_EQ(portMask(UopType::kFpShf), 0b100000u);   // port 5 only
    EXPECT_EQ(portMask(UopType::kIntAdd), 0b100011u);  // ports 0,1,5
    EXPECT_EQ(portMask(UopType::kBranch), 0b100000u);  // port 5
    EXPECT_EQ(portMask(UopType::kLoad), 0b001100u);    // ports 2,3
    EXPECT_EQ(portMask(UopType::kStore), 0b010000u);   // port 4
    EXPECT_EQ(portMask(UopType::kNop), 0u);
}

TEST(Uop, PortMasksWithinRange)
{
    for (int t = 0; t < kNumUopTypes; ++t) {
        const auto mask = portMask(static_cast<UopType>(t));
        EXPECT_EQ(mask >> kNumPorts, 0u) << "type " << t;
    }
}

TEST(Uop, ExecLatencies)
{
    EXPECT_EQ(execLatency(UopType::kFpMul), 5u);
    EXPECT_EQ(execLatency(UopType::kFpAdd), 3u);
    EXPECT_EQ(execLatency(UopType::kIntAdd), 1u);
    EXPECT_EQ(execLatency(UopType::kLoad), 0u);  // memory adds it
}

TEST(Uop, Names)
{
    EXPECT_EQ(uopTypeName(UopType::kFpMul), "FP_MUL");
    EXPECT_EQ(uopTypeName(UopType::kBranch), "BRANCH");
    EXPECT_EQ(uopTypeName(UopType::kNop), "NOP");
}

TEST(Uop, AddressHelpers)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 1u);
    EXPECT_EQ(pageAddr(4095), 0u);
    EXPECT_EQ(pageAddr(4096), 1u);
}

} // namespace
} // namespace smite::sim
