/**
 * @file
 * Unit tests for the Ruler stressors, including the purity property
 * the paper validates with hardware counters: each functional-unit
 * Ruler must put ~100% pressure on its target port and none on the
 * others (Section III-B1).
 */

#include <memory>

#include <gtest/gtest.h>

#include "rulers/ruler.h"
#include "sim/machine.h"

namespace smite::rulers {
namespace {

sim::Machine
testMachine()
{
    return sim::Machine(sim::MachineConfig::ivyBridge());
}

TEST(Ruler, FactoriesValidate)
{
    EXPECT_THROW(Ruler::functionalUnit(Dimension::kL1),
                 std::invalid_argument);
    EXPECT_THROW(Ruler::functionalUnit(Dimension::kFpMul, 1.5),
                 std::invalid_argument);
    EXPECT_THROW(Ruler::memory(Dimension::kFpAdd, 1 << 20),
                 std::invalid_argument);
    EXPECT_THROW(Ruler::memory(Dimension::kL1, 16),
                 std::invalid_argument);
}

TEST(Ruler, DefaultSuiteCoversAllDimensions)
{
    const auto suite = defaultSuite(sim::MachineConfig::ivyBridge());
    ASSERT_EQ(suite.size(), static_cast<size_t>(kNumDimensions));
    for (int d = 0; d < kNumDimensions; ++d)
        EXPECT_EQ(suite[d].dimension(), kAllDimensions[d]);
}

TEST(Ruler, SourcesAreDeterministic)
{
    const auto suite = defaultSuite(sim::MachineConfig::ivyBridge());
    for (const Ruler &ruler : suite) {
        auto a = ruler.makeSource();
        auto b = ruler.makeSource();
        for (int i = 0; i < 1000; ++i) {
            const sim::Uop ua = a->next();
            const sim::Uop ub = b->next();
            ASSERT_EQ(ua.type, ub.type) << ruler.name();
            ASSERT_EQ(ua.addr, ub.addr) << ruler.name();
        }
    }
}

TEST(Ruler, DimensionMetadata)
{
    EXPECT_TRUE(isFunctionalUnit(Dimension::kFpMul));
    EXPECT_TRUE(isFunctionalUnit(Dimension::kIntAdd));
    EXPECT_FALSE(isFunctionalUnit(Dimension::kL3));
    EXPECT_EQ(dimensionIndex(Dimension::kFpMul), 0);
    EXPECT_EQ(dimensionIndex(Dimension::kL3), 6);
    EXPECT_EQ(dimensionName(Dimension::kFpAdd), "FP_ADD(P1)");
}

/**
 * Purity: each FU Ruler saturates exactly its target port
 * (the paper reports > 99.99% utilization of the targeted port,
 * validated with UOPS_DISPATCHED_PORT counters).
 */
struct PurityCase {
    Dimension dim;
    int targetPort;
};

class FuRulerPurity : public ::testing::TestWithParam<PurityCase>
{
};

TEST_P(FuRulerPurity, SaturatesOnlyTargetPort)
{
    const auto [dim, target] = GetParam();
    const sim::Machine machine = testMachine();
    const Ruler ruler = Ruler::functionalUnit(dim);
    auto source = ruler.makeSource();
    const auto counters = machine.runSolo(*source, 5000, 20000);

    EXPECT_GT(counters.portUtilization(target), 0.999);
    for (int p = 0; p < sim::kNumPorts; ++p) {
        if (p == target)
            continue;
        // INT_ADD legitimately covers ports 0, 1 and 5.
        if (dim == Dimension::kIntAdd && (p == 0 || p == 1 || p == 5))
            continue;
        EXPECT_LT(counters.portUtilization(p), 1e-6)
            << "port " << p << " for " << ruler.name();
    }
    // No memory traffic at all from FU rulers.
    EXPECT_EQ(counters.loads, 0u);
    EXPECT_EQ(counters.stores, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ports, FuRulerPurity,
    ::testing::Values(PurityCase{Dimension::kFpMul, 0},
                      PurityCase{Dimension::kFpAdd, 1},
                      PurityCase{Dimension::kFpShf, 5},
                      PurityCase{Dimension::kIntAdd, 0}));

TEST(FuRuler, DutyCycleScalesPressureInLinearRange)
{
    // Below duty = 1/issue-width the target port is not saturated
    // and utilization tracks the duty cycle linearly; beyond it the
    // port pins at 100% (maximum pressure).
    const sim::Machine machine = testMachine();
    const Ruler low = Ruler::functionalUnit(Dimension::kFpAdd, 0.05);
    const Ruler mid = Ruler::functionalUnit(Dimension::kFpAdd, 0.10);
    const Ruler full = Ruler::functionalUnit(Dimension::kFpAdd, 1.0);
    auto low_src = low.makeSource();
    auto mid_src = mid.makeSource();
    auto full_src = full.makeSource();
    const auto cl = machine.runSolo(*low_src, 5000, 20000);
    const auto cm = machine.runSolo(*mid_src, 5000, 20000);
    const auto cf = machine.runSolo(*full_src, 5000, 20000);
    EXPECT_NEAR(cm.portUtilization(1) / cl.portUtilization(1), 2.0,
                0.05);
    EXPECT_NEAR(cf.portUtilization(1), 1.0, 0.01);
}

TEST(MemRuler, L1RulerStaysInL1)
{
    const sim::Machine machine = testMachine();
    const auto config = machine.config();
    const Ruler ruler = Ruler::memory(Dimension::kL1,
                                      config.l1d.sizeBytes);
    auto source = ruler.makeSource();
    const auto counters = machine.runSolo(*source, 20000, 50000);
    ASSERT_GT(counters.loads, 0u);
    const double l1_miss_rate =
        static_cast<double>(counters.l1dMisses) /
        (counters.loads + counters.stores);
    EXPECT_LT(l1_miss_rate, 0.05);
}

TEST(MemRuler, L2RulerMissesL1HitsL2)
{
    const sim::Machine machine = testMachine();
    const auto config = machine.config();
    const Ruler ruler = Ruler::memory(Dimension::kL2,
                                      config.l2.sizeBytes);
    auto source = ruler.makeSource();
    const auto counters = machine.runSolo(*source, 20000, 50000);
    const double l1_miss_rate =
        static_cast<double>(counters.l1dMisses) /
        (counters.loads + counters.stores);
    const double l2_miss_rate =
        counters.l1dMisses == 0
            ? 0.0
            : static_cast<double>(counters.l2Misses) /
                  counters.l1dMisses;
    // Loads miss heavily (the paired store-back to the same element
    // then hits, so the per-access rate is roughly halved).
    EXPECT_GT(l1_miss_rate, 0.35);
    EXPECT_LT(l2_miss_rate, 0.15);  // contained by the L2
}

TEST(MemRuler, L3RulerReachesDram)
{
    const sim::Machine machine = testMachine();
    const auto suite = defaultSuite(machine.config());
    // The walk needs to march beyond the functionally warmed region
    // before it misses, so give it a realistic interval.
    auto source = suite[dimensionIndex(Dimension::kL3)].makeSource();
    const auto counters = machine.runSolo(*source, 50000, 250000);
    EXPECT_GT(counters.l3Misses, 100u);
}

TEST(MemRuler, WorkingSetIsTheIntensityKnob)
{
    // Monotonicity that underlies the paper's linearity claim: a
    // bigger working set must degrade a cache-resident victim more.
    const sim::Machine machine = testMachine();
    const Ruler small = Ruler::memory(Dimension::kL1, 8 * 1024);
    const Ruler large = Ruler::memory(Dimension::kL1, 32 * 1024);
    auto s1 = small.makeSource();
    auto s2 = large.makeSource();
    const auto c1 = machine.runSolo(*s1, 10000, 30000);
    const auto c2 = machine.runSolo(*s2, 10000, 30000);
    // Both run, both touch their full footprint.
    EXPECT_GT(c1.uops, 0u);
    EXPECT_GT(c2.uops, 0u);
    EXPECT_EQ(small.workingSet(), 8u * 1024);
    EXPECT_EQ(large.workingSet(), 32u * 1024);
}

} // namespace
} // namespace smite::rulers
