/**
 * @file
 * Tests for deterministic fault injection and the resilient
 * measurement pipeline built on top of it: SMITE_FAULTS grammar,
 * keyed/sequence decision determinism, Lab retry and multi-trial
 * policies, graceful degradation of the training harness, scheduler
 * behaviour under server failures, and — critically — that a
 * fault-free run after a chaos run reproduces the baseline exactly.
 */

#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "queueing/des.h"
#include "scheduler/cluster.h"
#include "scheduler/online.h"
#include "workload/spec2006.h"

namespace smite {
namespace {

using core::Characterization;
using core::CoLocationMode;
using core::Lab;
using core::SmiteModel;
using fault::FaultPlan;
using fault::MeasurementError;
using fault::SiteSpec;

/**
 * Every fault test starts and ends with a clean slate: no armed
 * sites, empty incident log, zeroed metrics. Without this, one test's
 * chaos leaks into the next's determinism assertions.
 */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetGlobals(); }
    void TearDown() override { resetGlobals(); }

    static void resetGlobals()
    {
        FaultPlan::global().reset();
        obs::IncidentLog::global().clearForTesting();
        obs::Registry::global().resetForTesting();
    }

    static std::vector<workload::WorkloadProfile> trainingSet()
    {
        return {workload::spec2006::byName("401.bzip2"),
                workload::spec2006::byName("429.mcf"),
                workload::spec2006::byName("453.povray"),
                workload::spec2006::byName("433.milc"),
                workload::spec2006::byName("470.lbm"),
                workload::spec2006::byName("456.hmmer")};
    }

    static std::unique_ptr<Lab> makeLab()
    {
        auto lab = std::make_unique<Lab>(sim::MachineConfig::ivyBridge(),
                                         2'000, 8'000);
        // Serial so that sequence-based (nth) decisions are
        // reproducible across runs.
        lab->setParallelism(1);
        return lab;
    }

    static std::uint64_t counter(const std::string &name)
    {
        return obs::Registry::global().counter(name).value();
    }
};

TEST_F(FaultTest, SpecStringArmsSites)
{
    FaultPlan &plan = FaultPlan::global();
    EXPECT_FALSE(plan.enabled());
    const int armed = plan.configure(
        "machine.jitter:p=0.5,sigma=0.1,seed=7;"
        "lab.measure:nth=3;pool.delay:p=0.01,us=250");
    EXPECT_EQ(armed, 3);
    EXPECT_TRUE(plan.enabled());
    EXPECT_TRUE(plan.armed("machine.jitter"));
    EXPECT_TRUE(plan.armed("lab.measure"));
    EXPECT_TRUE(plan.armed("pool.delay"));
    EXPECT_FALSE(plan.armed("disk.corrupt"));

    const SiteSpec jitter = plan.spec("machine.jitter");
    EXPECT_DOUBLE_EQ(jitter.probability, 0.5);
    EXPECT_DOUBLE_EQ(jitter.sigma, 0.1);
    EXPECT_EQ(jitter.seed, 7u);
    EXPECT_EQ(plan.spec("lab.measure").nth, 3u);
    EXPECT_DOUBLE_EQ(plan.spec("pool.delay").micros, 250.0);

    plan.reset();
    EXPECT_FALSE(plan.enabled());
    EXPECT_FALSE(plan.armed("machine.jitter"));
}

TEST_F(FaultTest, MalformedClausesAreSkippedNotFatal)
{
    FaultPlan &plan = FaultPlan::global();
    // Bad probability, unknown key, and an empty clause: each is
    // skipped with a warning; the valid clause still arms.
    const int armed = plan.configure(
        "lab.measure:p=banana;;bogus:q=1;server.fail:p=0.25");
    EXPECT_EQ(armed, 1);
    EXPECT_TRUE(plan.armed("server.fail"));
    EXPECT_FALSE(plan.armed("lab.measure"));
}

TEST_F(FaultTest, KeyedDecisionsAreDeterministicAndRateAccurate)
{
    FaultPlan &plan = FaultPlan::global();
    plan.arm("lab.measure", SiteSpec{.probability = 0.3, .seed = 99});

    int fired = 0;
    std::vector<bool> first;
    for (int i = 0; i < 2000; ++i) {
        const bool f =
            plan.shouldInject("lab.measure", "key" + std::to_string(i));
        first.push_back(f);
        fired += f ? 1 : 0;
    }
    // Same keys, any order → same outcomes.
    for (int i = 1999; i >= 0; --i) {
        EXPECT_EQ(plan.shouldInject("lab.measure",
                                    "key" + std::to_string(i)),
                  first[static_cast<std::size_t>(i)]);
    }
    // Law of large numbers: the empirical rate is near p.
    EXPECT_NEAR(fired / 2000.0, 0.3, 0.05);
    EXPECT_EQ(counter("fault.lab.measure.checks"), 4000u);
    EXPECT_EQ(counter("fault.lab.measure.injected"),
              static_cast<std::uint64_t>(2 * fired));
}

TEST_F(FaultTest, NthRuleFiresOnEveryNthCheck)
{
    FaultPlan &plan = FaultPlan::global();
    plan.arm("pool.delay", SiteSpec{.nth = 4});
    int fired = 0;
    for (int i = 1; i <= 12; ++i) {
        const bool f = plan.shouldInject("pool.delay");
        EXPECT_EQ(f, i % 4 == 0) << "check " << i;
        fired += f ? 1 : 0;
    }
    EXPECT_EQ(fired, 3);
}

TEST_F(FaultTest, GaussianDrawsMatchSigma)
{
    FaultPlan &plan = FaultPlan::global();
    plan.arm("machine.jitter",
             SiteSpec{.probability = 1.0, .seed = 13, .sigma = 0.05});
    double sum = 0.0, sq = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double eps =
            plan.gaussian("machine.jitter", "k" + std::to_string(i));
        sum += eps;
        sq += eps * eps;
    }
    const double mean = sum / n;
    const double stddev = std::sqrt(sq / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.005);
    EXPECT_NEAR(stddev, 0.05, 0.01);
    // Keyed draws replay exactly.
    EXPECT_EQ(plan.gaussian("machine.jitter", "k0"),
              plan.gaussian("machine.jitter", "k0"));
}

TEST_F(FaultTest, LabRetriesTransientFaultsToTheBaselineValue)
{
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("429.mcf");
    double base_a = 0.0, base_b = 0.0;
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        base_a = lab.soloIpc(a);
        base_b = lab.soloIpc(b);
    }
    resetGlobals();

    // nth=2 fires every second check: solo(a) passes on check 1,
    // solo(b) fails on check 2, its retry passes on check 3. The
    // retried value is byte-identical to the fault-free baseline.
    FaultPlan::global().arm("lab.measure", SiteSpec{.nth = 2});
    const auto lab_holder = makeLab();
    Lab &lab = *lab_holder;
    EXPECT_EQ(lab.soloIpc(a), base_a);
    EXPECT_EQ(lab.soloIpc(b), base_b);
    EXPECT_EQ(counter("fault.lab.measure.injected"), 1u);
    EXPECT_EQ(counter("lab.retries"), 1u);
    EXPECT_EQ(counter("lab.failures"), 0u);
}

TEST_F(FaultTest, LabGivesUpAfterRetryBudgetAndRecordsIncident)
{
    // Probability 1: every attempt of every measurement fails.
    FaultPlan::global().arm("lab.measure",
                            SiteSpec{.probability = 1.0});
    const auto lab_holder = makeLab();
    Lab &lab = *lab_holder;
    const auto &a = workload::spec2006::byName("429.mcf");
    EXPECT_THROW(lab.soloIpc(a), MeasurementError);
    EXPECT_GE(counter("lab.retries"), 2u);  // attempts 1 and 2 retried
    EXPECT_EQ(counter("lab.failures"), 1u);
    EXPECT_GE(obs::IncidentLog::global().count(), 1u);
}

TEST_F(FaultTest, MedianOfTrialsSuppressesJitter)
{
    const auto &a = workload::spec2006::byName("470.lbm");
    double baseline = 0.0;
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        baseline = lab.soloIpc(a);
    }
    resetGlobals();

    FaultPlan::global().arm(
        "machine.jitter",
        SiteSpec{.probability = 1.0, .seed = 3, .sigma = 0.2});
    const auto lab_holder = makeLab();
    Lab &lab = *lab_holder;
    lab.setTrials(5);
    const double noisy = lab.soloIpc(a);
    EXPECT_TRUE(std::isfinite(noisy));
    // The robust median of five jittered trials lands near the truth
    // even with sigma = 0.2.
    EXPECT_NEAR(noisy, baseline, 0.3 * baseline);
    EXPECT_GE(counter("lab.trials"), 5u);

    // Disarm → trials collapse back to the exact baseline.
    resetGlobals();
    const auto clean_holder = makeLab();
    Lab &clean = *clean_holder;
    clean.setTrials(5);
    EXPECT_EQ(clean.soloIpc(a), baseline);
}

TEST_F(FaultTest, TrainSmiteSurvivesChaosAndReproducesCleanBaseline)
{
    const auto train = trainingSet();
    const auto mode = CoLocationMode::kSmt;
    const auto &victim = workload::spec2006::byName("401.bzip2");
    const auto &aggressor = workload::spec2006::byName("429.mcf");

    // Fault-free baseline.
    std::vector<double> base_coeffs;
    double base_pred = 0.0;
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        const SmiteModel model = lab.trainSmite(train, mode);
        base_coeffs = model.coefficients();
        base_pred = model.predict(lab.characterization(victim, mode),
                                  lab.characterization(aggressor, mode));
    }
    resetGlobals();

    // Chaos: with retries disabled every measurement fails with
    // probability p. One lost characterization already voids ten of
    // the thirty ordered samples, so p is kept low enough that the
    // fit still has more samples than sharing dimensions — but high
    // enough (given this seed) that some samples do drop.
    FaultPlan::global().arm("lab.measure",
                            SiteSpec{.probability = 0.07, .seed = 13});
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        lab.setMaxAttempts(1);  // no retries: faults become drops
        const SmiteModel model = lab.trainSmite(train, mode);
        // Training degraded but completed: finite coefficients.
        for (const double c : model.coefficients())
            EXPECT_TRUE(std::isfinite(c));
        EXPECT_GT(counter("lab.dropped_samples"), 0u);
        EXPECT_GT(obs::IncidentLog::global().count(), 0u);
    }

    // Determinism: disarm everything, rerun → byte-identical model.
    resetGlobals();
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        const SmiteModel model = lab.trainSmite(train, mode);
        EXPECT_EQ(model.coefficients(), base_coeffs);
        EXPECT_EQ(model.predict(lab.characterization(victim, mode),
                                lab.characterization(aggressor, mode)),
                  base_pred);
        EXPECT_EQ(counter("lab.dropped_samples"), 0u);
        EXPECT_EQ(obs::IncidentLog::global().count(), 0u);
    }
}

TEST_F(FaultTest, CharacterizeAllMarksFailedEntriesInvalid)
{
    FaultPlan::global().arm("lab.measure",
                            SiteSpec{.probability = 0.6, .seed = 5});
    const auto lab_holder = makeLab();
    Lab &lab = *lab_holder;
    lab.setMaxAttempts(1);
    const auto profiles = trainingSet();
    const std::vector<Characterization> chars =
        lab.characterizeAll(profiles, CoLocationMode::kSmt);
    ASSERT_EQ(chars.size(), profiles.size());
    int invalid = 0;
    for (const Characterization &c : chars)
        invalid += c.valid ? 0 : 1;
    // With p=0.6 and no retries at least one profile must have lost
    // a measurement; and the batch call itself never threw.
    EXPECT_GT(invalid, 0);
    EXPECT_LT(invalid, static_cast<int>(profiles.size()) + 1);
}

TEST_F(FaultTest, MachineJitterPerturbsResultsOnlyWhileArmed)
{
    const auto &a = workload::spec2006::byName("433.milc");
    double baseline = 0.0;
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        baseline = lab.soloIpc(a);
    }
    resetGlobals();

    FaultPlan::global().arm(
        "machine.jitter",
        SiteSpec{.probability = 1.0, .seed = 11, .sigma = 0.1});
    {
        const auto lab_holder = makeLab();
        Lab &lab = *lab_holder;
        const double jittered = lab.soloIpc(a);
        EXPECT_NE(jittered, baseline);
        EXPECT_TRUE(std::isfinite(jittered));
        EXPECT_GT(counter("fault.machine.jitter.injected"), 0u);
    }

    resetGlobals();
    const auto clean_holder = makeLab();
    Lab &clean = *clean_holder;
    EXPECT_EQ(clean.soloIpc(a), baseline);
}

TEST_F(FaultTest, DesServiceChaosIsDeterministicAndOnlyWhileArmed)
{
    const auto run = [] {
        return queueing::simulateMm1(0.6, 1.0, 4'000, /*seed=*/17,
                                     /*warmupRequests=*/500)
            .meanResponse();
    };
    const double baseline = run();

    const SiteSpec spec{.probability = 0.3, .seed = 13, .sigma = 0.5};
    FaultPlan::global().arm("des.service", spec);
    const double chaotic = run();
    EXPECT_GT(counter("fault.des.service.injected"), 0u);
    // Stretches only ever lengthen service, so chaos shows up as
    // strictly worse mean response.
    EXPECT_GT(chaotic, baseline);

    // Chaos is reproducible: re-arming the same spec resets the
    // site's decision sequence, and the whole perturbed simulation
    // replays bit for bit.
    resetGlobals();
    FaultPlan::global().arm("des.service", spec);
    EXPECT_EQ(run(), chaotic);

    // Disarmed plan leaves the model untouched.
    resetGlobals();
    EXPECT_EQ(run(), baseline);
}

/** A pairing whose QoS falls linearly with instance count. */
scheduler::Pairing
linearPairing(double actual, double predicted)
{
    scheduler::Pairing p;
    p.latencyApp = "svc";
    p.batchApp = "batch";
    for (int k = 1; k <= 6; ++k) {
        scheduler::CoLocationOption option;
        option.actualQos = 1.0 - actual * k;
        option.predictedQos = 1.0 - predicted * k;
        p.byInstances.push_back(option);
    }
    return p;
}

TEST_F(FaultTest, FailurePolicyWithoutFaultsMatchesPredictedPolicy)
{
    const scheduler::Cluster cluster({linearPairing(0.02, 0.02)},
                                     {"svc"}, 60);
    const auto plain = cluster.runPredictedPolicy(0.90);
    const auto epochs = cluster.runPredictedPolicyWithFailures(0.90, 5);
    EXPECT_EQ(epochs.totalInstances, plain.totalInstances);
    EXPECT_EQ(epochs.coLocatedServers, plain.coLocatedServers);
    EXPECT_EQ(epochs.violatedServers, plain.violatedServers);
    EXPECT_EQ(epochs.downServers, 0);
    EXPECT_EQ(epochs.utilization(), plain.utilization());
    EXPECT_EQ(counter("scheduler.server_failures"), 0u);
    EXPECT_EQ(counter("scheduler.evictions"), 0u);
}

TEST_F(FaultTest, ServerFailuresEvictAndReplaceInstances)
{
    FaultPlan::global().arm("server.fail",
                            SiteSpec{.probability = 0.2, .seed = 17});
    // Predicted policy admits 5 per server at target 0.90 with 2%
    // slope. Survivors have a spare context (maxInstances = 6), but
    // the model predicts QoS 0.88 < 0.90 at six instances, so the
    // policy-aware re-placement refuses it: every eviction in this
    // homogeneous cluster is lost capacity, not a predicted
    // violation.
    const scheduler::Cluster cluster({linearPairing(0.02, 0.02)},
                                     {"svc"}, 60);
    const auto result = cluster.runPredictedPolicyWithFailures(0.90, 4);
    EXPECT_GT(counter("scheduler.server_failures"), 0u);
    EXPECT_GT(counter("scheduler.evictions"), 0u);
    EXPECT_GT(counter("scheduler.recoveries"), 0u);
    // Instance conservation: every evicted instance is either
    // re-placed or counted lost, never silently dropped.
    EXPECT_EQ(counter("scheduler.replacements") +
                  counter("scheduler.lost_instances"),
              counter("scheduler.evictions"));
    // Policy-aware placement: failure churn must not crowd servers
    // past the model's admissible count, so no server exceeds five
    // instances and none violates the (accurately predicted) target.
    EXPECT_EQ(result.violatedServers, 0);
    EXPECT_LE(result.totalInstances, 5.0 * cluster.servers());
    EXPECT_GE(result.totalInstances, 0.0);
    EXPECT_THROW(cluster.runPredictedPolicyWithFailures(0.90, 0),
                 std::invalid_argument);
}

TEST_F(FaultTest, EpochLoopConservesInstancesUnderPinnedSeed)
{
    // The static policy packs every server to its model-admissible
    // maximum, so policy-aware re-placement finds no admissible
    // headroom after a failure: every eviction must be counted lost
    // (the pre-fix code instead crowded survivors to the capacity
    // bound, which the model predicts violating).
    FaultPlan::global().arm("server.fail",
                            SiteSpec{.probability = 0.25, .seed = 29});
    const scheduler::Cluster cluster({linearPairing(0.02, 0.02)},
                                     {"svc"}, 40);
    const auto result = cluster.runPredictedPolicyWithFailures(0.90, 6);
    EXPECT_GT(counter("scheduler.evictions"), 0u);
    EXPECT_EQ(counter("scheduler.replacements"), 0u);
    EXPECT_EQ(counter("scheduler.lost_instances"),
              counter("scheduler.evictions"));
    EXPECT_EQ(result.violatedServers, 0);
}

TEST_F(FaultTest, RecoveryRefillsDownedServersNextEpoch)
{
    // Every server fails in every epoch (p=1): epoch N's downed
    // servers all recover at epoch N+1's start, so recoveries track
    // failures one epoch behind.
    FaultPlan::global().arm("server.fail",
                            SiteSpec{.probability = 1.0, .seed = 7});
    const scheduler::Cluster cluster({linearPairing(0.02, 0.02)},
                                     {"svc"}, 20);
    const auto result = cluster.runPredictedPolicyWithFailures(0.90, 3);
    EXPECT_EQ(counter("scheduler.server_failures"), 60u);
    EXPECT_EQ(counter("scheduler.recoveries"), 40u);
    // Final epoch: everything is down, nothing is placed.
    EXPECT_EQ(result.downServers, cluster.servers());
    EXPECT_EQ(result.totalInstances, 0.0);
    EXPECT_NEAR(result.utilization(), 0.0, 1e-12);
}

TEST_F(FaultTest, RandomPolicyRecordsIncidentOnUnreachableTarget)
{
    const scheduler::Cluster cluster({linearPairing(0.02, 0.02)},
                                     {"svc"}, 10);
    // 100 instances cannot fit on 10 servers x 6 contexts: the nudge
    // loop exhausts its guard and must say so instead of silently
    // returning a mismatched total.
    const auto result = cluster.runRandomPolicy(0.90, 100.0);
    EXPECT_LT(result.totalInstances, 100.0);
    EXPECT_GE(obs::IncidentLog::global().count(), 1u);
}

TEST_F(FaultTest, OnlineSchedulerIsDeterministicUnderPinnedSeeds)
{
    FaultPlan::global().arm("server.fail",
                            SiteSpec{.probability = 0.15, .seed = 17});
    FaultPlan::global().arm(
        "scheduler.observe",
        SiteSpec{.probability = 1.0, .seed = 23, .sigma = 0.05});
    const scheduler::Cluster cluster({linearPairing(0.03, 0.02)},
                                     {"svc"}, 50);
    const scheduler::OnlineScheduler online(
        cluster, scheduler::OnlineConfig{.epochs = 8});
    const auto a = online.run(0.90);
    const auto b = online.run(0.90);
    EXPECT_EQ(a.final.totalInstances, b.final.totalInstances);
    EXPECT_EQ(a.final.violatedServers, b.final.violatedServers);
    EXPECT_EQ(a.final.downServers, b.final.downServers);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].failures, b.timeline[i].failures);
        EXPECT_EQ(a.timeline[i].qosEvictions,
                  b.timeline[i].qosEvictions);
        EXPECT_EQ(a.timeline[i].probes, b.timeline[i].probes);
        EXPECT_EQ(a.timeline[i].totalInstances,
                  b.timeline[i].totalInstances);
        EXPECT_EQ(a.timeline[i].utilization,
                  b.timeline[i].utilization);
    }
    EXPECT_GT(counter("fault.scheduler.observe.injected"), 0u);
}

TEST_F(FaultTest, OnlineSchedulerIntegratesFailureFlow)
{
    FaultPlan::global().arm("server.fail",
                            SiteSpec{.probability = 0.2, .seed = 11});
    // Pessimistic model: probed-up servers hold observed headroom the
    // model denies, so churn re-placement has somewhere to go and
    // both sides of the conservation invariant are exercised.
    const scheduler::Cluster cluster({linearPairing(0.01, 0.05)},
                                     {"svc"}, 40);
    const scheduler::OnlineScheduler online(
        cluster, scheduler::OnlineConfig{.epochs = 6});
    const auto result = online.run(0.90);
    EXPECT_GT(counter("scheduler.server_failures"), 0u);
    EXPECT_GT(counter("scheduler.recoveries"), 0u);
    EXPECT_GT(counter("scheduler.online.epochs"), 0u);
    EXPECT_GT(counter("scheduler.online.observations"), 0u);
    // Conservation, from the timeline: every failure-evicted
    // instance is re-placed or lost.
    int evicted = 0, replaced = 0, lost_n = 0;
    for (const auto &e : result.timeline) {
        evicted += e.failureEvictions;
        replaced += e.replacements;
        lost_n += e.lostInstances;
    }
    EXPECT_GT(evicted, 0);
    EXPECT_GT(replaced, 0);
    EXPECT_EQ(evicted, replaced + lost_n);
    EXPECT_EQ(counter("scheduler.evictions"),
              static_cast<std::uint64_t>(evicted));
}

} // namespace
} // namespace smite
