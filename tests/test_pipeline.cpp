/**
 * @file
 * Focused pipeline tests: fetch-budget sharing, scheduler depth,
 * MSHR flow control, window capacity and in-order retirement — the
 * mechanisms behind SMT interference.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"

namespace smite::sim {
namespace {

/** Emits a fixed repeating pattern of uop types. */
class PatternSource : public UopSource
{
  public:
    explicit PatternSource(std::vector<Uop> pattern)
        : pattern_(std::move(pattern))
    {}

    Uop
    next() override
    {
        Uop uop = pattern_[cursor_ % pattern_.size()];
        uop.pc = (cursor_ * 4) % 256;
        ++cursor_;
        return uop;
    }

    void reset() override { cursor_ = 0; }

  private:
    std::vector<Uop> pattern_;
    std::size_t cursor_ = 0;
};

Uop
makeUop(UopType type, std::uint8_t dep = 0, Addr addr = 0)
{
    Uop uop;
    uop.type = type;
    uop.srcDist1 = dep;
    uop.addr = addr;
    return uop;
}

TEST(Pipeline, NopsRunAtIssueWidth)
{
    // NOPs need no port: throughput = per-context issue width.
    PatternSource nops({makeUop(UopType::kNop)});
    MachineConfig config;
    const auto c = Machine(config).runSolo(nops, 1000, 10000);
    EXPECT_NEAR(c.ipc(), config.core.issuePerContext, 0.05);
}

TEST(Pipeline, SmtPairOfNopsSharesCoreBudget)
{
    // Two NOP streams want 4+4 = 8/cycle; the core allows
    // min(fetchWidth, issuePerCore) total.
    PatternSource a({makeUop(UopType::kNop)});
    PatternSource b({makeUop(UopType::kNop)});
    MachineConfig config;
    const auto counters = Machine(config).runPairSmt(a, b, 1000, 10000);
    const double combined = counters[0].ipc() + counters[1].ipc();
    const double cap = std::min(config.core.fetchWidth,
                                config.core.issuePerCore);
    EXPECT_NEAR(combined, cap, 0.1);
    // And the split is fair.
    EXPECT_NEAR(counters[0].ipc(), counters[1].ipc(), 0.1);
}

TEST(Pipeline, MshrLimitBoundsMemoryLevelParallelism)
{
    // Independent cold loads: throughput = mshrs / dram latency.
    std::vector<Uop> pattern;
    for (int i = 0; i < 8; ++i)
        pattern.push_back(makeUop(UopType::kLoad));
    PatternSource loads(pattern);

    MachineConfig few;
    few.core.mshrs = 2;
    MachineConfig many;
    many.core.mshrs = 16;

    // Cold loads forever: stride one line so every access misses.
    class ColdLoads : public UopSource
    {
      public:
        Uop
        next() override
        {
            Uop uop = makeUop(UopType::kLoad, 0, cursor_ * kLineBytes);
            uop.pc = 0;
            cursor_ += 1;
            return uop;
        }
        void reset() override { cursor_ = 1u << 20; }

      private:
        Addr cursor_ = 1u << 20;
    };

    ColdLoads a, b;
    const double few_ipc = Machine(few).runSolo(a, 2000, 30000).ipc();
    const double many_ipc = Machine(many).runSolo(b, 2000, 30000).ipc();
    EXPECT_GT(many_ipc, 3.0 * few_ipc);
}

TEST(Pipeline, SchedulerDepthLimitsReordering)
{
    // A long-latency head op followed by many independent ops: a
    // deep scheduler keeps issuing; a depth-1 scheduler stalls.
    std::vector<Uop> pattern;
    pattern.push_back(makeUop(UopType::kFpMul, 1));  // serial chain
    for (int i = 0; i < 7; ++i)
        pattern.push_back(makeUop(UopType::kIntAdd));
    PatternSource a(pattern), b(pattern);

    MachineConfig shallow;
    shallow.core.schedDepth = 1;
    MachineConfig deep;
    deep.core.schedDepth = 48;

    const double shallow_ipc =
        Machine(shallow).runSolo(a, 1000, 20000).ipc();
    const double deep_ipc =
        Machine(deep).runSolo(b, 1000, 20000).ipc();
    EXPECT_GT(deep_ipc, 1.5 * shallow_ipc);
}

TEST(Pipeline, WindowSizeBoundsMemoryLevelParallelism)
{
    // Blocks of one cold load plus 15 dependent ALU ops: a small
    // window holds one block (one outstanding miss); a large window
    // holds several (overlapped misses).
    class MissBlocks : public UopSource
    {
      public:
        Uop
        next() override
        {
            const int phase = static_cast<int>(cursor_ % 16);
            Uop uop = phase == 0
                          ? makeUop(UopType::kLoad, 0,
                                    cursor_ * kLineBytes)
                          : makeUop(UopType::kIntAdd, 1);
            uop.pc = 0;
            ++cursor_;
            return uop;
        }
        void reset() override { cursor_ = 1u << 22; }

      private:
        std::uint64_t cursor_ = 1u << 22;
    };

    MachineConfig small;
    small.core.windowSize = 8;
    small.core.schedDepth = 8;
    MachineConfig large;

    MissBlocks a, b;
    const double small_ipc =
        Machine(small).runSolo(a, 2000, 30000).ipc();
    const double large_ipc =
        Machine(large).runSolo(b, 2000, 30000).ipc();
    EXPECT_GT(large_ipc, small_ipc * 2.0);
}

TEST(Pipeline, PortRotorSpreadsIntAddAcrossPorts)
{
    PatternSource adds({makeUop(UopType::kIntAdd)});
    const auto c =
        Machine(MachineConfig()).runSolo(adds, 1000, 10000);
    // INT_ADD saturates ports 0, 1 and 5 roughly evenly.
    EXPECT_NEAR(c.portUtilization(0), 1.0, 0.05);
    EXPECT_NEAR(c.portUtilization(1), 1.0, 0.05);
    EXPECT_NEAR(c.portUtilization(5), 1.0, 0.05);
}

TEST(Pipeline, LoadsUseBothLoadPorts)
{
    // L1-resident independent loads: two load ports allow 2/cycle.
    class HotLoads : public UopSource
    {
      public:
        Uop
        next() override
        {
            Uop uop =
                makeUop(UopType::kLoad, 0, (cursor_++ % 64) * 8);
            uop.pc = 0;
            return uop;
        }
        void reset() override { cursor_ = 0; }

      private:
        std::uint64_t cursor_ = 0;
    };
    HotLoads loads;
    const auto c =
        Machine(MachineConfig()).runSolo(loads, 2000, 20000);
    EXPECT_NEAR(c.ipc(), 2.0, 0.1);
    EXPECT_NEAR(c.portUtilization(2) + c.portUtilization(3), 2.0,
                0.1);
}

TEST(Pipeline, InvalidWindowConfigurationRejected)
{
    MachineConfig config;
    config.core.windowSize = 250;  // too large for the dep ring
    PatternSource nops({makeUop(UopType::kNop)});
    EXPECT_THROW(Machine(config).runSolo(nops, 10, 10),
                 std::invalid_argument);
}

} // namespace
} // namespace smite::sim
