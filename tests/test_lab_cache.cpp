/**
 * @file
 * Tests for the experiment Lab's write-through disk cache.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

std::string
tempCache(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(LabCache, RoundTripsMeasurements)
{
    const std::string path = tempCache("smite_lab_cache_test.txt");
    std::remove(path.c_str());

    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("433.milc");
    const auto mode = CoLocationMode::kSmt;

    double solo = 0, pair = 0;
    PmuProfile pmu{};
    Characterization chr;
    {
        Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
        lab.enableDiskCache(path);
        solo = lab.soloIpc(a);
        pair = lab.pairDegradation(a, b, mode);
        pmu = lab.pmuProfile(a);
        chr = lab.characterization(a, mode);
    }

    // A second lab must reproduce the exact numbers from disk; we
    // verify by truncating its ability to simulate: loading from the
    // cache returns identical values without noticeable divergence.
    Lab reloaded(sim::MachineConfig::ivyBridge(), 5000, 20000);
    reloaded.enableDiskCache(path);
    EXPECT_EQ(reloaded.soloIpc(a), solo);
    EXPECT_EQ(reloaded.pairDegradation(a, b, mode), pair);
    EXPECT_EQ(reloaded.pmuProfile(a), pmu);
    const Characterization &chr2 = reloaded.characterization(a, mode);
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        EXPECT_EQ(chr2.sensitivity[d], chr.sensitivity[d]);
        EXPECT_EQ(chr2.contentiousness[d], chr.contentiousness[d]);
    }
    std::remove(path.c_str());
}

TEST(LabCache, PairCacheStoresBothDirections)
{
    const std::string path = tempCache("smite_lab_cache_dir.txt");
    std::remove(path.c_str());
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("433.milc");
    double forward = 0, backward = 0;
    {
        Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
        lab.enableDiskCache(path);
        forward = lab.pairDegradation(a, b, CoLocationMode::kSmt);
        backward = lab.pairDegradation(b, a, CoLocationMode::kSmt);
    }
    Lab reloaded(sim::MachineConfig::ivyBridge(), 5000, 20000);
    reloaded.enableDiskCache(path);
    EXPECT_EQ(reloaded.pairDegradation(b, a, CoLocationMode::kSmt),
              backward);
    EXPECT_EQ(reloaded.pairDegradation(a, b, CoLocationMode::kSmt),
              forward);
    std::remove(path.c_str());
}

TEST(LabCache, IgnoresCorruptLines)
{
    const std::string path = tempCache("smite_lab_cache_bad.txt");
    {
        std::ofstream out(path);
        out << "garbage line\n";
        out << "solo 453.povray#1\n";          // missing value
        out << "pair a|b|SMT 0.1\n";           // missing second value
        out << "solo 453.povray#1 0.5\n";      // valid
    }
    Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
    lab.enableDiskCache(path);
    // The valid line is used; everything else is skipped.
    EXPECT_EQ(lab.soloIpc(workload::spec2006::byName("453.povray")),
              0.5);
    std::remove(path.c_str());
}

TEST(LabCache, DisabledCacheWritesNothing)
{
    const std::string path = tempCache("smite_lab_cache_none.txt");
    std::remove(path.c_str());
    Lab lab(sim::MachineConfig::ivyBridge(), 2000, 5000);
    lab.soloIpc(workload::spec2006::byName("453.povray"));
    EXPECT_FALSE(std::filesystem::exists(path));
}

} // namespace
} // namespace smite::core
