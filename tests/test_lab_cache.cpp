/**
 * @file
 * Tests for the experiment Lab's write-through disk cache.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

std::string
tempCache(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Remove the legacy file and every shard of a cache base path. */
void
removeCache(const std::string &base)
{
    std::remove(base.c_str());
    // More shards than any test configures, so leftovers never leak
    // between runs.
    for (int k = 0; k < 64; ++k)
        std::remove(ShardedDiskCache::shardPath(base, k).c_str());
}

/** Concatenated record lines (header excluded) across all files. */
std::vector<std::string>
allRecords(const std::string &base)
{
    std::vector<std::string> records;
    std::vector<std::string> paths{base};
    for (int k = 0; k < 64; ++k)
        paths.push_back(ShardedDiskCache::shardPath(base, k));
    for (const std::string &path : paths) {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line != kLabCacheHeader && !line.empty())
                records.push_back(line);
        }
    }
    return records;
}

TEST(LabCache, RoundTripsMeasurements)
{
    const std::string path = tempCache("smite_lab_cache_test.txt");
    removeCache(path);

    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("433.milc");
    const auto mode = CoLocationMode::kSmt;

    double solo = 0, pair = 0;
    PmuProfile pmu{};
    Characterization chr;
    {
        Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
        lab.enableDiskCache(path);
        solo = lab.soloIpc(a);
        pair = lab.pairDegradation(a, b, mode);
        pmu = lab.pmuProfile(a);
        chr = lab.characterization(a, mode);
    }

    // A second lab must reproduce the exact numbers from disk; we
    // verify by truncating its ability to simulate: loading from the
    // cache returns identical values without noticeable divergence.
    Lab reloaded(sim::MachineConfig::ivyBridge(), 5000, 20000);
    reloaded.enableDiskCache(path);
    EXPECT_EQ(reloaded.soloIpc(a), solo);
    EXPECT_EQ(reloaded.pairDegradation(a, b, mode), pair);
    EXPECT_EQ(reloaded.pmuProfile(a), pmu);
    const Characterization &chr2 = reloaded.characterization(a, mode);
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        EXPECT_EQ(chr2.sensitivity[d], chr.sensitivity[d]);
        EXPECT_EQ(chr2.contentiousness[d], chr.contentiousness[d]);
    }
    removeCache(path);
}

TEST(LabCache, PairCacheStoresBothDirections)
{
    const std::string path = tempCache("smite_lab_cache_dir.txt");
    removeCache(path);
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("433.milc");
    double forward = 0, backward = 0;
    {
        Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
        lab.enableDiskCache(path);
        forward = lab.pairDegradation(a, b, CoLocationMode::kSmt);
        backward = lab.pairDegradation(b, a, CoLocationMode::kSmt);
    }
    Lab reloaded(sim::MachineConfig::ivyBridge(), 5000, 20000);
    reloaded.enableDiskCache(path);
    EXPECT_EQ(reloaded.pairDegradation(b, a, CoLocationMode::kSmt),
              backward);
    EXPECT_EQ(reloaded.pairDegradation(a, b, CoLocationMode::kSmt),
              forward);
    removeCache(path);
}

TEST(LabCache, IgnoresCorruptLines)
{
    const std::string path = tempCache("smite_lab_cache_bad.txt");
    {
        std::ofstream out(path);
        out << "garbage line\n";
        out << "solo 453.povray#1\n";          // missing value
        out << "pair a|b|SMT 0.1\n";           // missing second value
        out << "solo 453.povray#1 0.5\n";      // valid
    }
    Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
    lab.enableDiskCache(path);
    // The valid line is used; everything else is skipped.
    EXPECT_EQ(lab.soloIpc(workload::spec2006::byName("453.povray")),
              0.5);
    std::remove(path.c_str());
}

TEST(LabCache, DisabledCacheWritesNothing)
{
    const std::string path = tempCache("smite_lab_cache_none.txt");
    removeCache(path);
    Lab lab(sim::MachineConfig::ivyBridge(), 2000, 5000);
    lab.soloIpc(workload::spec2006::byName("453.povray"));
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(
        ShardedDiskCache::shardPath(path, 0)));
}

TEST(LabCache, ShardsRecordsByKeyWithHeaders)
{
    const std::string path = tempCache("smite_lab_cache_shard.txt");
    removeCache(path);

    ShardedDiskCache cache;
    cache.open(path, 4);
    EXPECT_TRUE(cache.enabled());
    EXPECT_EQ(cache.shardCount(), 4);

    // Enough distinct keys to hit more than one shard.
    for (int i = 0; i < 32; ++i) {
        const std::string key = "key" + std::to_string(i);
        cache.append(key, "solo " + key + " 1.5");
    }

    // The legacy base file is never written; only shards are.
    EXPECT_FALSE(std::filesystem::exists(path));
    int shard_files = 0;
    for (int k = 0; k < 4; ++k) {
        const std::string shard = ShardedDiskCache::shardPath(path, k);
        if (!std::filesystem::exists(shard))
            continue;
        ++shard_files;
        // Every written shard starts with the version header.
        std::ifstream in(shard);
        std::string first;
        ASSERT_TRUE(static_cast<bool>(std::getline(in, first)));
        EXPECT_EQ(first, kLabCacheHeader);
    }
    EXPECT_GT(shard_files, 1);
    EXPECT_EQ(allRecords(path).size(), 32u);

    // A fresh instance over the same base sees every file.
    ShardedDiskCache reader;
    reader.open(path, 4);
    EXPECT_EQ(reader.readPaths().size(),
              static_cast<std::size_t>(shard_files));
    removeCache(path);
}

TEST(LabCache, LegacySingleFileStillPreloaded)
{
    const std::string path = tempCache("smite_lab_cache_legacy.txt");
    removeCache(path);
    {
        // A cache written by an older (unsharded) build: all records
        // in the base file itself.
        std::ofstream out(path);
        out << kLabCacheHeader << "\n";
        out << "solo 453.povray#1 0.625\n";
    }
    Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
    lab.enableDiskCache(path);
    EXPECT_EQ(lab.soloIpc(workload::spec2006::byName("453.povray")),
              0.625);
    removeCache(path);
}

TEST(LabCache, RecoversFromTruncatedShardLine)
{
    const std::string path = tempCache("smite_lab_cache_torn.txt");
    removeCache(path);

    const auto &a = workload::spec2006::byName("453.povray");
    double solo = 0;
    {
        Lab lab(sim::MachineConfig::ivyBridge(), 5000, 20000);
        lab.enableDiskCache(path);
        solo = lab.soloIpc(a);
        lab.pairDegradation(a, workload::spec2006::byName("433.milc"),
                            CoLocationMode::kSmt);
    }

    // Simulate a crash mid-append: every shard gains a torn record —
    // cut off mid-key, no trailing newline.
    for (int k = 0; k < 8; ++k) {
        const std::string shard = ShardedDiskCache::shardPath(path, k);
        if (!std::filesystem::exists(shard))
            continue;
        std::ofstream out(shard, std::ios::app);
        out << "pair 453.pov";
    }

    // The reader skips the torn lines and the Lab still works —
    // re-simulating whatever was lost.
    Lab reloaded(sim::MachineConfig::ivyBridge(), 5000, 20000);
    reloaded.enableDiskCache(path);
    EXPECT_EQ(reloaded.soloIpc(a), solo);
    removeCache(path);
}

} // namespace
} // namespace smite::core
