/**
 * @file
 * Tests for the optional microarchitectural features: the L2
 * next-line prefetcher and the inclusive L3.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/memory_system.h"
#include "workload/generator.h"
#include "workload/spec2006.h"

namespace smite::sim {
namespace {

TEST(Prefetcher, NextLineFillsL2)
{
    MachineConfig config;
    config.l2NextLinePrefetch = true;
    MemorySystem mem(config);
    CounterBlock ctr;
    Tlb dtlb(config.dtlb);

    // An ascending pattern confirms a stream: accessing line 1 with
    // line 0 resident prefetches line 2, which must then hit the L2.
    mem.dataAccess(0, false, 0, 0, ctr, dtlb);
    mem.dataAccess(0, false, kLineBytes, 5, ctr, dtlb);
    ASSERT_EQ(ctr.l3Misses, 2u);
    const Cycle latency = mem.dataAccess(0, false, 2 * kLineBytes, 10,
                                         ctr, dtlb);
    EXPECT_EQ(latency, config.l2.hitLatency);
    EXPECT_EQ(ctr.l3Misses, 2u);  // no third DRAM trip
}

TEST(Prefetcher, DisabledByDefault)
{
    MachineConfig config;
    MemorySystem mem(config);
    CounterBlock ctr;
    Tlb dtlb(config.dtlb);
    mem.dataAccess(0, false, 0, 0, ctr, dtlb);
    mem.dataAccess(0, false, kLineBytes, 10, ctr, dtlb);
    mem.dataAccess(0, false, 2 * kLineBytes, 20, ctr, dtlb);
    EXPECT_EQ(ctr.l3Misses, 3u);  // every line was cold
}

TEST(Prefetcher, RandomMissesDoNotTriggerPrefetch)
{
    MachineConfig config;
    config.l2NextLinePrefetch = true;
    MemorySystem mem(config);
    CounterBlock ctr;
    Tlb dtlb(config.dtlb);
    // Far-apart lines: no neighbour is ever resident, so no
    // bandwidth is spent on prefetches.
    mem.dataAccess(0, false, 0, 0, ctr, dtlb);
    mem.dataAccess(0, false, 100 * kLineBytes, 10, ctr, dtlb);
    mem.dataAccess(0, false, 200 * kLineBytes, 20, ctr, dtlb);
    EXPECT_EQ(mem.dram().transfers(), 3u);
}

TEST(Prefetcher, SpeedsUpStreamingWorkload)
{
    const auto &lbm = workload::spec2006::byName("470.lbm");
    MachineConfig base = MachineConfig::ivyBridge();
    MachineConfig with_pf = base;
    with_pf.l2NextLinePrefetch = true;

    workload::ProfileUopSource a(lbm), b(lbm);
    const double plain =
        Machine(base).runSolo(a, 20000, 100000).ipc();
    const double prefetched =
        Machine(with_pf).runSolo(b, 20000, 100000).ipc();
    EXPECT_GT(prefetched, plain * 1.05);
}

TEST(InclusiveL3, BackInvalidatesPrivateCopies)
{
    MachineConfig config;
    config.inclusiveL3 = true;
    // Tiny L3 so one conflict set is easy to construct: 16KB 4-way
    // => 64 sets; lines 0, 64, 128, 192, 256 conflict in set 0.
    config.l3 = CacheConfig{"L3", 16 * 1024, 4, 30};
    MemorySystem mem(config);
    CounterBlock ctr;
    Tlb dtlb(config.dtlb);

    mem.dataAccess(0, false, 0, 0, ctr, dtlb);  // line 0 in L1+L2+L3
    ASSERT_EQ(mem.dataAccess(0, false, 0, 1, ctr, dtlb),
              config.l1d.hitLatency);

    // Evict line 0 from the L3 by filling its set with 4 more lines.
    for (Addr k = 1; k <= 4; ++k)
        mem.dataAccess(0, false, k * 64 * kLineBytes, 2 + k, ctr, dtlb);

    // Inclusive: the L1 copy is gone; the access must go to memory.
    ctr = CounterBlock{};
    mem.dataAccess(0, false, 0, 100, ctr, dtlb);
    EXPECT_EQ(ctr.l1dHits, 0u);
    EXPECT_EQ(ctr.l3Misses, 1u);
}

TEST(InclusiveL3, NonInclusiveKeepsPrivateCopies)
{
    MachineConfig config;
    config.inclusiveL3 = false;
    config.l3 = CacheConfig{"L3", 16 * 1024, 4, 30};
    MemorySystem mem(config);
    CounterBlock ctr;
    Tlb dtlb(config.dtlb);

    mem.dataAccess(0, false, 0, 0, ctr, dtlb);
    for (Addr k = 1; k <= 4; ++k)
        mem.dataAccess(0, false, k * 64 * kLineBytes, 1 + k, ctr, dtlb);

    ctr = CounterBlock{};
    mem.dataAccess(0, false, 0, 100, ctr, dtlb);
    EXPECT_EQ(ctr.l1dHits, 1u);  // L1 copy survived the L3 eviction
}

TEST(CacheInvalidate, RemovesOnlyTheLine)
{
    SetAssocCache cache(CacheConfig{"t", 1024, 4, 3});
    cache.access(1, false);
    cache.access(2, false);
    EXPECT_TRUE(cache.invalidate(1));
    EXPECT_FALSE(cache.invalidate(1));  // already gone
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
}

TEST(CacheAccessResult, ReportsCleanEvictionsAsValid)
{
    SetAssocCache cache(CacheConfig{"t", 128, 2, 3});  // one set
    cache.access(1, false);
    cache.access(2, false);
    const auto result = cache.access(3, false);
    EXPECT_TRUE(result.evictedValid);
    EXPECT_FALSE(result.evictedDirty);
    EXPECT_EQ(result.evictedLine, 1u);
}


TEST(FetchPolicy, IcountFavorsTheLowOccupancyThread)
{
    // A memory-bound thread fills its window with stalled uops; under
    // ICOUNT the compute thread (low occupancy) gets fetch priority,
    // so combined throughput cannot drop and typically rises.
    const auto &compute = workload::spec2006::byName("454.calculix");
    const auto &memory = workload::spec2006::byName("429.mcf");

    MachineConfig rr = MachineConfig::ivyBridge();
    MachineConfig icount = rr;
    icount.core.fetchPolicy = FetchPolicy::kIcount;

    workload::ProfileUopSource a1(compute, 1), b1(memory, 2);
    workload::ProfileUopSource a2(compute, 1), b2(memory, 2);
    const auto rr_counters =
        Machine(rr).runPairSmt(a1, b1, 20000, 80000);
    const auto ic_counters =
        Machine(icount).runPairSmt(a2, b2, 20000, 80000);

    const double rr_total = rr_counters[0].ipc() + rr_counters[1].ipc();
    const double ic_total = ic_counters[0].ipc() + ic_counters[1].ipc();
    EXPECT_GT(ic_total, rr_total * 0.98);
    // The compute thread specifically must not lose under ICOUNT.
    EXPECT_GT(ic_counters[0].ipc(), rr_counters[0].ipc() * 0.98);
}

} // namespace
} // namespace smite::sim
