/**
 * @file
 * Unit tests for the workload profiles and trace generator.
 */

#include <map>

#include <gtest/gtest.h>

#include "workload/cloudsuite.h"
#include "workload/generator.h"
#include "workload/rng.h"
#include "workload/spec2006.h"

namespace smite::workload {
namespace {

TEST(Rng, DeterministicAndNonConstant)
{
    Rng a(7), b(7), c(8);
    EXPECT_EQ(a.nextU64(), b.nextU64());
    EXPECT_NE(Rng(7).nextU64(), c.nextU64());
}

TEST(Rng, DoublesInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, GeometricMeanRoughlyCorrect)
{
    Rng rng(5);
    const double target = 4.0;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(target));
    EXPECT_NEAR(sum / n, target, 0.15);
}

TEST(Spec2006, SuiteShape)
{
    const auto &suite = spec2006::all();
    EXPECT_EQ(suite.size(), 29u);
    EXPECT_EQ(spec2006::evenNumbered().size(), 14u);
    EXPECT_EQ(spec2006::oddNumbered().size(), 15u);
}

TEST(Spec2006, SplitIsDisjointAndComplete)
{
    std::map<std::string, int> seen;
    for (const auto &p : spec2006::evenNumbered()) {
        EXPECT_EQ(p.specNumber % 2, 0) << p.name;
        ++seen[p.name];
    }
    for (const auto &p : spec2006::oddNumbered()) {
        EXPECT_EQ(p.specNumber % 2, 1) << p.name;
        ++seen[p.name];
    }
    EXPECT_EQ(seen.size(), 29u);
    for (const auto &[name, count] : seen)
        EXPECT_EQ(count, 1) << name;
}

TEST(Spec2006, LookupByName)
{
    EXPECT_EQ(spec2006::byName("429.mcf").specNumber, 429);
    EXPECT_THROW(spec2006::byName("430.nope"), std::out_of_range);
}

TEST(Spec2006, ProfilesAreWellFormed)
{
    for (const auto &p : spec2006::all()) {
        double sum = 0.0;
        for (double f : p.mix) {
            EXPECT_GE(f, 0.0) << p.name;
            sum += f;
        }
        EXPECT_LE(sum, 1.0 + 1e-9) << p.name;
        EXPECT_GT(sum, 0.5) << p.name;  // mostly real work
        EXPECT_LE(p.hotBytes, p.dataFootprint) << p.name;
        EXPECT_GE(p.branchMispredictRate, 0.0) << p.name;
        EXPECT_LE(p.branchMispredictRate, 0.2) << p.name;
        // Constructing a generator validates the rest.
        EXPECT_NO_THROW(ProfileUopSource{p}) << p.name;
    }
}

TEST(Spec2006, PaperCallouts)
{
    // The paper highlights 444.namd as FP_ADD-heavy (port 1),
    // 454.calculix as FP_MUL-heavy (port 0), 470.lbm as more
    // contentious on port 1 than port 0.
    const auto &namd = spec2006::byName("444.namd");
    EXPECT_GT(namd.mixOf(sim::UopType::kFpAdd),
              2 * namd.mixOf(sim::UopType::kFpMul));
    const auto &calculix = spec2006::byName("454.calculix");
    EXPECT_GT(calculix.mixOf(sim::UopType::kFpMul),
              calculix.mixOf(sim::UopType::kFpAdd));
    const auto &lbm = spec2006::byName("470.lbm");
    EXPECT_GT(lbm.mixOf(sim::UopType::kFpAdd),
              lbm.mixOf(sim::UopType::kFpMul));
    // 429.mcf is memory bound: no FP at all, huge footprint.
    const auto &mcf = spec2006::byName("429.mcf");
    EXPECT_EQ(mcf.mixOf(sim::UopType::kFpAdd), 0.0);
    EXPECT_GT(mcf.dataFootprint, 1000ull << 20);
}

TEST(CloudSuite, FourApplications)
{
    const auto &suite = cloudsuite::all();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_NO_THROW(cloudsuite::byName("Web-Search"));
    EXPECT_NO_THROW(cloudsuite::byName("Data-Caching"));
    EXPECT_NO_THROW(cloudsuite::byName("Data-Serving"));
    EXPECT_NO_THROW(cloudsuite::byName("Graph-Analytics"));
    EXPECT_THROW(cloudsuite::byName("Map-Reduce"), std::out_of_range);
}

TEST(CloudSuite, PercentileReportingMatchesPaper)
{
    // Web-Search and Data-Caching report percentile latency;
    // Data-Serving and Graph-Analytics do not (paper IV-B3).
    EXPECT_TRUE(cloudsuite::byName("Web-Search").reportsPercentile);
    EXPECT_TRUE(cloudsuite::byName("Data-Caching").reportsPercentile);
    EXPECT_FALSE(cloudsuite::byName("Data-Serving").reportsPercentile);
    EXPECT_FALSE(cloudsuite::byName("Graph-Analytics").reportsPercentile);
}

TEST(CloudSuite, LatencySensitiveAndStableQueues)
{
    for (const auto &p : cloudsuite::all()) {
        EXPECT_TRUE(p.isLatencySensitive()) << p.name;
        EXPECT_LT(p.arrivalRate, p.serviceRate) << p.name;
    }
}

TEST(Generator, DeterministicStream)
{
    const auto &p = spec2006::byName("403.gcc");
    ProfileUopSource a(p, 5), b(p, 5);
    for (int i = 0; i < 5000; ++i) {
        const sim::Uop ua = a.next();
        const sim::Uop ub = b.next();
        ASSERT_EQ(ua.type, ub.type) << "uop " << i;
        ASSERT_EQ(ua.addr, ub.addr) << "uop " << i;
        ASSERT_EQ(ua.pc, ub.pc) << "uop " << i;
        ASSERT_EQ(ua.mispredict, ub.mispredict) << "uop " << i;
    }
}

TEST(Generator, ResetRewindsExactly)
{
    const auto &p = spec2006::byName("433.milc");
    ProfileUopSource src(p, 9);
    std::vector<sim::Uop> first;
    for (int i = 0; i < 2000; ++i)
        first.push_back(src.next());
    src.reset();
    for (int i = 0; i < 2000; ++i) {
        const sim::Uop u = src.next();
        ASSERT_EQ(u.type, first[i].type) << i;
        ASSERT_EQ(u.addr, first[i].addr) << i;
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    const auto &p = spec2006::byName("433.milc");
    ProfileUopSource a(p, 1), b(p, 2);
    int differing = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next().type != b.next().type)
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(Generator, MixFractionsApproximatelyRealized)
{
    const auto &p = spec2006::byName("444.namd");
    ProfileUopSource src(p, 1);
    std::array<std::uint64_t, sim::kNumUopTypes> counts{};
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(src.next().type)];
    // Phase modulation dilutes everything by the same factor; check
    // the FP_ADD : FP_MUL ratio, which phases preserve.
    const double fp_add = counts[static_cast<int>(sim::UopType::kFpAdd)];
    const double fp_mul = counts[static_cast<int>(sim::UopType::kFpMul)];
    EXPECT_NEAR(fp_add / fp_mul,
                p.mixOf(sim::UopType::kFpAdd) /
                    p.mixOf(sim::UopType::kFpMul),
                0.25);
}

TEST(Generator, AddressesWithinFootprint)
{
    const auto &p = spec2006::byName("429.mcf");
    ProfileUopSource src(p, 1);
    for (int i = 0; i < 100000; ++i) {
        const sim::Uop u = src.next();
        if (u.type == sim::UopType::kLoad ||
            u.type == sim::UopType::kStore) {
            EXPECT_LT(u.addr, p.dataFootprint);
        }
        EXPECT_LT(u.pc, p.codeFootprint);
    }
}

TEST(Generator, MispredictRateApproximatelyRealized)
{
    const auto &p = spec2006::byName("445.gobmk");
    ProfileUopSource src(p, 1);
    std::uint64_t branches = 0, mispredicts = 0;
    for (int i = 0; i < 500000; ++i) {
        const sim::Uop u = src.next();
        if (u.type == sim::UopType::kBranch) {
            ++branches;
            mispredicts += u.mispredict ? 1 : 0;
        }
    }
    ASSERT_GT(branches, 0u);
    EXPECT_NEAR(static_cast<double>(mispredicts) / branches,
                p.branchMispredictRate, 0.01);
}

TEST(Generator, RejectsMalformedProfiles)
{
    WorkloadProfile p = spec2006::byName("403.gcc");
    p.mixOf(sim::UopType::kLoad) = 0.9;  // sum > 1
    EXPECT_THROW(ProfileUopSource{p}, std::invalid_argument);

    p = spec2006::byName("403.gcc");
    p.hotBytes = p.dataFootprint + 1;
    EXPECT_THROW(ProfileUopSource{p}, std::invalid_argument);

    p = spec2006::byName("403.gcc");
    p.loopBytes = p.codeFootprint * 2;
    EXPECT_THROW(ProfileUopSource{p}, std::invalid_argument);
}

TEST(Generator, ResidencyWeightOrdersMemoryIntensity)
{
    // mcf (huge cold footprint) should claim far more shared cache
    // than calculix (L1-resident).
    ProfileUopSource mcf(spec2006::byName("429.mcf"));
    ProfileUopSource calculix(spec2006::byName("454.calculix"));
    EXPECT_GT(mcf.residencyWeight(), 5 * calculix.residencyWeight());
}

} // namespace
} // namespace smite::workload
