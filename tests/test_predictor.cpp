/**
 * @file
 * Conformance suite for the predictor zoo (core/predictor.h): every
 * implementation behind the core::Predictor interface must honour the
 * same contract — predictions in [0, 1], solo predicts zero,
 * unusable or adversarial signatures fall back to the conservative
 * worst case with the `predictor.*` counters ticking — plus a
 * real-Lab end-to-end smoke of trainPredictorZoo at tiny intervals.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/predictor.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "workload/rng.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

std::uint64_t
counter(const std::string &name)
{
    return obs::Registry::global().counter(name).value();
}

/** A finite, plausible synthetic signature. */
WorkloadSignature
syntheticSignature(workload::Rng &rng, const std::string &name)
{
    WorkloadSignature s;
    s.name = name;
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        s.characterization.sensitivity[d] = rng.nextDouble();
        s.characterization.contentiousness[d] = rng.nextDouble();
    }
    for (int r = 0; r < sim::kNumPmuRates; ++r)
        s.pmu[r] = rng.nextDouble();
    s.soloCounters.cycles = 10'000;
    s.soloCounters.l2Misses = rng.nextU64() % 2'000;
    s.soloCounters.l3Misses = rng.nextU64() % 1'000;
    s.soloIpc = 0.5 + rng.nextDouble();
    return s;
}

/** Signatures + samples obeying a synthetic degradation law. */
struct SyntheticCorpus {
    std::vector<WorkloadSignature> signatures;
    std::vector<PredictorSample> samples;
};

SyntheticCorpus
makeCorpus(int n_workloads)
{
    SyntheticCorpus corpus;
    workload::Rng rng(0xA110'17ull);
    for (int i = 0; i < n_workloads; ++i) {
        corpus.signatures.push_back(
            syntheticSignature(rng, "w" + std::to_string(i)));
    }
    for (int i = 0; i < n_workloads; ++i) {
        for (int j = 0; j < n_workloads; ++j) {
            if (i == j)
                continue;
            const auto &v = corpus.signatures[i];
            const auto &a = corpus.signatures[j];
            double deg = 0.05;
            for (int d = 0; d < rulers::kNumDimensions; ++d) {
                deg += 0.08 * v.characterization.sensitivity[d] *
                       a.characterization.contentiousness[d];
            }
            corpus.samples.push_back(
                {&corpus.signatures[i], &corpus.signatures[j], deg});
        }
    }
    return corpus;
}

/** All four implementations trained on one synthetic corpus. */
std::vector<std::unique_ptr<Predictor>>
trainedZoo(const SyntheticCorpus &corpus)
{
    std::vector<std::unique_ptr<Predictor>> zoo;
    zoo.push_back(std::make_unique<SmitePredictor>(
        SmitePredictor::train(corpus.samples)));
    zoo.push_back(std::make_unique<PmuPredictor>(
        PmuPredictor::train(corpus.samples)));
    zoo.push_back(std::make_unique<MisePredictor>(
        MisePredictor::train(corpus.samples)));
    zoo.push_back(std::make_unique<AlvesDrummondPredictor>(
        AlvesDrummondPredictor::train(corpus.samples)));
    return zoo;
}

TEST(PredictorZoo, NamesAreUniqueAndCostsSensible)
{
    const SyntheticCorpus corpus = makeCorpus(8);
    const auto zoo = trainedZoo(corpus);
    std::set<std::string> names;
    for (const auto &p : zoo) {
        names.insert(std::string(p->name()));
        EXPECT_GE(p->signatureRuns(), 1) << p->name();
    }
    EXPECT_EQ(names.size(), zoo.size());
    // Ruler-based predictors pay one co-run per dimension on top of
    // the solo run; counter-based ones read a single solo run.
    EXPECT_EQ(zoo[0]->signatureRuns(), 1 + rulers::kNumDimensions);
    EXPECT_EQ(zoo[1]->signatureRuns(), 1);
    EXPECT_EQ(zoo[2]->signatureRuns(), 1);
    EXPECT_EQ(zoo[3]->signatureRuns(), 1 + rulers::kNumDimensions);
}

TEST(PredictorZoo, PredictionsAreBoundedAndDeterministic)
{
    const SyntheticCorpus corpus = makeCorpus(8);
    const auto zoo = trainedZoo(corpus);
    for (const auto &p : zoo) {
        SCOPED_TRACE(std::string(p->name()));
        for (const PredictorSample &s : corpus.samples) {
            const double deg =
                p->predictDegradation(*s.victim, *s.aggressor);
            EXPECT_GE(deg, 0.0);
            EXPECT_LE(deg, 1.0);
            EXPECT_EQ(p->predictDegradation(*s.victim, *s.aggressor),
                      deg);
            EXPECT_EQ(p->predictQos(*s.victim, {s.aggressor}),
                      1.0 - deg);
        }
        // Solo: no aggressors, no degradation.
        EXPECT_EQ(p->predictDegradation(
                      corpus.signatures[0],
                      std::vector<const WorkloadSignature *>{}),
                  0.0);
        // Multi-aggressor sets stay bounded too.
        const double multi = p->predictDegradation(
            corpus.signatures[0],
            {&corpus.signatures[1], &corpus.signatures[2],
             &corpus.signatures[3]});
        EXPECT_GE(multi, 0.0);
        EXPECT_LE(multi, 1.0);
    }
}

TEST(PredictorZoo, AdversarialSignaturesFallBackToWorstCase)
{
    const SyntheticCorpus corpus = makeCorpus(8);
    const auto zoo = trainedZoo(corpus);
    workload::Rng rng(0xD155ull);

    for (const auto &p : zoo) {
        SCOPED_TRACE(std::string(p->name()));

        // A signature whose measurement failed.
        WorkloadSignature invalid = syntheticSignature(rng, "invalid");
        invalid.valid = false;
        // A NaN smuggled into the characterization.
        WorkloadSignature poisoned =
            syntheticSignature(rng, "poisoned");
        poisoned.characterization.sensitivity[2] =
            std::numeric_limits<double>::quiet_NaN();
        // A victim that never retired a uop solo: no meaningful
        // degradation ratio can rest on a (near-)zero denominator.
        WorkloadSignature idle = syntheticSignature(rng, "idle");
        idle.soloIpc = 0.0;

        for (const WorkloadSignature *victim :
             {&invalid, &poisoned, &idle}) {
            const std::uint64_t invalid0 =
                counter("predictor.invalid_inputs");
            const std::uint64_t incidents0 =
                obs::IncidentLog::global().count();
            EXPECT_EQ(p->predictDegradation(*victim,
                                            corpus.signatures[1]),
                      1.0);
            EXPECT_EQ(counter("predictor.invalid_inputs"),
                      invalid0 + 1);
            EXPECT_GT(obs::IncidentLog::global().count(), incidents0);
        }
        // An adversarial *aggressor* is caught the same way.
        EXPECT_EQ(p->predictDegradation(corpus.signatures[0],
                                        poisoned),
                  1.0);
    }
}

TEST(PredictorZoo, OutOfRangeRawPredictionsAreClampedAndCounted)
{
    // Train on a world with large degradations, then feed a saturated
    // signature: the raw affine prediction overshoots 1 and must come
    // back clamped. The Alves-Drummond predictor exposes the
    // interface-level clamp directly (SmiteModel/PmuModel already
    // guard inside the wrapped model, so their predictors hand the
    // interface an in-range value).
    SyntheticCorpus corpus = makeCorpus(8);
    for (PredictorSample &s : corpus.samples)
        s.degradation *= 30.0;
    const AlvesDrummondPredictor ad =
        AlvesDrummondPredictor::train(corpus.samples);

    workload::Rng rng(0xC1A3ull);
    WorkloadSignature saturated = syntheticSignature(rng, "saturated");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        saturated.characterization.sensitivity[d] = 1.0;
        saturated.characterization.contentiousness[d] = 1.0;
    }

    const std::uint64_t predictions0 =
        counter("predictor.predictions");
    const std::uint64_t clamped0 = counter("predictor.clamped");
    const double deg = ad.predictDegradation(saturated, saturated);
    EXPECT_EQ(deg, 1.0);
    EXPECT_EQ(counter("predictor.predictions"), predictions0 + 1);
    EXPECT_EQ(counter("predictor.clamped"), clamped0 + 1);

    // The SMiTe predictor on the same input also comes back at the
    // worst case, clamped inside the wrapped model.
    const SmitePredictor smite = SmitePredictor::train(corpus.samples);
    EXPECT_EQ(smite.predictDegradation(saturated, saturated), 1.0);
}

TEST(PredictorZoo, TrainsOnARealLabCorpus)
{
    // End-to-end at tiny intervals: six training workloads give 30
    // ordered pairs, enough for every model (the PMU baseline needs
    // the most, 2 * 11 + 1).
    Lab lab(sim::MachineConfig::ivyBridge(), 800, 2'000);
    const auto all = workload::spec2006::evenNumbered();
    const std::vector<workload::WorkloadProfile> train(
        all.begin(), all.begin() + 6);

    const std::uint64_t trained0 = counter("predictor.trained");
    const PredictorZoo zoo =
        trainPredictorZoo(lab, train, CoLocationMode::kSmt);
    EXPECT_EQ(counter("predictor.trained"), trained0 + 4);

    ASSERT_EQ(zoo.signatures.size(), train.size());
    for (const WorkloadSignature &s : zoo.signatures) {
        EXPECT_TRUE(s.valid) << s.name;
        EXPECT_GT(s.soloIpc, 0.0) << s.name;
        EXPECT_GT(s.soloCounters.cycles, 0u) << s.name;
    }
    ASSERT_EQ(zoo.predictors.size(), 4u);
    for (const auto &p : zoo.predictors) {
        SCOPED_TRACE(std::string(p->name()));
        for (std::size_t v = 0; v < zoo.signatures.size(); ++v) {
            for (std::size_t a = 0; a < zoo.signatures.size(); ++a) {
                if (v == a)
                    continue;
                const double deg = p->predictDegradation(
                    zoo.signatures[v], zoo.signatures[a]);
                EXPECT_GE(deg, 0.0);
                EXPECT_LE(deg, 1.0);
            }
        }
    }
}

} // namespace
} // namespace smite::core
