/**
 * @file
 * End-to-end integration test: the full SMiTe pipeline on a reduced
 * benchmark subset — characterize, train (Equation 3), predict a
 * held-out co-location, and beat trivial baselines.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/smite.h"

namespace smite::core {
namespace {

/** Shared lab with short windows: this suite runs real simulations. */
Lab &
lab()
{
    static Lab instance(sim::MachineConfig::ivyBridge(), 20000, 80000);
    return instance;
}

std::vector<workload::WorkloadProfile>
trainingSubset()
{
    using workload::spec2006::byName;
    return {byName("400.perlbench"), byName("410.bwaves"),
            byName("429.mcf"),       byName("444.namd"),
            byName("454.calculix"),  byName("462.libquantum"),
            byName("465.tonto"),     byName("470.lbm"),
            byName("483.xalancbmk")};
}

TEST(Integration, EndToEndPredictionBeatsBaselines)
{
    const auto mode = CoLocationMode::kSmt;
    const auto train = trainingSubset();
    const SmiteModel model = lab().trainSmite(train, mode);

    // Held-out applications spanning compute-, branch- and
    // memory-bound behaviour.
    using workload::spec2006::byName;
    const std::vector<const workload::WorkloadProfile *> held_out = {
        &byName("453.povray"), &byName("433.milc"),
        &byName("445.gobmk"), &byName("471.omnetpp")};

    double smite_err = 0.0, zero_err = 0.0;
    int n = 0;
    for (const auto *victim : held_out) {
        for (const auto *aggressor : held_out) {
            if (victim == aggressor)
                continue;
            const double actual =
                lab().pairDegradation(*victim, *aggressor, mode);
            const double predicted = model.predict(
                lab().characterization(*victim, mode),
                lab().characterization(*aggressor, mode));
            smite_err += std::abs(predicted - actual);
            zero_err += std::abs(actual);
            ++n;
        }
    }
    // The trained model must clearly beat predicting "no
    // interference", and its absolute error must stay moderate.
    EXPECT_LT(smite_err, 0.8 * zero_err);
    EXPECT_LT(smite_err / n, 0.12);
}

TEST(Integration, PmuModelTrainsAndPredictsInRange)
{
    const auto mode = CoLocationMode::kSmt;
    // The PMU model needs > 22 samples: 9 apps give 72 ordered pairs.
    const PmuModel model = lab().trainPmu(trainingSubset(), mode);
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("433.milc");
    const double pred =
        model.predict(lab().pmuProfile(a), lab().pmuProfile(b));
    EXPECT_GT(pred, -0.5);
    EXPECT_LT(pred, 1.0);
}

TEST(Integration, SmiteCoefficientsAreFinite)
{
    const SmiteModel model =
        lab().trainSmite(trainingSubset(), CoLocationMode::kSmt);
    for (double c : model.coefficients())
        EXPECT_TRUE(std::isfinite(c));
    EXPECT_TRUE(std::isfinite(model.constantTerm()));
}

TEST(Integration, TailLatencyPipeline)
{
    // Predicted degradation -> Equation 6 -> percentile; measured
    // degradation -> queueing simulation. Both must agree on order
    // of magnitude and ordering.
    const auto &ws = workload::cloudsuite::byName("Web-Search");
    const TailLatencyPredictor predictor(ws);
    const double deg = 0.2;
    const double predicted = predictor.predictPercentile(0.9, deg);
    const double measured = predictor.measurePercentile(0.9, deg);
    EXPECT_NEAR(predicted / measured, 1.0, 0.15);
    EXPECT_GT(predicted, predictor.soloPercentile(0.9));
}

} // namespace
} // namespace smite::core
