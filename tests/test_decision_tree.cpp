/**
 * @file
 * Tests for the CART regression tree and quadratic expansion.
 */

#include <gtest/gtest.h>

#include "stats/decision_tree.h"
#include "workload/rng.h"

namespace smite::stats {
namespace {

TEST(RegressionTree, FitsAStepFunctionExactly)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 40; ++i) {
        x.push_back({static_cast<double>(i)});
        y.push_back(i < 20 ? 1.0 : 5.0);
    }
    const auto tree = RegressionTree::fit(x, y, 4, 2);
    EXPECT_NEAR(tree.predict({3.0}), 1.0, 1e-12);
    EXPECT_NEAR(tree.predict({30.0}), 5.0, 1e-12);
    EXPECT_NEAR(tree.meanAbsoluteError(x, y), 0.0, 1e-12);
}

TEST(RegressionTree, DepthZeroIsTheMean)
{
    std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
    std::vector<double> y = {0, 1, 2, 3};
    const auto tree = RegressionTree::fit(x, y, 0, 1);
    EXPECT_EQ(tree.leafCount(), 1);
    EXPECT_NEAR(tree.predict({0}), 1.5, 1e-12);
}

TEST(RegressionTree, SplitsOnTheInformativeFeature)
{
    workload::Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double informative = rng.nextDouble();
        const double noise = rng.nextDouble();
        x.push_back({noise, informative});
        y.push_back(informative > 0.5 ? 2.0 : -2.0);
    }
    const auto tree = RegressionTree::fit(x, y, 3, 5);
    EXPECT_NEAR(tree.predict({0.9, 0.9}), 2.0, 0.2);
    EXPECT_NEAR(tree.predict({0.9, 0.1}), -2.0, 0.2);
}

TEST(RegressionTree, MinLeafBoundsGranularity)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 16; ++i) {
        x.push_back({static_cast<double>(i)});
        y.push_back(static_cast<double>(i));
    }
    const auto coarse = RegressionTree::fit(x, y, 10, 8);
    EXPECT_LE(coarse.leafCount(), 2);
    const auto fine = RegressionTree::fit(x, y, 10, 1);
    EXPECT_GT(fine.leafCount(), coarse.leafCount());
}

TEST(RegressionTree, ValidatesInput)
{
    EXPECT_THROW(RegressionTree::fit({}, {}), std::invalid_argument);
    EXPECT_THROW(RegressionTree::fit({{1.0}}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(RegressionTree::fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(RegressionTree::fit({{1.0}}, {1.0}, -1),
                 std::invalid_argument);
    EXPECT_THROW(RegressionTree::fit({{1.0}}, {1.0}, 3, 0),
                 std::invalid_argument);
}

TEST(RegressionTree, PredictRejectsShortRows)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 20; ++i) {
        x.push_back({static_cast<double>(i), static_cast<double>(-i)});
        y.push_back(i < 10 ? 0.0 : 1.0);
    }
    const auto tree = RegressionTree::fit(x, y, 3, 2);
    EXPECT_THROW(tree.predict({}), std::invalid_argument);
}

TEST(WithSquares, AppendsSquares)
{
    const auto out = withSquares({2.0, -3.0});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 2.0);
    EXPECT_EQ(out[1], -3.0);
    EXPECT_EQ(out[2], 4.0);
    EXPECT_EQ(out[3], 9.0);
}

} // namespace
} // namespace smite::stats
