/**
 * @file
 * Tests for the warehouse-scale sharded scheduler (shard.h): the
 * shard/thread-count determinism contract, the churn conservation
 * invariants, tiered admission, and heterogeneous-fleet placement.
 * All tables are hand-built — no simulation needed.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "scheduler/keyed.h"
#include "scheduler/shard.h"

namespace smite::scheduler {
namespace {

/** A pairing whose QoS falls linearly with instance count. */
Pairing
linearPairing(const std::string &latency, const std::string &batch,
              double actual_per_instance, double predicted_per_instance,
              int max_instances)
{
    Pairing p;
    p.latencyApp = latency;
    p.batchApp = batch;
    for (int k = 1; k <= max_instances; ++k) {
        CoLocationOption option;
        option.actualQos = 1.0 - actual_per_instance * k;
        option.predictedQos = 1.0 - predicted_per_instance * k;
        p.byInstances.push_back(option);
    }
    return p;
}

/** One class with @p pairings linear tables at 2%..(2+Δ)% slopes. */
MachineClass
uniformClass(const std::string &name, int latency_threads,
             int contexts, int pairings, double base_slope = 0.02,
             double slope_step = 0.01)
{
    MachineClass mc;
    mc.name = name;
    mc.latencyThreads = latency_threads;
    mc.contextsPerServer = contexts;
    const int cap = mc.maxInstances();
    for (int i = 0; i < pairings; ++i) {
        const double slope = base_slope + slope_step * i;
        mc.pairings.push_back(linearPairing(
            "svc", "batch" + std::to_string(i), slope, slope, cap));
    }
    return mc;
}

ChurnConfig
testChurn()
{
    ChurnConfig churn;
    churn.arrivalsPerEpoch = 40;
    churn.departProb = 0.03;
    churn.failProb = 0.01;
    churn.recoverProb = 0.30;
    churn.probesPerJob = 4;
    churn.seed = 99;
    return churn;
}

bool
sameRun(const StreamResult &a, const StreamResult &b)
{
    if (a.digest != b.digest || a.timeline.size() != b.timeline.size())
        return false;
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        const auto &x = a.timeline[i];
        const auto &y = b.timeline[i];
        if (x.failures != y.failures || x.recoveries != y.recoveries ||
            x.departures != y.departures || x.placed != y.placed ||
            x.rejected != y.rejected || x.lost != y.lost ||
            x.replacements != y.replacements ||
            x.fillerPlaced != y.fillerPlaced ||
            x.fillerEvicted != y.fillerEvicted ||
            x.guaranteedInstances != y.guaranteedInstances ||
            x.bestEffortInstances != y.bestEffortInstances ||
            x.liveServers != y.liveServers || x.events != y.events)
            return false;
    }
    return a.guaranteedInstances == b.guaranteedInstances &&
           a.bestEffortInstances == b.bestEffortInstances &&
           a.violatingServers == b.violatingServers &&
           a.placed == b.placed && a.lost == b.lost &&
           a.events == b.events;
}

TEST(Keyed, GeometricStepsEdgeCases)
{
    // p = 0: the event never happens.
    EXPECT_EQ(keyed::geometricSteps(0.0, 123u), keyed::kNever);
    EXPECT_EQ(keyed::geometricSteps(-1.0, 123u), keyed::kNever);
    // p = 1: the event happens on the very next epoch.
    EXPECT_EQ(keyed::geometricSteps(1.0, 123u), 1);
    EXPECT_EQ(keyed::geometricSteps(2.0, 123u), 1);
    // 0 < p < 1: always at least one step, and a pure function of
    // the hash.
    for (std::uint64_t h = 0; h < 64; ++h) {
        const std::int64_t gap = keyed::geometricSteps(0.25, h);
        EXPECT_GE(gap, 1);
        EXPECT_EQ(gap, keyed::geometricSteps(0.25, h));
    }
}

TEST(Keyed, DrawIsAPureFunctionOfItsKey)
{
    const std::uint64_t a = keyed::draw(7, 1, 42, 3);
    EXPECT_EQ(a, keyed::draw(7, 1, 42, 3));
    EXPECT_NE(a, keyed::draw(7, 1, 42, 4));
    EXPECT_NE(a, keyed::draw(7, 2, 42, 3));
    EXPECT_NE(a, keyed::draw(8, 1, 42, 3));
    const double u = keyed::toUnit(a);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
}

TEST(ShardedCluster, RejectsBadConfiguration)
{
    const MachineClass mc = uniformClass("m", 6, 12, 2);
    // Mismatched classes/counts.
    EXPECT_THROW(ShardedCluster({mc}, {100, 100}),
                 std::invalid_argument);
    // No servers.
    EXPECT_THROW(ShardedCluster({mc}, {0}), std::invalid_argument);
    // More shards than servers.
    EXPECT_THROW(ShardedCluster({mc}, {4}, 8), std::invalid_argument);
    // Latency app needs at least one spare context.
    MachineClass full = mc;
    full.latencyThreads = full.contextsPerServer;
    EXPECT_THROW(ShardedCluster({full}, {100}),
                 std::invalid_argument);
    // Pairing table shorter than the instance capacity.
    MachineClass bad = mc;
    bad.pairings[0].byInstances.pop_back();
    EXPECT_THROW(ShardedCluster({bad}, {100}),
                 std::invalid_argument);

    ShardedCluster ok({mc}, {100}, 4);
    ChurnConfig churn = testChurn();
    churn.probesPerJob = 0;
    EXPECT_THROW(ok.runStream({}, churn, 8), std::invalid_argument);
    churn = testChurn();
    churn.failProb = 1.5;
    EXPECT_THROW(ok.runStream({}, churn, 8), std::invalid_argument);
    EXPECT_THROW(ok.runStream({}, testChurn(), 0),
                 std::invalid_argument);
}

TEST(ShardedCluster, ShardCountDoesNotChangeResults)
{
    const std::vector<MachineClass> classes = {
        uniformClass("big", 6, 12, 3),
        uniformClass("small", 4, 8, 3, 0.03)};
    const std::vector<std::int64_t> mix = {600, 400};
    const TierPolicy tiers{0.90, 0.60};
    const ChurnConfig churn = testChurn();

    ShardedCluster lockstep(classes, mix, 1);
    ShardedCluster sharded4(classes, mix, 4);
    ShardedCluster sharded16(classes, mix, 16);

    const StreamResult a = lockstep.runStream(tiers, churn, 40);
    const StreamResult b = sharded4.runStream(tiers, churn, 40);
    const StreamResult c = sharded16.runStream(tiers, churn, 40);

    // The lockstep full-scan engine and the streaming calendar
    // engine consume the same keyed streams: byte-identical output.
    EXPECT_TRUE(sameRun(a, b));
    EXPECT_TRUE(sameRun(a, c));
    // And the run did something worth comparing.
    EXPECT_GT(a.placed, 0);
    EXPECT_GT(a.failures, 0);
    EXPECT_GT(a.departures, 0);
    EXPECT_GT(a.fillerPlaced, 0);

    // The streaming engine touched the same churn (events counts are
    // part of the timeline equality above) while every incremental
    // aggregate still matches a full recomputation.
    EXPECT_TRUE(lockstep.verifyAggregates());
    EXPECT_TRUE(sharded4.verifyAggregates());
    EXPECT_TRUE(sharded16.verifyAggregates());
}

TEST(ShardedCluster, ThreadCountDoesNotChangeResults)
{
    const std::vector<MachineClass> classes = {
        uniformClass("m", 6, 12, 4)};
    const TierPolicy tiers{0.90, 0.70};
    const ChurnConfig churn = testChurn();

    ShardedCluster serial(classes, {800}, 8);
    serial.setThreads(1);
    ShardedCluster threaded(classes, {800}, 8);
    threaded.setThreads(4);

    EXPECT_TRUE(sameRun(serial.runStream(tiers, churn, 32),
                        threaded.runStream(tiers, churn, 32)));
}

TEST(ShardedCluster, ChurnConservation)
{
    const std::vector<MachineClass> classes = {
        uniformClass("big", 6, 12, 3),
        uniformClass("small", 4, 8, 3, 0.03)};
    ShardedCluster cluster(classes, {500, 300}, 8);
    ChurnConfig churn = testChurn();
    churn.failProb = 0.05;  // heavy churn so every path is exercised
    const StreamResult r =
        cluster.runStream({0.90, 0.60}, churn, 50);

    // Arrivals either land or are rejected.
    EXPECT_EQ(r.arrivals, r.placed + r.rejected);
    // PR 5's conservation identity, streamed: everything placed
    // either departed, was lost to a failure with no admissible
    // re-placement, or is still running.
    EXPECT_EQ(r.placed - r.departures - r.lost, r.guaranteedInstances);
    // Failure evictions either re-placed somewhere admissible or lost.
    EXPECT_EQ(r.evictions, r.replacements + r.lost);
    // Best-effort fillers: net placements equal the final census.
    EXPECT_EQ(r.fillerPlaced - r.fillerEvicted, r.bestEffortInstances);
    // The heavy churn actually exercised the loss path.
    EXPECT_GT(r.evictions, 0);
    EXPECT_GT(r.departures, 0);

    // Final per-server census agrees with the aggregate totals.
    std::int64_t g = 0, b = 0, live = 0;
    for (std::int64_t s = 0; s < cluster.servers(); ++s) {
        if (!cluster.upAt(s)) {
            EXPECT_EQ(cluster.guaranteedAt(s), 0);
            EXPECT_EQ(cluster.bestEffortAt(s), 0);
            continue;
        }
        ++live;
        g += cluster.guaranteedAt(s);
        b += cluster.bestEffortAt(s);
    }
    EXPECT_EQ(live, r.liveServers);
    EXPECT_EQ(g, r.guaranteedInstances);
    EXPECT_EQ(b, r.bestEffortInstances);
    EXPECT_TRUE(cluster.verifyAggregates());
}

TEST(ShardedCluster, PlacementPrefersTheMachineThePredictorTrusts)
{
    // Class "safe" meets the target at every count; class "risky"
    // is predicted to violate from the first instance. Placement
    // probes both (probes span the fleet) and must only ever land
    // guaranteed work on the safe machines.
    MachineClass safe = uniformClass("safe", 6, 12, 1, 0.01, 0.0);
    MachineClass risky = uniformClass("risky", 4, 8, 1, 0.20, 0.0);
    ShardedCluster cluster({safe, risky}, {200, 200}, 4);

    ChurnConfig churn;
    churn.arrivalsPerEpoch = 30;
    churn.probesPerJob = 8;
    churn.seed = 5;
    const StreamResult r = cluster.runStream({0.90, 0.0}, churn, 20);

    EXPECT_GT(r.placed, 0);
    EXPECT_EQ(r.violatingServers, 0);
    for (std::int64_t s = 0; s < cluster.servers(); ++s) {
        if (cluster.machineClassOf(s).name == "risky") {
            EXPECT_EQ(cluster.guaranteedAt(s), 0) << "server " << s;
        }
    }
}

TEST(ShardedCluster, BestEffortFillersYieldToGuaranteedWork)
{
    // One class, QoS good enough that everything is admissible: the
    // best-effort tier fills every spare context at bootstrap, then
    // must drain exactly as guaranteed arrivals claim the contexts.
    MachineClass mc = uniformClass("m", 6, 12, 1, 0.005, 0.0);
    ShardedCluster cluster({mc}, {100}, 4);

    ChurnConfig churn;
    churn.arrivalsPerEpoch = 25;
    churn.probesPerJob = 4;
    churn.seed = 11;
    const StreamResult r = cluster.runStream({0.90, 0.50}, churn, 10);

    // No churn besides arrivals: every context is busy the whole
    // run — fillers occupy whatever guaranteed work has not claimed.
    EXPECT_EQ(r.guaranteedInstances + r.bestEffortInstances,
              static_cast<std::int64_t>(100) * mc.maxInstances());
    EXPECT_EQ(r.placed, 250);
    EXPECT_EQ(r.fillerEvicted, r.placed);
    EXPECT_DOUBLE_EQ(r.utilization(), 1.0);

    // Disabling the best-effort tier leaves the spare contexts idle.
    ShardedCluster no_fill({mc}, {100}, 4);
    const StreamResult r2 =
        no_fill.runStream({0.90, 0.0}, churn, 10);
    EXPECT_EQ(r2.bestEffortInstances, 0);
    EXPECT_EQ(r2.fillerPlaced, 0);
    EXPECT_EQ(r2.guaranteedInstances, r.guaranteedInstances);
}

TEST(ShardedCluster, TimelineAndTotalsAreInternallyConsistent)
{
    const std::vector<MachineClass> classes = {
        uniformClass("m", 6, 12, 2)};
    ShardedCluster cluster(classes, {400}, 4);
    const StreamResult r =
        cluster.runStream({0.90, 0.60}, testChurn(), 25);

    ASSERT_EQ(r.timeline.size(), 25u);
    StreamEpochStats sum;
    for (const auto &row : r.timeline) {
        sum.failures += row.failures;
        sum.recoveries += row.recoveries;
        sum.departures += row.departures;
        sum.arrivals += row.arrivals;
        sum.placed += row.placed;
        sum.rejected += row.rejected;
        sum.evictions += row.evictions;
        sum.replacements += row.replacements;
        sum.lost += row.lost;
        sum.fillerEvicted += row.fillerEvicted;
        sum.events += row.events;
    }
    EXPECT_EQ(sum.failures, r.failures);
    EXPECT_EQ(sum.recoveries, r.recoveries);
    EXPECT_EQ(sum.departures, r.departures);
    EXPECT_EQ(sum.arrivals, r.arrivals);
    EXPECT_EQ(sum.placed, r.placed);
    EXPECT_EQ(sum.replacements, r.replacements);
    EXPECT_EQ(sum.rejected, r.rejected);
    EXPECT_EQ(sum.evictions, r.evictions);
    EXPECT_EQ(sum.lost, r.lost);
    EXPECT_EQ(sum.events, r.events);
    // fillerPlaced totals additionally include the bootstrap fill,
    // which happens before epoch 0.
    const auto &last = r.timeline.back();
    EXPECT_EQ(last.guaranteedInstances, r.guaranteedInstances);
    EXPECT_EQ(last.bestEffortInstances, r.bestEffortInstances);
    EXPECT_EQ(last.liveServers, r.liveServers);
    EXPECT_DOUBLE_EQ(last.utilization, r.utilization());
    EXPECT_DOUBLE_EQ(last.goodputUtilization, r.goodputUtilization());
}

TEST(ShardedCluster, SlowdownBudgetBoundsMaxSlowdown)
{
    // Tables with actual == predicted QoS, slopes 2%..4% per
    // instance. The default budget (1.0) admits anything the 0.90
    // target admits, so the worst co-location sits at 10% slowdown;
    // tightening the budget to 6% raises the admission floor to QoS
    // 0.94 and the final max slowdown must respect it.
    const std::vector<MachineClass> classes = {
        uniformClass("m", 6, 12, 3)};
    const ChurnConfig churn = testChurn();

    ShardedCluster loose(classes, {400}, 4);
    const StreamResult r_loose =
        loose.runStream({0.90, 0.0, 1.0}, churn, 30);
    ShardedCluster tight(classes, {400}, 4);
    const StreamResult r_tight =
        tight.runStream({0.90, 0.0, 0.06}, churn, 30);

    ASSERT_GT(r_loose.coLocatedServers, 0);
    ASSERT_GT(r_tight.coLocatedServers, 0);
    EXPECT_GT(r_loose.maxSlowdown, 0.06);
    EXPECT_LE(r_tight.maxSlowdown, 0.06 + 1e-12);
    EXPECT_LT(r_tight.maxSlowdown, r_loose.maxSlowdown);
    EXPECT_LE(r_tight.slowdownSpread, r_tight.maxSlowdown);
    // Bounding the worst slowdown costs packed capacity.
    EXPECT_LT(r_tight.guaranteedInstances,
              r_loose.guaranteedInstances);

    // The default budget is the pre-fairness policy, byte for byte.
    ShardedCluster defaulted(classes, {400}, 4);
    const StreamResult r_default =
        defaulted.runStream({0.90, 0.0}, churn, 30);
    EXPECT_TRUE(sameRun(r_default, r_loose));
    EXPECT_EQ(r_default.maxSlowdown, r_loose.maxSlowdown);

    // And an out-of-range budget is rejected up front.
    ShardedCluster bad(classes, {400}, 4);
    EXPECT_THROW(bad.runStream({0.90, 0.0, 1.5}, churn, 8),
                 std::invalid_argument);
    EXPECT_THROW(bad.runStream({0.90, 0.0, -0.1}, churn, 8),
                 std::invalid_argument);
}

} // namespace
} // namespace smite::scheduler
