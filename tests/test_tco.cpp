/**
 * @file
 * Tests for the Barroso-Hölzle TCO model.
 */

#include <gtest/gtest.h>

#include "tco/tco.h"

namespace smite::tco {
namespace {

TEST(Tco, ValidatesParameters)
{
    TcoParams p;
    p.serverAmortYears = 0;
    EXPECT_THROW(TcoModel{p}, std::invalid_argument);
    p = TcoParams();
    p.serverPeakWatts = 50;  // below idle
    EXPECT_THROW(TcoModel{p}, std::invalid_argument);
    p = TcoParams();
    p.pue = 0.9;
    EXPECT_THROW(TcoModel{p}, std::invalid_argument);
}

TEST(Tco, PowerInterpolatesBetweenIdleAndPeak)
{
    const TcoModel model;
    const TcoParams &p = model.params();
    EXPECT_NEAR(model.serverPower(0.0), p.serverIdleWatts, 1e-9);
    EXPECT_NEAR(model.serverPower(1.0), p.serverPeakWatts, 1e-9);
    EXPECT_NEAR(model.serverPower(0.5),
                (p.serverIdleWatts + p.serverPeakWatts) / 2, 1e-9);
    EXPECT_THROW(model.serverPower(1.5), std::invalid_argument);
}

TEST(Tco, CostScalesWithServers)
{
    const TcoModel model;
    const double one = model.horizonCost(1000, 0.6);
    const double two = model.horizonCost(2000, 0.6);
    EXPECT_NEAR(two / one, 2.0, 1e-9);
}

TEST(Tco, FewerBusierServersAreCheaper)
{
    // The core consolidation argument: the same work on fewer,
    // better-utilized servers costs less.
    const TcoModel model;
    const double spread = model.horizonCost(2000, 0.5);
    const double packed = model.horizonCost(1500, 0.75);
    EXPECT_LT(packed, spread);
}

TEST(Tco, HigherUtilizationCostsOnlyEnergy)
{
    const TcoModel model;
    const double low = model.horizonCost(1000, 0.5);
    const double high = model.horizonCost(1000, 1.0);
    EXPECT_GT(high, low);
    // The delta must be exactly the extra energy.
    const TcoParams &p = model.params();
    const double extra_watts =
        1000 * (model.serverPower(1.0) - model.serverPower(0.5)) *
        p.pue;
    const double extra_cost = extra_watts / 1000.0 * 24 * 365 *
                              p.horizonYears * p.electricityPerKwh;
    EXPECT_NEAR(high - low, extra_cost, 1e-6);
}

TEST(Tco, PueAmplifiesEnergyAndProvisioning)
{
    TcoParams efficient;
    efficient.pue = 1.1;
    TcoParams wasteful;
    wasteful.pue = 2.0;
    const double cost_eff =
        TcoModel(efficient).horizonCost(1000, 0.6);
    const double cost_bad =
        TcoModel(wasteful).horizonCost(1000, 0.6);
    EXPECT_GT(cost_bad, cost_eff);
}

TEST(Tco, RejectsNegativeServerCount)
{
    EXPECT_THROW(TcoModel().horizonCost(-1, 0.5),
                 std::invalid_argument);
}

} // namespace
} // namespace smite::tco
