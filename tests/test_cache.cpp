/**
 * @file
 * Unit tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace smite::sim {
namespace {

CacheConfig
smallCache(std::uint64_t size = 4 * 1024, int assoc = 4)
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = size;
    config.assoc = assoc;
    config.hitLatency = 3;
    return config;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(42, false).hit);
    EXPECT_TRUE(cache.access(42, false).hit);
    EXPECT_TRUE(cache.probe(42));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.probe(7));
    EXPECT_FALSE(cache.access(7, false).hit);
}

TEST(Cache, GeometryComputed)
{
    SetAssocCache cache(smallCache(8 * 1024, 8));
    // 8 KiB / 64 B = 128 lines, 8-way => 16 sets.
    EXPECT_EQ(cache.numSets(), 16u);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig config = smallCache();
    config.assoc = 0;
    EXPECT_THROW(SetAssocCache{config}, std::invalid_argument);
    config = smallCache(100, 3);  // not a multiple of assoc * 64
    EXPECT_THROW(SetAssocCache{config}, std::invalid_argument);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 set x 2 ways: sizeBytes = 2 lines, assoc 2.
    SetAssocCache cache(smallCache(128, 2));
    cache.access(0, false);
    cache.access(1, false);
    cache.access(0, false);       // 0 is now MRU
    cache.access(2, false);       // evicts 1 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssocCache cache(smallCache(128, 2));  // one set, two ways
    cache.access(10, true);   // dirty
    cache.access(11, false);  // clean
    const auto result = cache.access(12, false);  // evicts 10
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(result.evictedLine, 10u);
}

TEST(Cache, CleanEvictionNotReported)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, false);
    cache.access(11, false);
    const auto result = cache.access(12, false);
    EXPECT_FALSE(result.hit);
    EXPECT_FALSE(result.evictedDirty);
}

TEST(Cache, WriteMarksDirtyOnHit)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, false);   // clean fill
    cache.access(10, true);    // dirty via write hit
    cache.access(11, false);
    const auto result = cache.access(12, false);
    EXPECT_TRUE(result.evictedDirty);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(smallCache());
    for (Addr line = 0; line < 32; ++line)
        cache.access(line, true);
    cache.flush();
    for (Addr line = 0; line < 32; ++line)
        EXPECT_FALSE(cache.probe(line));
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    // 4 sets x 2 ways.
    SetAssocCache cache(smallCache(512, 2));
    // Fill set 0 with three conflicting lines; set 1 untouched.
    cache.access(0, false);
    cache.access(4, false);
    cache.access(8, false);  // evicts line 0
    cache.access(1, false);  // set 1
    EXPECT_FALSE(cache.probe(0));
    EXPECT_TRUE(cache.probe(1));
}

/** Working sets within capacity must fully hit after one pass. */
class CacheResidency
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>>
{
};

TEST_P(CacheResidency, ResidentSetAlwaysHitsAfterWarmup)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache cache(smallCache(size, assoc));
    const std::uint64_t lines = size / kLineBytes;
    for (Addr line = 0; line < lines; ++line)
        cache.access(line, false);
    for (Addr line = 0; line < lines; ++line)
        EXPECT_TRUE(cache.access(line, false).hit) << "line " << line;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheResidency,
    ::testing::Values(std::make_pair(std::uint64_t{1024}, 1),
                      std::make_pair(std::uint64_t{4096}, 2),
                      std::make_pair(std::uint64_t{8192}, 4),
                      std::make_pair(std::uint64_t{32768}, 8),
                      std::make_pair(std::uint64_t{65536}, 16)));

/** Over-subscribed sequential walks must miss every time (LRU). */
TEST(Cache, SequentialOverSubscriptionThrashes)
{
    SetAssocCache cache(smallCache(1024, 2));  // 16 lines
    const Addr lines = 24;                     // 1.5x capacity
    for (int pass = 0; pass < 3; ++pass) {
        int hits = 0;
        for (Addr line = 0; line < lines; ++line)
            hits += cache.access(line, false).hit ? 1 : 0;
        if (pass > 0) {
            EXPECT_EQ(hits, 0) << "pass " << pass;
        }
    }
}

} // namespace
} // namespace smite::sim
