/**
 * @file
 * Unit tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace smite::sim {
namespace {

CacheConfig
smallCache(std::uint64_t size = 4 * 1024, int assoc = 4)
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = size;
    config.assoc = assoc;
    config.hitLatency = 3;
    return config;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(42, false).hit);
    EXPECT_TRUE(cache.access(42, false).hit);
    EXPECT_TRUE(cache.probe(42));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.probe(7));
    EXPECT_FALSE(cache.access(7, false).hit);
}

TEST(Cache, GeometryComputed)
{
    SetAssocCache cache(smallCache(8 * 1024, 8));
    // 8 KiB / 64 B = 128 lines, 8-way => 16 sets.
    EXPECT_EQ(cache.numSets(), 16u);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig config = smallCache();
    config.assoc = 0;
    EXPECT_THROW(SetAssocCache{config}, std::invalid_argument);
    config = smallCache(100, 3);  // not a multiple of assoc * 64
    EXPECT_THROW(SetAssocCache{config}, std::invalid_argument);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 set x 2 ways: sizeBytes = 2 lines, assoc 2.
    SetAssocCache cache(smallCache(128, 2));
    cache.access(0, false);
    cache.access(1, false);
    cache.access(0, false);       // 0 is now MRU
    cache.access(2, false);       // evicts 1 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssocCache cache(smallCache(128, 2));  // one set, two ways
    cache.access(10, true);   // dirty
    cache.access(11, false);  // clean
    const auto result = cache.access(12, false);  // evicts 10
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(result.evictedLine, 10u);
}

TEST(Cache, CleanEvictionNotReported)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, false);
    cache.access(11, false);
    const auto result = cache.access(12, false);
    EXPECT_FALSE(result.hit);
    EXPECT_FALSE(result.evictedDirty);
}

TEST(Cache, WriteMarksDirtyOnHit)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, false);   // clean fill
    cache.access(10, true);    // dirty via write hit
    cache.access(11, false);
    const auto result = cache.access(12, false);
    EXPECT_TRUE(result.evictedDirty);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(smallCache());
    for (Addr line = 0; line < 32; ++line)
        cache.access(line, true);
    cache.flush();
    for (Addr line = 0; line < 32; ++line)
        EXPECT_FALSE(cache.probe(line));
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    // 4 sets x 2 ways.
    SetAssocCache cache(smallCache(512, 2));
    // Fill set 0 with three conflicting lines; set 1 untouched.
    cache.access(0, false);
    cache.access(4, false);
    cache.access(8, false);  // evicts line 0
    cache.access(1, false);  // set 1
    EXPECT_FALSE(cache.probe(0));
    EXPECT_TRUE(cache.probe(1));
}

/** Working sets within capacity must fully hit after one pass. */
class CacheResidency
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>>
{
};

TEST_P(CacheResidency, ResidentSetAlwaysHitsAfterWarmup)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache cache(smallCache(size, assoc));
    const std::uint64_t lines = size / kLineBytes;
    for (Addr line = 0; line < lines; ++line)
        cache.access(line, false);
    for (Addr line = 0; line < lines; ++line)
        EXPECT_TRUE(cache.access(line, false).hit) << "line " << line;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheResidency,
    ::testing::Values(std::make_pair(std::uint64_t{1024}, 1),
                      std::make_pair(std::uint64_t{4096}, 2),
                      std::make_pair(std::uint64_t{8192}, 4),
                      std::make_pair(std::uint64_t{32768}, 8),
                      std::make_pair(std::uint64_t{65536}, 16)));

/** Over-subscribed sequential walks must miss every time (LRU). */
TEST(Cache, SequentialOverSubscriptionThrashes)
{
    SetAssocCache cache(smallCache(1024, 2));  // 16 lines
    const Addr lines = 24;                     // 1.5x capacity
    for (int pass = 0; pass < 3; ++pass) {
        int hits = 0;
        for (Addr line = 0; line < lines; ++line)
            hits += cache.access(line, false).hit ? 1 : 0;
        if (pass > 0) {
            EXPECT_EQ(hits, 0) << "pass " << pass;
        }
    }
}

// ----- Interface pins: the exact replacement semantics the flat ----
// ----- kernels must preserve (fill order, hit recency, dirty -------
// ----- propagation, prefix-fill maintenance). ----------------------

/** Hits reorder recency: the victim is the least recently USED way,
 *  not the least recently filled one. */
TEST(Cache, LruOrderTracksHits)
{
    SetAssocCache cache(smallCache(256, 4));  // one set, four ways
    for (Addr line : {0, 1, 2, 3})
        cache.access(line, false);
    // Touch in an order that makes fill order and recency disagree.
    cache.access(1, false);
    cache.access(0, false);
    cache.access(3, false);  // recency now 2 < 1 < 0 < 3
    EXPECT_EQ(cache.access(4, false).evictedLine, 2u);
    EXPECT_EQ(cache.access(5, false).evictedLine, 1u);
    EXPECT_EQ(cache.access(6, false).evictedLine, 0u);
    EXPECT_EQ(cache.access(7, false).evictedLine, 3u);
}

/** Write misses allocate, and the allocated line is born dirty. */
TEST(Cache, WriteAllocatesDirtyOnMiss)
{
    SetAssocCache cache(smallCache(128, 2));  // one set, two ways
    EXPECT_FALSE(cache.access(10, true).hit);
    EXPECT_TRUE(cache.probe(10));
    cache.access(11, false);
    const auto result = cache.access(12, false);  // evicts 10
    EXPECT_TRUE(result.evictedValid);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(result.evictedLine, 10u);
}

/** An invalidated line takes its dirty bit with it: re-allocating the
 *  same line clean must not resurrect the old dirty state. */
TEST(Cache, InvalidateDropsDirtyBit)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, true);  // dirty
    EXPECT_TRUE(cache.invalidate(10));
    EXPECT_FALSE(cache.probe(10));
    EXPECT_FALSE(cache.invalidate(10));  // already gone
    cache.access(10, false);             // clean refill
    cache.access(11, false);
    const auto result = cache.access(12, false);  // evicts 10
    EXPECT_TRUE(result.evictedValid);
    EXPECT_FALSE(result.evictedDirty);
}

/** probe() must not touch recency: probing the LRU way over and over
 *  must not save it from eviction. */
TEST(Cache, ProbeDoesNotPerturbLru)
{
    SetAssocCache cache(smallCache(128, 2));
    cache.access(10, false);
    cache.access(11, false);  // recency 10 < 11
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.probe(10));
    EXPECT_EQ(cache.access(12, false).evictedLine, 10u);
}

/** insertAbsent() must be indistinguishable from access(line, false)
 *  on a line that is not resident — same victims, same recency, same
 *  dirty reporting — through fill, eviction and reuse. */
TEST(Cache, InsertAbsentMatchesAccessHistory)
{
    SetAssocCache fast(smallCache(256, 4));  // one set, four ways
    SetAssocCache ref(smallCache(256, 4));
    for (Addr line = 0; line < 4; ++line) {
        const auto a = fast.insertAbsent(line);
        const auto b = ref.access(line, false);
        EXPECT_EQ(a.evictedValid, b.evictedValid) << "line " << line;
    }
    // Full set: both caches must pick the same LRU victims from here.
    for (Addr line = 4; line < 12; ++line) {
        const auto a = fast.insertAbsent(line);
        const auto b = ref.access(line, false);
        EXPECT_TRUE(a.evictedValid);
        EXPECT_EQ(a.evictedLine, b.evictedLine) << "line " << line;
        EXPECT_EQ(a.evictedDirty, b.evictedDirty) << "line " << line;
    }
}

/** Invalidating the newest prefix way shortens the fill prefix; the
 *  freed way must be reused by the next absent insert. */
TEST(Cache, InsertAbsentReusesInvalidatedTail)
{
    SetAssocCache cache(smallCache(256, 4));
    cache.insertAbsent(0);
    cache.insertAbsent(1);
    EXPECT_TRUE(cache.invalidate(1));  // drop the newest way
    cache.insertAbsent(2);             // must land in the freed way
    cache.insertAbsent(3);
    cache.insertAbsent(4);             // fills the set (0,2,3,4)
    // A fifth distinct line must evict, not silently overwrite.
    EXPECT_TRUE(cache.insertAbsent(5).evictedValid);
    EXPECT_TRUE(cache.probe(5));
}

/** A hole punched into the middle of the fill prefix must be found
 *  and reused before any valid way is evicted. */
TEST(Cache, InsertAbsentFillsMidPrefixHole)
{
    SetAssocCache cache(smallCache(256, 4));
    for (Addr line = 0; line < 3; ++line)
        cache.insertAbsent(line);
    EXPECT_TRUE(cache.invalidate(0));  // hole below ways 1 and 2
    EXPECT_FALSE(cache.insertAbsent(10).evictedValid);
    EXPECT_FALSE(cache.insertAbsent(11).evictedValid);
    // Now genuinely full: 1, 2, 10, 11 all resident.
    for (Addr line : {1, 2, 10, 11})
        EXPECT_TRUE(cache.probe(line)) << "line " << line;
    EXPECT_TRUE(cache.insertAbsent(12).evictedValid);
}

/** Mixed access()/insertAbsent()/invalidate() histories agree with a
 *  pure access() reference on every observable outcome. */
TEST(Cache, InsertAbsentMixedHistoryEquivalence)
{
    SetAssocCache fast(smallCache(512, 2));  // 4 sets x 2 ways
    SetAssocCache ref(smallCache(512, 2));
    std::uint64_t x = 12345;
    for (int i = 0; i < 20'000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Addr line = (x >> 33) % 24;
        const int op = static_cast<int>((x >> 29) & 7);
        if (op < 4) {
            const bool write = (x >> 27 & 1) != 0;
            const auto a = fast.access(line, write);
            const auto b = ref.access(line, write);
            ASSERT_EQ(a.hit, b.hit) << "step " << i;
            ASSERT_EQ(a.evictedValid, b.evictedValid) << "step " << i;
            ASSERT_EQ(a.evictedDirty, b.evictedDirty) << "step " << i;
        } else if (op < 6) {
            // insertAbsent is only legal on absent lines.
            if (!fast.probe(line)) {
                const auto a = fast.insertAbsent(line);
                const auto b = ref.access(line, false);
                ASSERT_EQ(a.evictedValid, b.evictedValid)
                    << "step " << i;
                ASSERT_EQ(a.evictedDirty, b.evictedDirty)
                    << "step " << i;
                ASSERT_EQ(a.evictedLine, b.evictedLine)
                    << "step " << i;
            }
        } else if (op < 7) {
            ASSERT_EQ(fast.invalidate(line), ref.invalidate(line))
                << "step " << i;
        } else {
            ASSERT_EQ(fast.probe(line), ref.probe(line))
                << "step " << i;
        }
    }
}

} // namespace
} // namespace smite::sim
