/**
 * @file
 * Tests of the Ruler characterization protocol (Equations 1-2) and
 * the paper's qualitative findings about decoupled sensitivity.
 *
 * These run real (short) simulations, so tolerances are loose; the
 * assertions encode *orderings*, the same way the paper's findings
 * are stated.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

/** One shared lab with short windows keeps this suite fast. */
Lab &
lab()
{
    static Lab instance(sim::MachineConfig::ivyBridge(), 20000, 80000);
    return instance;
}

TEST(Characterize, ValuesAreBoundedFractions)
{
    const auto &c = lab().characterization(
        workload::spec2006::byName("450.soplex"), CoLocationMode::kSmt);
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        EXPECT_GT(c.sensitivity[d], -0.15) << "dim " << d;
        EXPECT_LT(c.sensitivity[d], 1.0) << "dim " << d;
        EXPECT_GT(c.contentiousness[d], -0.15) << "dim " << d;
        EXPECT_LT(c.contentiousness[d], 1.0) << "dim " << d;
    }
}

TEST(Characterize, NamdIsPortOneSensitive)
{
    // Paper Finding 2/Figure 2: 444.namd suffers heavily from FP_ADD
    // (port 1) contention but is nearly immune to FP_MUL (port 0).
    const auto &c = lab().characterization(
        workload::spec2006::byName("444.namd"), CoLocationMode::kSmt);
    const int p0 = rulers::dimensionIndex(rulers::Dimension::kFpMul);
    const int p1 = rulers::dimensionIndex(rulers::Dimension::kFpAdd);
    EXPECT_GT(c.sensitivity[p1], 0.2);
    EXPECT_GT(c.sensitivity[p1], 5 * c.sensitivity[p0]);
}

TEST(Characterize, CalculixIsPortZeroContentious)
{
    // Paper Finding 4: 454.calculix is more contentious on port 0
    // than 470.lbm, which leans on port 1.
    const auto &calculix = lab().characterization(
        workload::spec2006::byName("454.calculix"),
        CoLocationMode::kSmt);
    const auto &lbm = lab().characterization(
        workload::spec2006::byName("470.lbm"), CoLocationMode::kSmt);
    const int p0 = rulers::dimensionIndex(rulers::Dimension::kFpMul);
    const int p1 = rulers::dimensionIndex(rulers::Dimension::kFpAdd);
    EXPECT_GT(calculix.contentiousness[p0], lbm.contentiousness[p0]);
    EXPECT_GT(lbm.contentiousness[p1], lbm.contentiousness[p0]);
}

TEST(Characterize, McfIsPortInsensitiveButMemoryActive)
{
    // Paper Figure 2: 429.mcf suffers ~6% from port contention while
    // others suffer up to 70%; its action is in the memory system.
    const auto &c = lab().characterization(
        workload::spec2006::byName("429.mcf"), CoLocationMode::kSmt);
    const int p0 = rulers::dimensionIndex(rulers::Dimension::kFpMul);
    const int p1 = rulers::dimensionIndex(rulers::Dimension::kFpAdd);
    const int l3 = rulers::dimensionIndex(rulers::Dimension::kL3);
    EXPECT_LT(c.sensitivity[p0], 0.05);
    EXPECT_LT(c.sensitivity[p1], 0.05);
    EXPECT_GT(c.contentiousness[l3], 0.1);
}

TEST(Characterize, CmpModeDropsCoreLevelSensitivity)
{
    // On CMP co-location only L3/DRAM are shared: port sensitivity
    // must collapse relative to SMT for a port-bound application.
    const auto &profile = workload::spec2006::byName("444.namd");
    const auto &smt =
        lab().characterization(profile, CoLocationMode::kSmt);
    const auto &cmp =
        lab().characterization(profile, CoLocationMode::kCmp);
    const int p1 = rulers::dimensionIndex(rulers::Dimension::kFpAdd);
    EXPECT_LT(cmp.sensitivity[p1], 0.3 * smt.sensitivity[p1] + 0.02);
}

TEST(Characterize, CachedCharacterizationIsStable)
{
    const auto &profile = workload::spec2006::byName("401.bzip2");
    const auto &a =
        lab().characterization(profile, CoLocationMode::kSmt);
    const auto &b =
        lab().characterization(profile, CoLocationMode::kSmt);
    EXPECT_EQ(&a, &b);  // same cached object
}

TEST(Characterize, RejectsBadThreadCounts)
{
    const Characterizer &chr = lab().characterizer();
    const auto &profile = workload::spec2006::byName("401.bzip2");
    EXPECT_THROW(chr.characterize(profile, CoLocationMode::kSmt, 0),
                 std::invalid_argument);
    EXPECT_THROW(chr.characterize(profile, CoLocationMode::kSmt, 99),
                 std::invalid_argument);
    // CMP needs twice the cores.
    const int cores = lab().machine().config().numCores;
    EXPECT_THROW(
        chr.characterize(profile, CoLocationMode::kCmp, cores),
        std::invalid_argument);
}

TEST(Lab, PairDegradationSymmetricCaching)
{
    const auto &a = workload::spec2006::byName("401.bzip2");
    const auto &b = workload::spec2006::byName("403.gcc");
    const double d1 = lab().pairDegradation(a, b, CoLocationMode::kSmt);
    const double d2 = lab().pairDegradation(b, a, CoLocationMode::kSmt);
    // Both directions were filled by one run; re-query is consistent.
    EXPECT_EQ(d1, lab().pairDegradation(a, b, CoLocationMode::kSmt));
    EXPECT_EQ(d2, lab().pairDegradation(b, a, CoLocationMode::kSmt));
}

TEST(Lab, ScaleToInstancesIsLinear)
{
    EXPECT_NEAR(Lab::scaleToInstances(0.3, 3, 6), 0.15, 1e-12);
    EXPECT_NEAR(Lab::scaleToInstances(0.3, 6, 6), 0.3, 1e-12);
    EXPECT_THROW(Lab::scaleToInstances(0.3, 1, 0),
                 std::invalid_argument);
}

TEST(Lab, MultiInstanceDegradationGrowsWithInstances)
{
    // More batch instances cannot systematically help the latency
    // app (paper Figure 12's measured bars grow with instances).
    Lab small(sim::MachineConfig::ivyBridge(), 10000, 40000);
    const auto &latency = workload::spec2006::byName("453.povray");
    const auto &batch = workload::spec2006::byName("470.lbm");
    const double d1 = small.multiInstanceDegradation(
        latency, 4, batch, 1, CoLocationMode::kSmt);
    const double d4 = small.multiInstanceDegradation(
        latency, 4, batch, 4, CoLocationMode::kSmt);
    EXPECT_GT(d4, d1 - 0.02);
}

TEST(Lab, MultiInstanceValidatesShapes)
{
    Lab small(sim::MachineConfig::ivyBridge(), 1000, 2000);
    const auto &a = workload::spec2006::byName("453.povray");
    const auto &b = workload::spec2006::byName("470.lbm");
    EXPECT_THROW(small.multiInstanceDegradation(
                     a, 4, b, 5, CoLocationMode::kSmt),
                 std::invalid_argument);
    EXPECT_THROW(small.multiInstanceDegradation(
                     a, 3, b, 2, CoLocationMode::kCmp),
                 std::invalid_argument);
}

} // namespace
} // namespace smite::core
