/**
 * @file
 * Tests for the parallel measurement engine: the ThreadPool /
 * parallelFor primitives, the determinism contract of the Lab batch
 * APIs (parallel == serial, byte for byte), the single-flight
 * guarantee of the memo caches, and the SMITE_THREADS=1 serial path.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/memo_cache.h"
#include "core/parallel.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

/** Scoped SMITE_THREADS override. */
class ScopedThreadsEnv
{
  public:
    explicit ScopedThreadsEnv(const char *value)
    {
        const char *old = std::getenv("SMITE_THREADS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            setenv("SMITE_THREADS", value, 1);
        else
            unsetenv("SMITE_THREADS");
    }
    ~ScopedThreadsEnv()
    {
        if (had_)
            setenv("SMITE_THREADS", old_.c_str(), 1);
        else
            unsetenv("SMITE_THREADS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

std::vector<workload::WorkloadProfile>
smallSet()
{
    return {workload::spec2006::byName("401.bzip2"),
            workload::spec2006::byName("429.mcf"),
            workload::spec2006::byName("453.povray"),
            workload::spec2006::byName("470.lbm")};
}

constexpr sim::Cycle kWarmup = 2'000;
constexpr sim::Cycle kMeasure = 8'000;

TEST(ParallelFor, RunsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(
        hits.size(),
        [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        4);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, AssembledResultsMatchSerial)
{
    std::vector<double> serial(100), parallel(100);
    const auto f = [](std::size_t i) {
        return static_cast<double>(i * i) * 0.25 + 1.0;
    };
    for (std::size_t i = 0; i < serial.size(); ++i)
        serial[i] = f(i);
    parallelFor(
        parallel.size(),
        [&](std::size_t i) { parallel[i] = f(i); }, 8);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        parallelFor(
            16,
            [](std::size_t i) {
                if (i == 7)
                    throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
}

TEST(ParallelFor, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(50, [&](std::size_t i) {
            sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 49 * 50 / 2);
    }
}

TEST(ParallelFor, SmiteThreadsOneDegradesToSerialPath)
{
    ScopedThreadsEnv env("1");
    EXPECT_EQ(defaultThreadCount(), 1);
    // With one thread every iteration runs inline on the caller.
    const auto caller = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    parallelFor(32, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), caller);
}

TEST(ParallelFor, SmiteThreadsEnvOverridesWidth)
{
    ScopedThreadsEnv env("5");
    EXPECT_EQ(defaultThreadCount(), 5);
    Lab lab(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    EXPECT_EQ(lab.parallelism(), 5);
    lab.setParallelism(2);
    EXPECT_EQ(lab.parallelism(), 2);
}

TEST(MemoCache, SingleFlightUnderContention)
{
    MemoCache<int, int> cache;
    std::atomic<int> computed{0};
    std::vector<std::thread> threads;
    std::vector<int> results(8, -1);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            results[t] = cache.getOrCompute(42, [&] {
                computed.fetch_add(1);
                // Widen the race window so waiters really pile up.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return 1234;
            });
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(cache.computeCount(), 1u);
    for (int r : results)
        EXPECT_EQ(r, 1234);
}

TEST(MemoCache, FailedComputeDoesNotPoisonKey)
{
    MemoCache<int, int> cache;
    int calls = 0;
    // First flight throws: the exception reaches the caller and the
    // key must NOT be cached as a permanent failure.
    EXPECT_THROW(cache.getOrCompute(7,
                                    [&]() -> int {
                                        ++calls;
                                        throw std::runtime_error(
                                            "transient");
                                    }),
                 std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.peek(7), nullptr);
    // A retry recomputes and succeeds.
    const int value = cache.getOrCompute(7, [&] {
        ++calls;
        return 99;
    });
    EXPECT_EQ(value, 99);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(cache.computeCount(), 2u);
    ASSERT_NE(cache.peek(7), nullptr);
    EXPECT_EQ(*cache.peek(7), 99);
}

TEST(MemoCache, WaitersObserveFlightExceptionAndKeyStaysRetryable)
{
    MemoCache<int, int> cache;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            try {
                cache.getOrCompute(1, [&]() -> int {
                    // Let the other threads join the flight as
                    // waiters before it fails.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    throw std::runtime_error("flight failed");
                });
            } catch (const std::runtime_error &) {
                failures.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Every thread — the computing one and all waiters on the same
    // flight — sees the failure. Some threads may have started fresh
    // flights after the first was erased, so at least one compute ran
    // and every thread failed.
    EXPECT_EQ(failures.load(), 8);
    EXPECT_GE(cache.computeCount(), 1u);
    EXPECT_EQ(cache.size(), 0u);
    // The key recovers on the next call.
    EXPECT_EQ(cache.getOrCompute(1, [] { return 5; }), 5);
}

TEST(Lab, CharacterizeAllMatchesSerialExactly)
{
    const auto profiles = smallSet();
    const auto mode = CoLocationMode::kSmt;

    Lab serial(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    serial.setParallelism(1);
    Lab parallel(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    parallel.setParallelism(4);

    const auto batch = parallel.characterizeAll(profiles, mode);
    ASSERT_EQ(batch.size(), profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const Characterization &ref =
            serial.characterization(profiles[i], mode);
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            EXPECT_EQ(batch[i].sensitivity[d], ref.sensitivity[d]);
            EXPECT_EQ(batch[i].contentiousness[d],
                      ref.contentiousness[d]);
        }
    }
}

TEST(Lab, MeasureAllPairsMatchesSerialExactly)
{
    const auto profiles = smallSet();
    const auto mode = CoLocationMode::kSmt;

    Lab serial(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    serial.setParallelism(1);
    Lab parallel(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    parallel.setParallelism(4);

    const auto matrix = parallel.measureAllPairs(profiles, mode);
    ASSERT_EQ(matrix.size(), profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = 0; j < profiles.size(); ++j) {
            if (i == j) {
                EXPECT_EQ(matrix[i][j], 0.0);
                continue;
            }
            EXPECT_EQ(matrix[i][j],
                      serial.pairDegradation(profiles[i], profiles[j],
                                             mode));
        }
    }
    // One simulation per unordered pair, not per ordered pair.
    const std::size_t n = profiles.size();
    EXPECT_EQ(parallel.stats().pairs, n * (n - 1) / 2);
}

TEST(Lab, SoloIpcAllMatchesSerialExactly)
{
    const auto profiles = smallSet();
    Lab serial(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    serial.setParallelism(1);
    Lab parallel(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    parallel.setParallelism(4);

    const auto batch = parallel.soloIpcAll(profiles);
    ASSERT_EQ(batch.size(), profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        EXPECT_EQ(batch[i], serial.soloIpc(profiles[i]));
}

TEST(Lab, ConcurrentCacheHitsSimulateOnce)
{
    Lab lab(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    const auto &a = workload::spec2006::byName("401.bzip2");
    const auto &b = workload::spec2006::byName("429.mcf");

    std::vector<std::thread> threads;
    std::vector<double> results(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            results[t] =
                lab.pairDegradation(a, b, CoLocationMode::kSmt);
        });
    }
    for (auto &th : threads)
        th.join();

    for (double r : results)
        EXPECT_EQ(r, results[0]);
    // Single flight: one pair simulation and one solo per workload,
    // no matter how many threads raced on the same key.
    const Lab::Stats stats = lab.stats();
    EXPECT_EQ(stats.pairs, 1u);
    EXPECT_EQ(stats.solo_ipc, 2u);
}

TEST(Lab, ConcurrentCharacterizationsSimulateOnce)
{
    Lab lab(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    const auto &a = workload::spec2006::byName("453.povray");

    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&] {
            lab.characterization(a, CoLocationMode::kSmt);
        });
    }
    for (auto &th : threads)
        th.join();

    const Lab::Stats stats = lab.stats();
    EXPECT_EQ(stats.characterizations, 1u);
    EXPECT_EQ(stats.ruler_baselines,
              static_cast<std::uint64_t>(rulers::kNumDimensions));
}

TEST(Lab, PairDirectionIndependentOfCallOrder)
{
    // The canonical (name-ordered) simulation makes both directions
    // of a pair identical regardless of which is asked first.
    const auto &a = workload::spec2006::byName("401.bzip2");
    const auto &b = workload::spec2006::byName("429.mcf");
    Lab forward(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);
    Lab backward(sim::MachineConfig::ivyBridge(), kWarmup, kMeasure);

    const double f_ab =
        forward.pairDegradation(a, b, CoLocationMode::kSmt);
    const double b_ba =
        backward.pairDegradation(b, a, CoLocationMode::kSmt);
    EXPECT_EQ(f_ab,
              backward.pairDegradation(a, b, CoLocationMode::kSmt));
    EXPECT_EQ(b_ba,
              forward.pairDegradation(b, a, CoLocationMode::kSmt));
}

} // namespace
} // namespace smite::core
