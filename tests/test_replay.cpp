/**
 * @file
 * Byte-identity suite for the run-level replay subsystem
 * (sim/replay.h): interval memoization in the ReplayStore, warm-state
 * L3 snapshots in the SnapshotStore, and the `sim.replay` chaos site
 * that forces random runs down the live path.
 *
 * The contract under test is the one docs/ROBUSTNESS.md states for
 * the whole simulator: turning the stores on or off (or having a
 * chaos fault knock individual runs back to live execution) must not
 * change a single byte of any run's counters.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/replay.h"
#include "workload/generator.h"
#include "workload/rng.h"
#include "workload/spec2006.h"
#include "workload/trace_file.h"

namespace smite::sim {
namespace {

/** Restore the process-wide replay switch on scope exit. */
struct ReplayGuard {
    explicit ReplayGuard(bool on) : prev(setReplayEnabled(on)) {}
    ~ReplayGuard() { setReplayEnabled(prev); }
    bool prev;
};

constexpr int kNumFields = 23;

std::array<std::uint64_t, kNumFields>
flatten(const CounterBlock &c)
{
    return {c.cycles,          c.uops,
            c.portIssued[0],   c.portIssued[1],
            c.portIssued[2],   c.portIssued[3],
            c.portIssued[4],   c.portIssued[5],
            c.loads,           c.stores,
            c.branches,        c.branchMispredicts,
            c.l1dHits,         c.l1dMisses,
            c.l2Hits,          c.l2Misses,
            c.l3Hits,          c.l3Misses,
            c.icacheMisses,    c.itlbMisses,
            c.dtlbLoadMisses,  c.dtlbStoreMisses,
            c.fetchStallCycles};
}

std::uint64_t
counter(const std::string &name)
{
    return obs::Registry::global().counter(name).value();
}

void
expectSameResults(const std::vector<CounterBlock> &got,
                  const std::vector<CounterBlock> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < got.size(); ++p)
        EXPECT_EQ(flatten(got[p]), flatten(want[p])) << "placement " << p;
}

// ===================================================================
// Replay-vs-live machine equivalence: randomized shapes.
// ===================================================================

/**
 * The replay analogue of EventDrivenEquivalence (test_golden_sim):
 * random machine shapes, workload mixes and interval lengths, each
 * run three ways — live (stores disabled), replay-computing (stores
 * enabled, first sighting of the key) and replay-hit (stores enabled,
 * repeat of the key) — with every counter required to match exactly.
 */
TEST(ReplayEquivalence, RandomShapesMatchLivePath)
{
    const auto &pool = workload::spec2006::all();
    workload::Rng rng(0x5E9'1A7B3ull);
    ReplayGuard guard(true);

    constexpr int kTrials = 12;
    for (int t = 0; t < kTrials; ++t) {
        SCOPED_TRACE("trial " + std::to_string(t));

        MachineConfig config = (rng.nextU64() & 1) != 0
                                   ? MachineConfig::ivyBridge()
                                   : MachineConfig::sandyBridgeEN();
        if ((rng.nextU64() & 3) == 0)
            config.contextsPerCore = 4;
        if ((rng.nextU64() & 3) == 0)
            config.inclusiveL3 = true;
        if ((rng.nextU64() & 3) == 0)
            config.l2NextLinePrefetch = true;
        if ((rng.nextU64() & 3) == 0)
            config.core.fetchPolicy = FetchPolicy::kIcount;
        // Vary a latency so every trial gets a distinct config digest
        // (fresh replay keys even across repeated shape draws).
        config.dram.accessLatency += t;

        const int n_streams = 1 + static_cast<int>(rng.nextU64() % 4);
        std::vector<std::pair<int, int>> slots;
        for (int c = 0; c < config.numCores; ++c)
            for (int k = 0; k < config.contextsPerCore; ++k)
                slots.emplace_back(c, k);
        for (std::size_t i = slots.size(); i > 1; --i)
            std::swap(slots[i - 1], slots[rng.nextU64() % i]);

        std::vector<const workload::WorkloadProfile *> profiles;
        for (int i = 0; i < n_streams; ++i)
            profiles.push_back(&pool[rng.nextU64() % pool.size()]);

        const Cycle warmup = rng.nextU64() % 2'000;
        const Cycle measure = 500 + rng.nextU64() % 4'000;

        // Fresh sources per run: identical (profile, seed) pairs give
        // identical stream digests, so the replay key repeats even
        // though the objects don't.
        const auto run_once = [&](bool replay) {
            ReplayGuard inner(replay);
            Machine machine(config);
            std::vector<workload::ProfileUopSource> sources;
            sources.reserve(profiles.size());
            for (const auto *p : profiles)
                sources.emplace_back(*p);
            std::vector<Placement> placements;
            for (int i = 0; i < n_streams; ++i) {
                placements.push_back(Placement{
                    slots[i].first, slots[i].second, &sources[i]});
            }
            return machine.run(placements, warmup, measure);
        };

        const auto live = run_once(false);
        const auto computed = run_once(true);   // first sighting
        const auto replayed = run_once(true);   // store hit
        expectSameResults(computed, live);
        expectSameResults(replayed, live);
    }
}

/** A repeated run is served out of the store, and bit-identically. */
TEST(ReplayStore, RepeatRunsHitAndMatch)
{
    ReplayGuard guard(true);
    const Machine machine(MachineConfig::ivyBridge());

    const auto run_solo = [&] {
        workload::ProfileUopSource app(
            workload::spec2006::byName("456.hmmer"));
        // Distinct warmup from every other test in this binary keeps
        // the key's first sighting inside this test.
        return machine.runSolo(app, 2'017, 3'000);
    };

    const std::uint64_t hits0 = counter("machine.replay.hits");
    const std::uint64_t restored0 =
        counter("machine.replay.bytes_restored");
    const auto first = run_solo();
    const auto second = run_solo();
    EXPECT_EQ(counter("machine.replay.hits"), hits0 + 1);
    EXPECT_GT(counter("machine.replay.bytes_restored"), restored0);
    EXPECT_EQ(flatten(first), flatten(second));
}

/** The kill-switch really kills: no store traffic when disabled. */
TEST(ReplayStore, DisabledPathTouchesNoStores)
{
    ReplayGuard guard(false);
    const Machine machine(MachineConfig::ivyBridge());

    const std::uint64_t hits0 = counter("machine.replay.hits");
    const std::uint64_t misses0 = counter("machine.replay.misses");
    const std::uint64_t snap_h0 = counter("machine.snapshot.hits");
    const std::uint64_t snap_m0 = counter("machine.snapshot.misses");
    for (int i = 0; i < 2; ++i) {
        workload::ProfileUopSource app(
            workload::spec2006::byName("470.lbm"));
        machine.runSolo(app, 500, 1'500);
    }
    EXPECT_EQ(counter("machine.replay.hits"), hits0);
    EXPECT_EQ(counter("machine.replay.misses"), misses0);
    EXPECT_EQ(counter("machine.snapshot.hits"), snap_h0);
    EXPECT_EQ(counter("machine.snapshot.misses"), snap_m0);
}

/**
 * Trace replays carry a contents-based digest, so machine runs over
 * them are replay-eligible like every other production source.
 */
TEST(ReplayStore, TraceReplaySourceHasStableDigest)
{
    std::vector<Uop> uops;
    workload::Rng rng(0x7712ull);
    for (int i = 0; i < 64; ++i) {
        Uop u;
        u.type = static_cast<UopType>(
            rng.nextU64() % static_cast<std::uint64_t>(
                                UopType::kNumTypes));
        u.srcDist1 = static_cast<int>(rng.nextU64() % 8);
        u.addr = rng.nextU64() % 4096;
        u.pc = 64 * i;
        uops.push_back(u);
    }

    const workload::TraceReplaySource a(uops);
    EXPECT_NE(a.streamDigest(), 0u);
    // Same contents, distinct object: same digest.
    const workload::TraceReplaySource b(uops);
    EXPECT_EQ(a.streamDigest(), b.streamDigest());
    // Any content mutation must move the digest.
    auto mutated = uops;
    mutated[10].addr ^= 1;
    const workload::TraceReplaySource c(std::move(mutated));
    EXPECT_NE(a.streamDigest(), c.streamDigest());

    // And the machine keys on it: a repeated run over a fresh source
    // with the same contents is a store hit, byte-identically.
    ReplayGuard guard(true);
    const Machine machine(MachineConfig::ivyBridge());
    const auto run_trace = [&] {
        workload::TraceReplaySource src(uops);
        // Warmup distinct from every other test in this binary keeps
        // the key's first sighting here.
        return machine.runSolo(src, 2'029, 3'100);
    };
    const std::uint64_t hits0 = counter("machine.replay.hits");
    const auto first = run_trace();
    const auto second = run_trace();
    EXPECT_EQ(counter("machine.replay.hits"), hits0 + 1);
    EXPECT_EQ(flatten(first), flatten(second));
}

/**
 * The run-level store is process-wide: a second Lab with the same
 * configuration and intervals replays the first Lab's runs instead of
 * re-simulating (the fig10 replay-audit phase relies on exactly
 * this), and the results agree bit for bit.
 */
TEST(ReplayStore, CrossLabRunsReplay)
{
    ReplayGuard guard(true);
    const auto &a = workload::spec2006::byName("456.hmmer");
    const auto &b = workload::spec2006::byName("470.lbm");

    core::Lab first(MachineConfig::ivyBridge(), 2'039, 3'300);
    const double d1 =
        first.pairDegradation(a, b, core::CoLocationMode::kSmt);

    const std::uint64_t hits0 = counter("machine.replay.hits");
    core::Lab second(MachineConfig::ivyBridge(), 2'039, 3'300);
    const double d2 =
        second.pairDegradation(a, b, core::CoLocationMode::kSmt);
    // One solo run + one pair run, both replayed.
    EXPECT_GE(counter("machine.replay.hits"), hits0 + 2);
    EXPECT_EQ(d1, d2);
}

/** Reference-ticking runs bypass the stores entirely. */
TEST(ReplayStore, ReferenceTickingBypasses)
{
    ReplayGuard guard(true);
    Machine machine(MachineConfig::ivyBridge());
    machine.setReferenceTicking(true);

    const std::uint64_t hits0 = counter("machine.replay.hits");
    const std::uint64_t misses0 = counter("machine.replay.misses");
    workload::ProfileUopSource app(
        workload::spec2006::byName("456.hmmer"));
    machine.runSolo(app, 300, 1'000);
    EXPECT_EQ(counter("machine.replay.hits"), hits0);
    EXPECT_EQ(counter("machine.replay.misses"), misses0);
}

// ===================================================================
// Warm-state snapshot round trips.
// ===================================================================

/**
 * Capture-and-adopt must be observably lossless: an adopted fresh
 * array and the array the snapshot came from answer a long randomized
 * access/probe/invalidate trace identically, outcome by outcome.
 */
TEST(SnapshotRoundTrip, AdoptedArrayMatchesOriginal)
{
    workload::Rng rng(0xCAFE'1234ull);
    const CacheConfig configs[] = {
        {"snap8", 64 * 1024, 8, 30},
        {"snap6", 36 * 1024, 6, 30},  // non-pow2 set count
    };
    for (const CacheConfig &config : configs) {
        SCOPED_TRACE(config.name);
        SetAssocCache original(config);

        // Warm trace: enough traffic to fill sets, break some prefix
        // trackers and leave dirty lines behind.
        const std::uint64_t span = 4 * config.sizeBytes / kLineBytes;
        for (int i = 0; i < 20'000; ++i)
            original.access(rng.nextU64() % span, (rng.nextU64() & 1));
        for (int i = 0; i < 64; ++i)
            original.invalidate(rng.nextU64() % span);

        const auto snap = original.captureSnapshot();
        ASSERT_NE(snap, nullptr);
        EXPECT_GT(snap->bytes(), 0u);

        // Probe-only adoption: reads come straight from the image, so
        // nothing is materialized.
        {
            SetAssocCache probe_only(config);
            probe_only.adoptSnapshot(snap);
            for (Addr line = 0; line < span; line += 7)
                EXPECT_EQ(probe_only.probe(line), original.probe(line))
                    << "line " << line;
            EXPECT_EQ(probe_only.snapshotRestoredBytes(), 0u);
        }

        // Full adoption: identical subsequent trace, identical
        // outcomes (hits, victims, dirty write-backs, probes).
        SetAssocCache adopted(config);
        adopted.adoptSnapshot(snap);
        for (int i = 0; i < 30'000; ++i) {
            const Addr line = rng.nextU64() % span;
            const std::uint64_t op = rng.nextU64() % 8;
            if (op < 6) {
                const auto a = original.access(line, (op & 1) != 0);
                const auto b = adopted.access(line, (op & 1) != 0);
                ASSERT_EQ(a.hit, b.hit) << "op " << i;
                ASSERT_EQ(a.evictedValid, b.evictedValid) << "op " << i;
                ASSERT_EQ(a.evictedDirty, b.evictedDirty) << "op " << i;
                ASSERT_EQ(a.evictedLine, b.evictedLine) << "op " << i;
            } else if (op == 6) {
                ASSERT_EQ(original.probe(line), adopted.probe(line))
                    << "op " << i;
            } else {
                ASSERT_EQ(original.invalidate(line),
                          adopted.invalidate(line))
                    << "op " << i;
            }
        }
        // Lazy restore never copies more than the image holds.
        EXPECT_GT(adopted.snapshotRestoredBytes(), 0u);
        EXPECT_LT(adopted.snapshotRestoredBytes(), snap->bytes());

        // flush() drops the image: both arrays are empty again and
        // keep agreeing from scratch.
        original.flush();
        adopted.flush();
        for (int i = 0; i < 500; ++i) {
            const Addr line = rng.nextU64() % span;
            const auto a = original.access(line, false);
            const auto b = adopted.access(line, false);
            ASSERT_EQ(a.hit, b.hit) << "post-flush op " << i;
        }
    }
}

/**
 * Restored-byte accounting is per adoption and can legitimately
 * exceed the image size when many arrays adopt one snapshot; the
 * first-touch (unique) count must not. First adopter: every
 * materialized set is a first touch. Second adopter of the same
 * image: restores the same sets again, zero new unique bytes.
 */
TEST(SnapshotRoundTrip, UniqueMaterializationIsFirstTouchOnly)
{
    const CacheConfig config{"snapu", 64 * 1024, 8, 30};
    SetAssocCache original(config);
    const std::uint64_t span = 2 * config.sizeBytes / kLineBytes;
    workload::Rng rng(0xBEEF'77ull);
    for (int i = 0; i < 20'000; ++i)
        original.access(rng.nextU64() % span, (rng.nextU64() & 1));

    const auto snap = original.captureSnapshot();
    ASSERT_NE(snap, nullptr);

    SetAssocCache first(config);
    first.adoptSnapshot(snap);
    for (Addr line = 0; line < span; ++line)
        first.access(line, false);
    EXPECT_GT(first.snapshotFirstTouchBytes(), 0u);
    EXPECT_EQ(first.snapshotFirstTouchBytes(),
              first.snapshotRestoredBytes());
    EXPECT_LE(first.snapshotFirstTouchBytes(), snap->bytes());

    SetAssocCache second(config);
    second.adoptSnapshot(snap);
    for (Addr line = 0; line < span; ++line)
        second.access(line, false);
    EXPECT_EQ(second.snapshotRestoredBytes(),
              first.snapshotRestoredBytes());
    EXPECT_EQ(second.snapshotFirstTouchBytes(), 0u);

    // The machine-level mirror of the same invariant: cumulative
    // unique bytes never exceed cumulative captured bytes (restored
    // bytes can, which is why the two counters are split).
    EXPECT_LE(counter("machine.snapshot.bytes_materialized_unique"),
              counter("machine.snapshot.bytes_captured"));
}

// ===================================================================
// `sim.replay` chaos determinism.
// ===================================================================

/**
 * The keyed `sim.replay` fault site forces runs down the live path.
 * Because replay is byte-identical by contract, a chaos run — any
 * probability, any seed — must still match the memo-off run exactly,
 * and the injections must be visible on the fault counters.
 */
TEST(ReplayChaos, ForcedLiveRunsStayByteIdentical)
{
    fault::FaultPlan &plan = fault::FaultPlan::global();
    plan.reset();
    const Machine machine(MachineConfig::ivyBridge());

    const auto run_pair = [&](Cycle measure) {
        workload::ProfileUopSource a(
            workload::spec2006::byName("456.hmmer"));
        workload::ProfileUopSource b(
            workload::spec2006::byName("433.milc"));
        return machine.runPairSmt(a, b, 700, measure);
    };

    // Baseline outcomes with the stores off and no faults armed.
    std::vector<std::vector<CounterBlock>> want;
    {
        ReplayGuard off(false);
        for (int i = 0; i < 6; ++i)
            want.push_back(run_pair(1'200 + 61 * i));
    }

    for (const double p : {1.0, 0.5}) {
        SCOPED_TRACE("p=" + std::to_string(p));
        fault::SiteSpec spec;
        spec.probability = p;
        spec.seed = 99;
        plan.arm("sim.replay", spec);
        const std::uint64_t injected0 =
            counter("fault.sim.replay.injected");

        ReplayGuard on(true);
        for (int i = 0; i < 6; ++i) {
            expectSameResults(run_pair(1'200 + 61 * i), want[i]);
            // Repeat immediately: faulted keys recompute live, spared
            // keys replay — either way the bytes must not move.
            expectSameResults(run_pair(1'200 + 61 * i), want[i]);
        }
        EXPECT_GT(counter("fault.sim.replay.checks"), 0u);
        if (p == 1.0) {
            EXPECT_GT(counter("fault.sim.replay.injected"), injected0);
        }
        plan.reset();
    }
}

} // namespace
} // namespace smite::sim
