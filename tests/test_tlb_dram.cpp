/**
 * @file
 * Unit tests for the TLB and DRAM channel models.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/tlb.h"

namespace smite::sim {
namespace {

TEST(Tlb, MissThenHit)
{
    Tlb tlb(TlbConfig{4, 25});
    EXPECT_FALSE(tlb.access(100));
    EXPECT_TRUE(tlb.access(100));
    EXPECT_EQ(tlb.walkLatency(), 25u);
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb(TlbConfig{2, 25});
    tlb.access(1);
    tlb.access(2);
    tlb.access(1);  // refresh 1
    tlb.access(3);  // evicts 2
    EXPECT_TRUE(tlb.access(1));
    EXPECT_FALSE(tlb.access(2));
}

/** Hits must maintain exact LRU order, not just save the last entry:
 *  with 4 entries, the eviction sequence follows recency of use. */
TEST(Tlb, LruOrderTracksHits)
{
    Tlb tlb(TlbConfig{4, 25});
    for (Addr page = 0; page < 4; ++page)
        tlb.access(page);
    tlb.access(1);
    tlb.access(0);
    tlb.access(3);  // recency now 2 < 1 < 0 < 3
    EXPECT_FALSE(tlb.access(10));  // evicts 2, the least recently used
    // The survivors all hit (hits never evict)...
    EXPECT_TRUE(tlb.access(1));
    EXPECT_TRUE(tlb.access(0));
    EXPECT_TRUE(tlb.access(3));
    EXPECT_TRUE(tlb.access(10));
    // ...and the predicted victim is the one page gone.
    EXPECT_FALSE(tlb.access(2));
}

TEST(Tlb, FlushDropsTranslations)
{
    Tlb tlb(TlbConfig{4, 25});
    tlb.access(9);
    tlb.flush();
    EXPECT_FALSE(tlb.access(9));
}

TEST(Tlb, RejectsZeroEntries)
{
    EXPECT_THROW(Tlb(TlbConfig{0, 25}), std::invalid_argument);
}

/** Reach sweep: a working set within the reach never misses twice. */
class TlbReach : public ::testing::TestWithParam<int>
{
};

TEST_P(TlbReach, ResidentPagesHit)
{
    const int entries = GetParam();
    Tlb tlb(TlbConfig{entries, 30});
    for (int p = 0; p < entries; ++p)
        tlb.access(p);
    for (int p = 0; p < entries; ++p)
        EXPECT_TRUE(tlb.access(p)) << "page " << p;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbReach,
                         ::testing::Values(1, 2, 8, 64, 512));

TEST(Dram, IdleAccessLatency)
{
    DramChannel dram(DramConfig{100, 4});
    EXPECT_EQ(dram.access(1000), 100u);
}

TEST(Dram, BackToBackAccessesQueue)
{
    DramChannel dram(DramConfig{100, 4});
    EXPECT_EQ(dram.access(0), 100u);   // occupies [0, 4)
    EXPECT_EQ(dram.access(0), 104u);   // waits 4, then 100
    EXPECT_EQ(dram.access(0), 108u);
    EXPECT_EQ(dram.transfers(), 3u);
}

TEST(Dram, ChannelDrainsWhenIdle)
{
    DramChannel dram(DramConfig{100, 4});
    dram.access(0);
    // Long after the channel is free again: no queueing delay.
    EXPECT_EQ(dram.access(1000), 100u);
}

TEST(Dram, WritebackConsumesBandwidthOnly)
{
    DramChannel dram(DramConfig{100, 4});
    dram.writeback(0);                 // occupies [0, 4)
    EXPECT_EQ(dram.access(0), 104u);   // demand waits behind it
    EXPECT_EQ(dram.transfers(), 2u);
}

TEST(Dram, ResetClearsState)
{
    DramChannel dram(DramConfig{100, 4});
    dram.access(0);
    dram.reset();
    EXPECT_EQ(dram.transfers(), 0u);
    EXPECT_EQ(dram.access(0), 100u);
}

/** Sustained throughput is bounded by 1/occupancy lines per cycle. */
TEST(Dram, SustainedBandwidthBound)
{
    const Cycle occupancy = 8;
    DramChannel dram(DramConfig{50, occupancy});
    Cycle now = 0;
    for (int i = 0; i < 1000; ++i) {
        const Cycle latency = dram.access(now);
        // Arrival rate of one per cycle far exceeds 1/8 per cycle.
        now += 1;
        (void)latency;
    }
    // 1000 transfers x 8 cycles occupancy => last finishes near 8000.
    const Cycle final_latency = dram.access(now);
    EXPECT_GE(final_latency, 1000 * occupancy - now);
}

} // namespace
} // namespace smite::sim
