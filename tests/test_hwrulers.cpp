/**
 * @file
 * Tests for the real-hardware stressors and topology helpers. The
 * stressor runs are kept very short; they assert liveness and
 * plausibility, not absolute throughput.
 */

#include <gtest/gtest.h>

#include "hwrulers/fu_stressors.h"
#include "hwrulers/mem_stressors.h"
#include "hwrulers/topology.h"

namespace smite::hwrulers {
namespace {

TEST(Lfsr, MatchesFigure9Recurrence)
{
    // One step of state >> 1 ^ (-(state & 1) & 0xd0000001).
    Lfsr32 lfsr(0x00000001u);
    EXPECT_EQ(lfsr.next(), 0xd0000001u);
    Lfsr32 even(0x00000010u);
    EXPECT_EQ(even.next(), 0x00000008u);
}

TEST(Lfsr, LongPeriodNoShortCycle)
{
    Lfsr32 lfsr;
    const std::uint32_t first = lfsr.next();
    for (int i = 0; i < 100000; ++i)
        ASSERT_NE(lfsr.next(), first) << "short cycle at " << i;
}

TEST(Lfsr, ZeroSeedIsFixedUp)
{
    Lfsr32 lfsr(0);
    EXPECT_NE(lfsr.next(), 0u);
}

class FuStressorRuns : public ::testing::TestWithParam<FuKind>
{
};

TEST_P(FuStressorRuns, ProducesThroughput)
{
    const auto result = runFuStressor(GetParam(), 0.02);
    EXPECT_GT(result.operations, 0u);
    EXPECT_GT(result.opsPerSecond, 1e6);  // any real CPU exceeds this
    EXPECT_GT(result.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FuStressorRuns,
                         ::testing::Values(FuKind::kFpMul,
                                           FuKind::kFpAdd,
                                           FuKind::kFpShf,
                                           FuKind::kIntAdd));

TEST(FuStressor, StopFlagCancels)
{
    std::atomic<bool> stop{true};
    const auto result = runFuStressor(FuKind::kFpAdd, 10.0, &stop);
    EXPECT_LT(result.seconds, 1.0);
}

TEST(MemStressor, RandomKernelRuns)
{
    const auto result = runMemRandomStressor(64 * 1024, 0.02);
    EXPECT_GT(result.operations, 0u);
    EXPECT_GT(result.opsPerSecond, 1e5);
}

TEST(MemStressor, StrideKernelRuns)
{
    const auto result = runMemStrideStressor(256 * 1024, 0.02);
    EXPECT_GT(result.operations, 0u);
}

TEST(MemStressor, RejectsTinyFootprints)
{
    EXPECT_THROW(runMemRandomStressor(16, 0.01), std::invalid_argument);
    EXPECT_THROW(runMemStrideStressor(64, 0.01), std::invalid_argument);
}

TEST(Topology, ParseCpuListFormats)
{
    using V = std::vector<int>;
    EXPECT_EQ(CpuTopology::parseCpuList("0"), V({0}));
    EXPECT_EQ(CpuTopology::parseCpuList("0-3"), V({0, 1, 2, 3}));
    EXPECT_EQ(CpuTopology::parseCpuList("0,6"), V({0, 6}));
    EXPECT_EQ(CpuTopology::parseCpuList("0-1,8,10-11"),
              V({0, 1, 8, 10, 11}));
    EXPECT_EQ(CpuTopology::parseCpuList(""), V());
    EXPECT_EQ(CpuTopology::parseCpuList("junk"), V());
}

TEST(Topology, DetectFindsOnlineCpus)
{
    const CpuTopology topo = CpuTopology::detect();
    // Any Linux host exposes at least one online CPU.
    EXPECT_GE(topo.numLogicalCpus(), 1);
    for (const auto &[a, b] : topo.smtSiblingPairs())
        EXPECT_LT(a, b);
}

TEST(Topology, PinToCurrentCpuSucceeds)
{
    const CpuTopology topo = CpuTopology::detect();
    if (topo.numLogicalCpus() > 0) {
        EXPECT_TRUE(pinToCpu(topo.onlineCpus().front()));
    }
}

} // namespace
} // namespace smite::hwrulers
