/**
 * @file
 * Tests for sensitivity curves and sparse interpolation.
 */

#include <gtest/gtest.h>

#include "core/sensitivity_curve.h"
#include "workload/spec2006.h"

namespace smite::core {
namespace {

SensitivityCurve
linearCurve()
{
    return SensitivityCurve({{0.0, 0.0},
                             {0.5, 0.25},
                             {1.0, 0.5}});
}

TEST(SensitivityCurve, ValidatesInput)
{
    EXPECT_THROW(SensitivityCurve({{0.0, 0.0}}),
                 std::invalid_argument);
    EXPECT_THROW(SensitivityCurve({{1.0, 0.0}, {1.0, 0.1}}),
                 std::invalid_argument);
    EXPECT_THROW(SensitivityCurve({{2.0, 0.0}, {1.0, 0.1}}),
                 std::invalid_argument);
}

TEST(SensitivityCurve, InterpolatesLinearly)
{
    const SensitivityCurve curve = linearCurve();
    EXPECT_NEAR(curve.at(0.25), 0.125, 1e-12);
    EXPECT_NEAR(curve.at(0.75), 0.375, 1e-12);
}

TEST(SensitivityCurve, ClampsOutsideRange)
{
    const SensitivityCurve curve = linearCurve();
    EXPECT_EQ(curve.at(-1.0), 0.0);
    EXPECT_EQ(curve.at(2.0), 0.5);
}

TEST(SensitivityCurve, SparsifiedKeepsEndpoints)
{
    const SensitivityCurve curve({{0.0, 0.0},
                                  {0.25, 0.3},
                                  {0.5, 0.35},
                                  {0.75, 0.4},
                                  {1.0, 0.5}});
    const SensitivityCurve sparse = curve.sparsified(2);
    ASSERT_EQ(sparse.points().size(), 2u);
    EXPECT_EQ(sparse.points().front().intensity, 0.0);
    EXPECT_EQ(sparse.points().back().intensity, 1.0);
    EXPECT_THROW(curve.sparsified(1), std::invalid_argument);
}

TEST(SensitivityCurve, SparsifyOfLinearCurveIsExact)
{
    const SensitivityCurve curve({{0.0, 0.0},
                                  {0.25, 0.1},
                                  {0.5, 0.2},
                                  {0.75, 0.3},
                                  {1.0, 0.4}});
    EXPECT_NEAR(curve.meanAbsoluteError(curve.sparsified(2)), 0.0,
                1e-12);
}

TEST(SensitivityCurve, ErrorDecreasesWithMorePoints)
{
    // A convex curve: 2-point interpolation is worse than 3-point.
    const SensitivityCurve curve({{0.0, 0.0},
                                  {0.25, 0.02},
                                  {0.5, 0.08},
                                  {0.75, 0.2},
                                  {1.0, 0.5}});
    const double err2 = curve.meanAbsoluteError(curve.sparsified(2));
    const double err3 = curve.meanAbsoluteError(curve.sparsified(3));
    EXPECT_LT(err3, err2);
}

TEST(CurveProfiler, MemoryCurveIsMonotoneForResidentVictim)
{
    // A bigger ruler working set cannot make an L1-resident victim
    // faster; the measured curve should be (weakly) increasing.
    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    const core::CurveProfiler profiler(machine, 10000, 50000);
    const auto &app = workload::spec2006::byName("454.calculix");
    const auto curve = profiler.memoryCurve(
        app, rulers::Dimension::kL1, {8192, 16384, 32768});
    const auto &pts = curve.points();
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_GE(pts[2].degradation, pts[0].degradation - 0.03);
}

TEST(CurveProfiler, FunctionalUnitCurveGrowsWithDuty)
{
    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    const core::CurveProfiler profiler(machine, 10000, 50000);
    const auto &app = workload::spec2006::byName("444.namd");
    const auto curve = profiler.functionalUnitCurve(
        app, rulers::Dimension::kFpAdd, {0.05, 0.15, 1.0});
    const auto &pts = curve.points();
    EXPECT_GT(pts[2].degradation, pts[0].degradation);
}

} // namespace
} // namespace smite::core
