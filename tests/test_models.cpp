/**
 * @file
 * Unit tests for the SMiTe (Equation 3) and PMU (Equation 9)
 * prediction models on synthetic data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/pmu_model.h"
#include "core/smite_model.h"
#include "obs/incident.h"
#include "workload/rng.h"

namespace smite::core {
namespace {

Characterization
randomCharacterization(workload::Rng &rng)
{
    Characterization c;
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        c.sensitivity[d] = rng.nextDouble();
        c.contentiousness[d] = rng.nextDouble();
    }
    return c;
}

TEST(SmiteModel, FeaturesArePerDimensionProducts)
{
    Characterization victim, aggressor;
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        victim.sensitivity[d] = 0.1 * (d + 1);
        aggressor.contentiousness[d] = 0.2 * (d + 1);
    }
    const auto x = SmiteModel::features(victim, aggressor);
    ASSERT_EQ(x.size(), static_cast<size_t>(rulers::kNumDimensions));
    for (int d = 0; d < rulers::kNumDimensions; ++d)
        EXPECT_NEAR(x[d], 0.1 * (d + 1) * 0.2 * (d + 1), 1e-12);
}

TEST(SmiteModel, RecoversSyntheticEquation3)
{
    // Build a world that obeys Equation 3 exactly and check the
    // trained model reproduces coefficients and predictions.
    const std::vector<double> truth = {0.3, 0.5, 0.1, 0.4,
                                       0.2, 0.6, 0.8};
    const double c0 = 0.02;

    workload::Rng rng(77);
    std::vector<SmiteModel::Sample> samples;
    for (int i = 0; i < 120; ++i) {
        SmiteModel::Sample s;
        s.victim = randomCharacterization(rng);
        s.aggressor = randomCharacterization(rng);
        s.degradation = c0;
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            s.degradation += truth[d] * s.victim.sensitivity[d] *
                             s.aggressor.contentiousness[d];
        }
        samples.push_back(std::move(s));
    }
    const SmiteModel model = SmiteModel::train(samples, 0.0);
    for (int d = 0; d < rulers::kNumDimensions; ++d)
        EXPECT_NEAR(model.coefficients()[d], truth[d], 1e-8);
    EXPECT_NEAR(model.constantTerm(), c0, 1e-8);

    workload::Rng rng2(123);
    const auto a = randomCharacterization(rng2);
    const auto b = randomCharacterization(rng2);
    double expected = c0;
    for (int d = 0; d < rulers::kNumDimensions; ++d)
        expected += truth[d] * a.sensitivity[d] * b.contentiousness[d];
    // predict() guards its output into [0, 1] (degradation is a
    // fraction); the synthetic world can exceed that.
    EXPECT_NEAR(model.predict(a, b), std::clamp(expected, 0.0, 1.0),
                1e-8);
}

TEST(SmiteModel, RequiresEnoughSamples)
{
    std::vector<SmiteModel::Sample> samples(rulers::kNumDimensions);
    EXPECT_THROW(SmiteModel::train(samples), std::invalid_argument);
}

TEST(PmuModel, RecoversSyntheticEquation9)
{
    workload::Rng rng(55);
    std::vector<double> wa(sim::kNumPmuRates), wb(sim::kNumPmuRates);
    for (auto &w : wa)
        w = rng.nextDouble() - 0.5;
    for (auto &w : wb)
        w = rng.nextDouble() - 0.5;
    const double c0 = 0.05;

    std::vector<PmuModel::Sample> samples;
    for (int i = 0; i < 200; ++i) {
        PmuModel::Sample s;
        s.degradation = c0;
        for (int r = 0; r < sim::kNumPmuRates; ++r) {
            s.victim[r] = rng.nextDouble();
            s.aggressor[r] = rng.nextDouble();
            s.degradation +=
                wa[r] * s.victim[r] + wb[r] * s.aggressor[r];
        }
        samples.push_back(std::move(s));
    }
    const PmuModel model = PmuModel::train(samples, 0.0);
    PmuModel::Sample probe = samples.front();
    EXPECT_NEAR(model.predict(probe.victim, probe.aggressor),
                std::clamp(probe.degradation, 0.0, 1.0), 1e-6);
}

TEST(PmuModel, FeatureLayoutIsVictimThenAggressor)
{
    PmuProfile a{}, b{};
    a[0] = 1.5;
    b[0] = 2.5;
    const auto x = PmuModel::features(a, b);
    ASSERT_EQ(x.size(), 2u * sim::kNumPmuRates);
    EXPECT_EQ(x[0], 1.5);
    EXPECT_EQ(x[sim::kNumPmuRates], 2.5);
}

TEST(PmuModel, RequiresEnoughSamples)
{
    std::vector<PmuModel::Sample> samples(2 * sim::kNumPmuRates);
    EXPECT_THROW(PmuModel::train(samples), std::invalid_argument);
}

TEST(SmiteModel, PredictionsAreClampedIntoUnitInterval)
{
    // A synthetic world with large positive coefficients: an extreme
    // characterization pushes the raw affine prediction far past 1,
    // and an all-zero one sits at the (positive) constant term. Flip
    // the sign of the degradations and the raw prediction goes
    // negative. Either way predict() must stay inside [0, 1].
    workload::Rng rng(11);
    std::vector<SmiteModel::Sample> pos, neg;
    for (int i = 0; i < 60; ++i) {
        SmiteModel::Sample s;
        s.victim = randomCharacterization(rng);
        s.aggressor = randomCharacterization(rng);
        s.degradation = 0.5;
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            s.degradation += 2.0 * s.victim.sensitivity[d] *
                             s.aggressor.contentiousness[d];
        }
        neg.push_back(s);
        neg.back().degradation = -s.degradation;
        pos.push_back(std::move(s));
    }
    Characterization extreme;
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        extreme.sensitivity[d] = 1.0;
        extreme.contentiousness[d] = 1.0;
    }

    const SmiteModel high = SmiteModel::train(pos, 0.0);
    EXPECT_EQ(high.predict(extreme, extreme), 1.0);
    const SmiteModel low = SmiteModel::train(neg, 0.0);
    EXPECT_EQ(low.predict(extreme, extreme), 0.0);
}

TEST(SmiteModel, NonFinitePredictionFallsBackToWorstCase)
{
    workload::Rng rng(13);
    std::vector<SmiteModel::Sample> samples;
    for (int i = 0; i < 40; ++i) {
        SmiteModel::Sample s;
        s.victim = randomCharacterization(rng);
        s.aggressor = randomCharacterization(rng);
        s.degradation = 0.1;
        samples.push_back(std::move(s));
    }
    const SmiteModel model = SmiteModel::train(samples);

    Characterization poisoned = randomCharacterization(rng);
    poisoned.sensitivity[0] = std::numeric_limits<double>::quiet_NaN();
    const std::size_t before = obs::IncidentLog::global().count();
    EXPECT_EQ(model.predict(poisoned, randomCharacterization(rng)),
              1.0);
    EXPECT_GT(obs::IncidentLog::global().count(), before);
}

TEST(PmuModel, NonFinitePredictionFallsBackToWorstCase)
{
    workload::Rng rng(17);
    std::vector<PmuModel::Sample> samples;
    for (int i = 0; i < 60; ++i) {
        PmuModel::Sample s;
        s.degradation = 0.2;
        for (int r = 0; r < sim::kNumPmuRates; ++r) {
            s.victim[r] = rng.nextDouble();
            s.aggressor[r] = rng.nextDouble();
        }
        samples.push_back(std::move(s));
    }
    const PmuModel model = PmuModel::train(samples);

    PmuProfile victim = samples.front().victim;
    victim[3] = std::numeric_limits<double>::infinity();
    const std::size_t before = obs::IncidentLog::global().count();
    EXPECT_EQ(model.predict(victim, samples.front().aggressor), 1.0);
    EXPECT_GT(obs::IncidentLog::global().count(), before);
}

TEST(PmuRates, NamesMatchPaperList)
{
    ASSERT_EQ(sim::kPmuRateNames.size(),
              static_cast<size_t>(sim::kNumPmuRates));
    EXPECT_EQ(sim::kPmuRateNames[0], "instructions/cycle");
    EXPECT_EQ(sim::kPmuRateNames[10], "branch-mispredictions/cycle");
}

} // namespace
} // namespace smite::core
