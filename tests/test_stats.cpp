/**
 * @file
 * Unit and property tests for the statistics substrate.
 */

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "workload/rng.h"

namespace smite::stats {
namespace {

TEST(Regression, RecoversExactLinearModel)
{
    // y = 2 x0 - 3 x1 + 5
    std::vector<std::vector<double>> x = {
        {1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, -1}, {0, 0},
    };
    std::vector<double> y;
    for (const auto &row : x)
        y.push_back(2 * row[0] - 3 * row[1] + 5);
    const LinearModel m = LinearModel::fit(x, y);
    EXPECT_NEAR(m.weights()[0], 2.0, 1e-9);
    EXPECT_NEAR(m.weights()[1], -3.0, 1e-9);
    EXPECT_NEAR(m.intercept(), 5.0, 1e-9);
    EXPECT_NEAR(m.predict({10, 10}), 2 * 10 - 3 * 10 + 5, 1e-9);
    EXPECT_NEAR(m.meanAbsoluteError(x, y), 0.0, 1e-9);
}

TEST(Regression, RejectsShapeMismatch)
{
    EXPECT_THROW(LinearModel::fit({{1.0}}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(LinearModel::fit({}, {}), std::invalid_argument);
    EXPECT_THROW(LinearModel::fit({{1.0, 2.0}, {1.0}}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Regression, RejectsDegenerateSystemWithoutRidge)
{
    // Perfectly collinear features, no ridge: singular.
    std::vector<std::vector<double>> x = {
        {1, 2}, {2, 4}, {3, 6}, {4, 8},
    };
    std::vector<double> y = {1, 2, 3, 4};
    EXPECT_THROW(LinearModel::fit(x, y), std::invalid_argument);
    // Ridge regularization makes it solvable.
    EXPECT_NO_THROW(LinearModel::fit(x, y, 1e-6));
}

TEST(Regression, PredictRejectsWrongDimension)
{
    const LinearModel m =
        LinearModel::fit({{1.0}, {2.0}, {3.0}}, {2.0, 4.0, 6.0});
    EXPECT_THROW(m.predict({1.0, 2.0}), std::invalid_argument);
}

TEST(SolveDense, SolvesKnownSystem)
{
    // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
    auto sol = solveDense({{2, 1}, {1, -1}}, {5, 1});
    EXPECT_NEAR(sol[0], 2.0, 1e-12);
    EXPECT_NEAR(sol[1], 1.0, 1e-12);
}

TEST(SolveDense, ThrowsOnSingular)
{
    EXPECT_THROW(solveDense({{1, 1}, {2, 2}}, {1, 2}),
                 std::invalid_argument);
}

/** Property: least squares recovers random models from random data. */
class RegressionRecovery : public ::testing::TestWithParam<int>
{
};

TEST_P(RegressionRecovery, RandomModelsRecovered)
{
    const int dims = GetParam();
    workload::Rng rng(1234 + dims);
    std::vector<double> truth(dims);
    for (double &w : truth)
        w = rng.nextDouble() * 4.0 - 2.0;
    const double intercept = rng.nextDouble();

    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int s = 0; s < dims * 10 + 10; ++s) {
        std::vector<double> row(dims);
        double target = intercept;
        for (int d = 0; d < dims; ++d) {
            row[d] = rng.nextDouble() * 2.0 - 1.0;
            target += truth[d] * row[d];
        }
        x.push_back(std::move(row));
        y.push_back(target);
    }
    const LinearModel m = LinearModel::fit(x, y);
    for (int d = 0; d < dims; ++d)
        EXPECT_NEAR(m.weights()[d], truth[d], 1e-7) << "dim " << d;
    EXPECT_NEAR(m.intercept(), intercept, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Dims, RegressionRecovery,
                         ::testing::Values(1, 2, 3, 5, 7, 11, 22));

TEST(Pearson, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {-1, -2, -3, -4}), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, KnownValue)
{
    // r of (1,2,3) vs (1,3,2) is 0.5.
    EXPECT_NEAR(pearson({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
}

TEST(Pearson, RejectsBadInput)
{
    EXPECT_THROW(pearson({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Summary, MeanMinMax)
{
    const std::vector<double> xs = {3, 1, 4, 1, 5};
    EXPECT_NEAR(mean(xs), 2.8, 1e-12);
    EXPECT_EQ(minOf(xs), 1.0);
    EXPECT_EQ(maxOf(xs), 5.0);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Summary, QuantileInterpolates)
{
    const std::vector<double> xs = {0, 10, 20, 30};
    EXPECT_NEAR(quantile(xs, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(quantile(xs, 1.0), 30.0, 1e-12);
    EXPECT_NEAR(quantile(xs, 0.5), 15.0, 1e-12);
    EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Summary, EmpiricalCdfIsMonotone)
{
    workload::Rng rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.nextDouble());
    const auto cdf = empiricalCdf(xs, 21);
    ASSERT_EQ(cdf.size(), 21u);
    for (size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_LE(cdf[i - 1].first, cdf[i].first);
        EXPECT_LT(cdf[i - 1].second, cdf[i].second);
    }
    EXPECT_NEAR(cdf.front().second, 0.0, 1e-12);
    EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(Summary, MedianOfOddAndEvenCounts)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.5}), 7.5);
    EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(Summary, RobustMedianRejectsOutliers)
{
    // Five honest trials plus one wild outlier: the plain median
    // already shrugs it off, and the robust median must too.
    const std::vector<double> xs{1.00, 1.02, 0.98, 1.01, 0.99, 50.0};
    EXPECT_NEAR(robustMedian(xs), 1.0, 0.02);
    // All-identical samples: MAD is zero, the median comes back.
    EXPECT_DOUBLE_EQ(robustMedian({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(robustMedian({5.0}), 5.0);
    EXPECT_THROW(robustMedian({}), std::invalid_argument);
    EXPECT_THROW(robustMedian({1.0}, 0.0), std::invalid_argument);
}

TEST(Summary, RobustMedianKeepsCleanSamplesIntact)
{
    // Without outliers the robust median equals the plain median.
    const std::vector<double> xs{0.8, 1.2, 1.0, 0.9, 1.1};
    EXPECT_DOUBLE_EQ(robustMedian(xs), median(xs));
}

TEST(Summary, RobustMedianEvenSizedSamples)
{
    // Even count: the median interpolates between the middle pair,
    // and the MAD cutoff is taken around that interpolated value.
    const std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(robustMedian(clean), median(clean));

    // Even count with one wild outlier: the outlier is rejected and
    // the result is the median of the three survivors.
    const std::vector<double> dirty{1.00, 1.02, 0.98, 80.0};
    EXPECT_DOUBLE_EQ(robustMedian(dirty), 1.0);
}

TEST(Summary, RobustMedianZeroMadWithOutlierPresent)
{
    // A majority of identical values pins the MAD at zero even though
    // an outlier is present; the early-out must return the (clean)
    // median rather than divide the cutoff by zero.
    EXPECT_DOUBLE_EQ(robustMedian({2.0, 2.0, 2.0, 2.0, 100.0}), 2.0);
    // All-equal even-sized sample: interpolated median, MAD zero.
    EXPECT_DOUBLE_EQ(robustMedian({7.0, 7.0, 7.0, 7.0}), 7.0);
    EXPECT_DOUBLE_EQ(median({7.0, 7.0, 7.0, 7.0}), 7.0);
}

} // namespace
} // namespace smite::stats
