/**
 * @file
 * Tests for the cluster scale-out model and co-location policies
 * using hand-built pairing tables (no simulation needed).
 */

#include <gtest/gtest.h>

#include "scheduler/cluster.h"
#include "scheduler/online.h"

namespace smite::scheduler {
namespace {

/** A pairing whose QoS falls linearly with instance count. */
Pairing
linearPairing(const std::string &latency, const std::string &batch,
              double actual_per_instance, double predicted_per_instance,
              int max_instances = 6)
{
    Pairing p;
    p.latencyApp = latency;
    p.batchApp = batch;
    for (int k = 1; k <= max_instances; ++k) {
        CoLocationOption option;
        option.actualQos = 1.0 - actual_per_instance * k;
        option.predictedQos = 1.0 - predicted_per_instance * k;
        p.byInstances.push_back(option);
    }
    return p;
}

Cluster
simpleCluster(double actual_per_instance, double predicted_per_instance,
              int servers = 100)
{
    return Cluster({linearPairing("svc", "batch", actual_per_instance,
                                  predicted_per_instance)},
                   {"svc"}, servers);
}

TEST(Cluster, RejectsEmptyConfiguration)
{
    EXPECT_THROW(Cluster({}, {"svc"}, 10), std::invalid_argument);
    EXPECT_THROW(Cluster({linearPairing("svc", "b", 0.02, 0.02)},
                         {"other"}, 10),
                 std::invalid_argument);
}

TEST(Cluster, PerfectPredictionMatchesOracle)
{
    const Cluster cluster = simpleCluster(0.02, 0.02);
    const auto smite = cluster.runPredictedPolicy(0.90);
    const auto oracle = cluster.runOraclePolicy(0.90);
    EXPECT_EQ(smite.totalInstances, oracle.totalInstances);
    EXPECT_EQ(smite.violatedServers, 0);
    EXPECT_EQ(oracle.violatedServers, 0);
    // QoS 0.90 with 2% per instance admits exactly 5 instances.
    EXPECT_NEAR(smite.meanInstances(), 5.0, 1e-9);
}

TEST(Cluster, OracleNeverViolates)
{
    // Badly misleading prediction does not matter for Oracle.
    const Cluster cluster = simpleCluster(0.05, 0.01);
    const auto oracle = cluster.runOraclePolicy(0.90);
    EXPECT_EQ(oracle.violatedServers, 0);
}

TEST(Cluster, OptimisticPredictionCausesViolations)
{
    // Model thinks 1%/instance, reality is 5%/instance.
    const Cluster cluster = simpleCluster(0.05, 0.01);
    const auto smite = cluster.runPredictedPolicy(0.90);
    // Policy admits 6 instances everywhere; actual QoS = 0.70 < 0.90.
    EXPECT_EQ(smite.violatedServers, smite.coLocatedServers);
    EXPECT_GT(smite.maxViolation, 0.2);
}

TEST(Cluster, PessimisticPredictionWastesUtilization)
{
    const Cluster cluster = simpleCluster(0.01, 0.05);
    const auto smite = cluster.runPredictedPolicy(0.90);
    const auto oracle = cluster.runOraclePolicy(0.90);
    EXPECT_LT(smite.utilization(), oracle.utilization());
    EXPECT_EQ(smite.violatedServers, 0);
}

TEST(Cluster, UtilizationAccounting)
{
    const Cluster cluster = simpleCluster(0.02, 0.02, 50);
    const auto result = cluster.runPredictedPolicy(0.90);
    // Baseline 6/12; with 5 instances per server: 11/12.
    EXPECT_NEAR(result.utilization(), 11.0 / 12.0, 1e-9);
    EXPECT_NEAR(result.utilizationImprovement(),
                (11.0 / 12.0 - 0.5) / 0.5, 1e-9);
}

TEST(Cluster, StricterTargetsAdmitFewerInstances)
{
    const Cluster cluster = simpleCluster(0.03, 0.03);
    const auto strict = cluster.runPredictedPolicy(0.95);
    const auto loose = cluster.runPredictedPolicy(0.85);
    EXPECT_LT(strict.meanInstances(), loose.meanInstances());
}

TEST(Cluster, RandomPolicyMatchesUtilizationTarget)
{
    const Cluster cluster = simpleCluster(0.02, 0.02, 500);
    const auto smite = cluster.runPredictedPolicy(0.90);
    const auto random =
        cluster.runRandomPolicy(0.90, smite.totalInstances);
    EXPECT_NEAR(random.totalInstances, smite.totalInstances, 1.0);
}

TEST(Cluster, RandomPolicyViolatesMoreThanInformedPolicy)
{
    // Reality: 3%/instance. A 0.94 target admits exactly 2.
    const Cluster cluster = simpleCluster(0.03, 0.03, 2000);
    const auto smite = cluster.runPredictedPolicy(0.94);
    const auto random =
        cluster.runRandomPolicy(0.94, smite.totalInstances);
    EXPECT_EQ(smite.violatedServers, 0);
    EXPECT_GT(random.violationRate(), 0.2);
}

TEST(Cluster, MultipleLatencyAppsPartitionServers)
{
    std::vector<Pairing> pairings = {
        linearPairing("a", "x", 0.02, 0.02),
        linearPairing("b", "x", 0.10, 0.10),
    };
    const Cluster cluster(pairings, {"a", "b"}, 100);
    EXPECT_EQ(cluster.servers(), 200);
    const auto result = cluster.runPredictedPolicy(0.90);
    // App a admits 5 per server, app b admits 1: mean 3.
    EXPECT_NEAR(result.meanInstances(), 3.0, 1e-9);
}

TEST(Cluster, RaggedTablesRejected)
{
    Pairing bad = linearPairing("svc", "b", 0.02, 0.02, 3);
    EXPECT_THROW(Cluster({linearPairing("svc", "a", 0.02, 0.02, 6),
                          bad},
                         {"svc"}, 10),
                 std::invalid_argument);
}

TEST(PolicyResult, ViolationRateHandlesNoCoLocations)
{
    PolicyResult r;
    EXPECT_EQ(r.violationRate(), 0.0);
    EXPECT_EQ(r.meanInstances(), 0.0);
}

TEST(PolicyResult, DownServersAreNotCountedBusy)
{
    PolicyResult r;
    r.servers = 100;
    r.totalInstances = 0;
    // All servers up: the half-loaded baseline.
    EXPECT_NEAR(r.utilization(), 0.5, 1e-12);
    // Ten servers down run no latency threads.
    r.downServers = 10;
    EXPECT_NEAR(r.utilization(), 90.0 * 6 / (100.0 * 12), 1e-12);
}

TEST(PolicyResult, GoodputExcludesViolatingInstances)
{
    PolicyResult r;
    r.servers = 10;
    r.totalInstances = 30;
    r.compliantInstances = 12;
    EXPECT_NEAR(r.utilization(), (60.0 + 30) / 120, 1e-12);
    EXPECT_NEAR(r.goodputUtilization(), (60.0 + 12) / 120, 1e-12);
    EXPECT_LT(r.goodputImprovement(), r.utilizationImprovement());
}

TEST(Cluster, RandomPolicyRoundsMatchTargetInsteadOfTruncating)
{
    const Cluster cluster = simpleCluster(0.02, 0.02, 100);
    // 10.6 must round to 11 instances, not truncate to 10.
    const auto r = cluster.runRandomPolicy(0.90, 10.6);
    EXPECT_EQ(r.totalInstances, 11.0);
}

TEST(OnlineScheduler, RejectsBadConfiguration)
{
    const Cluster cluster = simpleCluster(0.02, 0.02, 10);
    EXPECT_THROW(OnlineScheduler(cluster, OnlineConfig{.epochs = 0}),
                 std::invalid_argument);
    EXPECT_THROW(OnlineScheduler(cluster,
                                 OnlineConfig{.headroom = -0.1}),
                 std::invalid_argument);
}

TEST(OnlineScheduler, StableUnderPerfectPrediction)
{
    // Accurate model, no churn, no observation slack: the online
    // policy has nothing to react to and must keep the static
    // placement in every epoch.
    const Cluster cluster = simpleCluster(0.02, 0.02, 80);
    const auto fixed = cluster.runPredictedPolicy(0.90);
    const OnlineScheduler online(cluster, OnlineConfig{.epochs = 8});
    const auto result = online.run(0.90);
    EXPECT_EQ(result.final.totalInstances, fixed.totalInstances);
    EXPECT_EQ(result.final.violatedServers, 0);
    ASSERT_EQ(result.timeline.size(), 8u);
    for (const EpochStats &e : result.timeline) {
        EXPECT_EQ(e.qosEvictions, 0);
        EXPECT_EQ(e.probes, 0);
        EXPECT_EQ(e.failures, 0);
        EXPECT_EQ(e.totalInstances, fixed.totalInstances);
    }
}

TEST(OnlineScheduler, EvictsDownToOracleOnOptimisticPrediction)
{
    // Model claims 1%/instance, reality is 5%: the static policy
    // admits 6 everywhere and violates everywhere; the online policy
    // observes the violations, evicts one instance per epoch and
    // converges on the oracle's count (2 at target 0.90).
    const Cluster cluster = simpleCluster(0.05, 0.01, 50);
    const auto fixed = cluster.runPredictedPolicy(0.90);
    const auto oracle = cluster.runOraclePolicy(0.90);
    EXPECT_EQ(fixed.violatedServers, fixed.coLocatedServers);
    const OnlineScheduler online(cluster, OnlineConfig{.epochs = 12});
    const auto result = online.run(0.90);
    EXPECT_EQ(result.final.totalInstances, oracle.totalInstances);
    EXPECT_EQ(result.final.violatedServers, 0);
    EXPECT_GT(result.timeline.front().qosEvictions, 0);
    EXPECT_EQ(result.timeline.back().qosEvictions, 0);
}

TEST(OnlineScheduler, ProbesUpToOracleOnPessimisticPrediction)
{
    // Model claims 5%/instance, reality is 1%: the static policy
    // wastes contexts at 2 instances; probing discovers the oracle's
    // 6 (actual QoS 0.94 >= 0.90, and headroom 0.04 >= 0.02 keeps
    // the probe chain going).
    const Cluster cluster = simpleCluster(0.01, 0.05, 40);
    const auto fixed = cluster.runPredictedPolicy(0.90);
    const auto oracle = cluster.runOraclePolicy(0.90);
    EXPECT_LT(fixed.totalInstances, oracle.totalInstances);
    const OnlineScheduler online(
        cluster, OnlineConfig{.epochs = 12, .probeBudget = 40});
    const auto result = online.run(0.90);
    EXPECT_EQ(result.final.totalInstances, oracle.totalInstances);
    EXPECT_EQ(result.final.violatedServers, 0);
    EXPECT_GT(result.timeline.front().probes, 0);
    // Converged: the last epochs neither probe nor evict.
    EXPECT_EQ(result.timeline.back().probes, 0);
    EXPECT_EQ(result.timeline.back().qosEvictions, 0);
}

TEST(OnlineScheduler, ProbeBudgetBoundsPerEpochRisk)
{
    const Cluster cluster = simpleCluster(0.01, 0.05, 60);
    const OnlineScheduler online(
        cluster, OnlineConfig{.epochs = 6, .probeBudget = 7});
    const auto result = online.run(0.90);
    for (const EpochStats &e : result.timeline)
        EXPECT_LE(e.probes, 7);
}

/** Two latency apps whose slowdown-per-instance rates differ: the
    raw material for a slowdown spread the fairness objective can act
    on (app "a" at 2%/instance, app "b" at 6%/instance). */
Cluster
unevenCluster(int servers = 100)
{
    return Cluster({linearPairing("a", "batch", 0.02, 0.02),
                    linearPairing("b", "batch", 0.06, 0.06)},
                   {"a", "b"}, servers);
}

TEST(OnlineScheduler, RejectsNegativeSpreadTolerance)
{
    const Cluster cluster = simpleCluster(0.02, 0.02, 10);
    EXPECT_THROW(
        OnlineScheduler(cluster,
                        OnlineConfig{.spreadTolerance = -0.01}),
        std::invalid_argument);
}

TEST(OnlineScheduler, FairnessObjectiveBoundsMaxSlowdown)
{
    // Utilization objective: app "a" packs to QoS 0.90 (slowdown
    // 0.10), app "b" stops at one instance (slowdown 0.06) — spread
    // 0.04. The fairness objective with a 2-point tolerance trims
    // the "a" servers until their slowdown is within tolerance of
    // the best-off app, cutting max slowdown at a utilization cost.
    const Cluster cluster = unevenCluster();
    const OnlineScheduler util(cluster, OnlineConfig{.epochs = 12});
    const OnlineScheduler fair(
        cluster, OnlineConfig{.epochs = 12,
                              .objective = Objective::kFairness,
                              .spreadTolerance = 0.02});

    const auto u = util.run(0.90);
    const auto f = fair.run(0.90);

    EXPECT_LT(f.finalMaxSlowdown, u.finalMaxSlowdown);
    EXPECT_LE(f.finalSlowdownSpread, 0.02 + 1e-12);
    EXPECT_LT(f.final.totalInstances, u.final.totalInstances);

    int util_trims = 0, fair_trims = 0;
    for (const EpochStats &e : u.timeline)
        util_trims += e.fairnessEvictions;
    for (const EpochStats &e : f.timeline)
        fair_trims += e.fairnessEvictions;
    EXPECT_EQ(util_trims, 0);
    EXPECT_GT(fair_trims, 0);

    // Slowdown telemetry is recorded under either objective.
    EXPECT_GT(u.timeline.back().maxSlowdown, 0.0);
    EXPECT_GT(u.timeline.back().slowdownSpread, 0.0);
}

TEST(OnlineScheduler, UtilizationObjectiveMatchesDefault)
{
    // Selecting kUtilization explicitly is the pre-fairness
    // scheduler: identical placement, no trims.
    const Cluster cluster = unevenCluster(60);
    const OnlineScheduler a(cluster, OnlineConfig{.epochs = 8});
    const OnlineScheduler b(
        cluster, OnlineConfig{.epochs = 8,
                              .objective = Objective::kUtilization});
    const auto ra = a.run(0.90);
    const auto rb = b.run(0.90);
    EXPECT_EQ(ra.final.totalInstances, rb.final.totalInstances);
    EXPECT_EQ(ra.final.violatedServers, rb.final.violatedServers);
    EXPECT_EQ(ra.finalMaxSlowdown, rb.finalMaxSlowdown);
    EXPECT_EQ(ra.finalSlowdownSpread, rb.finalSlowdownSpread);
}

} // namespace
} // namespace smite::scheduler
