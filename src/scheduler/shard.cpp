#include "scheduler/shard.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/keyed.h"

namespace smite::scheduler {

namespace {

// Stream salts: one per event kind, so the keyed streams of a server
// never collide across kinds.
constexpr std::uint64_t kSaltAssign = 1;
constexpr std::uint64_t kSaltFail = 2;
constexpr std::uint64_t kSaltRecover = 3;
constexpr std::uint64_t kSaltDepart = 4;
constexpr std::uint64_t kSaltArrive = 5;
constexpr std::uint64_t kSaltReplace = 6;

/** Probe index bits packed under the job index in one draw key. */
constexpr int kProbeBits = 6;

} // namespace

ShardedCluster::ShardedCluster(std::vector<MachineClass> classes,
                               std::vector<std::int64_t> serversPerClass,
                               int shards, std::uint64_t assignSeed)
    : classes_(std::move(classes)), shards_(shards)
{
    if (classes_.empty() || serversPerClass.size() != classes_.size())
        throw std::invalid_argument(
            "fleet needs one server count per machine class");
    if (shards_ < 1)
        throw std::invalid_argument("shard count must be positive");

    std::int64_t n = 0;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const MachineClass &mc = classes_[c];
        if (serversPerClass[c] <= 0)
            throw std::invalid_argument(
                "servers per class must be positive");
        if (mc.latencyThreads < 1 ||
            mc.contextsPerServer <= mc.latencyThreads)
            throw std::invalid_argument(
                "machine class needs contexts beyond its latency "
                "threads");
        const int cap = mc.maxInstances();
        if (cap > 255)
            throw std::invalid_argument(
                "machine class instance capacity too large");
        if (mc.pairings.empty())
            throw std::invalid_argument(
                "machine class has no pairing tables");
        for (const Pairing &p : mc.pairings) {
            if (static_cast<int>(p.byInstances.size()) != cap)
                throw std::invalid_argument(
                    "pairing table length must equal the class "
                    "instance capacity");
        }
        maxSlots_ = std::max(maxSlots_, cap);
        n += serversPerClass[c];
    }
    if (shards_ > n)
        throw std::invalid_argument("more shards than servers");

    // Per-class pairing-table base offsets, class-major — the same
    // order buildTabs() emits, so tabIdx_ stays valid per run.
    std::vector<std::uint32_t> tab_base(classes_.size());
    std::uint32_t tabs = 0;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        tab_base[c] = tabs;
        tabs += static_cast<std::uint32_t>(classes_[c].pairings.size());
    }

    classIdx_.reserve(static_cast<std::size_t>(n));
    tabIdx_.reserve(static_cast<std::size_t>(n));
    std::int64_t s = 0;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const std::uint64_t choices = classes_[c].pairings.size();
        for (std::int64_t i = 0; i < serversPerClass[c]; ++i, ++s) {
            classIdx_.push_back(static_cast<std::uint16_t>(c));
            // The pairing assignment is keyed per server id — not
            // drawn in placement/scan order — so it is identical for
            // every shard partition of the same fleet.
            tabIdx_.push_back(
                tab_base[c] +
                static_cast<std::uint32_t>(
                    keyed::draw(assignSeed, kSaltAssign,
                                static_cast<std::uint64_t>(s), 0) %
                    choices));
            totalContexts_ += classes_[c].contextsPerServer;
        }
    }

    shardStart_.resize(static_cast<std::size_t>(shards_) + 1);
    for (int i = 0; i <= shards_; ++i)
        shardStart_[static_cast<std::size_t>(i)] = i * n / shards_;
}

const Pairing &
ShardedCluster::pairingOf(std::int64_t s) const
{
    const MachineClass &mc = machineClassOf(s);
    std::uint32_t idx = tabIdx_[static_cast<std::size_t>(s)];
    for (std::size_t c = 0; c < static_cast<std::size_t>(
                                    classIdx_[static_cast<std::size_t>(s)]);
         ++c)
        idx -= static_cast<std::uint32_t>(classes_[c].pairings.size());
    return mc.pairings[idx];
}

int
ShardedCluster::shardOf(std::int64_t s) const
{
    const std::int64_t n = servers();
    int i = static_cast<int>(s * shards_ / n);
    i = std::min(i, shards_ - 1);
    while (s < shardStart_[static_cast<std::size_t>(i)])
        --i;
    while (s >= shardStart_[static_cast<std::size_t>(i) + 1])
        ++i;
    return i;
}

void
ShardedCluster::buildTabs(const TierPolicy &tiers)
{
    tabs_.clear();
    const bool fillers = tiers.bestEffortFloor > 0.0;
    // Guaranteed admission must clear the QoS target *and* the
    // fairness slowdown budget; at the default budget of 1.0 the
    // second threshold is 0 and the test collapses to the target.
    const double admit_floor =
        std::max(tiers.qosTarget, 1.0 - tiers.slowdownBudget);
    for (const MachineClass &mc : classes_) {
        for (const Pairing &p : mc.pairings) {
            PairTab t;
            t.src = &p;
            t.cap = mc.maxInstances();
            t.admit.resize(static_cast<std::size_t>(t.cap));
            for (int k = 0; k < t.cap; ++k) {
                t.admit[static_cast<std::size_t>(k)] =
                    p.byInstances[static_cast<std::size_t>(k)]
                            .predictedQos >= admit_floor
                        ? 1
                        : 0;
            }
            // chainTo[j]: the largest total instance count reachable
            // from j by single steps whose predicted QoS stays at or
            // above the best-effort floor — the filler fill target is
            // chainTo[g] - g. Step-wise (not "largest k with
            // predicted[k] >= floor") so non-monotone tables cannot
            // jump a gap the incremental admit check would refuse.
            t.chainTo.resize(static_cast<std::size_t>(t.cap) + 1);
            t.chainTo[static_cast<std::size_t>(t.cap)] = t.cap;
            for (int j = t.cap - 1; j >= 0; --j) {
                const bool step =
                    fillers &&
                    p.byInstances[static_cast<std::size_t>(j)]
                            .predictedQos >= tiers.bestEffortFloor;
                t.chainTo[static_cast<std::size_t>(j)] =
                    step ? t.chainTo[static_cast<std::size_t>(j) + 1]
                         : j;
            }
            t.violating.assign(static_cast<std::size_t>(t.cap) + 1, 0);
            t.goodFill.assign(static_cast<std::size_t>(t.cap) + 1, 1);
            for (int k = 1; k <= t.cap; ++k) {
                const double actual =
                    p.byInstances[static_cast<std::size_t>(k) - 1]
                        .actualQos;
                t.violating[static_cast<std::size_t>(k)] =
                    actual < tiers.qosTarget ? 1 : 0;
                t.goodFill[static_cast<std::size_t>(k)] =
                    actual >= tiers.bestEffortFloor ? 1 : 0;
            }
            tabs_.push_back(std::move(t));
        }
    }
}

ShardedCluster::Agg
ShardedCluster::contributionOf(std::size_t s) const
{
    Agg a;
    if (up_[s] == 0)
        return a;
    const MachineClass &mc = classes_[classIdx_[s]];
    const PairTab &tab = tabs_[tabIdx_[s]];
    const int g = g_[s];
    const int b = b_[s];
    a.upServers = 1;
    a.latencyContexts = mc.latencyThreads;
    a.guaranteed = g;
    a.bestEffort = b;
    if (g > 0) {
        a.coLocated = 1;
        if (tab.violating[static_cast<std::size_t>(g)] != 0)
            a.violating = 1;
        else
            a.goodGuaranteed = g;
    }
    if (b > 0 && tab.goodFill[static_cast<std::size_t>(g + b)] != 0)
        a.goodFillers = b;
    return a;
}

void
ShardedCluster::aggSub(int shard, std::size_t s)
{
    const Agg c = contributionOf(s);
    Agg &a = aggs_[static_cast<std::size_t>(shard)];
    a.upServers -= c.upServers;
    a.latencyContexts -= c.latencyContexts;
    a.guaranteed -= c.guaranteed;
    a.bestEffort -= c.bestEffort;
    a.coLocated -= c.coLocated;
    a.violating -= c.violating;
    a.goodGuaranteed -= c.goodGuaranteed;
    a.goodFillers -= c.goodFillers;
}

void
ShardedCluster::aggAdd(int shard, std::size_t s)
{
    const Agg c = contributionOf(s);
    Agg &a = aggs_[static_cast<std::size_t>(shard)];
    a.upServers += c.upServers;
    a.latencyContexts += c.latencyContexts;
    a.guaranteed += c.guaranteed;
    a.bestEffort += c.bestEffort;
    a.coLocated += c.coLocated;
    a.violating += c.violating;
    a.goodGuaranteed += c.goodGuaranteed;
    a.goodFillers += c.goodFillers;
}

void
ShardedCluster::scheduleEvent(int shard, std::int64_t epoch,
                              std::uint32_t s)
{
    calendars_[static_cast<std::size_t>(shard)][epoch].push_back(s);
}

void
ShardedCluster::rebalanceFillers(std::size_t s, EpochDelta &delta)
{
    int target = 0;
    if (up_[s] != 0) {
        const PairTab &tab = tabs_[tabIdx_[s]];
        target = tab.chainTo[static_cast<std::size_t>(g_[s])] - g_[s];
    }
    const int cur = b_[s];
    if (target > cur)
        delta.fillerPlaced += target - cur;
    else if (cur > target)
        delta.fillerEvicted += cur - target;
    b_[s] = static_cast<std::uint8_t>(target);
}

void
ShardedCluster::processServerEvents(int shard, std::uint32_t s,
                                    std::int64_t epoch,
                                    EpochDelta &delta)
{
    const std::size_t i = s;
    if (up_[i] == 0) {
        if (recoverAt_[i] != epoch)
            return;  // stale calendar entry / nothing due
        ++delta.events;
        ++delta.recoveries;
        aggSub(shard, i);
        up_[i] = 1;
        // The server rejoins empty; its next failure is drawn now,
        // keyed by (server, failure sequence) — never by scan order.
        const std::int64_t gap = keyed::geometricSteps(
            churn_.failProb,
            keyed::draw(churn_.seed, kSaltFail, s, failSeq_[i]));
        nextFail_[i] =
            gap == keyed::kNever ? keyed::kNever : epoch + gap;
        if (shards_ > 1 && nextFail_[i] != keyed::kNever &&
            nextFail_[i] < epochsLimit_)
            scheduleEvent(shard, nextFail_[i], s);
        rebalanceFillers(i, delta);
        aggAdd(shard, i);
        return;
    }
    if (nextFail_[i] == epoch) {
        ++delta.events;
        ++delta.failures;
        aggSub(shard, i);
        if (g_[i] > 0) {
            // Evicted guaranteed jobs re-enter placement in the
            // serial phase; queues concatenate in shard order, which
            // is ascending server order for any shard count.
            evictQueues_[static_cast<std::size_t>(shard)].push_back(
                {s, static_cast<int>(g_[i])});
            delta.evictions += g_[i];
            g_[i] = 0;
        }
        if (b_[i] > 0) {
            delta.fillerEvicted += b_[i];
            b_[i] = 0;
        }
        up_[i] = 0;
        const std::int64_t gap = keyed::geometricSteps(
            churn_.recoverProb,
            keyed::draw(churn_.seed, kSaltRecover, s, failSeq_[i]));
        ++failSeq_[i];
        recoverAt_[i] =
            gap == keyed::kNever ? keyed::kNever : epoch + gap;
        if (shards_ > 1 && recoverAt_[i] != keyed::kNever &&
            recoverAt_[i] < epochsLimit_)
            scheduleEvent(shard, recoverAt_[i], s);
        aggAdd(shard, i);
        return;
    }
    // Guaranteed departures due this epoch (swap-remove, scanning
    // down so the slot swapped in was already examined).
    int g = g_[i];
    const std::size_t base = i * static_cast<std::size_t>(maxSlots_);
    int departed = 0;
    for (int j = g - 1; j >= 0; --j) {
        if (depEpoch_[base + static_cast<std::size_t>(j)] != epoch)
            continue;
        if (departed == 0)
            aggSub(shard, i);
        depEpoch_[base + static_cast<std::size_t>(j)] =
            depEpoch_[base + static_cast<std::size_t>(g) - 1];
        --g;
        ++departed;
    }
    if (departed > 0) {
        g_[i] = static_cast<std::uint8_t>(g);
        delta.departures += departed;
        ++delta.events;
        rebalanceFillers(i, delta);
        aggAdd(shard, i);
    }
}

bool
ShardedCluster::placeGuaranteedJob(std::uint64_t salt,
                                   std::int64_t epoch,
                                   std::int64_t jobIndex,
                                   EpochDelta &delta)
{
    const std::uint64_t n = static_cast<std::uint64_t>(servers());
    std::int64_t best = -1;
    double best_qos = 0.0;
    for (int t = 0; t < churn_.probesPerJob; ++t) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(jobIndex) << kProbeBits) |
            static_cast<std::uint64_t>(t);
        const std::int64_t s = static_cast<std::int64_t>(
            keyed::draw(churn_.seed, salt,
                        static_cast<std::uint64_t>(epoch), key) %
            n);
        const std::size_t i = static_cast<std::size_t>(s);
        if (up_[i] == 0)
            continue;
        const PairTab &tab = tabs_[tabIdx_[i]];
        const int g = g_[i];
        if (g >= tab.cap || tab.admit[static_cast<std::size_t>(g)] == 0)
            continue;
        // Predicted QoS *after* the placement: byInstances[g] is the
        // table row for g+1 instances. Best wins; ties go to the
        // lower server id so the choice is total-ordered.
        const double q =
            tab.src->byInstances[static_cast<std::size_t>(g)]
                .predictedQos;
        if (best < 0 || q > best_qos || (q == best_qos && s < best)) {
            best = s;
            best_qos = q;
        }
    }
    if (best < 0)
        return false;
    const std::size_t i = static_cast<std::size_t>(best);
    const int shard = shardOf(best);
    aggSub(shard, i);
    const int g = g_[i];
    // The job's lifetime is keyed by (server, placement sequence):
    // a pure per-server stream, independent of who placed it when.
    const std::int64_t gap = keyed::geometricSteps(
        churn_.departProb,
        keyed::draw(churn_.seed, kSaltDepart,
                    static_cast<std::uint64_t>(best), placeSeq_[i]));
    ++placeSeq_[i];
    const std::int64_t dep_at =
        gap == keyed::kNever ? keyed::kNever : epoch + gap;
    depEpoch_[i * static_cast<std::size_t>(maxSlots_) +
              static_cast<std::size_t>(g)] = dep_at;
    g_[i] = static_cast<std::uint8_t>(g + 1);
    if (shards_ > 1 && dep_at != keyed::kNever &&
        dep_at < epochsLimit_)
        scheduleEvent(shard, dep_at,
                      static_cast<std::uint32_t>(best));
    rebalanceFillers(i, delta);
    aggAdd(shard, i);
    return true;
}

void
ShardedCluster::resetRunState()
{
    const std::size_t n = classIdx_.size();
    up_.assign(n, 1);
    g_.assign(n, 0);
    b_.assign(n, 0);
    nextFail_.assign(n, keyed::kNever);
    recoverAt_.assign(n, keyed::kNever);
    failSeq_.assign(n, 0);
    placeSeq_.assign(n, 0);
    depEpoch_.assign(n * static_cast<std::size_t>(maxSlots_),
                     keyed::kNever);
    aggs_.assign(static_cast<std::size_t>(shards_), Agg{});
    deltas_.assign(static_cast<std::size_t>(shards_), EpochDelta{});
    calendars_.assign(static_cast<std::size_t>(shards_), {});
    evictQueues_.assign(static_cast<std::size_t>(shards_), {});
    dueScratch_.assign(static_cast<std::size_t>(shards_), {});
}

std::uint64_t
ShardedCluster::stateDigest() const
{
    const std::size_t n = classIdx_.size();
    std::uint64_t h = keyed::mix64(0x534d695465ull ^ n);
    for (std::size_t s = 0; s < n; ++s) {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(up_[s]) << 48) |
            (static_cast<std::uint64_t>(g_[s]) << 40) |
            (static_cast<std::uint64_t>(b_[s]) << 32) |
            static_cast<std::uint64_t>(s);
        h = keyed::mix64(h ^ packed);
    }
    return h;
}

StreamResult
ShardedCluster::runStream(const TierPolicy &tiers,
                          const ChurnConfig &churn, int epochs)
{
    if (epochs < 1)
        throw std::invalid_argument("epochs must be positive");
    if (churn.arrivalsPerEpoch < 0)
        throw std::invalid_argument("arrivals must be non-negative");
    if (churn.probesPerJob < 1 ||
        churn.probesPerJob > (1 << kProbeBits))
        throw std::invalid_argument("probesPerJob out of range");
    for (const double p :
         {churn.departProb, churn.failProb, churn.recoverProb}) {
        if (p < 0.0 || p > 1.0)
            throw std::invalid_argument(
                "churn probabilities must be in [0, 1]");
    }
    if (tiers.slowdownBudget < 0.0 || tiers.slowdownBudget > 1.0)
        throw std::invalid_argument(
            "slowdownBudget must be in [0, 1]");

    obs::Span span("scheduler.stream",
                   std::to_string(servers()) + " servers / " +
                       std::to_string(shards_) + " shards");

    tiers_ = tiers;
    churn_ = churn;
    epochsLimit_ = epochs;
    buildTabs(tiers);
    resetRunState();

    StreamResult result;
    result.servers = servers();
    result.totalContexts = totalContexts_;
    result.timeline.reserve(static_cast<std::size_t>(epochs));

    // Bootstrap pass (the one full O(n) touch both engines share):
    // draw every server's first failure epoch and fill the
    // best-effort tier into the empty fleet.
    core::parallelFor(
        static_cast<std::size_t>(shards_),
        [&](std::size_t shard) {
            EpochDelta &delta = deltas_[shard];
            const std::int64_t lo = shardStart_[shard];
            const std::int64_t hi = shardStart_[shard + 1];
            for (std::int64_t s = lo; s < hi; ++s) {
                const std::size_t i = static_cast<std::size_t>(s);
                const std::int64_t gap = keyed::geometricSteps(
                    churn_.failProb,
                    keyed::draw(churn_.seed, kSaltFail,
                                static_cast<std::uint64_t>(s),
                                failSeq_[i]));
                // Drawn "at epoch -1", so the first failure can land
                // on epoch 0.
                nextFail_[i] = gap == keyed::kNever ? keyed::kNever
                                                    : gap - 1;
                if (shards_ > 1 && nextFail_[i] != keyed::kNever &&
                    nextFail_[i] < epochsLimit_)
                    scheduleEvent(static_cast<int>(shard),
                                  nextFail_[i],
                                  static_cast<std::uint32_t>(s));
                rebalanceFillers(i, delta);
                aggAdd(static_cast<int>(shard), i);
            }
        },
        threads_);
    for (int shard = 0; shard < shards_; ++shard) {
        result.fillerPlaced +=
            deltas_[static_cast<std::size_t>(shard)].fillerPlaced;
    }

    obs::Registry &registry = obs::Registry::global();
    obs::Gauge &util_gauge =
        registry.gauge("scheduler.stream.utilization");
    obs::Gauge &goodput_gauge =
        registry.gauge("scheduler.stream.goodput_utilization");

    for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
        for (int shard = 0; shard < shards_; ++shard) {
            deltas_[static_cast<std::size_t>(shard)] = EpochDelta{};
            evictQueues_[static_cast<std::size_t>(shard)].clear();
        }

        // Phase A — the churn event pass, shard-parallel. Every
        // mutation is shard-local (a server's state belongs to
        // exactly one shard), so the pass is race-free; merge order
        // below is shard index order regardless of which thread ran
        // which shard.
        core::parallelFor(
            static_cast<std::size_t>(shards_),
            [&](std::size_t shard) {
                EpochDelta &delta = deltas_[shard];
                if (shards_ == 1) {
                    // Lockstep reference engine: scan every server,
                    // the same O(n) per epoch the 4k-server Cluster
                    // pays. Identical keyed streams, identical
                    // results — only the work differs.
                    const std::int64_t hi = shardStart_[1];
                    for (std::int64_t s = 0; s < hi; ++s)
                        processServerEvents(
                            0, static_cast<std::uint32_t>(s), epoch,
                            delta);
                    return;
                }
                auto &calendar = calendars_[shard];
                const auto it = calendar.find(epoch);
                if (it == calendar.end())
                    return;
                std::vector<std::uint32_t> &due = dueScratch_[shard];
                due = std::move(it->second);
                calendar.erase(it);
                // Ascending server order, duplicates dropped: the
                // exact order the lockstep scan visits them in.
                std::sort(due.begin(), due.end());
                due.erase(std::unique(due.begin(), due.end()),
                          due.end());
                for (const std::uint32_t s : due)
                    processServerEvents(static_cast<int>(shard), s,
                                        epoch, delta);
            },
            threads_);

        StreamEpochStats stats;
        stats.epoch = epoch;
        for (int shard = 0; shard < shards_; ++shard) {
            const EpochDelta &d =
                deltas_[static_cast<std::size_t>(shard)];
            stats.failures += d.failures;
            stats.recoveries += d.recoveries;
            stats.departures += d.departures;
            stats.evictions += d.evictions;
            stats.fillerPlaced += d.fillerPlaced;
            stats.fillerEvicted += d.fillerEvicted;
            stats.events += d.events;
        }

        // Phase B — serial placement over settled global state.
        // First the failure-evicted guaranteed jobs, then the
        // epoch's arrivals, each by keyed power-of-d-choices probes.
        EpochDelta serial_delta;
        std::int64_t job = 0;
        for (int shard = 0; shard < shards_; ++shard) {
            for (const auto &[server, count] :
                 evictQueues_[static_cast<std::size_t>(shard)]) {
                (void)server;
                for (int k = 0; k < count; ++k) {
                    if (placeGuaranteedJob(kSaltReplace, epoch, job++,
                                           serial_delta))
                        ++stats.replacements;
                    else
                        ++stats.lost;
                }
            }
        }
        for (int a = 0; a < churn_.arrivalsPerEpoch; ++a) {
            ++stats.arrivals;
            if (placeGuaranteedJob(kSaltArrive, epoch, a,
                                   serial_delta))
                ++stats.placed;
            else
                ++stats.rejected;
        }
        stats.fillerPlaced += serial_delta.fillerPlaced;
        stats.fillerEvicted += serial_delta.fillerEvicted;

        // Phase C — epoch snapshot: sum the per-shard integer
        // aggregates in shard order. Integers only, so the totals
        // are exact and identical for every shard partition.
        Agg total;
        for (int shard = 0; shard < shards_; ++shard) {
            const Agg &a = aggs_[static_cast<std::size_t>(shard)];
            total.upServers += a.upServers;
            total.latencyContexts += a.latencyContexts;
            total.guaranteed += a.guaranteed;
            total.bestEffort += a.bestEffort;
            total.coLocated += a.coLocated;
            total.violating += a.violating;
            total.goodGuaranteed += a.goodGuaranteed;
            total.goodFillers += a.goodFillers;
        }
        stats.liveServers = total.upServers;
        stats.guaranteedInstances = total.guaranteed;
        stats.bestEffortInstances = total.bestEffort;
        stats.utilization =
            static_cast<double>(total.latencyContexts +
                                total.guaranteed + total.bestEffort) /
            static_cast<double>(totalContexts_);
        stats.goodputUtilization =
            static_cast<double>(total.latencyContexts +
                                total.goodGuaranteed +
                                total.goodFillers) /
            static_cast<double>(totalContexts_);
        util_gauge.set(stats.utilization);
        goodput_gauge.set(stats.goodputUtilization);

        result.arrivals += stats.arrivals;
        result.placed += stats.placed;
        result.rejected += stats.rejected;
        result.departures += stats.departures;
        result.failures += stats.failures;
        result.recoveries += stats.recoveries;
        result.evictions += stats.evictions;
        result.replacements += stats.replacements;
        result.lost += stats.lost;
        result.fillerPlaced += stats.fillerPlaced;
        result.fillerEvicted += stats.fillerEvicted;
        result.events += stats.events;
        result.timeline.push_back(stats);
    }

    // Final snapshot + run accounting.
    Agg total;
    for (int shard = 0; shard < shards_; ++shard) {
        const Agg &a = aggs_[static_cast<std::size_t>(shard)];
        total.upServers += a.upServers;
        total.latencyContexts += a.latencyContexts;
        total.guaranteed += a.guaranteed;
        total.bestEffort += a.bestEffort;
        total.coLocated += a.coLocated;
        total.violating += a.violating;
        total.goodGuaranteed += a.goodGuaranteed;
        total.goodFillers += a.goodFillers;
    }
    result.liveServers = total.upServers;
    result.latencyContextsUp = total.latencyContexts;
    result.guaranteedInstances = total.guaranteed;
    result.bestEffortInstances = total.bestEffort;
    result.coLocatedServers = total.coLocated;
    result.violatingServers = total.violating;
    result.goodGuaranteed = total.goodGuaranteed;
    result.goodFillers = total.goodFillers;
    result.digest = stateDigest();

    // Fairness of the final placement: one serial O(n) scan over the
    // per-server state (extrema do not maintain incrementally under
    // removal, and a single end-of-run pass keeps the epoch loop's
    // integer-only determinism contract untouched).
    {
        double min_sd = 0.0, max_sd = 0.0;
        bool any = false;
        const std::size_t n = classIdx_.size();
        for (std::size_t s = 0; s < n; ++s) {
            if (up_[s] == 0 || g_[s] == 0)
                continue;
            const PairTab &tab = tabOf(s);
            const double sd =
                1.0 -
                tab.src->byInstances[static_cast<std::size_t>(g_[s]) - 1]
                    .actualQos;
            min_sd = any ? std::min(min_sd, sd) : sd;
            max_sd = any ? std::max(max_sd, sd) : sd;
            any = true;
        }
        if (any) {
            result.maxSlowdown = max_sd;
            result.slowdownSpread = max_sd - min_sd;
        }
    }

    registry.counter("scheduler.shard.epochs")
        .add(static_cast<std::uint64_t>(epochs));
    registry.counter("scheduler.shard.passes")
        .add(static_cast<std::uint64_t>(epochs) *
             static_cast<std::uint64_t>(shards_));
    registry.counter("scheduler.shard.events")
        .add(static_cast<std::uint64_t>(result.events));
    registry.gauge("scheduler.shard.count")
        .set(static_cast<double>(shards_));
    registry.counter("scheduler.churn.arrivals")
        .add(static_cast<std::uint64_t>(result.arrivals));
    registry.counter("scheduler.churn.placed")
        .add(static_cast<std::uint64_t>(result.placed));
    registry.counter("scheduler.churn.rejected")
        .add(static_cast<std::uint64_t>(result.rejected));
    registry.counter("scheduler.churn.departures")
        .add(static_cast<std::uint64_t>(result.departures));
    registry.counter("scheduler.churn.failures")
        .add(static_cast<std::uint64_t>(result.failures));
    registry.counter("scheduler.churn.recoveries")
        .add(static_cast<std::uint64_t>(result.recoveries));
    registry.counter("scheduler.churn.evictions")
        .add(static_cast<std::uint64_t>(result.evictions));
    registry.counter("scheduler.churn.replacements")
        .add(static_cast<std::uint64_t>(result.replacements));
    registry.counter("scheduler.churn.lost")
        .add(static_cast<std::uint64_t>(result.lost));
    registry.counter("scheduler.churn.filler_placed")
        .add(static_cast<std::uint64_t>(result.fillerPlaced));
    registry.counter("scheduler.churn.filler_evicted")
        .add(static_cast<std::uint64_t>(result.fillerEvicted));
    return result;
}

bool
ShardedCluster::verifyAggregates() const
{
    if (aggs_.empty())
        return false;
    for (int shard = 0; shard < shards_; ++shard) {
        Agg want;
        const std::int64_t lo =
            shardStart_[static_cast<std::size_t>(shard)];
        const std::int64_t hi =
            shardStart_[static_cast<std::size_t>(shard) + 1];
        for (std::int64_t s = lo; s < hi; ++s) {
            const Agg c = contributionOf(static_cast<std::size_t>(s));
            want.upServers += c.upServers;
            want.latencyContexts += c.latencyContexts;
            want.guaranteed += c.guaranteed;
            want.bestEffort += c.bestEffort;
            want.coLocated += c.coLocated;
            want.violating += c.violating;
            want.goodGuaranteed += c.goodGuaranteed;
            want.goodFillers += c.goodFillers;
        }
        const Agg &got = aggs_[static_cast<std::size_t>(shard)];
        if (want.upServers != got.upServers ||
            want.latencyContexts != got.latencyContexts ||
            want.guaranteed != got.guaranteed ||
            want.bestEffort != got.bestEffort ||
            want.coLocated != got.coLocated ||
            want.violating != got.violating ||
            want.goodGuaranteed != got.goodGuaranteed ||
            want.goodFillers != got.goodFillers)
            return false;
    }
    return true;
}

} // namespace smite::scheduler
