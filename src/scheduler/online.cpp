#include "scheduler/online.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/keyed.h"

namespace smite::scheduler {

OnlineScheduler::OnlineScheduler(const Cluster &cluster,
                                 OnlineConfig config)
    : cluster_(cluster), config_(config)
{
    if (config_.epochs < 1)
        throw std::invalid_argument("epochs must be positive");
    if (config_.probeBudget <= 0)
        config_.probeBudget = std::max(1, cluster_.servers() / 4);
    if (config_.headroom < 0.0)
        throw std::invalid_argument("headroom must be non-negative");
    if (config_.spreadTolerance < 0.0)
        throw std::invalid_argument(
            "spreadTolerance must be non-negative");
    if (config_.loadAware.enabled) {
        const LoadAwareConfig &la = config_.loadAware;
        if (la.baseQps <= 0.0)
            throw std::invalid_argument(
                "load-aware admission needs a positive baseQps");
        if (la.spikeFactor < 1.0)
            throw std::invalid_argument("spikeFactor must be >= 1");
        if (la.kneeByPairing.size() != cluster_.pairings_.size())
            throw std::invalid_argument(
                "knee table must cover every pairing");
        const std::size_t depths =
            static_cast<std::size_t>(cluster_.maxInstances()) + 1;
        for (const auto &row : la.kneeByPairing) {
            if (row.size() != depths)
                throw std::invalid_argument(
                    "knee table rows must span depths 0..maxInstances");
        }
    }
}

OnlineResult
OnlineScheduler::run(double qos_target, const std::string &name) const
{
    obs::Span span("scheduler.policy", name);

    obs::Registry &registry = obs::Registry::global();
    obs::Counter &epochs_run =
        registry.counter("scheduler.online.epochs");
    obs::Counter &observations =
        registry.counter("scheduler.online.observations");
    obs::Counter &observed_violations =
        registry.counter("scheduler.online.observed_violations");
    obs::Counter &qos_evictions =
        registry.counter("scheduler.online.qos_evictions");
    obs::Counter &probes = registry.counter("scheduler.online.probes");
    obs::Gauge &util_gauge =
        registry.gauge("scheduler.online.utilization");
    // The failure/recovery flow shares the static loop's counters:
    // the churn is the same phenomenon under either policy.
    obs::Counter &failures =
        registry.counter("scheduler.server_failures");
    obs::Counter &fail_evictions =
        registry.counter("scheduler.evictions");
    obs::Counter &replacements =
        registry.counter("scheduler.replacements");
    obs::Counter &lost = registry.counter("scheduler.lost_instances");
    obs::Counter &recoveries = registry.counter("scheduler.recoveries");

    fault::FaultPlan &faults = fault::FaultPlan::global();
    const bool observe_noise =
        faults.enabled() && faults.armed("scheduler.observe");

    const std::size_t n = static_cast<std::size_t>(cluster_.servers());
    const int max_instances = cluster_.maxInstances();

    // Load-aware admission (inert unless enabled; its metrics are
    // registered lazily so disabled runs leave the registry — and
    // the report baselines diffed in tier-1 — untouched).
    const bool load_aware = config_.loadAware.enabled;
    const LoadAwareConfig &la = config_.loadAware;
    obs::Counter *load_spikes_ctr = nullptr;
    obs::Counter *fillers_shed_ctr = nullptr;
    obs::Counter *load_violations_ctr = nullptr;
    obs::Gauge *filler_gauge = nullptr;
    if (load_aware) {
        load_spikes_ctr =
            &registry.counter("scheduler.online.load_spikes");
        fillers_shed_ctr =
            &registry.counter("scheduler.online.fillers_shed");
        load_violations_ctr =
            &registry.counter("scheduler.online.load_violations");
        filler_gauge =
            &registry.gauge("scheduler.online.filler_instances");
    }
    const bool spike_site =
        load_aware && faults.enabled() &&
        faults.armed("des.arrival_burst");

    // Fairness objective (inert under kUtilization; metrics lazily
    // registered for the same baseline-stability reason as above).
    const bool fairness = config_.objective == Objective::kFairness;
    obs::Counter *fairness_evictions_ctr = nullptr;
    obs::Gauge *max_slowdown_gauge = nullptr;
    obs::Gauge *spread_gauge = nullptr;
    if (fairness) {
        fairness_evictions_ctr =
            &registry.counter("scheduler.online.fairness_evictions");
        max_slowdown_gauge =
            &registry.gauge("scheduler.online.max_slowdown");
        spread_gauge =
            &registry.gauge("scheduler.online.slowdown_spread");
    }

    // Knee of server s at co-location depth d (d = 0 is solo).
    auto kneeAt = [this](std::size_t s, int depth) {
        return config_.loadAware
            .kneeByPairing[static_cast<std::size_t>(
                cluster_.assignment_[s].pairing)]
                          [static_cast<std::size_t>(depth)];
    };
    // Guaranteed admission never exceeds the deepest co-location
    // whose measured knee still clears the *design* load.
    std::vector<int> load_cap(n, max_instances);
    if (load_aware) {
        for (std::size_t s = 0; s < n; ++s) {
            int d = 0;
            while (d < max_instances &&
                   kneeAt(s, d + 1) >= la.baseQps)
                ++d;
            load_cap[s] = d;
        }
    }

    // Start from the static predicted placement; everything after is
    // reaction to observations.
    std::vector<int> instances(n, 0);
    for (std::size_t s = 0; s < n; ++s)
        instances[s] =
            std::min(cluster_.predictedInstancesFor(s, qos_target),
                     load_cap[s]);

    // What the policy has learned: the largest instance count each
    // server has not been observed violating at. Caps only shrink, so
    // the placement converges instead of oscillating around the
    // oracle's count.
    std::vector<int> cap(n, max_instances);
    // Last observation, used to let churn re-placement target servers
    // the model under-rates but observation cleared for one more:
    // valid only while the server still runs the observed count.
    std::vector<double> observed_slack(n, 0.0);
    std::vector<int> observed_at(n, -1);

    std::vector<bool> down(n, false);
    // Best-effort filler instances on the idle contexts (load-aware
    // only): first shed, never guaranteed-protected.
    std::vector<int> fillers(n, 0);
    OnlineResult result;
    result.timeline.reserve(static_cast<std::size_t>(config_.epochs));

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        EpochStats stats;
        stats.epoch = epoch;
        epochs_run.add();

        // 1. Recovery: downed servers rejoin and are re-filled with
        // the policy placement, bounded by the learned cap.
        for (std::size_t s = 0; s < n; ++s) {
            if (!down[s])
                continue;
            down[s] = false;
            instances[s] = std::min(
                {cluster_.predictedInstancesFor(s, qos_target), cap[s],
                 load_cap[s]});
            observed_at[s] = -1;
            recoveries.add();
            ++stats.recoveries;
        }

        // 2. Failures, keyed per (epoch, server) exactly like the
        // static loop: a pure function of the armed seed.
        std::vector<int> evicted_batches;
        for (std::size_t s = 0; s < n; ++s) {
            if (!faults.enabled() ||
                !faults.shouldInject("server.fail",
                                     epochServerKey(epoch, s)))
                continue;
            down[s] = true;
            failures.add();
            ++stats.failures;
            if (instances[s] > 0) {
                fail_evictions.add(
                    static_cast<std::uint64_t>(instances[s]));
                stats.failureEvictions += instances[s];
                evicted_batches.push_back(instances[s]);
            }
            instances[s] = 0;
            fillers[s] = 0;
            observed_at[s] = -1;
        }

        // 3. Policy-aware re-placement of the evicted instances:
        // survivors below their learned cap that either the model
        // admits at k+1 or the last observation cleared with probe
        // headroom at the current count. Round robin from the front,
        // deterministic; the remainder is lost capacity.
        for (const int batch : evicted_batches) {
            for (int inst = 0; inst < batch; ++inst) {
                bool placed = false;
                for (std::size_t s = 0; s < n; ++s) {
                    if (down[s] || instances[s] >= cap[s] ||
                        instances[s] >= load_cap[s] ||
                        instances[s] >= max_instances)
                        continue;
                    const bool model_ok = cluster_.modelAdmitsOneMore(
                        s, qos_target, instances[s]);
                    const bool observed_ok =
                        observed_at[s] == instances[s] &&
                        observed_slack[s] >= config_.headroom;
                    if (!model_ok && !observed_ok)
                        continue;
                    ++instances[s];
                    replacements.add();
                    ++stats.replacements;
                    placed = true;
                    break;
                }
                if (!placed) {
                    lost.add();
                    ++stats.lostInstances;
                }
            }
        }

        // 3b. Load-aware: determine each server's offered load this
        // epoch — the design load, or spikeFactor times it when the
        // keyed `des.arrival_burst` site fires for (epoch, server) —
        // and make room for any guaranteed instances the churn flow
        // just placed by shedding fillers (guaranteed work always
        // wins the contexts). A guaranteed tier whose own knee cannot
        // carry the offered load is a load violation: it is *counted*
        // (the operator must resize the tier), never evicted.
        std::vector<double> offered;
        if (load_aware) {
            offered.assign(n, la.baseQps);
            for (std::size_t s = 0; s < n; ++s) {
                if (down[s])
                    continue;
                if (spike_site &&
                    faults.shouldInject("des.arrival_burst",
                                        epochServerKey(epoch, s))) {
                    offered[s] = la.baseQps * la.spikeFactor;
                    load_spikes_ctr->add();
                    ++stats.loadSpikes;
                }
                const int fit = max_instances - instances[s];
                if (fillers[s] > std::max(0, fit)) {
                    const int shed = fillers[s] - std::max(0, fit);
                    fillers[s] -= shed;
                    fillers_shed_ctr->add(
                        static_cast<std::uint64_t>(shed));
                    stats.fillersShed += shed;
                }
                if (kneeAt(s, instances[s]) < offered[s]) {
                    load_violations_ctr->add();
                    ++stats.loadViolations;
                }
            }
        }

        // 4. Observe every live *guaranteed* co-location's actual QoS
        // (optionally through the scheduler.observe noise site) and
        // evict one instance from every server observed below target,
        // shrinking its learned cap so the count is never retried.
        // Fillers carry no batch-QoS guarantee — that is what makes
        // them best-effort — so they live outside this loop; the knee
        // table (step 6) is the constraint that governs them.
        std::vector<double> slowdown(n, 0.0);
        std::vector<bool> observed_this_epoch(n, false);
        double min_slowdown = 0.0, max_slowdown = 0.0;
        bool any_observed = false;
        for (std::size_t s = 0; s < n; ++s) {
            if (down[s] || instances[s] <= 0)
                continue;
            const std::size_t k =
                static_cast<std::size_t>(instances[s]);
            double observed =
                cluster_.pairingOf(s).byInstances[k - 1].actualQos;
            if (observe_noise) {
                const std::string key = epochServerKey(epoch, s);
                if (faults.shouldInject("scheduler.observe", key)) {
                    observed *= std::max(
                        0.0,
                        1.0 + faults.gaussian("scheduler.observe", key));
                }
            }
            observations.add();
            slowdown[s] = 1.0 - observed;
            observed_this_epoch[s] = true;
            min_slowdown = any_observed
                               ? std::min(min_slowdown, slowdown[s])
                               : slowdown[s];
            max_slowdown = any_observed
                               ? std::max(max_slowdown, slowdown[s])
                               : slowdown[s];
            any_observed = true;
            if (observed < qos_target) {
                observed_violations.add();
                ++stats.observedViolations;
                qos_evictions.add();
                ++stats.qosEvictions;
                --instances[s];
                cap[s] = std::min(cap[s], instances[s]);
                observed_at[s] = -1;
            } else {
                observed_slack[s] = observed - qos_target;
                observed_at[s] = instances[s];
            }
        }
        if (any_observed) {
            stats.maxSlowdown = max_slowdown;
            stats.slowdownSpread = max_slowdown - min_slowdown;
        }

        // 4b. Fairness pass: trim one instance from every server whose
        // observed slowdown exceeds the epoch's minimum by more than
        // the spread tolerance, even though it met the QoS target.
        // The learned cap shrinks with it, so — like QoS evictions —
        // a trimmed count is never retried and the loop converges to
        // a placement whose slowdown spread fits the tolerance band.
        if (fairness && any_observed) {
            for (std::size_t s = 0; s < n; ++s) {
                if (!observed_this_epoch[s] ||
                    observed_at[s] != instances[s] ||
                    instances[s] <= 0)
                    continue;  // just evicted on QoS, or not observed
                if (slowdown[s] <=
                    min_slowdown + config_.spreadTolerance)
                    continue;
                --instances[s];
                cap[s] = std::min(cap[s], instances[s]);
                observed_at[s] = -1;
                fairness_evictions_ctr->add();
                ++stats.fairnessEvictions;
            }
        }

        // 5. Probe: place one more instance on the servers with the
        // most observed headroom (never-colocated servers probe last,
        // from zero), up to the per-epoch budget — but not in the
        // final epoch, so every probe is observed at least once
        // before the run is scored.
        if (epoch < config_.epochs - 1) {
            struct Candidate {
                std::size_t server;
                double slack;
            };
            std::vector<Candidate> candidates;
            for (std::size_t s = 0; s < n; ++s) {
                if (down[s] || instances[s] >= cap[s] ||
                    instances[s] >= load_cap[s] ||
                    instances[s] >= max_instances)
                    continue;
                if (instances[s] == 0) {
                    candidates.push_back(Candidate{s, 0.0});
                } else if (observed_at[s] == instances[s] &&
                           observed_slack[s] >= config_.headroom) {
                    candidates.push_back(
                        Candidate{s, observed_slack[s]});
                }
            }
            std::sort(candidates.begin(), candidates.end(),
                      [](const Candidate &a, const Candidate &b) {
                          if (a.slack != b.slack)
                              return a.slack > b.slack;
                          return a.server < b.server;
                      });
            const std::size_t budget = std::min(
                candidates.size(),
                static_cast<std::size_t>(config_.probeBudget));
            for (std::size_t i = 0; i < budget; ++i) {
                const std::size_t s = candidates[i].server;
                ++instances[s];
                if (load_aware &&
                    instances[s] + fillers[s] > max_instances) {
                    // The probe takes a context a filler occupied.
                    --fillers[s];
                    fillers_shed_ctr->add();
                    ++stats.fillersShed;
                }
                observed_at[s] = -1;
                probes.add();
                ++stats.probes;
            }
        }

        // 6. Load-aware filler management: on every live server,
        // shed fillers whose depth the knee of this epoch's offered
        // load no longer carries, then grow them while one more
        // still clears it — best-effort work soaks up whatever
        // headroom the spike left, and gives it back first.
        if (load_aware) {
            for (std::size_t s = 0; s < n; ++s) {
                if (down[s]) {
                    fillers[s] = 0;
                    continue;
                }
                while (fillers[s] > 0 &&
                       (instances[s] + fillers[s] > max_instances ||
                        kneeAt(s, std::min(instances[s] + fillers[s],
                                           max_instances)) <
                            offered[s])) {
                    --fillers[s];
                    fillers_shed_ctr->add();
                    ++stats.fillersShed;
                }
                while (instances[s] + fillers[s] < max_instances &&
                       kneeAt(s, instances[s] + fillers[s] + 1) >=
                           offered[s]) {
                    ++fillers[s];
                }
            }
        }

        // Epoch bookkeeping for the timeline and gauges. Fillers are
        // busy contexts too (that is their point), so they count in
        // utilization; with load-aware off they are identically zero.
        int down_count = 0;
        double total = 0.0;
        double filler_total = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
            down_count += down[s] ? 1 : 0;
            total += instances[s];
            filler_total += fillers[s];
        }
        stats.liveServers = static_cast<int>(n) - down_count;
        stats.totalInstances = total;
        stats.fillerInstances = filler_total;
        stats.utilization =
            (static_cast<double>(stats.liveServers) *
                 cluster_.latencyThreads_ +
             total + filler_total) /
            (static_cast<double>(n) * cluster_.contextsPerServer_);
        util_gauge.set(stats.utilization);
        if (filler_gauge != nullptr)
            filler_gauge->set(filler_total);
        if (fairness) {
            max_slowdown_gauge->set(stats.maxSlowdown);
            spread_gauge->set(stats.slowdownSpread);
        }
        result.timeline.push_back(stats);
    }

    int down_servers = 0;
    for (std::size_t s = 0; s < n; ++s)
        down_servers += down[s] ? 1 : 0;

    // Score the final placement's fairness from *actual* QoS (no
    // observation noise), like PolicyResult scores its compliance —
    // the quantity the fairness objective exists to bound.
    double final_min = 0.0, final_max = 0.0;
    bool any_final = false;
    for (std::size_t s = 0; s < n; ++s) {
        if (down[s] || instances[s] <= 0)
            continue;
        const std::size_t k = static_cast<std::size_t>(instances[s]);
        const double sd =
            1.0 - cluster_.pairingOf(s).byInstances[k - 1].actualQos;
        final_min = any_final ? std::min(final_min, sd) : sd;
        final_max = any_final ? std::max(final_max, sd) : sd;
        any_final = true;
    }
    if (any_final) {
        result.finalMaxSlowdown = final_max;
        result.finalSlowdownSpread = final_max - final_min;
    }

    result.final =
        cluster_.finish(name, qos_target, instances, down_servers);
    return result;
}

} // namespace smite::scheduler
