#include "scheduler/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "fault/fault.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/keyed.h"
#include "workload/rng.h"

namespace smite::scheduler {

Cluster::Cluster(std::vector<Pairing> pairings,
                 std::vector<std::string> latencyApps, int serversPerApp,
                 int latencyThreads, int contextsPerServer,
                 std::uint64_t seed)
    : pairings_(std::move(pairings)),
      latencyApps_(std::move(latencyApps)),
      latencyThreads_(latencyThreads),
      contextsPerServer_(contextsPerServer)
{
    if (pairings_.empty() || latencyApps_.empty() || serversPerApp <= 0)
        throw std::invalid_argument("empty cluster configuration");
    maxInstances_ = static_cast<int>(pairings_.front().byInstances.size());
    for (const Pairing &p : pairings_) {
        if (static_cast<int>(p.byInstances.size()) != maxInstances_)
            throw std::invalid_argument("ragged pairing tables");
    }

    // Each server gets a random batch candidate among the pairings
    // of its latency application.
    workload::Rng rng(seed);
    for (const std::string &app : latencyApps_) {
        std::vector<int> candidates;
        for (size_t i = 0; i < pairings_.size(); ++i) {
            if (pairings_[i].latencyApp == app)
                candidates.push_back(static_cast<int>(i));
        }
        if (candidates.empty()) {
            throw std::invalid_argument(
                "no pairings for latency app " + app);
        }
        for (int s = 0; s < serversPerApp; ++s) {
            assignment_.push_back(ServerSlot{
                candidates[rng.nextBelow(candidates.size())]});
        }
    }
}

PolicyResult
Cluster::finish(const std::string &name, double qos_target,
                const std::vector<int> &instances,
                int down_servers) const
{
    PolicyResult result;
    result.policy = name;
    result.qosTarget = qos_target;
    result.servers = servers();
    result.downServers = down_servers;
    result.contextsPerServer = contextsPerServer_;
    result.latencyThreads = latencyThreads_;

    for (size_t s = 0; s < assignment_.size(); ++s) {
        const int k = instances[s];
        if (k <= 0)
            continue;
        const Pairing &pairing = pairings_[assignment_[s].pairing];
        const double actual = pairing.byInstances[k - 1].actualQos;
        ++result.coLocatedServers;
        result.totalInstances += k;
        if (actual >= qos_target)
            result.compliantInstances += k;
        if (actual < qos_target) {
            ++result.violatedServers;
            const double magnitude =
                latencyOvershootNorm_
                    ? qos_target / std::max(actual, 1e-9) - 1.0
                    : (qos_target - actual) / qos_target;
            result.sumViolation += magnitude;
            result.maxViolation =
                std::max(result.maxViolation, magnitude);
        }
    }

    // One policy run over the cluster is the scheduler's decision
    // epoch; the counters aggregate across epochs, the gauge holds
    // the most recent epoch's utilization.
    obs::Registry &registry = obs::Registry::global();
    registry.counter("scheduler.policies").add();
    registry.counter("scheduler.decisions")
        .add(static_cast<std::uint64_t>(result.servers));
    registry.counter("scheduler.admissions")
        .add(static_cast<std::uint64_t>(result.coLocatedServers));
    registry.counter("scheduler.violations")
        .add(static_cast<std::uint64_t>(result.violatedServers));
    registry.counter("scheduler.batch_instances")
        .add(static_cast<std::uint64_t>(result.totalInstances));
    registry.gauge("scheduler.utilization").set(result.utilization());
    return result;
}

int
Cluster::predictedInstancesFor(std::size_t s, double target) const
{
    const Pairing &pairing = pairings_[assignment_[s].pairing];
    for (int k = maxInstances_; k >= 1; --k) {
        if (pairing.byInstances[k - 1].predictedQos >= target)
            return k;
    }
    return 0;
}

bool
Cluster::modelAdmitsOneMore(std::size_t s, double target,
                            int current) const
{
    if (current >= maxInstances_)
        return false;
    // byInstances[k-1] describes k instances, so index `current` is
    // the predicted QoS after placing one more.
    return pairingOf(s).byInstances[static_cast<std::size_t>(current)]
               .predictedQos >= target;
}

PolicyResult
Cluster::runPredictedPolicy(double qos_target,
                            const std::string &name) const
{
    obs::Span span("scheduler.policy", name);
    std::vector<int> instances(assignment_.size(), 0);
    for (size_t s = 0; s < assignment_.size(); ++s)
        instances[s] = predictedInstancesFor(s, qos_target);
    return finish(name, qos_target, instances);
}

PolicyResult
Cluster::runPredictedPolicyWithFailures(double qos_target, int epochs,
                                        const std::string &name) const
{
    obs::Span span("scheduler.policy", name + "+failures");
    if (epochs < 1)
        throw std::invalid_argument("epochs must be positive");

    obs::Registry &registry = obs::Registry::global();
    obs::Counter &failures =
        registry.counter("scheduler.server_failures");
    obs::Counter &evictions = registry.counter("scheduler.evictions");
    obs::Counter &replacements =
        registry.counter("scheduler.replacements");
    obs::Counter &lost = registry.counter("scheduler.lost_instances");
    obs::Counter &recoveries = registry.counter("scheduler.recoveries");

    fault::FaultPlan &faults = fault::FaultPlan::global();

    // Initial placement: the plain predicted policy.
    std::vector<int> instances(assignment_.size(), 0);
    for (size_t s = 0; s < assignment_.size(); ++s)
        instances[s] = predictedInstancesFor(s, qos_target);

    std::vector<bool> down(assignment_.size(), false);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Recovered servers rejoin and the policy refills them.
        for (size_t s = 0; s < assignment_.size(); ++s) {
            if (!down[s])
                continue;
            down[s] = false;
            instances[s] = predictedInstancesFor(s, qos_target);
            recoveries.add();
        }

        // Failures this epoch: keyed per (epoch, server) through the
        // shared key format (keyed.h), so the outcome is a pure
        // function of the armed seed and the online policy replays
        // the identical churn trace.
        std::vector<int> evicted_batches;
        for (size_t s = 0; s < assignment_.size(); ++s) {
            if (!faults.enabled() ||
                !faults.shouldInject("server.fail",
                                     epochServerKey(epoch, s))) {
                continue;
            }
            down[s] = true;
            failures.add();
            if (instances[s] > 0) {
                evictions.add(static_cast<std::uint64_t>(instances[s]));
                evicted_batches.push_back(instances[s]);
            }
            instances[s] = 0;
        }

        // Re-place evicted instances onto surviving servers that the
        // model still predicts can absorb one more — the predicted
        // QoS at k+1 must meet the target, not merely the capacity
        // bound — scanning round robin from the front
        // (deterministic). Anything that fits nowhere admissible is
        // lost capacity rather than a predicted violation.
        for (const int batch : evicted_batches) {
            for (int inst = 0; inst < batch; ++inst) {
                bool placed = false;
                for (size_t s = 0; s < assignment_.size(); ++s) {
                    if (down[s] ||
                        !modelAdmitsOneMore(s, qos_target,
                                            instances[s])) {
                        continue;
                    }
                    ++instances[s];
                    replacements.add();
                    placed = true;
                    break;
                }
                if (!placed)
                    lost.add();
            }
        }
    }

    // Servers still down in the final epoch host nothing and run no
    // latency threads; finish() excludes them from the busy-context
    // accounting.
    const int down_servers = static_cast<int>(
        std::count(down.begin(), down.end(), true));
    return finish(name, qos_target, instances, down_servers);
}

PolicyResult
Cluster::runOraclePolicy(double qos_target) const
{
    obs::Span span("scheduler.policy", "Oracle");
    std::vector<int> instances(assignment_.size(), 0);
    for (size_t s = 0; s < assignment_.size(); ++s) {
        const Pairing &pairing = pairings_[assignment_[s].pairing];
        for (int k = maxInstances_; k >= 1; --k) {
            if (pairing.byInstances[k - 1].actualQos >= qos_target) {
                instances[s] = k;
                break;
            }
        }
    }
    return finish("Oracle", qos_target, instances);
}

PolicyResult
Cluster::runRandomPolicy(double qos_target, double match_instances,
                         std::uint64_t seed) const
{
    obs::Span span("scheduler.policy", "Random");
    // Draw uniform instance counts, then nudge random servers until
    // the total matches the utilization gain we must reproduce.
    workload::Rng rng(seed);
    std::vector<int> instances(assignment_.size(), 0);
    std::int64_t total = 0;
    for (size_t s = 0; s < assignment_.size(); ++s) {
        instances[s] =
            static_cast<int>(rng.nextBelow(maxInstances_ + 1));
        total += instances[s];
    }
    const std::int64_t want = std::llround(match_instances);
    std::uint64_t guard = 0;
    const std::uint64_t guard_limit = 100ull * assignment_.size();
    while (total != want && guard++ < guard_limit) {
        const size_t s = rng.nextBelow(assignment_.size());
        if (total < want && instances[s] < maxInstances_) {
            ++instances[s];
            ++total;
        } else if (total > want && instances[s] > 0) {
            --instances[s];
            --total;
        }
    }
    if (total != want) {
        // Returning a mismatched total silently would skew the
        // matched-utilization comparison the Random policy exists
        // for; the divergence is absorbed but must stay auditable.
        obs::IncidentLog::global().record(
            "scheduler: random policy nudge loop hit guard limit at " +
            std::to_string(total) + " instances (target " +
            std::to_string(want) + ")");
    }
    return finish("Random", qos_target, instances);
}

} // namespace smite::scheduler
