/**
 * @file
 * Cluster-level scale-out model (paper Sections IV-C and IV-D).
 *
 * A warehouse-scale cluster of identical servers, each with six SMT
 * cores (twelve hardware contexts), runs one latency-sensitive
 * application per server on six contexts (the half-loaded baseline
 * that disallows SMT co-location). A co-location policy then decides,
 * per server, how many instances of a batch application to place on
 * the idle sibling contexts, subject to a QoS target.
 *
 * QoS is expressed uniformly as a fraction of solo performance
 * (average-performance QoS: 1 - degradation; tail QoS: solo p90
 * divided by degraded p90), so the same policies serve both metrics.
 *
 * This model is deliberately the paper's: homogeneous fleet, lockstep
 * full-cluster epochs, one batch candidate per server. The
 * warehouse-scale generalization — sharded state, streaming churn
 * epochs, mixed QoS tiers, heterogeneous machines — lives in shard.h;
 * the layer-wide catalog is docs/SCHEDULING.md.
 */

#ifndef SMITE_SCHEDULER_CLUSTER_H
#define SMITE_SCHEDULER_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace smite::scheduler {

/** Predicted and actual QoS of one (latency, batch, k) co-location. */
struct CoLocationOption {
    double predictedQos = 1.0;  ///< model-predicted QoS fraction
    double actualQos = 1.0;     ///< measured QoS fraction
};

/**
 * All co-location options of one (latency app, batch app) pairing:
 * element k-1 describes running k batch instances.
 */
struct Pairing {
    std::string latencyApp;
    std::string batchApp;
    std::vector<CoLocationOption> byInstances;
};

/** What one policy decided for one server. */
struct ServerDecision {
    int latencyApp = 0;   ///< index into the latency app list
    int pairing = 0;      ///< index into the server's pairing
    int instances = 0;    ///< batch instances co-located (0 = none)
    double actualQos = 1.0;
};

/** Aggregate outcome of a policy run over the cluster. */
struct PolicyResult {
    std::string policy;
    double qosTarget = 1.0;
    int servers = 0;
    int coLocatedServers = 0;
    int violatedServers = 0;
    int downServers = 0;         ///< servers down in the final epoch
    double totalInstances = 0;   ///< sum of co-located batch instances
    double compliantInstances = 0; ///< instances on non-violating servers
    double sumViolation = 0;     ///< sum of (target-actual)/target
    double maxViolation = 0;     ///< worst normalized violation

    int contextsPerServer = 12;
    int latencyThreads = 6;

    /**
     * Cluster utilization: busy contexts / all contexts. Servers down
     * in the final epoch run nothing — neither their latency threads
     * nor batch instances count as busy (their contexts still count
     * as owned capacity in the denominator).
     */
    double
    utilization() const
    {
        const double busy =
            static_cast<double>(servers - downServers) *
                latencyThreads +
            totalInstances;
        return busy / (static_cast<double>(servers) * contextsPerServer);
    }

    /** Relative utilization improvement over the no-SMT baseline. */
    double
    utilizationImprovement() const
    {
        const double base = static_cast<double>(latencyThreads) /
                            contextsPerServer;
        return (utilization() - base) / base;
    }

    /**
     * Goodput utilization: like utilization(), but batch instances
     * co-located on QoS-violating servers count as wasted work — an
     * operator must kill (or never should have placed) them. An
     * over-packing policy can beat a compliant one on raw
     * utilization; it cannot on goodput.
     */
    double
    goodputUtilization() const
    {
        const double busy =
            static_cast<double>(servers - downServers) *
                latencyThreads +
            compliantInstances;
        return busy / (static_cast<double>(servers) * contextsPerServer);
    }

    /** Relative goodput improvement over the no-SMT baseline. */
    double
    goodputImprovement() const
    {
        const double base = static_cast<double>(latencyThreads) /
                            contextsPerServer;
        return (goodputUtilization() - base) / base;
    }

    /** Fraction of co-located servers violating the target. */
    double
    violationRate() const
    {
        return coLocatedServers == 0
                   ? 0.0
                   : static_cast<double>(violatedServers) /
                         coLocatedServers;
    }

    /** Mean batch instances per server. */
    double
    meanInstances() const
    {
        return servers == 0 ? 0.0
                            : totalInstances /
                                  static_cast<double>(servers);
    }
};

/**
 * The cluster: a set of servers, each pre-assigned one latency
 * application and one candidate batch application (mirroring the
 * paper's setup of 4,000 servers, 1,000 per latency application).
 */
class Cluster
{
  public:
    /**
     * @param pairings all measured/predicted (latency, batch)
     *        pairings; servers draw their batch candidate from the
     *        pairings of their latency app
     * @param latencyApps names of the latency applications
     * @param serversPerApp servers dedicated to each latency app
     * @param latencyThreads busy contexts per server before
     *        co-location
     * @param contextsPerServer total hardware contexts per server
     * @param seed RNG seed for the batch-candidate assignment
     */
    Cluster(std::vector<Pairing> pairings,
            std::vector<std::string> latencyApps, int serversPerApp,
            int latencyThreads = 6, int contextsPerServer = 12,
            std::uint64_t seed = 42);

    /**
     * SMiTe policy: on each server, co-locate the largest k whose
     * *predicted* QoS meets the target.
     */
    PolicyResult runPredictedPolicy(double qos_target,
                                    const std::string &name = "SMiTe") const;

    /**
     * Oracle policy: the largest k whose *actual* QoS meets the
     * target (perfect knowledge upper bound).
     */
    PolicyResult runOraclePolicy(double qos_target) const;

    /**
     * The predicted policy under server failures: run @p epochs
     * decision epochs; in each, servers marked down by the
     * `server.fail` fault site (src/fault) evict their batch
     * instances, which the scheduler re-places *policy-aware* onto
     * surviving servers the model still predicts can absorb one more
     * instance (predictedQos at k+1 must meet the target); evictions
     * that fit nowhere admissible are counted as lost capacity.
     * Downed servers recover at the start of the next epoch and are
     * re-filled by the policy. Placement drift is tracked via the
     * `scheduler.server_failures` / `.evictions` / `.replacements` /
     * `.lost_instances` / `.recoveries` counters, and the result
     * reflects the final epoch's placement, with servers still down
     * in that epoch excluded from the busy-context accounting. With
     * no faults armed this is runPredictedPolicy(), byte-identical.
     */
    PolicyResult
    runPredictedPolicyWithFailures(double qos_target, int epochs,
                                   const std::string &name = "SMiTe") const;

    /**
     * Random interference-oblivious policy: co-locates random
     * instance counts scaled to achieve the same total utilization
     * gain as @p match_instances total instances.
     */
    PolicyResult runRandomPolicy(double qos_target,
                                 double match_instances,
                                 std::uint64_t seed = 7) const;

    /** Number of servers in the cluster. */
    int servers() const { return static_cast<int>(assignment_.size()); }

    /** Max batch instances a server can host. */
    int maxInstances() const { return maxInstances_; }

    /**
     * Use latency-overshoot normalization for violation magnitudes:
     * (t_actual - t_allowed) / t_allowed = target/actual - 1, which
     * exceeds 100% for deep tail violations (the paper's Figure 17
     * reports violations up to 110%). Default is QoS-fraction
     * normalization, (target - actual) / target.
     */
    void useLatencyOvershootNorm(bool enable)
    {
        latencyOvershootNorm_ = enable;
    }

  private:
    friend class OnlineScheduler;

    struct ServerSlot {
        int pairing;  ///< index into pairings_
    };

    PolicyResult finish(const std::string &name, double qos_target,
                        const std::vector<int> &instances,
                        int down_servers = 0) const;

    /** Largest k meeting @p target by prediction on server @p s. */
    int predictedInstancesFor(std::size_t s, double target) const;

    /**
     * True when the model predicts server @p s can absorb one more
     * batch instance on top of @p current: capacity remains and the
     * predicted QoS at current+1 still meets @p target.
     */
    bool modelAdmitsOneMore(std::size_t s, double target,
                            int current) const;

    /** The pairing table assigned to server @p s. */
    const Pairing &pairingOf(std::size_t s) const
    {
        return pairings_[assignment_[s].pairing];
    }

    std::vector<Pairing> pairings_;
    std::vector<std::string> latencyApps_;
    std::vector<ServerSlot> assignment_;
    int latencyThreads_;
    int contextsPerServer_;
    int maxInstances_;
    bool latencyOvershootNorm_ = false;
};

} // namespace smite::scheduler

#endif // SMITE_SCHEDULER_CLUSTER_H
