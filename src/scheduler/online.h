/**
 * @file
 * Online, metrics-driven co-location scheduler.
 *
 * The static policies in cluster.h decide once, from the model's
 * predictions, and never look back — a mispredicted pairing violates
 * its QoS target forever, and a conservatively predicted one wastes
 * contexts forever. Production schedulers do neither: they watch the
 * QoS the co-locations actually deliver and adjust (cf. Navarro et
 * al.'s dynamic thread-to-core allocation and Subramanian et al.'s
 * slowdown-estimation-driven resource control). The OnlineScheduler
 * closes that loop over the same per-(latency, batch, k) QoS tables:
 *
 * Each decision epoch it
 *   1. recovers servers downed in the previous epoch and re-fills
 *      them with the policy's placement (bounded by what it has
 *      learned about the server's pairing),
 *   2. downs servers via the `server.fail` fault site — keyed
 *      identically to Cluster::runPredictedPolicyWithFailures, so the
 *      static and online policies can be compared under the exact
 *      same churn trace,
 *   3. re-places the evicted batch instances onto survivors it
 *      believes can absorb one more (model-admissible, or observed
 *      running with headroom),
 *   4. *observes* the actual QoS of every co-location — optionally
 *      perturbed by the `scheduler.observe` fault site, the analogue
 *      of noisy production latency telemetry — and evicts one
 *      instance from every server observed below target, capping the
 *      learned admissible count for that server, and
 *   5. probes one additional instance on up to `probeBudget` servers
 *      observed with at least `headroom` QoS slack (never in the
 *      final epoch, so every probe gets observed at least once), and
 *   6. with load-aware admission enabled (LoadAwareConfig), caps
 *      guaranteed placement at the measured knee for the design load
 *      and manages best-effort filler instances on the idle
 *      contexts: fillers grow to the knee of the current offered
 *      load and are shed — before any guaranteed instance is touched
 *      — when a keyed `des.arrival_burst` load spike pushes a server
 *      past its knee (graceful degradation).
 *
 * Under the fairness objective (OnlineConfig::objective) an extra
 * pass between steps 4 and 5 trims one instance from every server
 * whose observed slowdown exceeds the epoch's minimum by more than
 * the spread tolerance — even when it still meets the QoS target —
 * bounding max slowdown and slowdown spread at some utilization cost
 * (see docs/SCHEDULING.md).
 *
 * Convergence: per-server learned caps only shrink, and shrink
 * exactly when an observation contradicts the current count (a QoS
 * violation, or a fairness trim under kFairness), so with noise-free
 * observations the placement converges and stays put. Observation
 * noise can only make the caps conservative.
 *
 * Every step publishes `scheduler.online.*` counters/gauges through
 * src/obs (catalog in docs/OBSERVABILITY.md) and appends an
 * EpochStats row to the returned timeline, which harnesses fold into
 * the run report. The whole loop is serial and every fault decision
 * is keyed (via epochServerKey in keyed.h), so a run is
 * byte-deterministic for a given SMITE_FAULTS seed regardless of
 * SMITE_THREADS. For the warehouse-scale sharded/streaming variant
 * of this loop see shard.h and docs/SCHEDULING.md.
 */

#ifndef SMITE_SCHEDULER_ONLINE_H
#define SMITE_SCHEDULER_ONLINE_H

#include <string>
#include <vector>

#include "scheduler/cluster.h"

namespace smite::scheduler {

/**
 * Optional load-aware admission (ISSUE 8): feed the scheduler the
 * knee QPS measured by the loadgen harness (bench_latency_vs_load /
 * loadgen::findKnee) per (pairing, co-location depth), and it
 * (a) caps guaranteed admission at the deepest co-location whose
 * knee still clears the design load, and (b) fills the remaining
 * idle contexts with *best-effort filler* instances, shedding them —
 * never guaranteed instances — when a fault-injected load spike
 * (`des.arrival_burst`, keyed per epoch/server) pushes the offered
 * load past the knee of the current depth. The knee table is plain
 * data, so the scheduler stays independent of the loadgen library.
 */
struct LoadAwareConfig {
    /** Off by default: disabled runs are byte-identical to before. */
    bool enabled = false;

    /** Design offered load per server (QPS); must be positive. */
    double baseQps = 0.0;

    /**
     * Offered-load multiplier on a server hit by a keyed
     * `des.arrival_burst` spike this epoch (>= 1).
     */
    double spikeFactor = 2.0;

    /**
     * kneeByPairing[pairing][depth]: max QPS meeting the tail target
     * with `depth` co-located batch instances (depth 0 = solo), one
     * row per Cluster pairing, each of size maxInstances + 1.
     */
    std::vector<std::vector<double>> kneeByPairing;
};

/**
 * What the evict/probe loop optimizes for.
 *
 * kUtilization is the paper's objective: pack every context whose
 * co-location still meets the QoS target. kFairness adds the
 * MISE-Fair-style criterion (Subramanian et al.): no co-located
 * latency app should be slowed much more than the best-off one, so
 * besides the target-violation evictions the loop also trims servers
 * whose observed slowdown (1 - QoS) exceeds the epoch's minimum by
 * more than `spreadTolerance` — trading utilization for a bounded
 * max slowdown and slowdown spread.
 */
enum class Objective {
    kUtilization,  ///< pack to the QoS target (default, the paper)
    kFairness,     ///< additionally bound the slowdown spread
};

/** Name of a scheduling objective. */
constexpr const char *
objectiveName(Objective objective)
{
    return objective == Objective::kUtilization ? "utilization"
                                                : "fairness";
}

/** Tuning knobs of the online policy. */
struct OnlineConfig {
    /** Decision epochs to run (must be positive). */
    int epochs = 20;
    /**
     * Max probe placements per epoch; 0 derives servers/4. Bounding
     * the probe rate bounds how much QoS risk one epoch can add.
     */
    int probeBudget = 0;
    /**
     * Observed QoS slack above the target required before a server
     * is probed with one more instance.
     */
    double headroom = 0.02;
    /** Load-aware admission; inert unless loadAware.enabled. */
    LoadAwareConfig loadAware;
    /** Optimization objective; kUtilization is byte-identical to the
        pre-fairness scheduler. */
    Objective objective = Objective::kUtilization;
    /**
     * Fairness only: max allowed excess of a server's observed
     * slowdown over the epoch's minimum before one instance is
     * trimmed (absolute slowdown, e.g. 0.05 = five QoS points).
     */
    double spreadTolerance = 0.05;
};

/** Telemetry of one OnlineScheduler decision epoch. */
struct EpochStats {
    int epoch = 0;             ///< epoch index, 0-based
    int failures = 0;          ///< servers downed this epoch
    int recoveries = 0;        ///< servers recovered at epoch start
    int failureEvictions = 0;  ///< instances evicted by failures
    int replacements = 0;      ///< evicted instances re-placed
    int lostInstances = 0;     ///< evicted instances lost
    int observedViolations = 0;///< observations below target
    int qosEvictions = 0;      ///< instances evicted on observed QoS
    int probes = 0;            ///< probe instances placed
    int liveServers = 0;       ///< servers up at epoch end
    double totalInstances = 0; ///< guaranteed batch instances at end
    double utilization = 0;    ///< live-cluster utilization at end
    // Load-aware admission (all zero when loadAware.enabled is off):
    int loadSpikes = 0;        ///< servers spiked by des.arrival_burst
    int fillersShed = 0;       ///< filler instances shed this epoch
    int loadViolations = 0;    ///< guaranteed tiers past their knee
    double fillerInstances = 0;///< best-effort fillers at epoch end
    // Fairness telemetry (recorded under either objective; the
    // fairness objective is what *acts* on it):
    int fairnessEvictions = 0; ///< instances trimmed for fairness
    double maxSlowdown = 0;    ///< max observed slowdown this epoch
    double slowdownSpread = 0; ///< max - min observed slowdown
};

/** Final placement plus the per-epoch trajectory that produced it. */
struct OnlineResult {
    /** Final-epoch accounting, comparable to the static policies. */
    PolicyResult final;
    /** One row per decision epoch, in order. */
    std::vector<EpochStats> timeline;
    /** Max actual slowdown over the final placement's co-locations. */
    double finalMaxSlowdown = 0.0;
    /** Max - min actual slowdown over the final co-locations. */
    double finalSlowdownSpread = 0.0;
};

/**
 * The time-stepped policy loop. Holds a reference to the Cluster
 * whose pairings it schedules over; the Cluster must outlive it.
 */
class OnlineScheduler
{
  public:
    explicit OnlineScheduler(const Cluster &cluster,
                             OnlineConfig config = {});

    /**
     * Run the epoch loop against @p qos_target. Starts from the
     * static predicted placement, then observes and adjusts as
     * described in the file header. The returned PolicyResult scores
     * the final epoch's placement against *actual* QoS, exactly like
     * the static policies, so the three are directly comparable.
     */
    OnlineResult run(double qos_target,
                     const std::string &name = "SMiTe-online") const;

  private:
    const Cluster &cluster_;
    OnlineConfig config_;
};

} // namespace smite::scheduler

#endif // SMITE_SCHEDULER_ONLINE_H
