/**
 * @file
 * Warehouse-scale sharded cluster with streaming decision epochs.
 *
 * The Cluster in cluster.h mirrors the paper's evaluation: 4,000
 * identical servers, every epoch re-scanning every server in
 * lockstep. ROADMAP item 1 asks for 25-100x that with machine
 * heterogeneity and continuous churn, which changes the shape of the
 * problem: at 128k+ servers an epoch can no longer afford to touch
 * every server, and "place the batch job" becomes "pick a machine
 * *and* a co-runner" (cf. Navarro et al.'s thread-to-core allocation
 * on heterogeneous parts). The ShardedCluster here is that rework:
 *
 * - **Sharded state.** Servers are partitioned into contiguous
 *   shards. Each shard owns its servers' placement state, a churn
 *   *event calendar* (epoch -> servers with something due) and an
 *   incrementally-maintained aggregate (live contexts, instances,
 *   violations). The per-epoch event pass runs shard-parallel on the
 *   `SMITE_THREADS` pool; shard results merge in shard index order,
 *   which is ascending server order, so output is byte-identical
 *   across thread counts *and* shard counts.
 *
 * - **Streaming epochs.** Churn randomness is drawn from per-server
 *   keyed streams (keyed.h): instead of flipping a failure /
 *   departure coin for every server every epoch (the lockstep
 *   O(servers) scan), each event's *next occurrence epoch* is sampled
 *   geometrically when the previous one resolves and filed in the
 *   owning shard's calendar. An epoch then touches only the servers
 *   with due events plus the probe targets of new arrivals —
 *   O(churn), not O(cluster). `shards == 1` deliberately keeps the
 *   lockstep full-scan engine as the equivalence reference (the same
 *   pattern as Machine::setReferenceTicking in the simulator): both
 *   engines consume the identical keyed streams, so their results
 *   are byte-identical and the speedup is honest, measured work
 *   avoidance (bench_scaleout_stress gates it).
 *
 * - **Churn.** Three independent keyed processes: per-server failure
 *   and recovery (as in the failure epochs of cluster.cpp, but
 *   placement-order-independent), per-placed-job departure (jobs
 *   finish), and a per-epoch stream of new job arrivals placed by
 *   sampled power-of-d-choices probing: d keyed probes, place on the
 *   admissible server whose *predicted* QoS after the placement is
 *   highest (ties to the lower server id). Guaranteed instances
 *   evicted by failures re-enter placement the same way; what fits
 *   nowhere admissible is lost capacity, preserving the conservation
 *   invariant of PR 5: placed - departures - lost == net placed.
 *
 * - **Mixed QoS tiers.** Latency-critical work holds its QoS target
 *   as before. *Guaranteed* batch instances are admitted only where
 *   predicted QoS at the new count meets TierPolicy::qosTarget.
 *   *Best-effort* fillers then absorb whatever freed capacity
 *   remains above TierPolicy::bestEffortFloor — an elastic backlog
 *   that grows into recovered or drained servers immediately and is
 *   preempted instantly when guaranteed work needs the contexts.
 *
 * - **Heterogeneous fleet.** Each server belongs to a MachineClass
 *   (Table 1's Sandy Bridge-EN and Ivy Bridge presets in
 *   bench_scaleout_stress) with its own context count, latency-app
 *   reservation and per-pairing QoS tables, so the same batch job
 *   predicts differently per machine and the probe placement picks
 *   both the machine and the co-runner.
 *
 * Everything observable is integer-accounted (instance counts,
 * violation counts, context totals); utilizations are derived from
 * the integer totals at the end, so summation order can never break
 * cross-shard determinism. The full layer catalog, determinism
 * contract and worked examples live in docs/SCHEDULING.md.
 */

#ifndef SMITE_SCHEDULER_SHARD_H
#define SMITE_SCHEDULER_SHARD_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scheduler/cluster.h"

namespace smite::scheduler {

/**
 * One machine type of the heterogeneous fleet: its context budget,
 * the contexts reserved for its latency-critical application, and
 * the (latency, batch) pairing QoS tables measured on this hardware.
 */
struct MachineClass {
    std::string name;
    int latencyThreads = 6;      ///< contexts the latency app owns
    int contextsPerServer = 12;  ///< total hardware contexts
    /** QoS tables; every table must have maxInstances() entries. */
    std::vector<Pairing> pairings;

    /** Batch instances (any tier) one server of this class can host. */
    int maxInstances() const { return contextsPerServer - latencyThreads; }
};

/** QoS tiers of the batch work. */
struct TierPolicy {
    /** Predicted QoS a *guaranteed* placement must keep. */
    double qosTarget = 0.90;
    /**
     * Predicted QoS floor for *best-effort* fillers; capacity between
     * the two thresholds is filled opportunistically. <= 0 disables
     * the best-effort tier.
     */
    double bestEffortFloor = 0.0;
    /**
     * Fairness bound: max predicted slowdown (1 - predicted QoS) a
     * guaranteed placement may inflict on its latency app, on top of
     * the qosTarget admission test. The default 1.0 admits anything
     * the target admits (byte-identical to the pre-fairness policy);
     * tightening it below 1 - qosTarget trades utilization for a
     * bounded worst-case slowdown across the fleet (the max-slowdown
     * objective of docs/SCHEDULING.md).
     */
    double slowdownBudget = 1.0;
};

/** Churn knobs; all randomness is keyed per server (keyed.h). */
struct ChurnConfig {
    int arrivalsPerEpoch = 0;    ///< new guaranteed jobs per epoch
    double departProb = 0.0;     ///< per guaranteed job per epoch
    double failProb = 0.0;       ///< per server per epoch
    double recoverProb = 1.0;    ///< per down server per epoch
    int probesPerJob = 4;        ///< power-of-d-choices sample size
    std::uint64_t seed = 42;     ///< root of every keyed stream
};

/** Telemetry of one streaming decision epoch. */
struct StreamEpochStats {
    std::int64_t epoch = 0;
    std::int64_t failures = 0;      ///< servers downed this epoch
    std::int64_t recoveries = 0;    ///< servers recovered this epoch
    std::int64_t departures = 0;    ///< guaranteed jobs that finished
    std::int64_t arrivals = 0;      ///< new guaranteed jobs offered
    std::int64_t placed = 0;        ///< arrivals placed
    std::int64_t rejected = 0;      ///< arrivals with no admissible probe
    std::int64_t evictions = 0;     ///< guaranteed evicted by failures
    std::int64_t replacements = 0;  ///< evicted jobs re-placed
    std::int64_t lost = 0;          ///< evicted jobs lost
    std::int64_t fillerPlaced = 0;  ///< best-effort instances added
    std::int64_t fillerEvicted = 0; ///< best-effort instances removed
    std::int64_t events = 0;        ///< servers with due churn events
    std::int64_t liveServers = 0;   ///< up at epoch end
    std::int64_t guaranteedInstances = 0;  ///< at epoch end
    std::int64_t bestEffortInstances = 0;  ///< at epoch end
    double utilization = 0;         ///< busy / owned contexts
    double goodputUtilization = 0;  ///< compliant busy / owned
};

/** Final state plus whole-run totals of one runStream() call. */
struct StreamResult {
    // Final-epoch snapshot (integer-accounted).
    std::int64_t servers = 0;
    std::int64_t liveServers = 0;
    std::int64_t totalContexts = 0;       ///< owned capacity
    std::int64_t latencyContextsUp = 0;   ///< latency threads running
    std::int64_t guaranteedInstances = 0;
    std::int64_t bestEffortInstances = 0;
    std::int64_t coLocatedServers = 0;    ///< servers with guaranteed work
    std::int64_t violatingServers = 0;    ///< actual QoS below target
    std::int64_t goodGuaranteed = 0;      ///< guaranteed on compliant servers
    std::int64_t goodFillers = 0;         ///< fillers with actual QoS >= floor

    // Totals across the run (bootstrap fill included).
    std::int64_t arrivals = 0, placed = 0, rejected = 0;
    std::int64_t departures = 0, failures = 0, recoveries = 0;
    std::int64_t evictions = 0, replacements = 0, lost = 0;
    std::int64_t fillerPlaced = 0, fillerEvicted = 0;
    std::int64_t events = 0;

    /** Order-independent fold over the final per-server state. */
    std::uint64_t digest = 0;

    // Fairness of the final placement, from *actual* QoS over the
    // co-located live servers (0 when none are co-located).
    double maxSlowdown = 0.0;      ///< worst actual slowdown
    double slowdownSpread = 0.0;   ///< worst minus best actual slowdown

    std::vector<StreamEpochStats> timeline;

    /** Busy contexts (latency + all batch) over owned contexts. */
    double utilization() const
    {
        return totalContexts == 0
                   ? 0.0
                   : static_cast<double>(latencyContextsUp +
                                         guaranteedInstances +
                                         bestEffortInstances) /
                         static_cast<double>(totalContexts);
    }

    /**
     * Goodput: like utilization(), but guaranteed instances on
     * QoS-violating servers and fillers whose servers fell below the
     * best-effort floor count as wasted work.
     */
    double goodputUtilization() const
    {
        return totalContexts == 0
                   ? 0.0
                   : static_cast<double>(latencyContextsUp +
                                         goodGuaranteed + goodFillers) /
                         static_cast<double>(totalContexts);
    }

    /** Fraction of co-located servers violating the QoS target. */
    double violationRate() const
    {
        return coLocatedServers == 0
                   ? 0.0
                   : static_cast<double>(violatingServers) /
                         static_cast<double>(coLocatedServers);
    }
};

/**
 * The sharded, heterogeneous, churn-driven cluster. Construction
 * fixes the fleet (classes, per-server pairing assignment — keyed,
 * never placement-ordered) and the shard partition; runStream() is
 * the streaming policy loop and may be called repeatedly (each call
 * restarts from an empty placement).
 */
class ShardedCluster
{
  public:
    /**
     * @param classes the machine classes of the fleet
     * @param serversPerClass servers of each class (same length;
     *        class c occupies a contiguous block of server ids)
     * @param shards shard count; 1 selects the lockstep full-scan
     *        reference engine, >= 2 the streaming calendar engine —
     *        results are byte-identical either way
     * @param assignSeed keyed seed of the pairing assignment
     */
    ShardedCluster(std::vector<MachineClass> classes,
                   std::vector<std::int64_t> serversPerClass,
                   int shards = 1, std::uint64_t assignSeed = 42);

    /**
     * Run @p epochs streaming decision epochs from an empty
     * placement: bootstrap the best-effort fill, then per epoch
     * process due churn events (shard-parallel), re-place
     * failure-evicted guaranteed jobs, place the epoch's arrivals
     * (both by keyed power-of-d-choices probing), and snapshot the
     * integer aggregates into the timeline.
     */
    StreamResult runStream(const TierPolicy &tiers,
                           const ChurnConfig &churn, int epochs);

    std::int64_t servers() const
    {
        return static_cast<std::int64_t>(classIdx_.size());
    }
    int shardCount() const { return shards_; }

    /** Thread override for the event pass; 0 = SMITE_THREADS/default. */
    void setThreads(int threads) { threads_ = threads; }

    /** Machine class of server @p s. */
    const MachineClass &machineClassOf(std::int64_t s) const
    {
        return classes_[classIdx_[static_cast<std::size_t>(s)]];
    }

    /** Pairing table assigned to server @p s. */
    const Pairing &pairingOf(std::int64_t s) const;

    // Post-run introspection (state of the last runStream call).
    bool upAt(std::int64_t s) const
    {
        return up_[static_cast<std::size_t>(s)] != 0;
    }
    int guaranteedAt(std::int64_t s) const
    {
        return g_[static_cast<std::size_t>(s)];
    }
    int bestEffortAt(std::int64_t s) const
    {
        return b_[static_cast<std::size_t>(s)];
    }

    /**
     * Cross-check the incrementally-maintained shard aggregates
     * against a full recomputation from per-server state (test hook;
     * meaningful after runStream).
     */
    bool verifyAggregates() const;

  private:
    /** Precomputed per-pairing admission/violation tables. */
    struct PairTab {
        const Pairing *src = nullptr;
        int cap = 0;
        /** predicted QoS at k+1 meets qosTarget (guaranteed admit). */
        std::vector<std::uint8_t> admit;      // index k in [0, cap)
        /** largest total reachable from count j by floor-admissible
         * single steps (best-effort fill target). */
        std::vector<int> chainTo;             // index j in [0, cap]
        /** actual QoS at g guaranteed instances is below target. */
        std::vector<std::uint8_t> violating;  // index g in [0, cap]
        /** actual QoS at total k still meets the best-effort floor. */
        std::vector<std::uint8_t> goodFill;   // index k in [0, cap]
    };

    /** Integer aggregate of one shard's live state. */
    struct Agg {
        std::int64_t upServers = 0, latencyContexts = 0;
        std::int64_t guaranteed = 0, bestEffort = 0;
        std::int64_t coLocated = 0, violating = 0;
        std::int64_t goodGuaranteed = 0, goodFillers = 0;
    };

    /** Per-shard per-epoch churn deltas, merged in shard order. */
    struct EpochDelta {
        std::int64_t failures = 0, recoveries = 0, departures = 0;
        std::int64_t evictions = 0;
        std::int64_t fillerPlaced = 0, fillerEvicted = 0;
        std::int64_t events = 0;
    };

    int shardOf(std::int64_t s) const;
    const PairTab &tabOf(std::size_t s) const
    {
        return tabs_[tabIdx_[s]];
    }

    Agg contributionOf(std::size_t s) const;
    void aggSub(int shard, std::size_t s);
    void aggAdd(int shard, std::size_t s);

    void scheduleEvent(int shard, std::int64_t epoch, std::uint32_t s);
    void rebalanceFillers(std::size_t s, EpochDelta &delta);
    void processServerEvents(int shard, std::uint32_t s,
                             std::int64_t epoch, EpochDelta &delta);
    /** One keyed power-of-d-choices placement; true when placed. */
    bool placeGuaranteedJob(std::uint64_t salt, std::int64_t epoch,
                            std::int64_t jobIndex, EpochDelta &delta);
    void resetRunState();
    void buildTabs(const TierPolicy &tiers);
    std::uint64_t stateDigest() const;

    // Fleet (fixed at construction).
    std::vector<MachineClass> classes_;
    std::vector<std::uint16_t> classIdx_;  ///< per server
    std::vector<std::uint32_t> tabIdx_;    ///< per server, into tabs_
    std::vector<std::int64_t> shardStart_; ///< shards_ + 1 boundaries
    std::int64_t totalContexts_ = 0;
    int shards_ = 1;
    int threads_ = 0;
    int maxSlots_ = 0;  ///< max maxInstances() over classes

    // Run state (rebuilt by each runStream call).
    std::vector<PairTab> tabs_;
    TierPolicy tiers_;
    ChurnConfig churn_;
    std::int64_t epochsLimit_ = 0;  ///< events at/after this are moot
    std::vector<std::uint8_t> up_, g_, b_;
    std::vector<std::int64_t> nextFail_, recoverAt_;
    std::vector<std::uint32_t> failSeq_, placeSeq_;
    std::vector<std::int64_t> depEpoch_;  ///< n * maxSlots_
    std::vector<Agg> aggs_;               ///< per shard
    std::vector<EpochDelta> deltas_;      ///< per shard, per epoch
    std::vector<std::unordered_map<std::int64_t,
                                   std::vector<std::uint32_t>>>
        calendars_;                       ///< per shard (streaming)
    std::vector<std::vector<std::pair<std::uint32_t, int>>>
        evictQueues_;                     ///< per shard, per epoch
    std::vector<std::vector<std::uint32_t>> dueScratch_;  ///< per shard
};

} // namespace smite::scheduler

#endif // SMITE_SCHEDULER_SHARD_H
