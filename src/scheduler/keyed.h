/**
 * @file
 * Keyed randomness for the scheduler layer.
 *
 * Two generations of churn randomness live side by side:
 *
 * - The epoch-granular string keys (`epoch<N>#server<S>`) that the
 *   static failure loop (cluster.cpp) and the OnlineScheduler
 *   (online.cpp) feed to the `server.fail` / `scheduler.observe`
 *   fault sites. epochServerKey() is the single definition of that
 *   format, so the two loops can never drift apart and always replay
 *   the identical churn trace for a given SMITE_FAULTS seed.
 *
 * - The numeric keyed streams used by the sharded streaming cluster
 *   (shard.h). Every draw is a pure function of
 *   (seed, salt, a, b) — typically (seed, event kind, server,
 *   occurrence index) — so the outcome is independent of placement
 *   order, shard count and thread count. This is what fixes the
 *   original Cluster's placement-order sampling: a draw belongs to a
 *   *server*, not to the position of that server in a scan.
 *
 * geometricSteps() converts one uniform draw into a
 * time-to-next-event count by inversion, which is what lets the
 * streaming engine skip the per-epoch Bernoulli scan entirely: a
 * Geometric(p) gap between events is distributed identically to
 * "flip a p-coin every epoch", but costs one draw per *event*
 * instead of one per epoch per server.
 */

#ifndef SMITE_SCHEDULER_KEYED_H
#define SMITE_SCHEDULER_KEYED_H

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace smite::scheduler {

/**
 * The per-(epoch, server) fault-site key shared by the static failure
 * loop and the online scheduler, so both policies replay the exact
 * same churn trace under one SMITE_FAULTS plan.
 */
inline std::string
epochServerKey(int epoch, std::size_t server)
{
    return "epoch" + std::to_string(epoch) + "#server" +
           std::to_string(server);
}

namespace keyed {

/** Sentinel epoch for "this event never happens" (p == 0 draws). */
inline constexpr std::int64_t kNever =
    std::numeric_limits<std::int64_t>::max();

/** SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * One keyed 64-bit draw: a pure function of (seed, salt, a, b). The
 * salt separates event kinds (failure vs departure vs probe...), so
 * streams never collide even for equal (a, b).
 */
inline std::uint64_t
draw(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
     std::uint64_t b)
{
    std::uint64_t h = mix64(seed ^ 0x5851f42d4c957f2dull);
    h = mix64(h ^ salt);
    h = mix64(h ^ a);
    return mix64(h ^ b);
}

/** Map a 64-bit draw to a uniform double in [0, 1). */
inline double
toUnit(std::uint64_t h)
{
    // 53 mantissa bits: the usual exact uniform-double construction.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/**
 * Epochs until the next success of a per-epoch Bernoulli(p) trial,
 * sampled by inversion from one uniform draw: Geometric(p) on
 * {1, 2, ...}. Returns kNever when p <= 0 (or the draw lands so deep
 * in the tail the count cannot be represented); returns 1 when
 * p >= 1.
 */
inline std::int64_t
geometricSteps(double p, std::uint64_t h)
{
    if (p <= 0.0)
        return kNever;
    if (p >= 1.0)
        return 1;
    const double u = toUnit(h);
    // floor(log(1-u) / log(1-p)) + 1, computed with log1p for
    // precision at small p.
    const double k = std::floor(std::log1p(-u) / std::log1p(-p));
    if (!(k < 9.0e15))
        return kNever;
    return 1 + static_cast<std::int64_t>(k);
}

} // namespace keyed
} // namespace smite::scheduler

#endif // SMITE_SCHEDULER_KEYED_H
