/**
 * @file
 * Discrete-event simulator for a single-server FCFS queue.
 *
 * Used two ways: (a) to validate the closed-form M/M/1 percentile
 * formula, and (b) as the "measured" latency of a co-located
 * latency-sensitive service — the service rate observed on the SMT
 * machine (degraded by interference) drives the simulator, and the
 * resulting empirical 90th-percentile latency plays the role of the
 * paper's measured tail latency.
 */

#ifndef SMITE_QUEUEING_DES_H
#define SMITE_QUEUEING_DES_H

#include <cstdint>
#include <vector>

namespace smite::queueing {

/** Result of one queueing simulation. */
struct QueueSimResult {
    std::vector<double> responseTimes;  ///< per-request sojourn times

    /** Empirical p-th percentile of the response times. */
    double percentile(double p) const;

    /** Empirical mean response time. */
    double meanResponse() const;
};

/**
 * Simulate an FCFS single-server queue with exponential interarrival
 * and service times (M/M/1).
 *
 * @param lambda arrival rate (requests/s)
 * @param mu service rate (requests/s)
 * @param requests number of requests to simulate
 * @param seed RNG seed (deterministic for a given seed)
 * @param warmupRequests initial requests discarded from statistics
 */
QueueSimResult simulateMm1(double lambda, double mu,
                           std::uint64_t requests, std::uint64_t seed = 1,
                           std::uint64_t warmupRequests = 1000);

} // namespace smite::queueing

#endif // SMITE_QUEUEING_DES_H
