/**
 * @file
 * Discrete-event simulators for the tail-latency pipeline.
 *
 * Two engines live here:
 *
 * - simulateMm1(): the original closed single-server FCFS M/M/1
 *   simulation, kept as the validation counterpart of the closed-form
 *   percentile formula (queueing/mm1.h).
 *
 * - simulateOpenLoop(): the production-shaped generalization — an
 *   event-driven multi-server FCFS queue fed by an *arbitrary*
 *   open-loop arrival stream (src/loadgen builds Poisson, bursty
 *   MMPP and diurnal streams). Requests are balanced least-loaded
 *   across the servers (or round-robin), queues can be bounded with
 *   drop accounting, per-request deadlines are tracked, and the
 *   interference-degraded service rates measured by the Lab plug in
 *   per server. This is the "measured" tail-latency path of
 *   bench_fig13 and the engine under the knee-finding
 *   bench_latency_vs_load harness.
 *
 * Robustness: three keyed fault sites exercise the queueing path in
 * chaos runs (docs/ROBUSTNESS.md) — `des.server_stall` stretches
 * individual service times, `des.drop` loses requests at admission,
 * and `des.arrival_burst` (wired in loadgen's arrival streams)
 * compresses inter-arrival gaps. All randomness is keyed per
 * (seed, stream, occurrence) — see queueing/keyed_stream.h — so
 * chaos runs and clean runs alike are byte-identical across repeats
 * and thread counts.
 */

#ifndef SMITE_QUEUEING_DES_H
#define SMITE_QUEUEING_DES_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace smite::queueing {

/** Result of one queueing simulation. */
struct QueueSimResult {
    std::vector<double> responseTimes;  ///< per-request sojourn times

    /** Empirical p-th percentile of the response times. */
    double percentile(double p) const;

    /** Empirical mean response time. */
    double meanResponse() const;
};

/**
 * Simulate an FCFS single-server queue with exponential interarrival
 * and service times (M/M/1).
 *
 * @param lambda arrival rate (requests/s)
 * @param mu service rate (requests/s)
 * @param requests number of requests to simulate
 * @param seed RNG seed (deterministic for a given seed)
 * @param warmupRequests initial requests discarded from statistics;
 *        must be strictly below @p requests or the sample set would
 *        be empty (std::invalid_argument)
 */
QueueSimResult simulateMm1(double lambda, double mu,
                           std::uint64_t requests, std::uint64_t seed = 1,
                           std::uint64_t warmupRequests = 1000);

/**
 * Configuration of one open-loop multi-server simulation.
 */
struct OpenLoopConfig {
    /**
     * Interference-degraded service rate of each server instance
     * (requests/s); one entry per server, all must be positive.
     */
    std::vector<double> serviceRates;

    /**
     * Bound on each server's queue, *including* the request in
     * service; an arrival finding its chosen server full is dropped.
     * 0 means unbounded.
     */
    std::size_t queueCapacity = 0;

    /**
     * Per-request deadline in seconds, measured from arrival; a
     * completed request whose sojourn exceeds it counts as a
     * deadline miss (it is not aborted — open-loop servers finish
     * what they started). 0 disables deadline tracking.
     */
    double deadline = 0.0;

    /**
     * Least-loaded balancing: each arrival goes to the server with
     * the shortest queue (ties to the lowest index). When false,
     * arrivals round-robin by request index.
     */
    bool leastLoaded = true;

    /** Seed of the keyed service-time stream. */
    std::uint64_t seed = 1;
};

/**
 * Outcome of one open-loop simulation, indexed by offered request in
 * arrival order so callers can slice warmup / measurement / cooldown
 * phases by request index.
 */
struct OpenLoopResult {
    /** Sentinel response time of a dropped request. */
    static constexpr double kDropped = -1.0;

    /** npos for the percentile / mean window bounds. */
    static constexpr std::size_t kAll =
        std::numeric_limits<std::size_t>::max();

    /** Per offered request: sojourn time, or kDropped. */
    std::vector<double> responseTimes;
    /** Per offered request: serving server, or -1 when dropped. */
    std::vector<std::int32_t> servedBy;

    std::uint64_t offered = 0;         ///< arrivals presented
    std::uint64_t completed = 0;       ///< requests served
    std::uint64_t dropped = 0;         ///< all drops
    std::uint64_t droppedQueueFull = 0;///< drops on a full bounded queue
    std::uint64_t droppedByFault = 0;  ///< drops injected by `des.drop`
    std::uint64_t deadlineMisses = 0;  ///< completions past the deadline

    /**
     * Empirical p-th percentile of the completed requests whose
     * arrival index lies in [from, to). @throws std::logic_error when
     * the window holds no completed sample.
     */
    double percentile(double p, std::size_t from = 0,
                      std::size_t to = kAll) const;

    /** Mean response of the completed requests in [from, to). */
    double meanResponse(std::size_t from = 0,
                        std::size_t to = kAll) const;

    /** Completed requests with arrival index in [from, to). */
    std::uint64_t completedIn(std::size_t from,
                              std::size_t to = kAll) const;

    /** Dropped requests with arrival index in [from, to). */
    std::uint64_t droppedIn(std::size_t from,
                            std::size_t to = kAll) const;
};

/**
 * Event-driven open-loop simulation: feed the @p arrivals stream
 * (absolute arrival times, non-decreasing) through the configured
 * server pool. Service times are exponential at each server's rate,
 * drawn from a keyed per-request stream, so two configs that differ
 * only in service rates consume identical randomness (common random
 * numbers — the property knee searches rely on).
 *
 * Fault sites (active only under an armed SMITE_FAULTS plan):
 * `des.drop` loses the request at admission; `des.server_stall`
 * stretches the sampled service time by 1 + max(0, ε),
 * ε ~ N(0, sigma).
 */
OpenLoopResult simulateOpenLoop(const std::vector<double> &arrivals,
                                const OpenLoopConfig &config);

} // namespace smite::queueing

#endif // SMITE_QUEUEING_DES_H
