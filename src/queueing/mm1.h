/**
 * @file
 * Closed-form FCFS M/M/1 queueing model (paper Section III-C3,
 * Equations 4-6).
 *
 * The paper models each worker thread of a latency-sensitive service
 * as an independent single-server queue: Poisson arrivals at rate
 * lambda, exponential service at rate mu. Response time (queueing +
 * service) is then exponential with rate (mu - lambda), giving a
 * closed-form percentile latency. Co-location degrades the service
 * rate to mu' = (1 - Deg) * mu (Equation 5).
 */

#ifndef SMITE_QUEUEING_MM1_H
#define SMITE_QUEUEING_MM1_H

namespace smite::queueing {

/**
 * An M/M/1 queue with fixed arrival and service rates.
 */
class Mm1
{
  public:
    /**
     * @param lambda mean arrival rate (requests/s)
     * @param mu mean service rate (requests/s)
     * @throws std::invalid_argument for non-positive rates
     */
    Mm1(double lambda, double mu);

    /** Offered load rho = lambda / mu. */
    double utilization() const { return lambda_ / mu_; }

    /** Is the queue stable (lambda < mu)? */
    bool stable() const { return lambda_ < mu_; }

    /**
     * Response-time probability density
     * f(t) = (mu - lambda) e^{-(mu - lambda) t}   (Equation 4).
     * Requires stability.
     */
    double responseTimePdf(double t) const;

    /** Response-time CDF F(t) = 1 - e^{-(mu - lambda) t}. */
    double responseTimeCdf(double t) const;

    /** Mean response time 1 / (mu - lambda). Requires stability. */
    double meanResponseTime() const;

    /**
     * p-th percentile response time
     * t_p = -ln(1 - p) / (mu - lambda). Requires stability.
     * @param p percentile in (0, 1), e.g. 0.90
     */
    double percentileLatency(double p) const;

    /**
     * Percentile latency after a throughput degradation
     * (Equation 6): t_p = -ln(1-p) / ((1 - deg) mu - lambda).
     *
     * @param deg fractional service-rate degradation in [0, 1)
     * @return the degraded percentile latency; +inf if the degraded
     *         queue is unstable ((1-deg) mu <= lambda)
     */
    double degradedPercentileLatency(double p, double deg) const;

    /** Arrival rate lambda. */
    double lambda() const { return lambda_; }

    /** Service rate mu. */
    double mu() const { return mu_; }

  private:
    double lambda_;
    double mu_;
};

} // namespace smite::queueing

#endif // SMITE_QUEUEING_MM1_H
