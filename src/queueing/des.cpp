#include "queueing/des.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>

#include "fault/fault.h"
#include "queueing/keyed_stream.h"
#include "workload/rng.h"

namespace smite::queueing {

namespace {

/**
 * Interpolated empirical percentile of an unsorted sample vector
 * (sorts a copy; shared by both result types).
 */
double
samplePercentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        throw std::logic_error("no samples");
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("percentile must be in (0, 1)");
    std::sort(samples.begin(), samples.end());
    const double pos = p * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace

double
QueueSimResult::percentile(double p) const
{
    return samplePercentile(responseTimes, p);
}

double
QueueSimResult::meanResponse() const
{
    if (responseTimes.empty())
        throw std::logic_error("no samples");
    double sum = 0.0;
    for (double t : responseTimes)
        sum += t;
    return sum / static_cast<double>(responseTimes.size());
}

QueueSimResult
simulateMm1(double lambda, double mu, std::uint64_t requests,
            std::uint64_t seed, std::uint64_t warmupRequests)
{
    if (lambda <= 0.0 || mu <= 0.0)
        throw std::invalid_argument("rates must be positive");
    if (requests == 0)
        throw std::invalid_argument("need at least one request");
    if (warmupRequests >= requests) {
        // Checked up front: percentiles over an empty sample set are
        // meaningless, so a warmup that consumes every request is a
        // configuration error, not a run that silently "succeeds".
        throw std::invalid_argument(
            "warmup consumes all requests (warmupRequests >= requests)");
    }

    workload::Rng rng(seed);
    auto exponential = [&rng](double rate) {
        // Inverse-transform sampling; nextDouble() < 1 so log is safe.
        return -std::log(1.0 - rng.nextDouble()) / rate;
    };

    // `des.service` fault site: real servers hiccup — GC pauses, page
    // faults, noisy neighbors stretch individual request service
    // times. Seeded Gaussian stretch per sampled service time, so
    // chaos runs of the tail-latency pipeline are reproducible and a
    // disarmed plan leaves the RNG stream untouched.
    fault::FaultPlan &faults = fault::FaultPlan::global();
    const bool chaos = faults.enabled() && faults.armed("des.service");

    QueueSimResult result;
    result.responseTimes.reserve(requests - warmupRequests);

    // FCFS single server: departure(n) =
    //   max(arrival(n), departure(n-1)) + service(n).
    double arrival = 0.0;
    double prev_departure = 0.0;
    for (std::uint64_t n = 0; n < requests; ++n) {
        arrival += exponential(lambda);
        const double start = std::max(arrival, prev_departure);
        double service = exponential(mu);
        if (chaos && faults.shouldInject("des.service")) {
            // Stretch only (floor at the sampled time): a hiccup never
            // makes a request finish early.
            const double eps =
                std::max(0.0, faults.gaussianNext("des.service"));
            service *= 1.0 + eps;
        }
        const double departure = start + service;
        prev_departure = departure;
        if (n >= warmupRequests)
            result.responseTimes.push_back(departure - arrival);
    }
    return result;
}

double
OpenLoopResult::percentile(double p, std::size_t from,
                           std::size_t to) const
{
    std::vector<double> window;
    const std::size_t end = std::min(to, responseTimes.size());
    for (std::size_t i = from; i < end; ++i) {
        if (responseTimes[i] >= 0.0)
            window.push_back(responseTimes[i]);
    }
    return samplePercentile(std::move(window), p);
}

double
OpenLoopResult::meanResponse(std::size_t from, std::size_t to) const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    const std::size_t end = std::min(to, responseTimes.size());
    for (std::size_t i = from; i < end; ++i) {
        if (responseTimes[i] >= 0.0) {
            sum += responseTimes[i];
            ++n;
        }
    }
    if (n == 0)
        throw std::logic_error("no samples");
    return sum / static_cast<double>(n);
}

std::uint64_t
OpenLoopResult::completedIn(std::size_t from, std::size_t to) const
{
    std::uint64_t n = 0;
    const std::size_t end = std::min(to, responseTimes.size());
    for (std::size_t i = from; i < end; ++i)
        n += responseTimes[i] >= 0.0 ? 1 : 0;
    return n;
}

std::uint64_t
OpenLoopResult::droppedIn(std::size_t from, std::size_t to) const
{
    std::uint64_t n = 0;
    const std::size_t end = std::min(to, responseTimes.size());
    for (std::size_t i = from; i < end; ++i)
        n += responseTimes[i] < 0.0 ? 1 : 0;
    return n;
}

OpenLoopResult
simulateOpenLoop(const std::vector<double> &arrivals,
                 const OpenLoopConfig &config)
{
    if (config.serviceRates.empty())
        throw std::invalid_argument("need at least one server");
    for (const double mu : config.serviceRates) {
        if (mu <= 0.0)
            throw std::invalid_argument(
                "service rates must be positive");
    }

    const std::size_t servers = config.serviceRates.size();

    fault::FaultPlan &faults = fault::FaultPlan::global();
    const bool chaos_drop =
        faults.enabled() && faults.armed("des.drop");
    const bool chaos_stall =
        faults.enabled() && faults.armed("des.server_stall");
    // Fault keys carry the simulation seed so two co-located
    // services chaos-tested in one process draw distinct-but-pinned
    // fault patterns; with one shared seed (common random numbers)
    // the patterns coincide by construction.
    const std::string key_prefix =
        "q" + std::to_string(config.seed) + "#r";

    // Per-server FCFS state: the departure times of everything
    // admitted but not yet finished (monotone per server, so a deque
    // pops expired entries from the front in O(1) amortized), plus
    // the last departure for the Lindley start-time recursion.
    std::vector<std::deque<double>> in_flight(servers);
    std::vector<double> last_departure(servers, 0.0);

    OpenLoopResult result;
    result.responseTimes.reserve(arrivals.size());
    result.servedBy.reserve(arrivals.size());

    double prev_arrival = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const double t = std::max(arrivals[i], prev_arrival);
        prev_arrival = t;
        ++result.offered;

        // Retire everything that departed before this arrival — the
        // queue lengths the balancer sees are point-in-time truth.
        for (std::size_t s = 0; s < servers; ++s) {
            auto &q = in_flight[s];
            while (!q.empty() && q.front() <= t)
                q.pop_front();
        }

        if (chaos_drop &&
            faults.shouldInject("des.drop",
                                key_prefix + std::to_string(i))) {
            ++result.dropped;
            ++result.droppedByFault;
            result.responseTimes.push_back(OpenLoopResult::kDropped);
            result.servedBy.push_back(-1);
            continue;
        }

        // Balance: least-loaded (ties to the lowest index) or
        // round-robin by request index.
        std::size_t chosen = i % servers;
        if (config.leastLoaded) {
            chosen = 0;
            for (std::size_t s = 1; s < servers; ++s) {
                if (in_flight[s].size() < in_flight[chosen].size())
                    chosen = s;
            }
        }

        if (config.queueCapacity > 0 &&
            in_flight[chosen].size() >= config.queueCapacity) {
            ++result.dropped;
            ++result.droppedQueueFull;
            result.responseTimes.push_back(OpenLoopResult::kDropped);
            result.servedBy.push_back(-1);
            continue;
        }

        // Service time: one keyed unit-exponential per request,
        // scaled by the chosen server's (degraded) rate — the same
        // request re-simulated under a deeper co-location costs
        // proportionally longer, with no new randomness.
        double service =
            keyed::exponentialUnit(keyed::draw(config.seed,
                                               keyed::kSaltService, i,
                                               0)) /
            config.serviceRates[chosen];
        if (chaos_stall &&
            faults.shouldInject("des.server_stall",
                                key_prefix + std::to_string(i) + "#s" +
                                    std::to_string(chosen))) {
            const double eps = std::max(
                0.0, faults.gaussian("des.server_stall",
                                     key_prefix + std::to_string(i) +
                                         "#s" + std::to_string(chosen)));
            service *= 1.0 + eps;
        }

        const double start = std::max(t, last_departure[chosen]);
        const double departure = start + service;
        last_departure[chosen] = departure;
        in_flight[chosen].push_back(departure);

        const double response = departure - t;
        ++result.completed;
        if (config.deadline > 0.0 && response > config.deadline)
            ++result.deadlineMisses;
        result.responseTimes.push_back(response);
        result.servedBy.push_back(static_cast<std::int32_t>(chosen));
    }
    return result;
}

} // namespace smite::queueing
