#include "queueing/des.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/fault.h"
#include "workload/rng.h"

namespace smite::queueing {

double
QueueSimResult::percentile(double p) const
{
    if (responseTimes.empty())
        throw std::logic_error("no samples");
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("percentile must be in (0, 1)");
    std::vector<double> sorted = responseTimes;
    std::sort(sorted.begin(), sorted.end());
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
QueueSimResult::meanResponse() const
{
    if (responseTimes.empty())
        throw std::logic_error("no samples");
    double sum = 0.0;
    for (double t : responseTimes)
        sum += t;
    return sum / static_cast<double>(responseTimes.size());
}

QueueSimResult
simulateMm1(double lambda, double mu, std::uint64_t requests,
            std::uint64_t seed, std::uint64_t warmupRequests)
{
    if (lambda <= 0.0 || mu <= 0.0)
        throw std::invalid_argument("rates must be positive");
    if (requests == 0)
        throw std::invalid_argument("need at least one request");

    workload::Rng rng(seed);
    auto exponential = [&rng](double rate) {
        // Inverse-transform sampling; nextDouble() < 1 so log is safe.
        return -std::log(1.0 - rng.nextDouble()) / rate;
    };

    // `des.service` fault site: real servers hiccup — GC pauses, page
    // faults, noisy neighbors stretch individual request service
    // times. Seeded Gaussian stretch per sampled service time, so
    // chaos runs of the tail-latency pipeline are reproducible and a
    // disarmed plan leaves the RNG stream untouched.
    fault::FaultPlan &faults = fault::FaultPlan::global();
    const bool chaos = faults.enabled() && faults.armed("des.service");

    QueueSimResult result;
    if (requests > warmupRequests)
        result.responseTimes.reserve(requests - warmupRequests);

    // FCFS single server: departure(n) =
    //   max(arrival(n), departure(n-1)) + service(n).
    double arrival = 0.0;
    double prev_departure = 0.0;
    for (std::uint64_t n = 0; n < requests; ++n) {
        arrival += exponential(lambda);
        const double start = std::max(arrival, prev_departure);
        double service = exponential(mu);
        if (chaos && faults.shouldInject("des.service")) {
            // Stretch only (floor at the sampled time): a hiccup never
            // makes a request finish early.
            const double eps =
                std::max(0.0, faults.gaussianNext("des.service"));
            service *= 1.0 + eps;
        }
        const double departure = start + service;
        prev_departure = departure;
        if (n >= warmupRequests)
            result.responseTimes.push_back(departure - arrival);
    }
    if (result.responseTimes.empty())
        throw std::invalid_argument("warmup consumed all requests");
    return result;
}

} // namespace smite::queueing
