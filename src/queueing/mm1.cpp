#include "queueing/mm1.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace smite::queueing {

Mm1::Mm1(double lambda, double mu)
    : lambda_(lambda), mu_(mu)
{
    if (lambda <= 0.0 || mu <= 0.0)
        throw std::invalid_argument("M/M/1 rates must be positive");
}

double
Mm1::responseTimePdf(double t) const
{
    if (!stable())
        throw std::logic_error("unstable queue has no response PDF");
    const double rate = mu_ - lambda_;
    return t < 0.0 ? 0.0 : rate * std::exp(-rate * t);
}

double
Mm1::responseTimeCdf(double t) const
{
    if (!stable())
        throw std::logic_error("unstable queue has no response CDF");
    const double rate = mu_ - lambda_;
    return t < 0.0 ? 0.0 : 1.0 - std::exp(-rate * t);
}

double
Mm1::meanResponseTime() const
{
    if (!stable())
        throw std::logic_error("unstable queue");
    return 1.0 / (mu_ - lambda_);
}

double
Mm1::percentileLatency(double p) const
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("percentile must be in (0, 1)");
    if (!stable())
        throw std::logic_error("unstable queue");
    return -std::log(1.0 - p) / (mu_ - lambda_);
}

double
Mm1::degradedPercentileLatency(double p, double deg) const
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("percentile must be in (0, 1)");
    if (deg < 0.0 || deg >= 1.0)
        throw std::invalid_argument("degradation must be in [0, 1)");
    const double mu_prime = (1.0 - deg) * mu_;
    if (mu_prime <= lambda_)
        return std::numeric_limits<double>::infinity();
    return -std::log(1.0 - p) / (mu_prime - lambda_);
}

} // namespace smite::queueing
