/**
 * @file
 * Keyed randomness for the open-loop queueing layer.
 *
 * Same discipline as the scheduler's keyed churn streams
 * (src/scheduler/keyed.h, kept separate so the queueing layer stays
 * below the scheduler in the dependency order): every draw is a pure
 * function of (seed, salt, a, b) — typically (seed, event kind,
 * stream id, occurrence index) — so an arrival gap or a service time
 * belongs to a *request*, not to the order in which requests happened
 * to be simulated. That is what makes open-loop load runs
 * byte-identical across repeats, across co-locations sharing one
 * seed (common random numbers, which keeps knee searches monotone in
 * the degraded service rate), and across SMITE_THREADS settings when
 * a harness fans independent simulations across the pool.
 */

#ifndef SMITE_QUEUEING_KEYED_STREAM_H
#define SMITE_QUEUEING_KEYED_STREAM_H

#include <cmath>
#include <cstdint>

namespace smite::queueing::keyed {

/** Salts separating the queueing layer's event-kind streams. */
inline constexpr std::uint64_t kSaltArrival = 0x41525256ull;  // "ARRV"
inline constexpr std::uint64_t kSaltService = 0x53455256ull;  // "SERV"
inline constexpr std::uint64_t kSaltPhase = 0x50485345ull;    // "PHSE"

/** SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** One keyed 64-bit draw: a pure function of (seed, salt, a, b). */
inline std::uint64_t
draw(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
     std::uint64_t b)
{
    std::uint64_t h = mix64(seed ^ 0x9e0c2b7d1f8a5e3bull);
    h = mix64(h ^ salt);
    h = mix64(h ^ a);
    return mix64(h ^ b);
}

/** Map a 64-bit draw to a uniform double in [0, 1). */
inline double
toUnit(std::uint64_t h)
{
    // 53 mantissa bits: the usual exact uniform-double construction.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/**
 * Unit-mean exponential variate from one keyed draw (inverse
 * transform; toUnit() < 1 so the log is finite). Scale by 1/rate for
 * an Exponential(rate) gap or service time — keeping the unit draw
 * separate from the rate is what lets two simulations that differ
 * only in a degraded service rate consume *identical* random
 * sequences.
 */
inline double
exponentialUnit(std::uint64_t h)
{
    return -std::log1p(-toUnit(h));
}

} // namespace smite::queueing::keyed

#endif // SMITE_QUEUEING_KEYED_STREAM_H
