/**
 * @file
 * Synthetic stand-ins for the four CloudSuite applications the paper
 * uses as latency-sensitive WSC workloads: Web-Search, Data-Caching,
 * Data-Serving and Graph-Analytics.
 *
 * The profiles follow the paper's Findings 5 and 8: functional-unit
 * behaviour similar to SPEC_INT, but much higher L3 contentiousness
 * (large, poorly-cached data footprints) and large instruction
 * footprints. Web-Search and Data-Caching additionally carry M/M/1
 * arrival/service rates and report percentile latency.
 */

#ifndef SMITE_WORKLOAD_CLOUDSUITE_H
#define SMITE_WORKLOAD_CLOUDSUITE_H

#include <string_view>
#include <vector>

#include "workload/profile.h"

namespace smite::workload::cloudsuite {

/** All four CloudSuite application profiles. */
const std::vector<WorkloadProfile> &all();

/**
 * Look up an application by name (e.g. "Web-Search").
 * @throws std::out_of_range for unknown names
 */
const WorkloadProfile &byName(std::string_view name);

} // namespace smite::workload::cloudsuite

#endif // SMITE_WORKLOAD_CLOUDSUITE_H
