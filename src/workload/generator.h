/**
 * @file
 * Procedural uop stream generator: turns a WorkloadProfile into an
 * infinite, deterministic sim::UopSource.
 */

#ifndef SMITE_WORKLOAD_GENERATOR_H
#define SMITE_WORKLOAD_GENERATOR_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/uop.h"
#include "workload/profile.h"
#include "workload/rng.h"

namespace smite::workload {

/**
 * Uop stream generator driven by a WorkloadProfile.
 *
 * Determinism: two generators built from the same profile and seed
 * produce identical streams, and reset() rewinds exactly; this makes
 * solo and co-located measurements of the same application directly
 * comparable, mirroring how the paper replays the same binaries.
 */
class ProfileUopSource final : public sim::UopSource
{
  public:
    /**
     * @param profile statistical description of the application
     * @param seed stream seed; keep fixed for reproducibility
     */
    explicit ProfileUopSource(const WorkloadProfile &profile,
                              std::uint64_t seed = 1);

    sim::Uop next() override;
    int nextBatch(sim::Uop *out, int max) override;
    void reset() override;

    /**
     * Cache-resident applications (small total footprints) keep
     * their whole data set live; larger applications keep only their
     * hot structure resident.
     */
    sim::Addr
    hotFootprint() const override
    {
        constexpr sim::Addr kResidentLimit = 32ull << 20;
        return profile_.dataFootprint <= kResidentLimit
                   ? profile_.dataFootprint
                   : profile_.hotBytes;
    }

    sim::Addr codeFootprint() const override
    {
        return profile_.codeFootprint;
    }

    /**
     * Estimated rate of accesses that reach the shared cache:
     * streaming plus hot-region traffic (when the hot region is too
     * big for the private levels) plus cold-random traffic.
     */
    double
    residencyWeight() const override
    {
        constexpr sim::Addr kPrivateReach = 1 << 20;
        const double mem = profile_.mixOf(sim::UopType::kLoad) +
                           profile_.mixOf(sim::UopType::kStore);
        const double stream_part =
            profile_.dataFootprint > kPrivateReach
                ? profile_.streamFraction
                : 0.0;
        const double after_stack =
            (1.0 - profile_.streamFraction) * (1.0 - profile_.stackProb);
        const double hot_part =
            profile_.hotBytes > kPrivateReach
                ? after_stack * profile_.hotProb
                : 0.0;
        const double cold_part = after_stack * (1.0 - profile_.hotProb);
        return 1e-3 + mem * (stream_part + hot_part + cold_part);
    }

    /** The generating profile. */
    const WorkloadProfile &profile() const { return profile_; }

    /**
     * Replay identity: a digest of every profile field plus the seed.
     * The generator is a pure function of (profile, seed) — reset()
     * rewinds exactly — so equal digests imply identical streams,
     * which is what sim/replay.h keys runs on.
     */
    std::uint64_t streamDigest() const override;

  private:
    sim::Addr nextDataAddr();
    sim::Addr nextPc();
    sim::UopType sampleType();
    std::uint8_t sampleDepDistance();
    sim::Uop genNext();

    /**
     * The complete mutable generation state: everything genNext()
     * reads or writes besides the immutable profile/thresholds.
     * Snapshots of it let a replayed stream resume live generation
     * exactly where the recording left off.
     */
    struct GenState {
        Rng rng{0};
        sim::Addr streamCursor = 0;
        sim::Addr regionBase = 0;
        sim::Addr regionOffset = 0;
        std::uint64_t dwellLeft = 0;
        bool lowPhase = false;
        std::uint64_t phaseLeft = 0;
    };
    GenState saveState() const;
    void restoreState(const GenState &state);

    WorkloadProfile profile_;
    std::uint64_t seed_;
    Rng rng_;

    /** Cumulative mix distribution, indexed like the mix array. */
    std::array<double, sim::kNumUopTypes> cumulativeMix_{};

    /**
     * Integer-domain thresholds (Rng::mantissaCeil/Floor) for the
     * per-uop Bernoulli draws; exactly equivalent to comparing
     * nextDouble() against the profile probabilities, minus the
     * int-to-double conversion on every draw.
     */
    std::array<std::uint64_t, sim::kNumUopTypes> cumulativeMixThr_{};
    std::uint64_t thrStream_ = 0;     ///< < streamFraction
    std::uint64_t thrStack_ = 0;      ///< < stackProb
    std::uint64_t thrHot_ = 0;        ///< < hotProb
    std::uint64_t thrLoadDep_ = 0;    ///< < loadDepProb
    std::uint64_t thrBranchDep_ = 0;  ///< < 0.5 * depProb
    std::uint64_t thrDep_ = 0;        ///< < depProb
    std::uint64_t thrDep2_ = 0;       ///< < dep2Prob
    std::uint64_t thrMispredict_ = 0; ///< < branchMispredictRate
    std::uint64_t thrPhaseLow_ = 0;   ///< > phaseLowFactor

    /**
     * Geometric-trial success threshold for the dependence-distance
     * draw (Rng::nextGeometric with mean depMeanDist, its 1/mean
     * divide hoisted out of the per-uop path). 0 means the mean is
     * <= 1 and the draw trivially returns 1 without consuming RNG
     * state, matching nextGeometric exactly.
     */
    std::uint64_t thrDepGeom_ = 0;

    sim::Addr streamCursor_ = 0;  ///< streaming access position
    sim::Addr regionBase_ = 0;    ///< current code region (loop) base
    sim::Addr regionOffset_ = 0;  ///< instruction pointer within region
    std::uint64_t dwellLeft_ = 0; ///< uops until the next region jump
    bool lowPhase_ = false;       ///< currently in the light phase?
    std::uint64_t phaseLeft_ = 0; ///< uops until the phase flips

    /**
     * Stream memo: the generator is deterministic, so every reset()
     * replays the exact uops already produced. Recording them (up to
     * kMemoCap, ~24 MB) turns the repeated runs that dominate real
     * usage — warmup passes, benchmark repeats, sensitivity sweeps —
     * into flat array copies instead of per-uop sampling. endState_
     * snapshots the generation state at the memo boundary so streams
     * longer than the memo resume live generation seamlessly.
     */
    static constexpr std::size_t kMemoCap = std::size_t{1} << 20;
    std::vector<sim::Uop> memo_;
    std::size_t replayPos_ = 0;
    bool replaying_ = false;
    bool memoFull_ = false;
    GenState endState_{};
};

} // namespace smite::workload

#endif // SMITE_WORKLOAD_GENERATOR_H
