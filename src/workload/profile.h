/**
 * @file
 * Workload profile schema.
 *
 * A profile is everything the trace generator needs to emit a
 * statistically faithful uop stream for one application: the uop type
 * mix, branch predictability, the data/code footprints and locality
 * structure, and the dependence-chain shape that determines ILP.
 * Latency-sensitive (CloudSuite-like) workloads additionally carry
 * open-loop queueing parameters for the tail-latency experiments.
 */

#ifndef SMITE_WORKLOAD_PROFILE_H
#define SMITE_WORKLOAD_PROFILE_H

#include <array>
#include <cstdint>
#include <string>

#include "sim/uop.h"

namespace smite::workload {

/** Which suite a workload belongs to. */
enum class Suite {
    kSpecInt,
    kSpecFp,
    kCloudSuite,
    kMicro,  ///< Rulers and other synthetic kernels
};

/** Human-readable suite name. */
constexpr const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::kSpecInt:    return "SPEC_INT";
      case Suite::kSpecFp:     return "SPEC_FP";
      case Suite::kCloudSuite: return "CloudSuite";
      default:                 return "micro";
    }
}

/**
 * Statistical description of one application.
 *
 * The uop mix is indexed by sim::UopType; entries must be
 * non-negative and sum to at most 1 (the remainder is emitted as
 * NOPs, modeling uops that use no modeled resource).
 */
struct WorkloadProfile {
    std::string name = "unnamed";
    int specNumber = 0;  ///< e.g. 429 for 429.mcf; 0 if not SPEC
    Suite suite = Suite::kMicro;

    /** Fraction of the dynamic uop stream per uop type. */
    std::array<double, sim::kNumUopTypes> mix{};

    /** Fraction of branches that mispredict. */
    double branchMispredictRate = 0.02;

    /** Total data working set in bytes. */
    std::uint64_t dataFootprint = 1 << 20;

    /**
     * Fraction of memory accesses that walk the footprint with a
     * 64B stride (streaming); the rest are random.
     */
    double streamFraction = 0.3;

    /**
     * Stack/scratch region: the innermost locality level. Real
     * programs direct a large share of their accesses at a few KiB
     * of stack frames and hot scalars that live in the L1 no matter
     * how large the heap is.
     */
    std::uint64_t stackBytes = 8 * 1024;

    /** Probability a non-streaming access falls in the stack region. */
    double stackProb = 0.45;

    /** Size of the hot data region (must be <= dataFootprint). */
    std::uint64_t hotBytes = 16 * 1024;

    /**
     * Probability a non-streaming, non-stack access falls in the hot
     * region (the remainder is cold-random over the footprint).
     */
    double hotProb = 0.7;

    /** Static code footprint in bytes (drives L1I/iTLB behaviour). */
    std::uint64_t codeFootprint = 16 * 1024;

    /**
     * Size of the inner loop the instruction pointer spins in. The
     * generator dwells in one loop-sized region of the code blob,
     * then jumps to another region; this is what gives real code its
     * instruction-cache locality.
     */
    std::uint64_t loopBytes = 2 * 1024;

    /** Mean uops executed in a region before jumping elsewhere. */
    double codeDwellUops = 2000.0;

    /**
     * @name Phase behaviour
     * Real applications alternate between intense and lighter
     * execution phases; measured co-location interference averages
     * over them. The generator alternates between a full-intensity
     * phase and one whose issue demand is scaled by phaseLowFactor
     * (extra non-resource uops), with geometrically distributed
     * phase lengths.
     * @{
     */
    double phaseLowFactor = 0.65;
    double phaseMeanUops = 4000.0;
    /** @} */

    /** Probability a uop carries a first register operand. */
    double depProb = 0.6;

    /**
     * Probability a *load's address* depends on an earlier result
     * (pointer chasing). Array codes keep this low — their addresses
     * are induction variables — which is what gives them memory-level
     * parallelism; pointer chasers (e.g. mcf) serialize on it.
     */
    double loadDepProb = 0.15;

    /** Probability a uop carries a second register operand. */
    double dep2Prob = 0.2;

    /** Mean dependence distance (geometric); smaller = more serial. */
    double depMeanDist = 4.0;

    /**
     * @name Open-loop service parameters
     * Only meaningful for latency-sensitive workloads: mean request
     * arrival rate lambda and solo service rate mu (requests/s).
     * @{
     */
    double arrivalRate = 0.0;
    double serviceRate = 0.0;

    /**
     * Whether the application's harness reports percentile latency
     * statistics (the paper notes Data-Serving and Graph-Analytics do
     * not).
     */
    bool reportsPercentile = false;
    /** @} */

    /** Does this profile describe a latency-sensitive service? */
    bool isLatencySensitive() const { return serviceRate > 0.0; }

    /** Convenience accessor into the mix array. */
    double
    mixOf(sim::UopType type) const
    {
        return mix[static_cast<int>(type)];
    }

    /** Mutable mix accessor. */
    double &
    mixOf(sim::UopType type)
    {
        return mix[static_cast<int>(type)];
    }
};

} // namespace smite::workload

#endif // SMITE_WORKLOAD_PROFILE_H
