/**
 * @file
 * Synthetic stand-ins for the 29 SPEC CPU2006 benchmarks (ref
 * inputs) used by the paper.
 *
 * Each profile is tuned from published characterizations so that the
 * *relative* contention behaviour matches the paper's observations,
 * e.g. 444.namd is FP_ADD-bound (high port 1 sensitivity), 429.mcf is
 * memory-latency-bound with little port sensitivity, 454.calculix is
 * FP_MUL-heavy with an L1-resident hot set, 470.lbm streams through
 * memory with heavy FP_ADD use, and the integer codes put branch
 * pressure on port 5.
 */

#ifndef SMITE_WORKLOAD_SPEC2006_H
#define SMITE_WORKLOAD_SPEC2006_H

#include <string_view>
#include <vector>

#include "workload/profile.h"

namespace smite::workload::spec2006 {

/** All 29 benchmark profiles, ordered by SPEC number. */
const std::vector<WorkloadProfile> &all();

/** Benchmarks with even SPEC numbers (14 entries). */
std::vector<WorkloadProfile> evenNumbered();

/** Benchmarks with odd SPEC numbers (15 entries). */
std::vector<WorkloadProfile> oddNumbered();

/**
 * Look up a benchmark by name (e.g. "429.mcf").
 * @throws std::out_of_range for unknown names
 */
const WorkloadProfile &byName(std::string_view name);

} // namespace smite::workload::spec2006

#endif // SMITE_WORKLOAD_SPEC2006_H
