/**
 * @file
 * Small deterministic RNG used by all trace generators.
 *
 * The generators must be exactly reproducible across runs (a solo run
 * and a co-located run of the same workload must see the same uop
 * stream), so we use a self-contained xorshift64* generator rather
 * than anything from <random> whose distributions are
 * implementation-defined.
 */

#ifndef SMITE_WORKLOAD_RNG_H
#define SMITE_WORKLOAD_RNG_H

#include <cmath>
#include <cstdint>

namespace smite::workload {

/** xorshift64* pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed == 0 ? 1 : seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * The 53-bit integer draw behind nextDouble() (one draw from the
     * same stream). `nextMantissa() < mantissaCeil(p)` is exactly
     * `nextDouble() < p` without the int-to-double conversion, since
     * m * 2^-53 < p  <=>  m < p * 2^53  <=>  m < ceil(p * 2^53):
     * scaling a double by a power of two is exact and m is integral.
     * Likewise `nextMantissa() > mantissaFloor(p)` is exactly
     * `nextDouble() > p`.
     */
    std::uint64_t nextMantissa() { return nextU64() >> 11; }

    /** Integer threshold for `nextDouble() < p`; p in [0, 1]. */
    static std::uint64_t
    mantissaCeil(double p)
    {
        return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
    }

    /** Integer threshold for `nextDouble() > p`; p in [0, 1]. */
    static std::uint64_t
    mantissaFloor(double p)
    {
        return static_cast<std::uint64_t>(p * 0x1.0p53);
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return nextU64() % bound;
    }

    /**
     * Geometric variate with the given mean (>= 1), i.e. number of
     * Bernoulli trials until first success with p = 1/mean.
     */
    std::uint64_t
    nextGeometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        // Integer-domain trials: `nextDouble() >= p` is the negation
        // of `nextDouble() < p` (see nextMantissa) — same draws, one
        // int-compare per trial.
        const std::uint64_t t = mantissaCeil(1.0 / mean);
        std::uint64_t k = 1;
        while (nextMantissa() >= t && k < 1024)
            ++k;
        return k;
    }

  private:
    std::uint64_t state_;
};

} // namespace smite::workload

#endif // SMITE_WORKLOAD_RNG_H
