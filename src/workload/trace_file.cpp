#include "workload/trace_file.h"

#include "sim/digest.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace smite::workload {

namespace {

constexpr const char *kHeader = "smite-trace v1";

} // namespace

void
recordTrace(sim::UopSource &source, std::size_t count,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
    out << kHeader << "\n";
    out << std::hex;
    for (std::size_t i = 0; i < count; ++i) {
        const sim::Uop uop = source.next();
        out << std::dec << static_cast<int>(uop.type) << " "
            << static_cast<int>(uop.srcDist1) << " "
            << static_cast<int>(uop.srcDist2) << " "
            << (uop.mispredict ? 1 : 0) << " " << std::hex << uop.addr
            << " " << uop.pc << "\n";
    }
    if (!out)
        throw std::runtime_error("failed writing trace file: " + path);
}

TraceReplaySource::TraceReplaySource(std::vector<sim::Uop> uops)
    : uops_(std::move(uops))
{
    if (uops_.empty())
        throw std::runtime_error("empty trace");
    computeDigest();
}

void
TraceReplaySource::computeDigest()
{
    sim::Digest digest;
    digest.str("trace.replay").u64(uops_.size());
    for (const sim::Uop &uop : uops_) {
        digest.u64(static_cast<std::uint64_t>(uop.type))
            .u64(uop.srcDist1)
            .u64(uop.srcDist2)
            .u64(uop.mispredict ? 1 : 0)
            .u64(uop.addr)
            .u64(uop.pc);
    }
    digest_ = digest.value();
}

TraceReplaySource::TraceReplaySource(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    std::string header;
    std::getline(in, header);
    if (header != kHeader)
        throw std::runtime_error("not a smite trace: " + path);

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        int type = 0, src1 = 0, src2 = 0, mispredict = 0;
        sim::Addr addr = 0, pc = 0;
        row >> std::dec >> type >> src1 >> src2 >> mispredict >>
            std::hex >> addr >> pc;
        if (row.fail() || type < 0 || type >= sim::kNumUopTypes ||
            src1 < 0 || src1 > 63 || src2 < 0 || src2 > 63) {
            throw std::runtime_error("malformed trace record: " + line);
        }
        sim::Uop uop;
        uop.type = static_cast<sim::UopType>(type);
        uop.srcDist1 = static_cast<std::uint8_t>(src1);
        uop.srcDist2 = static_cast<std::uint8_t>(src2);
        uop.mispredict = mispredict != 0;
        uop.addr = addr;
        uop.pc = pc;
        uops_.push_back(uop);
    }
    if (uops_.empty())
        throw std::runtime_error("empty trace: " + path);
    computeDigest();
}

sim::Uop
TraceReplaySource::next()
{
    const sim::Uop uop = uops_[cursor_];
    cursor_ = (cursor_ + 1) % uops_.size();
    return uop;
}

void
TraceReplaySource::reset()
{
    cursor_ = 0;
}

} // namespace smite::workload
