/**
 * @file
 * Uop trace capture and replay.
 *
 * The simulator normally consumes procedurally generated streams,
 * but interoperating with external tools (binary instrumentation,
 * other simulators) needs a serialized form. A trace file stores a
 * finite window of uops; replay loops over it, which matches how the
 * paper replays steady-state application behaviour.
 *
 * Format: one record per line,
 *   <type> <srcDist1> <srcDist2> <mispredict> <addr-hex> <pc-hex>
 * with a `smite-trace v1` header. Text keeps traces inspectable and
 * diffable; gzip externally if size matters.
 */

#ifndef SMITE_WORKLOAD_TRACE_FILE_H
#define SMITE_WORKLOAD_TRACE_FILE_H

#include <string>
#include <vector>

#include "sim/uop.h"

namespace smite::workload {

/**
 * Capture @p count uops from a source into a trace file.
 *
 * @throws std::runtime_error if the file cannot be written
 */
void recordTrace(sim::UopSource &source, std::size_t count,
                 const std::string &path);

/**
 * Replays a recorded trace, looping at the end.
 */
class TraceReplaySource : public sim::UopSource
{
  public:
    /**
     * Load a trace from disk.
     * @throws std::runtime_error on malformed files
     */
    explicit TraceReplaySource(const std::string &path);

    /** Build a replay source directly from uops (for testing). */
    explicit TraceReplaySource(std::vector<sim::Uop> uops);

    sim::Uop next() override;
    void reset() override;

    /**
     * Contents-based FNV-1a identity: two replays of the same uop
     * sequence share a digest no matter where the trace came from, so
     * runs over them are eligible for the run-level `ReplayStore`.
     */
    std::uint64_t streamDigest() const override { return digest_; }

    /** Number of uops in one loop of the trace. */
    std::size_t traceLength() const { return uops_.size(); }

  private:
    void computeDigest();

    std::vector<sim::Uop> uops_;
    std::size_t cursor_ = 0;
    std::uint64_t digest_ = 0;
};

} // namespace smite::workload

#endif // SMITE_WORKLOAD_TRACE_FILE_H
