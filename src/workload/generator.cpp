#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/digest.h"

namespace smite::workload {

namespace {

/** Average bytes of machine code per uop (drives icache pressure). */
constexpr sim::Addr kBytesPerUop = 4;

} // namespace

ProfileUopSource::ProfileUopSource(const WorkloadProfile &profile,
                                   std::uint64_t seed)
    : profile_(profile), seed_(seed), rng_(seed)
{
    double sum = 0.0;
    for (int t = 0; t < sim::kNumUopTypes; ++t) {
        if (profile_.mix[t] < 0.0)
            throw std::invalid_argument("negative mix fraction");
        sum += profile_.mix[t];
        cumulativeMix_[t] = sum;
        cumulativeMixThr_[t] = Rng::mantissaCeil(sum);
    }
    thrStream_ = Rng::mantissaCeil(profile_.streamFraction);
    thrStack_ = Rng::mantissaCeil(profile_.stackProb);
    thrHot_ = Rng::mantissaCeil(profile_.hotProb);
    thrLoadDep_ = Rng::mantissaCeil(profile_.loadDepProb);
    thrBranchDep_ = Rng::mantissaCeil(0.5 * profile_.depProb);
    thrDep_ = Rng::mantissaCeil(profile_.depProb);
    thrDep2_ = Rng::mantissaCeil(profile_.dep2Prob);
    thrMispredict_ = Rng::mantissaCeil(profile_.branchMispredictRate);
    thrPhaseLow_ = Rng::mantissaFloor(profile_.phaseLowFactor);
    // mean > 1 implies p < 1 and so a threshold >= 1; 0 is free to
    // act as the "trivial draw" sentinel.
    thrDepGeom_ = profile_.depMeanDist > 1.0
                      ? Rng::mantissaCeil(1.0 / profile_.depMeanDist)
                      : 0;
    if (sum > 1.0 + 1e-9)
        throw std::invalid_argument("uop mix sums to more than 1");
    if (profile_.hotBytes > profile_.dataFootprint)
        throw std::invalid_argument("hot region exceeds footprint");
    if (profile_.stackBytes < 8 ||
        profile_.stackBytes > profile_.dataFootprint) {
        throw std::invalid_argument("bad stack region size");
    }
    if (profile_.dataFootprint < sim::kLineBytes)
        throw std::invalid_argument("data footprint below one line");
    if (profile_.codeFootprint < sim::kLineBytes)
        throw std::invalid_argument("code footprint below one line");
    if (profile_.loopBytes < sim::kLineBytes ||
        profile_.loopBytes > profile_.codeFootprint) {
        throw std::invalid_argument(
            "loop size must be within [64B, code footprint]");
    }
    reset();
}

std::uint64_t
ProfileUopSource::streamDigest() const
{
    sim::Digest d;
    d.str("workload.profile");
    d.str(profile_.name);
    d.u64(static_cast<std::uint64_t>(profile_.specNumber));
    d.u64(static_cast<std::uint64_t>(profile_.suite));
    for (const double m : profile_.mix)
        d.f64(m);
    d.f64(profile_.branchMispredictRate);
    d.u64(profile_.dataFootprint);
    d.f64(profile_.streamFraction);
    d.u64(profile_.stackBytes);
    d.f64(profile_.stackProb);
    d.u64(profile_.hotBytes);
    d.f64(profile_.hotProb);
    d.u64(profile_.codeFootprint);
    d.u64(profile_.loopBytes);
    d.f64(profile_.codeDwellUops);
    d.f64(profile_.phaseLowFactor);
    d.f64(profile_.phaseMeanUops);
    d.f64(profile_.depProb);
    d.f64(profile_.loadDepProb);
    d.f64(profile_.dep2Prob);
    d.f64(profile_.depMeanDist);
    d.f64(profile_.arrivalRate);
    d.f64(profile_.serviceRate);
    d.u64(profile_.reportsPercentile ? 1 : 0);
    d.u64(seed_);
    return d.value();
}

ProfileUopSource::GenState
ProfileUopSource::saveState() const
{
    return GenState{rng_,       streamCursor_, regionBase_, regionOffset_,
                    dwellLeft_, lowPhase_,     phaseLeft_};
}

void
ProfileUopSource::restoreState(const GenState &state)
{
    rng_ = state.rng;
    streamCursor_ = state.streamCursor;
    regionBase_ = state.regionBase;
    regionOffset_ = state.regionOffset;
    dwellLeft_ = state.dwellLeft;
    lowPhase_ = state.lowPhase;
    phaseLeft_ = state.phaseLeft;
}

void
ProfileUopSource::reset()
{
    if (!memo_.empty()) {
        // Everything produced so far is on record; rewinding is a
        // replay. When the recording is still open (generator parked
        // at the memo end), remember that state so the replayed
        // stream can resume live generation past it. Mid-replay or
        // after the cap, endState_ is already the memo-end state.
        if (!replaying_ && !memoFull_)
            endState_ = saveState();
        replaying_ = true;
        replayPos_ = 0;
        return;
    }
    rng_ = Rng(seed_);
    // Start streaming in the middle of the footprint: for large
    // arrays this is far beyond any functionally warmed region (a
    // stream's first touch of a line is cold by nature), while for
    // cache-resident footprints it stays warm, as it should.
    streamCursor_ = (profile_.dataFootprint / 2) & ~sim::Addr{7};
    regionBase_ = 0;
    regionOffset_ = 0;
    dwellLeft_ = 0;
    lowPhase_ = false;
    phaseLeft_ = 0;
}

sim::Addr
ProfileUopSource::nextPc()
{
    if (dwellLeft_ == 0) {
        // Jump to another function/loop in the code blob and spin
        // there for a geometrically distributed number of uops.
        const std::uint64_t regions =
            std::max<std::uint64_t>(1, profile_.codeFootprint /
                                           profile_.loopBytes);
        regionBase_ = rng_.nextBelow(regions) * profile_.loopBytes;
        regionOffset_ = 0;
        const double mean = std::max(1.0, profile_.codeDwellUops);
        dwellLeft_ = 1 + static_cast<std::uint64_t>(
                             -mean * std::log(1.0 - rng_.nextDouble()));
    }
    --dwellLeft_;
    const sim::Addr pc = regionBase_ + regionOffset_;
    // regionOffset_ < loopBytes and kBytesPerUop < 64 <= loopBytes,
    // so a single subtraction replaces the modulo exactly.
    regionOffset_ += kBytesPerUop;
    if (regionOffset_ >= profile_.loopBytes)
        regionOffset_ -= profile_.loopBytes;
    return pc;
}

sim::UopType
ProfileUopSource::sampleType()
{
    const std::uint64_t x = rng_.nextMantissa();
    for (int t = 0; t < sim::kNumUopTypes; ++t) {
        if (x < cumulativeMixThr_[t])
            return static_cast<sim::UopType>(t);
    }
    return sim::UopType::kNop;
}

std::uint8_t
ProfileUopSource::sampleDepDistance()
{
    // Inline of rng_.nextGeometric(profile_.depMeanDist) with the
    // trial threshold precomputed at construction: same draws, same
    // results, no divide on the per-uop path.
    std::uint64_t d = 1;
    if (thrDepGeom_ != 0) {
        while (rng_.nextMantissa() >= thrDepGeom_ && d < 1024)
            ++d;
    }
    return static_cast<std::uint8_t>(std::min<std::uint64_t>(d, 63));
}

sim::Addr
ProfileUopSource::nextDataAddr()
{
    if (rng_.nextMantissa() < thrStream_) {
        // Streaming walks the footprint at element (8B) granularity,
        // so consecutive accesses mostly stay within one cache line —
        // the spatial locality real array code has. The cursor stays
        // below the footprint (>= 64), so wrap by subtraction.
        streamCursor_ += 8;
        if (streamCursor_ >= profile_.dataFootprint)
            streamCursor_ -= profile_.dataFootprint;
        return streamCursor_;
    }
    if (rng_.nextMantissa() < thrStack_)
        return rng_.nextBelow(profile_.stackBytes / 8) * 8;
    if (rng_.nextMantissa() < thrHot_)
        return rng_.nextBelow(profile_.hotBytes / 8) * 8;
    return rng_.nextBelow(profile_.dataFootprint / 8) * 8;
}

sim::Uop
ProfileUopSource::genNext()
{
    // Phase modulation: in the light phase a fraction of slots carry
    // no modeled resource demand.
    if (phaseLeft_ == 0) {
        lowPhase_ = !lowPhase_;
        const double mean = std::max(1.0, profile_.phaseMeanUops);
        phaseLeft_ = 1 + static_cast<std::uint64_t>(
                             -mean * std::log(1.0 - rng_.nextDouble()));
    }
    --phaseLeft_;
    if (lowPhase_ && rng_.nextMantissa() > thrPhaseLow_) {
        sim::Uop filler;
        filler.type = sim::UopType::kNop;
        filler.pc = nextPc();
        return filler;
    }

    sim::Uop uop;
    uop.type = sampleType();
    uop.pc = nextPc();

    if (uop.type == sim::UopType::kLoad) {
        // Loads serialize on earlier results only when the program
        // actually chases pointers; array address streams are
        // dependence-free and overlap their misses.
        if (rng_.nextMantissa() < thrLoadDep_)
            uop.srcDist1 = sampleDepDistance();
    } else if (uop.type == sim::UopType::kBranch) {
        // Branch conditions are typically simple flag tests; give
        // them lighter dependences so resolution is not dominated by
        // deep value chains.
        if (rng_.nextMantissa() < thrBranchDep_)
            uop.srcDist1 = sampleDepDistance();
    } else {
        if (rng_.nextMantissa() < thrDep_)
            uop.srcDist1 = sampleDepDistance();
        if (rng_.nextMantissa() < thrDep2_)
            uop.srcDist2 = sampleDepDistance();
    }

    switch (uop.type) {
      case sim::UopType::kLoad:
      case sim::UopType::kStore:
        uop.addr = nextDataAddr();
        break;
      case sim::UopType::kBranch:
        uop.mispredict = rng_.nextMantissa() < thrMispredict_;
        break;
      default:
        break;
    }
    return uop;
}

sim::Uop
ProfileUopSource::next()
{
    if (replaying_) {
        if (replayPos_ < memo_.size())
            return memo_[replayPos_++];
        replaying_ = false;
        restoreState(endState_);
    }
    const sim::Uop uop = genNext();
    if (!memoFull_) {
        memo_.push_back(uop);
        if (memo_.size() >= kMemoCap) {
            endState_ = saveState();
            memoFull_ = true;
        }
    }
    return uop;
}

int
ProfileUopSource::nextBatch(sim::Uop *out, int max)
{
    int i = 0;
    if (replaying_) {
        const std::size_t left = memo_.size() - replayPos_;
        const int n = static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(max), left));
        std::copy_n(memo_.data() + replayPos_, n, out);
        replayPos_ += n;
        i = n;
        if (replayPos_ == memo_.size()) {
            replaying_ = false;
            restoreState(endState_);
        }
    }
    // The class is final, so these next() calls resolve statically.
    for (; i < max; ++i)
        out[i] = next();
    return max;
}

} // namespace smite::workload
