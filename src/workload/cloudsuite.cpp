#include "workload/cloudsuite.h"

#include <stdexcept>
#include <string>

namespace smite::workload::cloudsuite {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

WorkloadProfile
base(const char *name)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = Suite::kCloudSuite;
    return p;
}

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> v;

    // Web-Search (Nutch-like index serving): pointer chasing over a
    // large index, heavy branching, large instruction footprint.
    {
        WorkloadProfile p = base("Web-Search");
        p.mixOf(sim::UopType::kIntAdd) = .30;
        p.mixOf(sim::UopType::kIntMul) = .01;
        p.mixOf(sim::UopType::kBranch) = .18;
        p.mixOf(sim::UopType::kLoad) = .30;
        p.mixOf(sim::UopType::kStore) = .08;
        p.branchMispredictRate = .050;
        p.dataFootprint = 800 * kMiB;
        p.streamFraction = .10;
        p.stackProb = .50;
        p.stackBytes = 16 * kKiB;
        p.hotBytes = 8 * kMiB;
        p.hotProb = .90;
        p.codeFootprint = 4 * kMiB;
        p.loopBytes = 4 * kKiB;
        p.codeDwellUops = 1200.0;
        p.depProb = .62;
        p.dep2Prob = .20;
        p.depMeanDist = 3.2;
        p.loadDepProb = 0.50;
        p.arrivalRate = 800.0;    // requests/s per worker thread
        p.serviceRate = 2000.0;   // solo service capacity
        p.reportsPercentile = true;
        v.push_back(p);
    }

    // Data-Caching (Memcached): hash + slab lookups over a big heap,
    // short requests, very fast service.
    {
        WorkloadProfile p = base("Data-Caching");
        p.mixOf(sim::UopType::kIntAdd) = .28;
        p.mixOf(sim::UopType::kIntMul) = .02;
        p.mixOf(sim::UopType::kBranch) = .16;
        p.mixOf(sim::UopType::kLoad) = .32;
        p.mixOf(sim::UopType::kStore) = .10;
        p.branchMispredictRate = .030;
        p.dataFootprint = 600 * kMiB;
        p.streamFraction = .05;
        p.stackProb = .50;
        p.stackBytes = 16 * kKiB;
        p.hotBytes = 6 * kMiB;
        p.hotProb = .92;
        p.codeFootprint = 1 * kMiB;
        p.loopBytes = 1 * kKiB;
        p.codeDwellUops = 5000.0;
        p.loopBytes = 2 * kKiB;
        p.codeDwellUops = 1500.0;
        p.depProb = .65;
        p.dep2Prob = .20;
        p.depMeanDist = 3.0;
        p.loadDepProb = 0.45;
        p.arrivalRate = 8000.0;
        p.serviceRate = 20000.0;
        p.reportsPercentile = true;
        v.push_back(p);
    }

    // Data-Serving (Cassandra): wide-row reads/writes, JVM code
    // footprint, large heap. No percentile statistics in its harness.
    {
        WorkloadProfile p = base("Data-Serving");
        p.mixOf(sim::UopType::kIntAdd) = .30;
        p.mixOf(sim::UopType::kIntMul) = .01;
        p.mixOf(sim::UopType::kBranch) = .17;
        p.mixOf(sim::UopType::kLoad) = .30;
        p.mixOf(sim::UopType::kStore) = .11;
        p.branchMispredictRate = .040;
        p.dataFootprint = 700 * kMiB;
        p.streamFraction = .15;
        p.stackProb = .50;
        p.stackBytes = 16 * kKiB;
        p.hotBytes = 6 * kMiB;
        p.hotProb = .92;
        p.codeFootprint = 3 * kMiB;
        p.loopBytes = 4 * kKiB;
        p.codeDwellUops = 1200.0;
        p.depProb = .63;
        p.dep2Prob = .20;
        p.depMeanDist = 3.2;
        p.loadDepProb = 0.50;
        p.arrivalRate = 900.0;
        p.serviceRate = 1500.0;
        p.reportsPercentile = false;
        v.push_back(p);
    }

    // Graph-Analytics (TunkRank-like): irregular traversal with some
    // streaming over edge arrays. No percentile statistics.
    {
        WorkloadProfile p = base("Graph-Analytics");
        p.mixOf(sim::UopType::kIntAdd) = .32;
        p.mixOf(sim::UopType::kIntMul) = .01;
        p.mixOf(sim::UopType::kBranch) = .14;
        p.mixOf(sim::UopType::kLoad) = .34;
        p.mixOf(sim::UopType::kStore) = .08;
        p.branchMispredictRate = .060;
        p.dataFootprint = 1200 * kMiB;
        p.streamFraction = .25;
        p.stackProb = .45;
        p.stackBytes = 16 * kKiB;
        p.hotBytes = 12 * kMiB;
        p.hotProb = .88;
        p.codeFootprint = 1 * kMiB;
        p.depProb = .68;
        p.dep2Prob = .20;
        p.depMeanDist = 2.8;
        p.loadDepProb = 0.60;
        p.arrivalRate = 600.0;
        p.serviceRate = 1000.0;
        p.reportsPercentile = false;
        v.push_back(p);
    }
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
all()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

const WorkloadProfile &
byName(std::string_view name)
{
    for (const WorkloadProfile &p : all()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("unknown CloudSuite application: " +
                            std::string(name));
}

} // namespace smite::workload::cloudsuite
