#include "workload/spec2006.h"

#include <stdexcept>
#include <string>

namespace smite::workload::spec2006 {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/** Named uop-mix fractions; the remainder of the stream is NOPs. */
struct Mix {
    double fpMul = 0, fpAdd = 0, fpShf = 0;
    double intAdd = 0, intMul = 0, branch = 0;
    double load = 0, store = 0;
};

WorkloadProfile
make(const char *name, int number, Suite suite, const Mix &mix,
     double mispredict, std::uint64_t data, double stream,
     std::uint64_t hot, double hot_prob, std::uint64_t code,
     double dep_prob, double dep2_prob, double dep_dist,
     double load_dep_prob, double stack_prob)
{
    WorkloadProfile p;
    p.name = name;
    p.specNumber = number;
    p.suite = suite;
    p.mixOf(sim::UopType::kFpMul) = mix.fpMul;
    p.mixOf(sim::UopType::kFpAdd) = mix.fpAdd;
    p.mixOf(sim::UopType::kFpShf) = mix.fpShf;
    p.mixOf(sim::UopType::kIntAdd) = mix.intAdd;
    p.mixOf(sim::UopType::kIntMul) = mix.intMul;
    p.mixOf(sim::UopType::kBranch) = mix.branch;
    p.mixOf(sim::UopType::kLoad) = mix.load;
    p.mixOf(sim::UopType::kStore) = mix.store;
    p.branchMispredictRate = mispredict;
    p.dataFootprint = data;
    p.streamFraction = stream;
    p.hotBytes = hot;
    p.hotProb = hot_prob;
    p.codeFootprint = code;
    p.depProb = dep_prob;
    p.dep2Prob = dep2_prob;
    p.depMeanDist = dep_dist;
    p.loadDepProb = load_dep_prob;
    p.stackProb = stack_prob;
    // Instruction locality differs by suite: FP codes spin in tight
    // numeric kernels; integer codes hop between branchy functions.
    if (suite == Suite::kSpecFp) {
        p.loopBytes = 1024;
        p.codeDwellUops = 20000.0;
    } else {
        p.loopBytes = 2048;
        p.codeDwellUops = 2500.0;
    }
    return p;
}

/*
 * Tuning notes. Each entry is shaped so its *relative* behaviour
 * matches published characterizations and the paper's callouts:
 *  - pointer chasers (mcf/omnetpp/astar/xalancbmk) have high
 *    loadDepProb (serialized misses) and big, poorly cached
 *    footprints;
 *  - streaming FP codes (lbm/libquantum/bwaves/milc/leslie3d/
 *    GemsFDTD/cactusADM) have high streamFraction and tiny
 *    loadDepProb, so they expose memory-level parallelism and eat
 *    bandwidth;
 *  - compute-bound codes (namd/calculix/gamess/gromacs/povray/
 *    hmmer/h264ref) have hot sets that fit in the L1/L2 and lean on
 *    specific issue ports (namd and lbm on the FP adder at port 1,
 *    calculix on the FP multiplier at port 0);
 *  - integer codes put branch pressure on port 5 and carry larger
 *    code footprints.
 */
std::vector<WorkloadProfile>
buildSuite()
{
    const Suite I = Suite::kSpecInt;
    const Suite F = Suite::kSpecFp;
    std::vector<WorkloadProfile> v;
    v.reserve(29);

    v.push_back(make("400.perlbench", 400, I,
        {0, 0, 0, .32, .01, .20, .26, .11},
        .030, 6 * kMiB, .10, 24 * kKiB, .96, 512 * kKiB,
        .45, .15, 5.0, .40, .50));
    v.push_back(make("401.bzip2", 401, I,
        {0, 0, 0, .36, .01, .15, .28, .10},
        .040, 64 * kMiB, .30, 28 * kKiB, .90, 64 * kKiB,
        .50, .15, 5.0, .20, .45));
    v.push_back(make("403.gcc", 403, I,
        {0, 0, 0, .30, .01, .20, .28, .12},
        .035, 16 * kMiB, .15, 32 * kKiB, .90, 1536 * kKiB,
        .45, .15, 5.0, .35, .50));
    v.push_back(make("410.bwaves", 410, F,
        {.16, .24, .04, .12, 0, .03, .30, .08},
        .006, 800 * kMiB, .70, 1 * kMiB, .80, 64 * kKiB,
        .50, .20, 5.5, .05, .30));
    v.push_back(make("416.gamess", 416, F,
        {.18, .24, .05, .15, 0, .06, .24, .06},
        .012, 4 * kMiB, .04, 24 * kKiB, .99, 256 * kKiB,
        .55, .25, 5.0, .08, .30));
    v.push_back(make("429.mcf", 429, I,
        {0, 0, 0, .28, 0, .18, .36, .08},
        .050, 1600 * kMiB, .05, 16 * kMiB, .75, 32 * kKiB,
        .65, .15, 3.0, .45, .20));
    v.push_back(make("433.milc", 433, F,
        {.20, .22, .05, .12, 0, .03, .28, .09},
        .006, 550 * kMiB, .55, 2 * kMiB, .50, 64 * kKiB,
        .50, .20, 5.5, .05, .30));
    v.push_back(make("434.zeusmp", 434, F,
        {.18, .22, .04, .14, 0, .04, .27, .09},
        .009, 500 * kMiB, .50, 1 * kMiB, .80, 128 * kKiB,
        .50, .20, 5.5, .06, .30));
    v.push_back(make("435.gromacs", 435, F,
        {.22, .26, .05, .13, 0, .05, .22, .06},
        .012, 8 * kMiB, .04, 32 * kKiB, .99, 128 * kKiB,
        .55, .25, 5.0, .08, .30));
    v.push_back(make("436.cactusADM", 436, F,
        {.20, .26, .03, .12, 0, .02, .28, .08},
        .003, 600 * kMiB, .60, 1 * kMiB, .80, 64 * kKiB,
        .55, .20, 5.0, .05, .30));
    v.push_back(make("437.leslie3d", 437, F,
        {.17, .25, .04, .12, 0, .03, .29, .09},
        .006, 120 * kMiB, .55, 512 * kKiB, .80, 64 * kKiB,
        .50, .20, 5.5, .05, .30));
    v.push_back(make("444.namd", 444, F,
        {.17, .42, .05, .10, 0, .04, .18, .04},
        .006, 8 * kMiB, .05, 24 * kKiB, .995, 96 * kKiB,
        .60, .30, 4.0, .05, .30));
    v.push_back(make("445.gobmk", 445, I,
        {0, 0, 0, .34, .01, .21, .26, .09},
        .055, 8 * kMiB, .05, 24 * kKiB, .92, 512 * kKiB,
        .45, .15, 5.0, .30, .50));
    v.push_back(make("447.dealII", 447, F,
        {.16, .24, .04, .16, 0, .07, .25, .07},
        .015, 16 * kMiB, .25, 192 * kKiB, .90, 512 * kKiB,
        .50, .20, 5.0, .20, .40));
    v.push_back(make("450.soplex", 450, F,
        {.12, .18, .03, .18, .01, .08, .30, .08},
        .025, 250 * kMiB, .35, 1 * kMiB, .70, 256 * kKiB,
        .55, .15, 4.5, .25, .35));
    v.push_back(make("453.povray", 453, F,
        {.16, .20, .09, .16, 0, .09, .22, .07},
        .021, 4 * kMiB, .05, 24 * kKiB, .99, 512 * kKiB,
        .55, .25, 4.5, .12, .35));
    v.push_back(make("454.calculix", 454, F,
        {.30, .24, .04, .12, 0, .04, .20, .05},
        .009, 4 * kMiB, .05, 20 * kKiB, .995, 128 * kKiB,
        .55, .25, 5.0, .05, .30));
    v.push_back(make("456.hmmer", 456, I,
        {0, 0, 0, .42, .02, .08, .30, .14},
        .007, 8 * kMiB, .05, 24 * kKiB, .995, 64 * kKiB,
        .40, .20, 8.0, .05, .35));
    v.push_back(make("458.sjeng", 458, I,
        {0, 0, 0, .36, .01, .21, .25, .08},
        .048, 8 * kMiB, .02, 24 * kKiB, .92, 256 * kKiB,
        .45, .15, 5.0, .25, .50));
    v.push_back(make("459.GemsFDTD", 459, F,
        {.18, .26, .03, .11, 0, .02, .30, .09},
        .005, 700 * kMiB, .55, 1 * kMiB, .40, 128 * kKiB,
        .50, .20, 5.5, .05, .30));
    v.push_back(make("462.libquantum", 462, I,
        {0, 0, 0, .30, .02, .14, .30, .16},
        .006, 64 * kMiB, .92, 2 * kMiB, .30, 16 * kKiB,
        .50, .15, 6.0, .02, .20));
    v.push_back(make("464.h264ref", 464, I,
        {0, 0, 0, .38, .03, .12, .30, .10},
        .017, 8 * kMiB, .20, 32 * kKiB, .95, 512 * kKiB,
        .45, .20, 6.0, .10, .50));
    v.push_back(make("465.tonto", 465, F,
        {.20, .26, .04, .14, 0, .05, .22, .07},
        .012, 16 * kMiB, .20, 48 * kKiB, .95, 512 * kKiB,
        .55, .25, 4.5, .08, .35));
    v.push_back(make("470.lbm", 470, F,
        {.14, .34, .02, .08, 0, .01, .26, .14},
        .002, 400 * kMiB, .85, 1 * kMiB, .30, 16 * kKiB,
        .55, .25, 5.0, .02, .15));
    v.push_back(make("471.omnetpp", 471, I,
        {0, 0, 0, .30, .01, .20, .30, .10},
        .033, 150 * kMiB, .05, 6 * kMiB, .85, 512 * kKiB,
        .55, .15, 4.0, .40, .40));
    v.push_back(make("473.astar", 473, I,
        {0, 0, 0, .32, .01, .17, .32, .08},
        .055, 300 * kMiB, .05, 6 * kMiB, .85, 64 * kKiB,
        .60, .15, 3.5, .45, .40));
    v.push_back(make("481.wrf", 481, F,
        {.18, .26, .04, .13, 0, .04, .26, .08},
        .009, 120 * kMiB, .50, 1 * kMiB, .85, 1 * kMiB,
        .50, .20, 5.5, .06, .30));
    v.push_back(make("482.sphinx3", 482, F,
        {.16, .26, .04, .14, 0, .05, .27, .07},
        .012, 180 * kMiB, .45, 512 * kKiB, .85, 256 * kKiB,
        .50, .20, 5.5, .08, .30));
    v.push_back(make("483.xalancbmk", 483, I,
        {0, 0, 0, .30, .01, .22, .28, .09},
        .027, 100 * kMiB, .10, 2 * kMiB, .85, 1 * kMiB,
        .50, .15, 4.5, .35, .45));
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
all()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

std::vector<WorkloadProfile>
evenNumbered()
{
    std::vector<WorkloadProfile> v;
    for (const WorkloadProfile &p : all()) {
        if (p.specNumber % 2 == 0)
            v.push_back(p);
    }
    return v;
}

std::vector<WorkloadProfile>
oddNumbered()
{
    std::vector<WorkloadProfile> v;
    for (const WorkloadProfile &p : all()) {
        if (p.specNumber % 2 != 0)
            v.push_back(p);
    }
    return v;
}

const WorkloadProfile &
byName(std::string_view name)
{
    for (const WorkloadProfile &p : all()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("unknown SPEC benchmark: " +
                            std::string(name));
}

} // namespace smite::workload::spec2006
