/**
 * @file
 * Deterministic fault injection for the measurement pipeline.
 *
 * The paper measures on real machines, where runs fail, counters
 * jitter and files tear; our simulator substitutes a deterministic
 * machine, so none of that ever happens — and none of the resilience
 * a production predictor needs would ever be exercised. The FaultPlan
 * is a process-wide registry of named *fault sites* (points in the
 * code that ask "should I misbehave here?") with per-site
 * probability, every-Nth triggering and a seed, so chaos runs are
 * reproducible and plain runs are untouched.
 *
 * Sites wired into the pipeline (see docs/ROBUSTNESS.md):
 *
 *   machine.jitter     Gaussian noise on simulated instruction counts
 *   lab.measure        transient MeasurementError from Lab computes
 *   disk.corrupt       bit flips / truncation / torn disk-cache appends
 *   pool.delay         artificial thread-pool task delays
 *   server.fail        cluster-model server failures
 *   des.service        Gaussian stretch of queueing-model service
 *                      times (tail-latency chaos)
 *   scheduler.observe  Gaussian noise on the online scheduler's
 *                      per-server QoS observations
 *
 * Configuration comes from the SMITE_FAULTS environment variable
 * (parsed once, on first FaultPlan::global() use) or the arm() API:
 *
 *   SMITE_FAULTS="machine.jitter:p=1,sigma=0.05,seed=7;lab.measure:p=0.2"
 *
 * Clause grammar: `site[:key=value[,key=value...]]` joined by `;`.
 * Keys: `p` (per-check firing probability), `nth` (fire on every Nth
 * check, overrides `p`), `seed`, `sigma` (Gaussian width for jitter
 * sites), `us` (delay in microseconds for delay sites). Malformed
 * clauses are skipped with a warning — a typo must never turn into a
 * silently fault-free chaos run without trace.
 *
 * Determinism: *keyed* decisions hash (seed, site, key), so whether a
 * given measurement is faulted does not depend on thread
 * interleaving; *sequence* decisions hash a per-site trigger counter
 * and are deterministic for serial execution. With no site armed
 * every query is a single relaxed atomic load and nothing in the
 * pipeline changes — outputs stay byte-identical to a build without
 * faults (enforced by tests/test_fault.cpp and the tier-1 smoke).
 */

#ifndef SMITE_FAULT_FAULT_H
#define SMITE_FAULT_FAULT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace smite::fault {

/**
 * A transient measurement failure: the simulated analogue of a
 * crashed benchmark run or an unreadable counter on a real machine.
 * The Lab retries these (bounded, with backoff); callers that see one
 * escape know the retry budget is exhausted.
 */
class MeasurementError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-site configuration of one armed fault site. */
struct SiteSpec {
    /** Probability a check fires (ignored when nth > 0). */
    double probability = 0.0;
    /** Fire on every Nth check of this site; 0 disables the rule. */
    std::uint64_t nth = 0;
    /** Decision seed; 0 means "derive from the site name". */
    std::uint64_t seed = 0;
    /** Gaussian width for jitter sites (fraction of the value). */
    double sigma = 0.0;
    /** Delay for delay sites, microseconds. */
    double micros = 0.0;
};

/**
 * The process-wide fault registry.
 *
 * Checks are thread-safe. Each armed site publishes
 * `fault.<site>.checks` and `fault.<site>.injected` counters to the
 * global metrics registry, so every chaos run is auditable.
 */
class FaultPlan
{
  public:
    /**
     * The singleton plan. The first call parses SMITE_FAULTS from the
     * environment, if set.
     */
    static FaultPlan &global();

    /**
     * Parse a SMITE_FAULTS spec string and arm its sites (adds to any
     * sites already armed). Malformed clauses warn on stderr and are
     * skipped. @return number of sites armed by this call.
     */
    int configure(const std::string &spec);

    /** Arm (or re-arm) one site. */
    void arm(const std::string &site, const SiteSpec &spec);

    /** Disarm one site (no-op if not armed). */
    void disarm(const std::string &site);

    /** Disarm everything and reset trigger counters (tests). */
    void reset();

    /** True when at least one site is armed (one relaxed load). */
    bool
    enabled() const
    {
        return armed_.load(std::memory_order_relaxed) > 0;
    }

    /** True when @p site is armed. */
    bool armed(const std::string &site) const;

    /** The armed spec of @p site (all zeros when not armed). */
    SiteSpec spec(const std::string &site) const;

    /**
     * Keyed decision: should the fault fire for @p key? The outcome
     * is a pure function of (seed, site, key) — independent of call
     * order and thread interleaving — unless the site uses `nth`,
     * which counts checks. Always false when the site is not armed.
     */
    bool shouldInject(const std::string &site, std::string_view key);

    /**
     * Sequence decision for sites without a natural key: hashes the
     * site's check counter. Deterministic for serial execution.
     */
    bool shouldInject(const std::string &site);

    /**
     * Seeded N(0, sigma) draw keyed by @p key (keyed variant) — the
     * same key always jitters the same way.
     */
    double gaussian(const std::string &site, std::string_view key);

    /** Seeded N(0, sigma) draw from the site's own sequence. */
    double gaussianNext(const std::string &site);

  private:
    struct Site;

    FaultPlan() = default;
    Site *find(const std::string &site) const;
    bool decide(Site &s, std::uint64_t key_hash, bool keyed);

    mutable std::shared_mutex mu_;
    std::map<std::string, std::unique_ptr<Site>> sites_;
    std::atomic<int> armed_{0};
};

/**
 * Convenience for Lab compute lambdas: throw MeasurementError when
 * the (keyed) site fires. No-op when the plan is idle.
 */
void maybeThrow(const std::string &site, std::string_view key);

} // namespace smite::fault

#endif // SMITE_FAULT_FAULT_H
