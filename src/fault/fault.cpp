#include "fault/fault.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numbers>
#include <vector>

#include "obs/metrics.h"

namespace smite::fault {

namespace {

/** SplitMix64 finalizer: a strong 64-bit avalanche mix. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** FNV-1a over a string (seeds and key hashing). */
std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Uniform in (0, 1] from a mixed hash (never exactly 0 for log()). */
double
uniform(std::uint64_t h)
{
    return static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
}

/** Standard normal via Box-Muller on two derived uniforms. */
double
standardNormal(std::uint64_t h)
{
    const double u1 = uniform(mix(h));
    const double u2 = uniform(mix(h ^ 0xA5A5A5A5A5A5A5A5ull));
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

} // namespace

struct FaultPlan::Site {
    SiteSpec spec;
    std::uint64_t seed = 0;  ///< resolved (never 0)
    std::atomic<std::uint64_t> checks_seen{0};
    obs::Counter *checks = nullptr;
    obs::Counter *injected = nullptr;
};

FaultPlan &
FaultPlan::global()
{
    static FaultPlan plan;
    static std::once_flag from_env;
    std::call_once(from_env, [] {
        if (const char *env = std::getenv("SMITE_FAULTS"))
            plan.configure(env);
    });
    return plan;
}

int
FaultPlan::configure(const std::string &spec)
{
    int armed = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string clause = spec.substr(start, end - start);
        start = end + 1;
        if (clause.empty())
            continue;

        const std::size_t colon = clause.find(':');
        const std::string name = clause.substr(0, colon);
        if (name.empty()) {
            std::fprintf(stderr,
                         "smite: SMITE_FAULTS: skipping clause with "
                         "empty site name: '%s'\n",
                         clause.c_str());
            continue;
        }

        SiteSpec site;
        bool ok = true;
        if (colon != std::string::npos) {
            std::size_t kv_start = colon + 1;
            while (ok && kv_start <= clause.size()) {
                std::size_t kv_end = clause.find(',', kv_start);
                if (kv_end == std::string::npos)
                    kv_end = clause.size();
                const std::string kv =
                    clause.substr(kv_start, kv_end - kv_start);
                kv_start = kv_end + 1;
                if (kv.empty())
                    continue;
                const std::size_t eq = kv.find('=');
                const std::string key = kv.substr(0, eq);
                const std::string value =
                    eq == std::string::npos ? "" : kv.substr(eq + 1);
                char *parse_end = nullptr;
                const double v =
                    std::strtod(value.c_str(), &parse_end);
                const bool numeric = !value.empty() &&
                                     parse_end != value.c_str() &&
                                     *parse_end == '\0';
                if (!numeric) {
                    ok = false;
                } else if (key == "p" || key == "prob" ||
                           key == "probability") {
                    site.probability = v;
                } else if (key == "nth") {
                    site.nth = static_cast<std::uint64_t>(v);
                } else if (key == "seed") {
                    site.seed = static_cast<std::uint64_t>(v);
                } else if (key == "sigma") {
                    site.sigma = v;
                } else if (key == "us" || key == "micros") {
                    site.micros = v;
                } else {
                    ok = false;
                }
                if (!ok) {
                    std::fprintf(
                        stderr,
                        "smite: SMITE_FAULTS: site '%s': bad "
                        "key=value '%s' — skipping site\n",
                        name.c_str(), kv.c_str());
                }
            }
        }
        if (!ok)
            continue;
        arm(name, site);
        ++armed;
    }
    return armed;
}

void
FaultPlan::arm(const std::string &site, const SiteSpec &spec)
{
    obs::Registry &registry = obs::Registry::global();
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = sites_.try_emplace(site);
    if (inserted) {
        it->second = std::make_unique<Site>();
        armed_.fetch_add(1, std::memory_order_relaxed);
        it->second->checks =
            &registry.counter("fault." + site + ".checks");
        it->second->injected =
            &registry.counter("fault." + site + ".injected");
    }
    it->second->spec = spec;
    it->second->seed =
        spec.seed != 0 ? spec.seed : (hashString(site) | 1);
}

void
FaultPlan::disarm(const std::string &site)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (sites_.erase(site) > 0)
        armed_.fetch_sub(1, std::memory_order_relaxed);
}

void
FaultPlan::reset()
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    armed_.fetch_sub(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
    sites_.clear();
}

bool
FaultPlan::armed(const std::string &site) const
{
    return enabled() && find(site) != nullptr;
}

SiteSpec
FaultPlan::spec(const std::string &site) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? SiteSpec{} : it->second->spec;
}

FaultPlan::Site *
FaultPlan::find(const std::string &site) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = sites_.find(site);
    // Site objects are heap-allocated and only freed by disarm()/
    // reset(), which production code never calls concurrently with
    // checks; the pointer is stable across map rebalancing.
    return it == sites_.end() ? nullptr : it->second.get();
}

bool
FaultPlan::decide(Site &s, std::uint64_t key_hash, bool keyed)
{
    s.checks->add();
    const std::uint64_t index =
        s.checks_seen.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (s.spec.nth > 0) {
        fire = index % s.spec.nth == 0;
    } else if (s.spec.probability > 0.0) {
        const std::uint64_t h =
            mix(s.seed ^ (keyed ? key_hash : mix(index)));
        fire = uniform(h) <= s.spec.probability;
    }
    if (fire)
        s.injected->add();
    return fire;
}

bool
FaultPlan::shouldInject(const std::string &site, std::string_view key)
{
    if (!enabled())
        return false;
    Site *s = find(site);
    return s != nullptr && decide(*s, hashString(key), /*keyed=*/true);
}

bool
FaultPlan::shouldInject(const std::string &site)
{
    if (!enabled())
        return false;
    Site *s = find(site);
    return s != nullptr && decide(*s, 0, /*keyed=*/false);
}

double
FaultPlan::gaussian(const std::string &site, std::string_view key)
{
    if (!enabled())
        return 0.0;
    Site *s = find(site);
    if (s == nullptr || s->spec.sigma == 0.0)
        return 0.0;
    return s->spec.sigma *
           standardNormal(mix(s->seed ^ hashString(key)));
}

double
FaultPlan::gaussianNext(const std::string &site)
{
    if (!enabled())
        return 0.0;
    Site *s = find(site);
    if (s == nullptr || s->spec.sigma == 0.0)
        return 0.0;
    const std::uint64_t index =
        s->checks_seen.fetch_add(1, std::memory_order_relaxed) + 1;
    return s->spec.sigma * standardNormal(mix(s->seed ^ mix(index)));
}

void
maybeThrow(const std::string &site, std::string_view key)
{
    FaultPlan &plan = FaultPlan::global();
    if (plan.enabled() && plan.shouldInject(site, key)) {
        throw MeasurementError("injected fault at " + site + " (" +
                               std::string(key) + ")");
    }
}

} // namespace smite::fault
