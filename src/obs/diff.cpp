#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace smite::obs {

namespace {

const char *
typeName(json::Value::Type t)
{
    switch (t) {
    case json::Value::Type::kNull: return "null";
    case json::Value::Type::kBool: return "bool";
    case json::Value::Type::kNumber: return "number";
    case json::Value::Type::kString: return "string";
    case json::Value::Type::kArray: return "array";
    case json::Value::Type::kObject: return "object";
    }
    return "?";
}

std::string
formatNumber(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

void
report(std::vector<ReportDiffEntry> &out, const std::string &path,
       std::string detail)
{
    out.push_back(ReportDiffEntry{path, std::move(detail)});
}

void
diffValue(const json::Value &a, const json::Value &b,
          const std::string &path, const ReportDiffOptions &opts,
          std::vector<ReportDiffEntry> &out)
{
    if (a.type() != b.type()) {
        report(out, path,
               std::string(typeName(a.type())) + " vs " +
                   typeName(b.type()));
        return;
    }
    switch (a.type()) {
    case json::Value::Type::kNull:
        break;
    case json::Value::Type::kBool:
        if (a.asBool() != b.asBool()) {
            report(out, path,
                   std::string(a.asBool() ? "true" : "false") + " vs " +
                       (b.asBool() ? "true" : "false"));
        }
        break;
    case json::Value::Type::kNumber: {
        const double x = a.asNumber();
        const double y = b.asNumber();
        if (std::isnan(x) && std::isnan(y))
            break;
        const double scale =
            std::max({std::fabs(x), std::fabs(y), 1e-12});
        if (std::fabs(x - y) > opts.tolerance * scale) {
            report(out, path, formatNumber(x) + " vs " + formatNumber(y));
        }
        break;
    }
    case json::Value::Type::kString:
        if (a.asString() != b.asString()) {
            report(out, path,
                   "\"" + a.asString() + "\" vs \"" + b.asString() +
                       "\"");
        }
        break;
    case json::Value::Type::kArray: {
        if (a.items().size() != b.items().size()) {
            report(out, path,
                   std::to_string(a.items().size()) + " vs " +
                       std::to_string(b.items().size()) + " elements");
            break;
        }
        for (std::size_t i = 0; i < a.items().size(); ++i) {
            diffValue(a.items()[i], b.items()[i],
                      path + "[" + std::to_string(i) + "]", opts, out);
        }
        break;
    }
    case json::Value::Type::kObject: {
        // Fields of a in document order, then fields only b has.
        for (const auto &[key, value] : a.fields()) {
            const std::string child =
                path.empty() ? key : path + "." + key;
            if (const json::Value *other = b.find(key)) {
                diffValue(value, *other, child, opts, out);
            } else {
                report(out, child, "present vs missing");
            }
        }
        for (const auto &[key, value] : b.fields()) {
            if (a.find(key) == nullptr) {
                const std::string child =
                    path.empty() ? key : path + "." + key;
                report(out, child, "missing vs present");
            }
        }
        break;
    }
    }
}

/** Diff one named top-level section when either document has it. */
void
diffSection(const json::Value &a, const json::Value &b,
            const std::string &key, const ReportDiffOptions &opts,
            std::vector<ReportDiffEntry> &out)
{
    static const json::Value empty;
    const json::Value *va = a.find(key);
    const json::Value *vb = b.find(key);
    if (va == nullptr && vb == nullptr)
        return;
    diffValue(va != nullptr ? *va : empty, vb != nullptr ? *vb : empty,
              key, opts, out);
}

} // namespace

std::vector<ReportDiffEntry>
diffReports(const json::Value &a, const json::Value &b,
            const ReportDiffOptions &opts)
{
    std::vector<ReportDiffEntry> out;
    diffSection(a, b, "name", opts, out);
    diffSection(a, b, "results", opts, out);
    // The partial flag is a headline difference: one run degraded,
    // the other did not.
    const bool pa = a.find("partial") != nullptr &&
                    a.find("partial")->asBool();
    const bool pb = b.find("partial") != nullptr &&
                    b.find("partial")->asBool();
    if (pa != pb) {
        report(out, "partial",
               std::string(pa ? "partial" : "complete") + " vs " +
                   (pb ? "partial" : "complete"));
    }
    if (opts.include_metrics)
        diffSection(a, b, "metrics", opts, out);
    // timings are wall-clock and never comparable; skipped.
    return out;
}

} // namespace smite::obs
