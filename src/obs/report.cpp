#include "obs/report.h"

#include <cstdio>
#include <fstream>

#include "obs/metrics.h"

namespace smite::obs {

json::Value
RunReport::toJson() const
{
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value(kRunReportSchema));
    doc.set("name", json::Value(name_));
    doc.set("config", config_);
    doc.set("timings", timings_);
    doc.set("results", results_);
    if (partial_) {
        doc.set("partial", json::Value(true));
        json::Value incidents = json::Value::array();
        for (const std::string &what : incidents_)
            incidents.push(json::Value(what));
        doc.set("incidents", std::move(incidents));
    }
    doc.set("metrics", Registry::global().toJson());
    return doc;
}

bool
RunReport::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "smite: cannot write report to %s\n",
                     path.c_str());
        return false;
    }
    out << toJson().dump(1) << "\n";
    return static_cast<bool>(out);
}

} // namespace smite::obs
