/**
 * @file
 * Umbrella header: the SMiTe observability layer.
 *
 * Three cooperating pieces, all off by default and gated by
 * environment variables (reference: docs/OBSERVABILITY.md):
 *
 *  - metrics.h — process-wide Registry of counters/gauges/histograms
 *    (collection always on, lock-free; emission gated by
 *    SMITE_METRICS);
 *  - trace.h — scoped Spans emitting Chrome trace_event JSON
 *    (collection gated by SMITE_TRACE; open in Perfetto);
 *  - report.h — structured per-run JSON reports
 *    (`smite-run-report/1`) embedding a metrics snapshot;
 *  - incident.h — bounded log of absorbed failures, folded into the
 *    report as the `partial`/`incidents` section;
 *  - diff.h — structural report comparison (tools/report_diff).
 */

#ifndef SMITE_OBS_OBS_H
#define SMITE_OBS_OBS_H

#include "obs/diff.h"
#include "obs/incident.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

#endif // SMITE_OBS_OBS_H
