#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace smite::obs {

namespace {

/** Env flag semantics shared with the trace layer: set and not "0". */
bool
readEnvFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

std::atomic<int> &
metricsOverride()
{
    // -1 = follow the environment, 0/1 = forced by a test.
    static std::atomic<int> override{-1};
    return override;
}

} // namespace

bool
metricsEnabled()
{
    const int forced = metricsOverride().load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool from_env = readEnvFlag("SMITE_METRICS");
    return from_env;
}

void
setMetricsEnabledForTesting(bool enabled)
{
    metricsOverride().store(enabled ? 1 : 0,
                            std::memory_order_relaxed);
}

int
Histogram::bucketFor(double v)
{
    if (!(v > 0.0))
        return 0;
    // Exponent buckets: bucket b covers [2^(b-17), 2^(b-16)), i.e.
    // bucket 1 starts at 2^-16; everything below collapses into
    // bucket 0 and everything at/above 2^47 into the last bucket.
    const int exponent = std::ilogb(v);
    return std::clamp(exponent + 17, 1, kBuckets - 1);
}

double
Histogram::bucketUpper(int bucket)
{
    return std::ldexp(1.0, bucket - 16);
}

void
Histogram::observe(double v)
{
    buckets_[static_cast<std::size_t>(bucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    const std::uint64_t n =
        count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20 but not universally lowered
    // well; a CAS loop keeps the dependency surface minimal.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
    }
    if (n == 0) {
        // First sample seeds min/max so 0-initialization never wins
        // against all-positive sample sets.
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    }
    double lo = min_.load(std::memory_order_relaxed);
    while (v < lo && !min_.compare_exchange_weak(
                         lo, v, std::memory_order_relaxed)) {
    }
    double hi = max_.load(std::memory_order_relaxed);
    while (v > hi && !max_.compare_exchange_weak(
                         hi, v, std::memory_order_relaxed)) {
    }
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::min() const
{
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double
Histogram::percentile(double p) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
        if (seen >= rank)
            return std::clamp(bucketUpper(b), min(), max());
    }
    return max();
}

json::Value
Histogram::summaryJson() const
{
    json::Value out = json::Value::object();
    out.set("count", json::Value(count()));
    out.set("sum", json::Value(sum()));
    out.set("mean", json::Value(mean()));
    out.set("min", json::Value(min()));
    out.set("max", json::Value(max()));
    out.set("p50", json::Value(percentile(0.50)));
    out.set("p90", json::Value(percentile(0.90)));
    out.set("p99", json::Value(percentile(0.99)));
    return out;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    // Leaked on purpose: instrumented code may run during static
    // destruction (thread pools joining, reports flushing).
    static Registry *registry = new Registry();
    return *registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(counters_.size() + gauges_.size() +
                histograms_.size());
    for (const auto &[name, _] : counters_)
        out.push_back(name);
    for (const auto &[name, _] : gauges_)
        out.push_back(name);
    for (const auto &[name, _] : histograms_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

json::Value
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value counters = json::Value::object();
    for (const auto &[name, counter] : counters_)
        counters.set(name, json::Value(counter->value()));
    json::Value gauges = json::Value::object();
    for (const auto &[name, gauge] : gauges_)
        gauges.set(name, json::Value(gauge->value()));
    json::Value histograms = json::Value::object();
    for (const auto &[name, histogram] : histograms_)
        histograms.set(name, histogram->summaryJson());

    json::Value out = json::Value::object();
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("histograms", std::move(histograms));
    return out;
}

void
Registry::resetForTesting()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[_, counter] : counters_)
        counter->reset();
    for (auto &[_, gauge] : gauges_)
        gauge->reset();
    for (auto &[_, histogram] : histograms_)
        histogram->reset();
}

} // namespace smite::obs
