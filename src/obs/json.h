/**
 * @file
 * Minimal JSON document model for the observability layer.
 *
 * The run reports and Chrome traces the obs subsystem emits — and the
 * validators/tests that read them back — need exactly one document
 * type: a tagged union over null / bool / number / string / array /
 * object, with insertion-ordered object fields, a serializer, and a
 * strict recursive-descent parser. No external dependency, no DOM
 * cleverness.
 */

#ifndef SMITE_OBS_JSON_H
#define SMITE_OBS_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace smite::obs::json {

/**
 * One JSON value. Object fields keep insertion order so emitted
 * documents are stable and diffable across runs.
 */
class Value
{
  public:
    /** JSON type tag. */
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() : type_(Type::kNull) {}
    Value(bool b) : type_(Type::kBool), bool_(b) {}
    /** Any integer or floating-point number (stored as double). */
    template <typename T>
        requires(std::is_arithmetic_v<T> && !std::is_same_v<T, bool>)
    Value(T n) : type_(Type::kNumber), number_(static_cast<double>(n))
    {
    }
    Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
    Value(const char *s) : Value(std::string(s)) {}

    /** An empty array value. */
    static Value array() { Value v; v.type_ = Type::kArray; return v; }

    /** An empty object value. */
    static Value object() { Value v; v.type_ = Type::kObject; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Value accessors; defaulted, not throwing, on type mismatch. */
    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }
    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? number_ : fallback;
    }
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Value> &items() const { return items_; }

    /** Object fields in insertion order (empty unless isObject()). */
    const std::vector<std::pair<std::string, Value>> &fields() const
    {
        return fields_;
    }

    /** Append to an array (converts a null value into an array). */
    Value &push(Value v);

    /**
     * Set an object field (converts a null value into an object).
     * An existing field of the same name is overwritten in place.
     */
    Value &set(const std::string &key, Value v);

    /** Field lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Serialize. @p indent < 0 emits the compact one-line form;
     * otherwise nested containers indent by @p indent spaces.
     */
    std::string dump(int indent = -1) const;

    /**
     * Strict parse of a complete JSON document (trailing garbage is
     * an error). On failure returns false and, when @p error is
     * non-null, stores a message with the byte offset.
     */
    static bool parse(std::string_view text, Value *out,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> fields_;
};

/** JSON string escaping (without the surrounding quotes). */
std::string escape(std::string_view raw);

} // namespace smite::obs::json

#endif // SMITE_OBS_JSON_H
