/**
 * @file
 * Structural comparison of two run-report documents.
 *
 * The reports are the pipeline's regression surface: two runs of the
 * same harness should produce the same `results`, and a chaos run's
 * damage should show up as a flagged difference, not a silent drift.
 * diffReports() compares two `smite-run-report/1` documents field by
 * field and returns one entry per divergence, with numeric values
 * allowed a relative tolerance (simulated measurements are exact, but
 * consumers may compare across toolchains).
 *
 * What is compared: `name`, the full `results` tree (recursively),
 * and the `partial` flag. `timings` are always skipped (wall-clock is
 * never reproducible); `metrics` are compared only on request. The
 * tools/report_diff CLI wraps this for CI use.
 */

#ifndef SMITE_OBS_DIFF_H
#define SMITE_OBS_DIFF_H

#include <string>
#include <vector>

#include "obs/json.h"

namespace smite::obs {

/** One divergence between two reports. */
struct ReportDiffEntry {
    std::string path;    ///< e.g. "results.smite_avg_error"
    std::string detail;  ///< human-readable "a vs b" description
};

/** Knobs for diffReports(). */
struct ReportDiffOptions {
    /** Numbers differing by at most this relative amount match. */
    double tolerance = 1e-9;
    /** Also compare the `metrics` section (noisy; off by default). */
    bool include_metrics = false;
};

/**
 * Compare two report documents. Empty result means "equivalent under
 * the options". Order of entries follows document order of @p a.
 */
std::vector<ReportDiffEntry> diffReports(const json::Value &a,
                                         const json::Value &b,
                                         const ReportDiffOptions &opts = {});

} // namespace smite::obs

#endif // SMITE_OBS_DIFF_H
