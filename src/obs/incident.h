/**
 * @file
 * Process-wide incident log: a bounded record of the failures a run
 * survived.
 *
 * The resilient measurement pipeline (see docs/ROBUSTNESS.md) keeps
 * going when individual measurements fail — retries exhaust, samples
 * get dropped from a fit, prediction pairs get skipped. Each such
 * degradation is *recorded here* at the point it is absorbed, and the
 * bench reporter folds the log into the run report as a
 * `"partial": true` section, so a run that silently lost data is
 * distinguishable from a clean one.
 *
 * The log is capped: after kMaxEntries records further incidents are
 * counted but not stored, and the snapshot ends with a summary line.
 * A chaos run with thousands of injected faults must not balloon the
 * report.
 */

#ifndef SMITE_OBS_INCIDENT_H
#define SMITE_OBS_INCIDENT_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace smite::obs {

/** Thread-safe, bounded log of absorbed failures. */
class IncidentLog
{
  public:
    /** Stored-entry cap; later incidents are counted, not stored. */
    static constexpr std::size_t kMaxEntries = 256;

    /** The process-wide log. */
    static IncidentLog &global();

    /** Record one absorbed failure (e.g. "dropped sample a|b"). */
    void record(const std::string &what);

    /** Total incidents recorded, including unstored ones. */
    std::uint64_t count() const;

    /**
     * The stored entries, plus a trailing "... and N more incidents"
     * line when the cap was hit.
     */
    std::vector<std::string> snapshot() const;

    /** Drop everything (tests and fresh harness runs). */
    void clearForTesting();

  private:
    IncidentLog() = default;

    mutable std::mutex mu_;
    std::vector<std::string> entries_;
    std::uint64_t total_ = 0;
};

} // namespace smite::obs

#endif // SMITE_OBS_INCIDENT_H
