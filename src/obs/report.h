/**
 * @file
 * Structured run reports: one machine-readable JSON document per
 * bench/experiment run.
 *
 * A RunReport accumulates the run's configuration, named phase
 * timings and result values; toJson() stamps it with the schema id
 * and a snapshot of the global metrics Registry, so cache hit rates
 * and simulation counts ride along without per-harness plumbing.
 *
 * Document schema (`smite-run-report/1`, full reference with a worked
 * example in docs/OBSERVABILITY.md):
 *
 * @code{.json}
 * {
 *   "schema":  "smite-run-report/1",
 *   "name":    "bench_fig10_spec_smt_prediction",
 *   "config":  { "machine": "Ivy Bridge", "threads": 8, ... },
 *   "timings": { "total_s": 12.34, ... },
 *   "results": { "smite_avg_error": 0.064, ... },
 *   "partial":   true,                        // only when degraded
 *   "incidents": ["dropped sample ...", ...], // only when degraded
 *   "metrics": { "counters": {...}, "gauges": {...},
 *                "histograms": {...} }
 * }
 * @endcode
 *
 * The `partial` / `incidents` pair appears only on runs that absorbed
 * failures (see obs/incident.h): consumers can treat their absence as
 * "every measurement completed".
 *
 * Emission is the caller's decision; the bench reporter writes the
 * file only when SMITE_METRICS or SMITE_TRACE is set, so default runs
 * leave no files behind.
 */

#ifndef SMITE_OBS_REPORT_H
#define SMITE_OBS_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace smite::obs {

/** Schema identifier stamped into every report document. */
inline constexpr const char *kRunReportSchema = "smite-run-report/1";

/** Accumulator for one run's structured report. */
class RunReport
{
  public:
    /** @param name run identifier (conventionally the binary name). */
    explicit RunReport(std::string name) : name_(std::move(name)) {}

    /** The run identifier. */
    const std::string &name() const { return name_; }

    /** Record one configuration key (last write wins). */
    void setConfig(const std::string &key, json::Value value)
    {
        config_.set(key, std::move(value));
    }

    /** Record one phase duration in seconds. */
    void addTiming(const std::string &phase, double seconds)
    {
        timings_.set(phase, json::Value(seconds));
    }

    /** Record one result value (scalars or nested documents). */
    void addResult(const std::string &key, json::Value value)
    {
        results_.set(key, std::move(value));
    }

    /**
     * Flag this run as degraded: some measurements failed and the
     * results were assembled without them. @p incidents lists what
     * was lost (typically IncidentLog::global().snapshot()).
     */
    void markPartial(std::vector<std::string> incidents)
    {
        partial_ = true;
        incidents_ = std::move(incidents);
    }

    /** True once markPartial() has been called. */
    bool partial() const { return partial_; }

    /**
     * The complete document, including a point-in-time snapshot of
     * the global metrics Registry.
     */
    json::Value toJson() const;

    /**
     * Serialize to @p path (pretty-printed). Returns false and warns
     * on stderr when the file cannot be written.
     */
    bool writeTo(const std::string &path) const;

  private:
    std::string name_;
    json::Value config_ = json::Value::object();
    json::Value timings_ = json::Value::object();
    json::Value results_ = json::Value::object();
    bool partial_ = false;
    std::vector<std::string> incidents_;
};

} // namespace smite::obs

#endif // SMITE_OBS_REPORT_H
