/**
 * @file
 * Process-wide metrics registry: counters, gauges and histograms with
 * a lock-free hot path.
 *
 * Instruments register a metric once (one mutex acquisition) and keep
 * the returned reference; every subsequent update is a single relaxed
 * atomic operation, cheap enough to leave on unconditionally without
 * perturbing the measurement engine's determinism (metrics never feed
 * back into simulation results).
 *
 * *Collection* is therefore always on; *emission* is what the
 * SMITE_METRICS environment variable gates (see report.h and
 * bench/common.h) — with the variable unset no file is ever written
 * and nothing is printed. Code that must pay a real cost to observe
 * (e.g. reading a clock around every thread-pool task) checks
 * metricsEnabled() first.
 *
 * Naming convention: lowercase dotted paths, `<subsystem>.<object>.
 * <aspect>` (e.g. `lab.cache.pair.hits`, `pool.task_us`). The full
 * catalog lives in docs/OBSERVABILITY.md and is cross-checked against
 * the registry by the tier-1 smoke test.
 */

#ifndef SMITE_OBS_METRICS_H
#define SMITE_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace smite::obs {

/**
 * True when the SMITE_METRICS environment variable enables metric
 * emission (set and not "0" or empty). Read once per process; tests
 * override via setMetricsEnabledForTesting().
 */
bool metricsEnabled();

/** Test hook: force metricsEnabled() regardless of the environment. */
void setMetricsEnabledForTesting(bool enabled);

/** A monotonically increasing counter. */
class Counter
{
  public:
    /** Add @p n (relaxed; safe from any thread). */
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current total. */
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (test isolation only). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-value-wins instantaneous measurement. */
class Gauge
{
  public:
    /** Record the current level. */
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Last recorded level. */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the gauge (test isolation only). */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A distribution summary over positive samples: exact count/sum/min/
 * max plus base-2 exponential buckets (2^-16 .. 2^48) for approximate
 * percentiles. All updates are relaxed atomics; merging buckets into
 * a snapshot happens only at emission time.
 */
class Histogram
{
  public:
    /** Bucket count of the fixed base-2 layout. */
    static constexpr int kBuckets = 64;

    /** Record one sample (non-positive samples land in bucket 0). */
    void observe(double v);

    /** Samples recorded. */
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of samples. */
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /**
     * Approximate @p p -quantile (p in [0, 1]): the upper bound of
     * the first bucket whose cumulative count reaches p * count,
     * clamped to the exact observed min/max.
     */
    double percentile(double p) const;

    /** Emission-time summary object for the run report. */
    json::Value summaryJson() const;

    /** Zero all samples (test isolation only). */
    void reset();

  private:
    static int bucketFor(double v);
    static double bucketUpper(int bucket);

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * The process-wide metric namespace. Lookup-or-create takes a mutex;
 * the returned references are stable for the process lifetime, so
 * call sites hoist them (member pointer or function-local static) and
 * update lock-free afterwards.
 */
class Registry
{
  public:
    /** The singleton registry. */
    static Registry &global();

    /** Counter registered under @p name (created on first use). */
    Counter &counter(const std::string &name);

    /** Gauge registered under @p name (created on first use). */
    Gauge &gauge(const std::string &name);

    /** Histogram registered under @p name (created on first use). */
    Histogram &histogram(const std::string &name);

    /** All registered metric names, sorted, kind-prefixed-free. */
    std::vector<std::string> names() const;

    /**
     * Snapshot as the run report's "metrics" section:
     * {"counters": {...}, "gauges": {...}, "histograms": {...}}.
     */
    json::Value toJson() const;

    /**
     * Reset all values to zero (registrations survive, references
     * stay valid). Test isolation only — production code never
     * resets.
     */
    void resetForTesting();

  private:
    Registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace smite::obs

#endif // SMITE_OBS_METRICS_H
