#include "obs/incident.h"

namespace smite::obs {

IncidentLog &
IncidentLog::global()
{
    static IncidentLog log;
    return log;
}

void
IncidentLog::record(const std::string &what)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (entries_.size() < kMaxEntries)
        entries_.push_back(what);
}

std::uint64_t
IncidentLog::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::vector<std::string>
IncidentLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out = entries_;
    if (total_ > entries_.size()) {
        out.push_back("... and " +
                      std::to_string(total_ - entries_.size()) +
                      " more incidents");
    }
    return out;
}

void
IncidentLog::clearForTesting()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    total_ = 0;
}

} // namespace smite::obs
