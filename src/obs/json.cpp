#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace smite::obs::json {

Value &
Value::push(Value v)
{
    if (type_ == Type::kNull)
        type_ = Type::kArray;
    items_.push_back(std::move(v));
    return *this;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (type_ == Type::kNull)
        type_ = Type::kObject;
    for (auto &field : fields_) {
        if (field.first == key) {
            field.second = std::move(v);
            return *this;
        }
    }
    fields_.emplace_back(key, std::move(v));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &field : fields_) {
        if (field.first == key)
            return &field.second;
    }
    return nullptr;
}

std::string
escape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest round-trippable decimal for a finite double. */
std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no Inf/NaN; degrade explicitly
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const std::string pad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 (depth + 1),
                             ' ')
               : "";
    const std::string closePad =
        pretty ? std::string(static_cast<std::size_t>(indent) * depth,
                             ' ')
               : "";
    switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += formatNumber(number_); break;
    case Type::kString:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
    case Type::kArray: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            if (pretty) {
                out += '\n';
                out += pad;
            }
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (pretty) {
            out += '\n';
            out += closePad;
        }
        out += ']';
        break;
    }
    case Type::kObject: {
        if (fields_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                out += ',';
            if (pretty) {
                out += '\n';
                out += pad;
            }
            out += '"';
            out += escape(fields_[i].first);
            out += pretty ? "\": " : "\":";
            fields_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (pretty) {
            out += '\n';
            out += closePad;
        }
        out += '}';
        break;
    }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string_view with offset errors. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(Value *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_ && error_->empty()) {
            *error_ = std::string(what) + " at offset " +
                      std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (the emitters only
                // produce control-character escapes, so surrogate
                // pairs are out of scope and decode as two chars).
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out->push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out->push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected number");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        *out = Value(v);
        return true;
    }

    bool
    parseValue(Value *out)
    {
        if (depth_ > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null") ? (*out = Value(), true)
                                   : fail("bad literal");
        if (c == 't')
            return literal("true") ? (*out = Value(true), true)
                                   : fail("bad literal");
        if (c == 'f')
            return literal("false") ? (*out = Value(false), true)
                                    : fail("bad literal");
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Value(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos_;
            ++depth_;
            *out = Value::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            for (;;) {
                Value item;
                if (!parseValue(&item))
                    return false;
                out->push(std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    --depth_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            ++depth_;
            *out = Value::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                Value item;
                if (!parseValue(&item))
                    return false;
                out->set(key, std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    --depth_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        return parseNumber(out);
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
Value::parse(std::string_view text, Value *out, std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace smite::obs::json
