/**
 * @file
 * Scoped trace spans emitting Chrome trace_event JSON.
 *
 * When the SMITE_TRACE environment variable is set (non-"0"), every
 * Span records one complete ("ph":"X") event — name, thread, start
 * microsecond, duration — into the process-wide TraceSession buffer;
 * TraceSession::writeTo() then serializes the buffer in the Chrome
 * trace_event format, loadable in about:tracing or
 * https://ui.perfetto.dev. The bench reporter (bench/common.h) writes
 * `<harness>.trace.json` automatically at exit.
 *
 * When tracing is disabled a Span is two relaxed atomic loads and no
 * clock read — cheap enough to leave instrumentation in every hot
 * layer permanently. Span names are static label strings from the
 * catalog in docs/OBSERVABILITY.md (`<subsystem>.<operation>`); the
 * per-instance detail (workload, pair key, ...) goes into the event's
 * args, not the name, so Perfetto aggregates by operation.
 */

#ifndef SMITE_OBS_TRACE_H
#define SMITE_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace smite::obs {

/** True when SMITE_TRACE enables span collection. */
bool traceEnabled();

/** The process-wide span buffer. */
class TraceSession
{
  public:
    /** The singleton session (clock starts on first access). */
    static TraceSession &global();

    /** Whether spans currently record (env var or test override). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Test hook: force span collection on or off. */
    void setEnabledForTesting(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Microseconds since the session started. */
    std::uint64_t nowMicros() const;

    /**
     * Record one complete event. @p name must outlive the session
     * (static string); @p detail is copied into the event's args.
     */
    void record(const char *name, std::uint64_t start_us,
                std::uint64_t duration_us, std::string detail);

    /** Events recorded so far. */
    std::size_t eventCount() const;

    /** Distinct span names recorded, sorted. */
    std::vector<std::string> spanNames() const;

    /** The Chrome trace_event document. */
    json::Value toJson() const;

    /**
     * Serialize to @p path (pretty-printed). Returns false and warns
     * on stderr when the file cannot be written.
     */
    bool writeTo(const std::string &path) const;

    /** Drop all recorded events (test isolation). */
    void clearForTesting();

  private:
    TraceSession();

    struct Event {
        const char *name;
        int tid;
        std::uint64_t start_us;
        std::uint64_t duration_us;
        std::string detail;
    };

    std::atomic<bool> enabled_;
    std::uint64_t epoch_ns_;  ///< steady-clock origin of ts == 0
    mutable std::mutex mu_;
    std::vector<Event> events_;
};

/**
 * RAII span: records the enclosing scope as one trace event. No-op
 * (no clock read, no allocation) while tracing is disabled.
 */
class Span
{
  public:
    /** @param name static catalog label, e.g. "lab.pair". */
    explicit Span(const char *name) : Span(name, std::string()) {}

    /** @param detail per-instance context stored in the event args. */
    Span(const char *name, std::string detail);

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr;  ///< nullptr = disabled at entry
    std::uint64_t start_us_ = 0;
    std::string detail_;
};

} // namespace smite::obs

#endif // SMITE_OBS_TRACE_H
