#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace smite::obs {

namespace {

bool
readEnvFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

/** Small dense thread ids for the trace (0 = first thread seen). */
int
currentThreadId()
{
    static std::atomic<int> next{0};
    thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

bool
traceEnabled()
{
    return TraceSession::global().enabled();
}

TraceSession::TraceSession()
    : enabled_(readEnvFlag("SMITE_TRACE")), epoch_ns_(steadyNanos())
{
}

TraceSession &
TraceSession::global()
{
    // Leaked on purpose: spans may close during static destruction.
    static TraceSession *session = new TraceSession();
    return *session;
}

std::uint64_t
TraceSession::nowMicros() const
{
    return (steadyNanos() - epoch_ns_) / 1000;
}

void
TraceSession::record(const char *name, std::uint64_t start_us,
                     std::uint64_t duration_us, std::string detail)
{
    const int tid = currentThreadId();
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(
        Event{name, tid, start_us, duration_us, std::move(detail)});
}

std::size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::vector<std::string>
TraceSession::spanNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    for (const Event &event : events_)
        names.emplace_back(event.name);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

json::Value
TraceSession::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value events = json::Value::array();
    for (const Event &event : events_) {
        json::Value e = json::Value::object();
        e.set("name", json::Value(event.name));
        e.set("cat", json::Value("smite"));
        e.set("ph", json::Value("X"));
        e.set("pid", json::Value(1));
        e.set("tid", json::Value(event.tid));
        e.set("ts", json::Value(event.start_us));
        e.set("dur", json::Value(event.duration_us));
        if (!event.detail.empty()) {
            json::Value args = json::Value::object();
            args.set("detail", json::Value(event.detail));
            e.set("args", std::move(args));
        }
        events.push(std::move(e));
    }
    json::Value doc = json::Value::object();
    doc.set("displayTimeUnit", json::Value("ms"));
    doc.set("traceEvents", std::move(events));
    return doc;
}

bool
TraceSession::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "smite: cannot write trace to %s\n",
                     path.c_str());
        return false;
    }
    out << toJson().dump(1) << "\n";
    return static_cast<bool>(out);
}

void
TraceSession::clearForTesting()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
}

Span::Span(const char *name, std::string detail)
{
    TraceSession &session = TraceSession::global();
    if (!session.enabled())
        return;
    name_ = name;
    detail_ = std::move(detail);
    start_us_ = session.nowMicros();
}

Span::~Span()
{
    if (name_ == nullptr)
        return;
    TraceSession &session = TraceSession::global();
    // A span that opened while tracing was on closes even if a test
    // has since toggled the flag off; clearForTesting discards it.
    const std::uint64_t end_us = session.nowMicros();
    session.record(name_, start_us_,
                   end_us > start_us_ ? end_us - start_us_ : 0,
                   std::move(detail_));
}

} // namespace smite::obs
