#include "rulers/ruler.h"

#include <stdexcept>

#include "sim/digest.h"
#include "sim/types.h"

namespace smite::rulers {

namespace {

/** sim::UopType executed by each FU dimension. */
sim::UopType
fuUopType(Dimension dim)
{
    switch (dim) {
      case Dimension::kFpMul:  return sim::UopType::kFpMul;
      case Dimension::kFpAdd:  return sim::UopType::kFpAdd;
      case Dimension::kFpShf:  return sim::UopType::kFpShf;
      case Dimension::kIntAdd: return sim::UopType::kIntAdd;
      default:
        throw std::invalid_argument("not a functional-unit dimension");
    }
}

/**
 * Functional-unit stressor (Figure 9a-d): a dependence-free unrolled
 * loop of one port-specific operation. The duty cycle is realized
 * with a deterministic accumulator so the stream has no randomness
 * at all.
 */
class FuRulerSource : public sim::UopSource
{
  public:
    FuRulerSource(sim::UopType type, double duty)
        : type_(type), duty_(duty)
    {}

    sim::Uop
    next() override
    {
        sim::Uop uop;
        uop.pc = pc_;
        pc_ = (pc_ + 4) % kCodeBytes;
        acc_ += duty_;
        if (acc_ >= 1.0 - 1e-12) {
            acc_ -= 1.0;
            uop.type = type_;
        } else {
            uop.type = sim::UopType::kNop;
        }
        return uop;
    }

    void
    reset() override
    {
        acc_ = 0.0;
        pc_ = 0;
    }

    std::uint64_t
    streamDigest() const override
    {
        // Fully deterministic in (type, duty): replay-eligible.
        return sim::Digest{}
            .str("ruler.fu")
            .u64(static_cast<std::uint64_t>(type_))
            .f64(duty_)
            .value();
    }

  private:
    static constexpr sim::Addr kCodeBytes = 256;  // unrolled loop body

    sim::UopType type_;
    double duty_;
    double acc_ = 0.0;
    sim::Addr pc_ = 0;
};

/** The 32-bit Galois LFSR of Figure 9(e). */
class Lfsr32
{
  public:
    std::uint32_t
    next()
    {
        state_ = (state_ >> 1) ^
                 (static_cast<std::uint32_t>(-(state_ & 1u)) &
                  0xd0000001u);
        return state_;
    }

    void reset() { state_ = kSeed; }

  private:
    static constexpr std::uint32_t kSeed = 0xACE1ACE1u;
    std::uint32_t state_ = kSeed;
};

/**
 * L1/L2 cache stressor (Figure 9e):
 * `data_chunk[RAND % FOOTPRINT]++` — a load, the increment, and the
 * store back to the same element, plus one ALU op for the LFSR.
 */
class RandomMemRulerSource : public sim::UopSource
{
  public:
    explicit RandomMemRulerSource(std::uint64_t working_set)
        : workingSet_(working_set)
    {
        if (working_set < sim::kLineBytes)
            throw std::invalid_argument("ruler working set too small");
    }

    sim::Uop
    next() override
    {
        // One iteration of Figure 9(e) is seven uops: a four-op
        // serial LFSR update (shift, mask, negate, xor — the chain
        // paces the kernel at ~4 cycles/iteration regardless of its
        // own memory latency), then the dependent load of
        // data_chunk[RAND % FOOTPRINT], the increment, and the store
        // back. Consecutive iterations' loads are independent, so
        // the memory pressure scales with the working set while the
        // pressure on ports and the front end stays moderate — the
        // paper's decoupling principle.
        sim::Uop uop;
        uop.pc = pc_;
        pc_ = (pc_ + 4) % kCodeBytes;
        switch (phase_) {
          case 0:  // LFSR step 1: chained to the previous iteration
            uop.type = sim::UopType::kIntAdd;
            uop.srcDist1 = 4;  // previous iteration's LFSR step 4
            break;
          case 1:
          case 2:
          case 3:  // LFSR steps 2-4: serial
            uop.type = sim::UopType::kIntAdd;
            uop.srcDist1 = 1;
            break;
          case 4:  // load data_chunk[RAND % FOOTPRINT]
            addr_ = (lfsr_.next() % (workingSet_ / 8)) * 8;
            uop.type = sim::UopType::kLoad;
            uop.addr = addr_;
            uop.srcDist1 = 1;  // the LFSR value
            break;
          case 5:  // ++ (depends on the load)
            uop.type = sim::UopType::kIntAdd;
            uop.srcDist1 = 1;
            break;
          default:  // store back (depends on the increment)
            uop.type = sim::UopType::kStore;
            uop.addr = addr_;
            uop.srcDist1 = 1;
            break;
        }
        phase_ = (phase_ + 1) % 7;
        return uop;
    }

    void
    reset() override
    {
        lfsr_.reset();
        phase_ = 0;
        addr_ = 0;
        pc_ = 0;
    }

    sim::Addr hotFootprint() const override { return workingSet_; }

    double
    residencyWeight() const override
    {
        // Working sets that fit the private caches exert almost no
        // shared-cache claim.
        return workingSet_ > (1 << 20) ? 0.5 : 1e-3;
    }

    std::uint64_t
    streamDigest() const override
    {
        // The LFSR seed is a class constant, so the working set is
        // the whole identity.
        return sim::Digest{}
            .str("ruler.randmem")
            .u64(workingSet_)
            .value();
    }

  private:
    static constexpr sim::Addr kCodeBytes = 192;

    std::uint64_t workingSet_;
    Lfsr32 lfsr_;
    int phase_ = 0;
    sim::Addr addr_ = 0;
    sim::Addr pc_ = 0;
};

/**
 * L3 cache stressor (Figure 9f): stride-64 walk writing each half of
 * the footprint with loads from the other half
 * (`first_chunk[i] = second_chunk[i] + 1`).
 */
class StrideMemRulerSource : public sim::UopSource
{
  public:
    explicit StrideMemRulerSource(std::uint64_t working_set)
        : half_(working_set / 2)
    {
        if (half_ < sim::kLineBytes)
            throw std::invalid_argument("ruler working set too small");
    }

    sim::Uop
    next() override
    {
        sim::Uop uop;
        uop.pc = pc_;
        pc_ = (pc_ + 4) % kCodeBytes;
        switch (phase_) {
          case 0:  // load second_chunk[i]
            uop.type = sim::UopType::kLoad;
            uop.addr = half_ + cursor_;
            break;
          case 1:  // + 1
            uop.type = sim::UopType::kIntAdd;
            uop.srcDist1 = 1;
            break;
          case 2:  // store first_chunk[i]
            uop.type = sim::UopType::kStore;
            uop.addr = cursor_;
            uop.srcDist1 = 1;
            cursor_ += sim::kLineBytes;
            if (cursor_ >= half_) {
                cursor_ = 0;
                swap_ = !swap_;
            }
            break;
          default:  // i += 64
            uop.type = sim::UopType::kIntAdd;
            break;
        }
        phase_ = (phase_ + 1) % 4;
        return uop;
    }

    void
    reset() override
    {
        phase_ = 0;
        cursor_ = 0;
        swap_ = false;
        pc_ = 0;
    }

    sim::Addr hotFootprint() const override { return 2 * half_; }

    double residencyWeight() const override { return 1.0; }

    std::uint64_t
    streamDigest() const override
    {
        return sim::Digest{}.str("ruler.stride").u64(half_).value();
    }

  private:
    static constexpr sim::Addr kCodeBytes = 192;

    std::uint64_t half_;
    int phase_ = 0;
    sim::Addr cursor_ = 0;
    bool swap_ = false;
    sim::Addr pc_ = 0;
};

} // namespace

Ruler
Ruler::functionalUnit(Dimension dim, double duty_cycle)
{
    if (!isFunctionalUnit(dim))
        throw std::invalid_argument("expected a functional-unit dimension");
    if (duty_cycle < 0.0 || duty_cycle > 1.0)
        throw std::invalid_argument("duty cycle must be in [0, 1]");
    Ruler r;
    r.dim_ = dim;
    r.dutyCycle_ = duty_cycle;
    r.name_ = "ruler:" + std::string(dimensionName(dim));
    return r;
}

Ruler
Ruler::memory(Dimension dim, std::uint64_t working_set)
{
    if (isFunctionalUnit(dim))
        throw std::invalid_argument("expected a memory dimension");
    if (working_set < 2 * sim::kLineBytes)
        throw std::invalid_argument("ruler working set too small");
    Ruler r;
    r.dim_ = dim;
    r.workingSet_ = working_set;
    r.name_ = "ruler:" + std::string(dimensionName(dim));
    return r;
}

std::unique_ptr<sim::UopSource>
Ruler::makeSource() const
{
    switch (dim_) {
      case Dimension::kFpMul:
      case Dimension::kFpAdd:
      case Dimension::kFpShf:
      case Dimension::kIntAdd:
        return std::make_unique<FuRulerSource>(fuUopType(dim_),
                                               dutyCycle_);
      case Dimension::kL1:
      case Dimension::kL2:
        return std::make_unique<RandomMemRulerSource>(workingSet_);
      case Dimension::kL3:
        return std::make_unique<StrideMemRulerSource>(workingSet_);
    }
    throw std::logic_error("unreachable");
}

std::vector<Ruler>
defaultSuite(const sim::MachineConfig &config)
{
    std::vector<Ruler> suite;
    suite.reserve(kNumDimensions);
    suite.push_back(Ruler::functionalUnit(Dimension::kFpMul));
    suite.push_back(Ruler::functionalUnit(Dimension::kFpAdd));
    suite.push_back(Ruler::functionalUnit(Dimension::kFpShf));
    suite.push_back(Ruler::functionalUnit(Dimension::kIntAdd));
    suite.push_back(Ruler::memory(Dimension::kL1, config.l1d.sizeBytes));
    suite.push_back(Ruler::memory(Dimension::kL2, config.l2.sizeBytes));
    // The L3 ruler over-subscribes the L3 so its stride walk misses
    // continuously: that is what pressures both the shared L3
    // capacity and the memory bandwidth behind it.
    suite.push_back(Ruler::memory(Dimension::kL3,
                                  3 * config.l3.sizeBytes / 2));
    return suite;
}

} // namespace smite::rulers
