/**
 * @file
 * Rulers: the paper's carefully designed software stressors
 * (Section III-B1, Figure 9).
 *
 * Each Ruler maximizes pressure on exactly one sharing dimension
 * while minimizing pressure on all others:
 *
 *  - FP_MUL / FP_ADD / FP_SHF / INT_ADD rulers issue long
 *    dependence-free runs of one port-specific operation (the
 *    unrolled mulps/addps/shufps/addl loops of Figure 9a-d);
 *  - the L1/L2 cache ruler increments random elements of a working
 *    set indexed by a linear-feedback shift register (Figure 9e);
 *  - the L3 cache ruler walks two half-footprint chunks with a
 *    64-byte stride (Figure 9f).
 *
 * A Ruler's *intensity* is its duty cycle for functional-unit rulers
 * and its working-set size for memory rulers; both relationships to
 * the induced interference are designed to be (near-)linear so a
 * sensitivity curve needs only its endpoints.
 */

#ifndef SMITE_RULERS_RULER_H
#define SMITE_RULERS_RULER_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.h"
#include "sim/uop.h"

namespace smite::rulers {

/** The seven decoupled sharing dimensions of the paper. */
enum class Dimension {
    kFpMul,   ///< port 0 floating point multiplier
    kFpAdd,   ///< port 1 floating point adder
    kFpShf,   ///< port 5 shuffle unit
    kIntAdd,  ///< integer ALUs across ports 0, 1, 5
    kL1,      ///< L1 data cache capacity
    kL2,      ///< L2 cache capacity
    kL3,      ///< shared L3 capacity (and memory bandwidth)
};

/** Number of sharing dimensions. */
inline constexpr int kNumDimensions = 7;

/** All dimensions in index order. */
inline constexpr Dimension kAllDimensions[kNumDimensions] = {
    Dimension::kFpMul, Dimension::kFpAdd, Dimension::kFpShf,
    Dimension::kIntAdd, Dimension::kL1, Dimension::kL2, Dimension::kL3,
};

/** Dimension -> dense index. */
constexpr int
dimensionIndex(Dimension dim)
{
    return static_cast<int>(dim);
}

/** Human-readable dimension name. */
constexpr std::string_view
dimensionName(Dimension dim)
{
    switch (dim) {
      case Dimension::kFpMul:  return "FP_MUL(P0)";
      case Dimension::kFpAdd:  return "FP_ADD(P1)";
      case Dimension::kFpShf:  return "FP_SHF(P5)";
      case Dimension::kIntAdd: return "INT_ADD(P015)";
      case Dimension::kL1:     return "L1";
      case Dimension::kL2:     return "L2";
      case Dimension::kL3:     return "L3";
    }
    return "?";
}

/** Is this a functional-unit dimension (vs a memory dimension)? */
constexpr bool
isFunctionalUnit(Dimension dim)
{
    return dim == Dimension::kFpMul || dim == Dimension::kFpAdd ||
           dim == Dimension::kFpShf || dim == Dimension::kIntAdd;
}

/**
 * One stressor instance: a sharing dimension plus an intensity, able
 * to mint fresh deterministic uop sources for co-location runs.
 */
class Ruler
{
  public:
    /**
     * Build a functional-unit ruler.
     * @param dim one of the four FU dimensions
     * @param duty_cycle fraction of issue slots carrying the target
     *        op (1.0 = maximum pressure)
     */
    static Ruler functionalUnit(Dimension dim, double duty_cycle = 1.0);

    /**
     * Build a memory ruler.
     * @param dim kL1, kL2 or kL3
     * @param working_set footprint in bytes (the paper sizes these to
     *        the capacity of the targeted cache level)
     */
    static Ruler memory(Dimension dim, std::uint64_t working_set);

    /** Dimension this ruler stresses. */
    Dimension dimension() const { return dim_; }

    /** Duty cycle (FU rulers) in [0, 1]. */
    double dutyCycle() const { return dutyCycle_; }

    /** Working set in bytes (memory rulers). */
    std::uint64_t workingSet() const { return workingSet_; }

    /** Descriptive name, e.g. "ruler:FP_ADD(P1)". */
    const std::string &name() const { return name_; }

    /** Mint a fresh deterministic uop source for a run. */
    std::unique_ptr<sim::UopSource> makeSource() const;

  private:
    Ruler() = default;

    Dimension dim_ = Dimension::kFpMul;
    double dutyCycle_ = 1.0;
    std::uint64_t workingSet_ = 0;
    std::string name_;
};

/**
 * The default seven-ruler suite for a machine: full-intensity FU
 * rulers plus memory rulers sized to the machine's L1D, L2 and L3.
 */
std::vector<Ruler> defaultSuite(const sim::MachineConfig &config);

} // namespace smite::rulers

#endif // SMITE_RULERS_RULER_H
