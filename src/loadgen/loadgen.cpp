#include "loadgen/loadgen.h"

#include <cstdio>
#include <stdexcept>

#include "obs/metrics.h"

namespace smite::loadgen {

namespace {

struct Instruments {
    obs::Counter &steps;
    obs::Counter &requests;
    obs::Counter &completed;
    obs::Counter &dropped;
    obs::Counter &deadline_misses;

    static Instruments &get()
    {
        static Instruments instance{
            obs::Registry::global().counter("loadgen.steps"),
            obs::Registry::global().counter("loadgen.requests"),
            obs::Registry::global().counter("loadgen.completed"),
            obs::Registry::global().counter("loadgen.dropped"),
            obs::Registry::global().counter("loadgen.deadline_misses"),
        };
        return instance;
    }
};

} // namespace

StepResult
runStep(const SweepConfig &config, double offeredQps,
        std::uint64_t stream)
{
    if (offeredQps <= 0.0)
        throw std::invalid_argument("offered rate must be positive");
    if (config.measureRequests == 0)
        throw std::invalid_argument(
            "measurement window must hold at least one request");
    if (config.percentile <= 0.0 || config.percentile >= 1.0)
        throw std::invalid_argument("percentile must be in (0, 1)");

    ArrivalConfig arrival = config.arrival;
    arrival.rate = offeredQps;
    arrival.stream = stream;
    ArrivalStream source(arrival);

    const std::uint64_t total = config.preRequests +
                                config.measureRequests +
                                config.postRequests;
    const std::vector<double> arrivals =
        source.generate(static_cast<std::size_t>(total));

    const queueing::OpenLoopResult sim =
        queueing::simulateOpenLoop(arrivals, config.servers);

    const std::size_t from =
        static_cast<std::size_t>(config.preRequests);
    const std::size_t to =
        from + static_cast<std::size_t>(config.measureRequests);

    StepResult step;
    step.offeredQps = offeredQps;
    step.offered = config.measureRequests;
    step.completed = sim.completedIn(from, to);
    step.dropped = sim.droppedIn(from, to);
    step.deadlineMisses = sim.deadlineMisses;
    if (step.completed > 0) {
        step.percentileValue = sim.percentile(config.percentile, from, to);
        step.meanResponse = sim.meanResponse(from, to);
    }
    // Achieved throughput over the measurement window's arrival span
    // (completions per second of offered time).
    const double span =
        arrivals[to - 1] - (from > 0 ? arrivals[from - 1] : 0.0);
    step.achievedQps =
        span > 0.0 ? static_cast<double>(step.completed) / span : 0.0;

    Instruments &m = Instruments::get();
    m.steps.add(1);
    m.requests.add(total);
    m.completed.add(step.completed);
    m.dropped.add(step.dropped);
    m.deadline_misses.add(step.deadlineMisses);
    return step;
}

SweepResult
runSweep(const SweepConfig &config)
{
    if (config.stepSize <= 0.0)
        throw std::invalid_argument("stepSize must be positive");
    if (config.startQps <= 0.0)
        throw std::invalid_argument("startQps must be positive");
    if (config.stepStop < config.startQps)
        throw std::invalid_argument("stepStop precedes startQps");

    SweepResult sweep;
    std::uint64_t stream = 0;
    // Half-step slack keeps stepStop inclusive despite FP accumulation.
    for (double qps = config.startQps;
         qps <= config.stepStop + config.stepSize * 0.5;
         qps += config.stepSize) {
        sweep.steps.push_back(runStep(config, qps, stream));
        ++stream;
    }
    return sweep;
}

std::string
SweepResult::sampleLog() const
{
    std::string log;
    char line[256];
    for (const StepResult &s : steps) {
        std::snprintf(
            line, sizeof(line),
            "qps=%.3f p=%.9f mean=%.9f achieved=%.3f offered=%llu "
            "completed=%llu dropped=%llu deadline_misses=%llu\n",
            s.offeredQps, s.percentileValue, s.meanResponse,
            s.achievedQps,
            static_cast<unsigned long long>(s.offered),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.dropped),
            static_cast<unsigned long long>(s.deadlineMisses));
        log += line;
    }
    return log;
}

} // namespace smite::loadgen
