#include "loadgen/knee.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace smite::loadgen {

bool
meetsTarget(const KneeConfig &config, double qps, StepResult *out)
{
    obs::Registry::global().counter("loadgen.knee_probes").add(1);
    // Stream 0 for every probe: common random numbers across rates
    // (see the file comment in knee.h).
    const StepResult step = runStep(config.probe, qps, 0);
    if (out != nullptr)
        *out = step;
    if (step.completed == 0)
        return false;
    if (config.failOnDrop && step.dropped > 0)
        return false;
    return step.percentileValue <= config.targetLatency;
}

KneeResult
findKnee(const KneeConfig &config)
{
    if (config.targetLatency <= 0.0)
        throw std::invalid_argument("targetLatency must be positive");
    if (config.tolerance <= 0.0)
        throw std::invalid_argument("tolerance must be positive");

    double hi = config.qpsHi;
    if (hi <= 0.0) {
        hi = 0.0;
        for (const double mu : config.probe.servers.serviceRates)
            hi += mu;
    }
    if (config.qpsLo <= 0.0 || hi <= config.qpsLo)
        throw std::invalid_argument("empty or inverted knee bracket");

    KneeResult result;
    StepResult at_lo;
    if (!meetsTarget(config, config.qpsLo, &at_lo)) {
        ++result.probes;
        return result; // knee below the bracket: report 0
    }
    ++result.probes;
    double lo = config.qpsLo;
    double lo_latency = at_lo.percentileValue;

    StepResult at_hi;
    if (meetsTarget(config, hi, &at_hi)) {
        // The whole bracket passes — the knee is at (or past) hi.
        result.probes += 1;
        result.kneeQps = hi;
        result.latencyAtKnee = at_hi.percentileValue;
        return result;
    }
    ++result.probes;

    while (hi - lo > config.tolerance) {
        const double mid = 0.5 * (lo + hi);
        StepResult at_mid;
        const bool ok = meetsTarget(config, mid, &at_mid);
        ++result.probes;
        if (ok) {
            lo = mid;
            lo_latency = at_mid.percentileValue;
        } else {
            hi = mid;
        }
    }
    result.kneeQps = lo;
    result.latencyAtKnee = lo_latency;
    return result;
}

} // namespace smite::loadgen
