#include "loadgen/arrival.h"

#include <cmath>
#include <stdexcept>

#include "fault/fault.h"
#include "queueing/keyed_stream.h"

namespace smite::loadgen {

namespace keyed = smite::queueing::keyed;

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
    case ArrivalKind::kPoisson:
        return "poisson";
    case ArrivalKind::kOnOff:
        return "onoff";
    case ArrivalKind::kDiurnal:
        return "diurnal";
    }
    return "unknown";
}

ArrivalStream::ArrivalStream(const ArrivalConfig &config)
    : config_(config)
{
    if (config_.rate <= 0.0)
        throw std::invalid_argument("arrival rate must be positive");
    switch (config_.kind) {
    case ArrivalKind::kPoisson:
        break;
    case ArrivalKind::kOnOff: {
        if (config_.burstFactor < 1.0)
            throw std::invalid_argument("burstFactor must be >= 1");
        if (config_.onFraction <= 0.0 || config_.onFraction >= 1.0)
            throw std::invalid_argument("onFraction must be in (0, 1)");
        if (config_.meanPhaseSeconds <= 0.0)
            throw std::invalid_argument(
                "meanPhaseSeconds must be positive");
        // Mean-rate preservation: onFraction of the time at
        // burstFactor * rate leaves (1 - burstFactor * onFraction)
        // of the mass for the off phase.
        const double off_mass =
            1.0 - config_.burstFactor * config_.onFraction;
        if (off_mass < 0.0)
            throw std::invalid_argument(
                "burstFactor * onFraction exceeds 1: off-phase rate "
                "would be negative");
        rate_on_ = config_.burstFactor * config_.rate;
        rate_off_ =
            config_.rate * off_mass / (1.0 - config_.onFraction);
        break;
    }
    case ArrivalKind::kDiurnal: {
        if (config_.profile.empty())
            throw std::invalid_argument("diurnal profile is empty");
        if (config_.periodSeconds <= 0.0)
            throw std::invalid_argument(
                "periodSeconds must be positive");
        double sum = 0.0;
        for (const double w : config_.profile) {
            if (w < 0.0)
                throw std::invalid_argument(
                    "diurnal profile weights must be non-negative");
            sum += w;
        }
        if (sum <= 0.0)
            throw std::invalid_argument(
                "diurnal profile must have positive mass");
        // Normalize so the mean rate over one period equals `rate`.
        const double bins = static_cast<double>(config_.profile.size());
        bin_rates_.reserve(config_.profile.size());
        for (const double w : config_.profile)
            bin_rates_.push_back(config_.rate * w * bins / sum);
        break;
    }
    }

    fault::FaultPlan &faults = fault::FaultPlan::global();
    chaos_burst_ = faults.enabled() && faults.armed("des.arrival_burst");
    fault_prefix_ = "a" + std::to_string(config_.seed) + "#s" +
                    std::to_string(config_.stream) + "#r";
}

double
ArrivalStream::rateAt(double t) const
{
    // Piecewise-constant diurnal rate, cycled over the period.
    const double period = config_.periodSeconds;
    double phase = std::fmod(t, period);
    if (phase < 0.0)
        phase = 0.0;
    auto bin = static_cast<std::size_t>(
        phase / period * static_cast<double>(bin_rates_.size()));
    if (bin >= bin_rates_.size())
        bin = bin_rates_.size() - 1;
    return bin_rates_[bin];
}

double
ArrivalStream::advancePhases(double from, double work)
{
    // On-off: spend `work` units of Exp(1) arrival mass starting at
    // `from`, switching phases at their (keyed-exponential) ends.
    double t = from;
    for (;;) {
        if (t >= phase_end_) {
            // Enter the next phase; dwell times are keyed by a phase
            // counter, independent of how many arrivals each phase
            // produced.
            on_ = !on_;
            const double mean_dwell =
                config_.meanPhaseSeconds *
                (on_ ? config_.onFraction : 1.0 - config_.onFraction);
            const double dwell =
                keyed::exponentialUnit(keyed::draw(
                    config_.seed, keyed::kSaltPhase,
                    config_.stream, phase_counter_)) *
                mean_dwell;
            ++phase_counter_;
            phase_end_ = t + dwell;
            continue;
        }
        const double rate = on_ ? rate_on_ : rate_off_;
        if (rate <= 0.0) {
            // Silent phase: no arrivals until it ends.
            t = phase_end_;
            continue;
        }
        const double span = (phase_end_ - t) * rate;
        if (work <= span)
            return t + work / rate;
        work -= span;
        t = phase_end_;
    }
}

double
ArrivalStream::next()
{
    // One unit-exponential of "arrival mass", keyed by occurrence so
    // the stream is a pure value.
    double work = keyed::exponentialUnit(
        keyed::draw(config_.seed, keyed::kSaltArrival, config_.stream,
                    counter_));

    if (chaos_burst_) {
        // `des.arrival_burst`: compress this gap by 1 + |eps| — a
        // seeded stand-in for retry storms / synchronized clients.
        fault::FaultPlan &faults = fault::FaultPlan::global();
        const std::string key =
            fault_prefix_ + std::to_string(counter_);
        if (faults.shouldInject("des.arrival_burst", key)) {
            const double eps =
                std::fabs(faults.gaussian("des.arrival_burst", key));
            work /= 1.0 + eps;
        }
    }

    double t = now_;
    switch (config_.kind) {
    case ArrivalKind::kPoisson:
        t = now_ + work / config_.rate;
        break;
    case ArrivalKind::kOnOff:
        t = advancePhases(now_, work);
        break;
    case ArrivalKind::kDiurnal: {
        // Integrate the piecewise-constant rate until `work` units of
        // Exp(1) mass are consumed (thinning-free inversion).
        const double period = config_.periodSeconds;
        const double bin_width =
            period / static_cast<double>(bin_rates_.size());
        t = now_;
        for (;;) {
            const double rate = rateAt(t);
            // End of the current bin (strictly ahead of t).
            const double in_period = std::fmod(t, period);
            const std::size_t bin = static_cast<std::size_t>(
                in_period / period *
                static_cast<double>(bin_rates_.size()));
            const double bin_end =
                t - in_period +
                bin_width * static_cast<double>(bin + 1);
            if (rate <= 0.0) {
                t = bin_end;
                continue;
            }
            const double span = (bin_end - t) * rate;
            if (work <= span) {
                t += work / rate;
                break;
            }
            work -= span;
            t = bin_end;
        }
        break;
    }
    }

    now_ = t;
    ++counter_;
    return t;
}

std::vector<double>
ArrivalStream::generate(std::size_t n)
{
    std::vector<double> times;
    times.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        times.push_back(next());
    return times;
}

} // namespace smite::loadgen
