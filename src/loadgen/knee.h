/**
 * @file
 * Knee finding: the max offered QPS at which a co-location still
 * meets its tail-latency target.
 *
 * This is the admission controller's quantity (ISSUE 8; cf. the
 * hardware-QoS enforcement framing in PAPERS.md): a co-location that
 * "meets QoS" at the design load may be one burst away from violating
 * it, and the distance to the knee — where the latency-vs-load curve
 * turns up through the target — is the real headroom. findKnee()
 * bisects the offered rate, probing each candidate with one
 * open-loop step (loadgen/runStep).
 *
 * The search is exact, not statistical: every probe reuses arrival
 * stream 0 and the shared service stream, so a probe at a higher
 * rate replays *the same* work sequence with compressed gaps. Under
 * the Lindley recursion that makes every response time monotone
 * nondecreasing in the offered rate (common random numbers), which
 * makes pass/fail monotone and bisection well-posed — and, across
 * co-locations sharing one seed, makes the knee monotone in the
 * degraded service rate.
 */

#ifndef SMITE_LOADGEN_KNEE_H
#define SMITE_LOADGEN_KNEE_H

#include <cstdint>

#include "loadgen/loadgen.h"

namespace smite::loadgen {

/** One knee search. */
struct KneeConfig {
    /**
     * Probe template: arrival process, server pool and
     * warmup/measure/cooldown windows; the sweep rate fields are
     * ignored (the bisection chooses rates).
     */
    SweepConfig probe;

    /** Tail-latency target (seconds) at probe.percentile. */
    double targetLatency = 0.005;

    /** Lower bracket (QPS); the knee reports 0 if even this fails. */
    double qpsLo = 1.0;

    /**
     * Upper bracket (QPS); 0 derives it as the pool's aggregate
     * service rate (no open queue can sustain more).
     */
    double qpsHi = 0.0;

    /** Bisection resolution (QPS). */
    double tolerance = 1.0;

    /** Count any measurement-window drop as a failed probe. */
    bool failOnDrop = true;
};

/** Outcome of one knee search. */
struct KneeResult {
    /**
     * Highest probed rate meeting the target (the knee); 0 when the
     * lower bracket already fails.
     */
    double kneeQps = 0.0;

    /** Tail latency measured at the knee (0 when kneeQps is 0). */
    double latencyAtKnee = 0.0;

    /** Probes spent by the bisection. */
    std::uint64_t probes = 0;
};

/**
 * Probe @p qps once against @p config 's template and report whether
 * the tail-latency target holds (helper shared with the harness).
 */
bool meetsTarget(const KneeConfig &config, double qps,
                 StepResult *out = nullptr);

/**
 * Bisect [qpsLo, qpsHi] for the knee. @throws std::invalid_argument
 * on an empty or inverted bracket.
 */
KneeResult findKnee(const KneeConfig &config);

} // namespace smite::loadgen

#endif // SMITE_LOADGEN_KNEE_H
