/**
 * @file
 * Deterministic open-loop arrival processes.
 *
 * The load generator is *open-loop* in mutated's sense: arrivals are
 * scheduled by the process, never gated on responses, so an
 * overloaded server sees the queue it would see in production
 * instead of the self-throttling a closed-loop client provides.
 * Three processes cover the production shapes:
 *
 * - kPoisson — memoryless arrivals at a constant mean rate (the
 *   paper's M/M/1 assumption);
 * - kOnOff — a two-state MMPP: bursts at `burstFactor` times the
 *   mean rate for a fraction of the time, quiet (possibly silent)
 *   phases in between, with exponentially distributed dwell times —
 *   mean rate preserved;
 * - kDiurnal — a trace-driven piecewise-constant rate profile cycled
 *   over `periodSeconds` (a compressed day), normalized so the mean
 *   rate equals `rate`.
 *
 * Every draw is keyed per (seed, stream, occurrence) — see
 * queueing/keyed_stream.h — so a stream is a pure value: the same
 * config replays the same arrival times byte-for-byte, on any thread,
 * in any interleaving with other streams.
 *
 * Robustness: the `des.arrival_burst` fault site (docs/ROBUSTNESS.md)
 * compresses individual inter-arrival gaps by 1 + |ε|, ε ~ N(0,
 * sigma) — a seeded stand-in for the correlated arrival spikes
 * (retry storms, synchronized clients) that overload real services.
 */

#ifndef SMITE_LOADGEN_ARRIVAL_H
#define SMITE_LOADGEN_ARRIVAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace smite::loadgen {

/** The supported open-loop arrival processes. */
enum class ArrivalKind { kPoisson, kOnOff, kDiurnal };

/** Human-readable process name. */
const char *arrivalKindName(ArrivalKind kind);

/** Configuration of one arrival stream. */
struct ArrivalConfig {
    ArrivalKind kind = ArrivalKind::kPoisson;

    /** Mean arrival rate (requests/s) — preserved by every kind. */
    double rate = 1000.0;

    /**
     * @name On-off (MMPP-2) shape
     * The on-state arrival rate is `burstFactor * rate`; the
     * off-state rate is derived so the long-run mean stays `rate`
     * (requires burstFactor * onFraction <= 1). Dwell times are
     * exponential with means `meanPhaseSeconds * onFraction` (on)
     * and `meanPhaseSeconds * (1 - onFraction)` (off).
     * @{
     */
    double burstFactor = 4.0;
    double onFraction = 0.25;
    double meanPhaseSeconds = 0.1;
    /** @} */

    /**
     * @name Diurnal shape
     * Relative load per equal-width bin across one period (e.g. a
     * 24-entry compressed day); normalized internally, so only the
     * shape matters. Empty profile throws.
     * @{
     */
    std::vector<double> profile;
    double periodSeconds = 1.0;
    /** @} */

    /** Keyed randomness root. */
    std::uint64_t seed = 1;

    /**
     * Sub-stream id: two streams with the same seed but different
     * stream ids are independent (one per sweep step, typically).
     */
    std::uint64_t stream = 0;
};

/**
 * A deterministic arrival-time generator. Generation is sequential
 * (each instance is cheap and single-owner); determinism across
 * threads comes from the keyed draws, not from sharing instances.
 */
class ArrivalStream
{
  public:
    /** @throws std::invalid_argument on a non-realizable config */
    explicit ArrivalStream(const ArrivalConfig &config);

    /** The next absolute arrival time, in seconds. */
    double next();

    /** The next @p n arrival times (convenience). */
    std::vector<double> generate(std::size_t n);

    /** Arrivals emitted so far. */
    std::uint64_t emitted() const { return counter_; }

  private:
    double rateAt(double t) const;
    double advancePhases(double from, double work);

    ArrivalConfig config_;
    double now_ = 0.0;          ///< last emitted arrival time
    std::uint64_t counter_ = 0; ///< occurrence index of the next draw
    // On-off state machine: current phase and its end time.
    bool on_ = false;
    double phase_end_ = 0.0;
    std::uint64_t phase_counter_ = 0;
    double rate_on_ = 0.0;
    double rate_off_ = 0.0;
    // Diurnal: normalized per-bin rates.
    std::vector<double> bin_rates_;
    bool chaos_burst_ = false;
    std::string fault_prefix_;
};

} // namespace smite::loadgen

#endif // SMITE_LOADGEN_ARRIVAL_H
