/**
 * @file
 * Open-loop stepped-rate load sweeps over the multi-server DES.
 *
 * Modeled on mutated's stepped client: sweep offered QPS from
 * `startQps` in increments of `stepSize` up to `stepStop`, and at
 * each step drive `preRequests + measureRequests + postRequests`
 * arrivals through the server pool, reporting statistics only over
 * the measurement window — warmup fills the queues to steady state,
 * cooldown keeps the window's tail from being censored by the end of
 * the run.
 *
 * Every step draws its arrivals from an independent keyed sub-stream
 * (stream id = step index) of one seed, and service times are keyed
 * per request, so a sweep is a pure function of its config: the
 * sample log is byte-identical across repeats and across
 * SMITE_THREADS settings even when a harness fans steps or whole
 * sweeps across a thread pool.
 *
 * Observability (docs/OBSERVABILITY.md): `loadgen.steps`,
 * `loadgen.requests`, `loadgen.completed`, `loadgen.dropped`,
 * `loadgen.deadline_misses` count work across all sweeps in the
 * process; knee searches (loadgen/knee.h) add `loadgen.knee_probes`.
 */

#ifndef SMITE_LOADGEN_LOADGEN_H
#define SMITE_LOADGEN_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/arrival.h"
#include "queueing/des.h"

namespace smite::loadgen {

/** One stepped-rate sweep. */
struct SweepConfig {
    /**
     * Arrival-process template; `rate` is overridden per step and
     * `stream` per step index, everything else (kind, burst shape,
     * seed) is taken as configured.
     */
    ArrivalConfig arrival;

    /**
     * Server pool driven at every step (service rates, queue bound,
     * deadline, balancing, service-stream seed).
     */
    queueing::OpenLoopConfig servers;

    /** First offered rate (QPS). */
    double startQps = 100.0;

    /** Offered-rate increment between steps (mutated's step_size). */
    double stepSize = 100.0;

    /** Last offered rate, inclusive (mutated's step_stop). */
    double stepStop = 1000.0;

    /** Warmup arrivals discarded before the measurement window. */
    std::uint64_t preRequests = 1000;

    /** Arrivals inside the measurement window. */
    std::uint64_t measureRequests = 5000;

    /** Cooldown arrivals after the window (still simulated). */
    std::uint64_t postRequests = 500;

    /** Percentile reported per step (in (0, 1)). */
    double percentile = 0.95;
};

/** Measurement-window statistics of one sweep step. */
struct StepResult {
    double offeredQps = 0.0;       ///< arrival rate of this step
    double percentileValue = 0.0;  ///< windowed p-th percentile (s)
    double meanResponse = 0.0;     ///< windowed mean sojourn (s)
    double achievedQps = 0.0;      ///< completions / window span
    std::uint64_t offered = 0;     ///< window arrivals
    std::uint64_t completed = 0;   ///< window completions
    std::uint64_t dropped = 0;     ///< window drops (queue + fault)
    std::uint64_t deadlineMisses = 0; ///< whole-run deadline misses
};

/** All steps of one sweep, in offered-rate order. */
struct SweepResult {
    std::vector<StepResult> steps;

    /**
     * Byte-stable text log, one line per step (fixed-precision
     * printf formatting, no timestamps) — the artifact the tier-1
     * determinism smoke byte-compares across thread counts.
     */
    std::string sampleLog() const;
};

/**
 * Simulate one step: @p arrival 's process at `offeredQps` driving
 * @p servers, with the configured warmup/measure/cooldown windows.
 * Exposed separately so knee searches can probe single rates.
 */
StepResult runStep(const SweepConfig &config, double offeredQps,
                   std::uint64_t stream);

/** Run the full stepped sweep (serial; steps are independent). */
SweepResult runSweep(const SweepConfig &config);

} // namespace smite::loadgen

#endif // SMITE_LOADGEN_LOADGEN_H
