/**
 * @file
 * Pearson correlation, used for the dimension-independence analysis
 * (Figure 7) and the ruler linearity validation (Section III-B1).
 */

#ifndef SMITE_STATS_CORRELATION_H
#define SMITE_STATS_CORRELATION_H

#include <vector>

namespace smite::stats {

/**
 * Pearson correlation coefficient of two equal-length samples.
 *
 * @return r in [-1, 1]; 0 if either sample has zero variance
 * @throws std::invalid_argument on length mismatch or < 2 samples
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

} // namespace smite::stats

#endif // SMITE_STATS_CORRELATION_H
