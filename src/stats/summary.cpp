#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smite::stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("mean of empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("min of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("max of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantile(std::vector<double> xs, double p)
{
    if (xs.empty())
        throw std::invalid_argument("quantile of empty sample");
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("quantile p outside [0, 1]");
    std::sort(xs.begin(), xs.end());
    const double pos = p * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = static_cast<size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("median of empty sample");
    return quantile(xs, 0.5);
}

double
robustMedian(const std::vector<double> &xs, double k)
{
    if (xs.empty())
        throw std::invalid_argument("robustMedian of empty sample");
    if (k <= 0.0)
        throw std::invalid_argument("robustMedian k must be positive");
    const double m = median(xs);
    std::vector<double> deviations;
    deviations.reserve(xs.size());
    for (double x : xs)
        deviations.push_back(std::abs(x - m));
    const double mad = median(deviations);
    if (mad == 0.0)
        return m;
    const double cutoff = k * 1.4826 * mad;
    std::vector<double> kept;
    kept.reserve(xs.size());
    for (double x : xs) {
        if (std::abs(x - m) <= cutoff)
            kept.push_back(x);
    }
    // The median itself always survives its own cutoff, so kept is
    // never empty.
    return median(kept);
}

std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> xs, int points)
{
    if (xs.empty())
        throw std::invalid_argument("CDF of empty sample");
    if (points < 2)
        throw std::invalid_argument("need at least two CDF points");
    std::sort(xs.begin(), xs.end());
    std::vector<std::pair<double, double>> cdf;
    cdf.reserve(points);
    for (int i = 0; i < points; ++i) {
        const double p =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const double pos = p * static_cast<double>(xs.size() - 1);
        const size_t lo = static_cast<size_t>(std::floor(pos));
        const size_t hi = static_cast<size_t>(std::ceil(pos));
        const double frac = pos - static_cast<double>(lo);
        const double x = xs[lo] * (1.0 - frac) + xs[hi] * frac;
        cdf.emplace_back(x, p);
    }
    return cdf;
}

} // namespace smite::stats
