/**
 * @file
 * Ordinary least-squares linear regression with intercept.
 *
 * Small dense problems only (the SMiTe model has 7 features, the PMU
 * baseline 22), solved via the normal equations with partial-pivot
 * Gaussian elimination and an optional ridge term for numerical
 * robustness when features are collinear.
 */

#ifndef SMITE_STATS_REGRESSION_H
#define SMITE_STATS_REGRESSION_H

#include <cstddef>
#include <vector>

namespace smite::stats {

/**
 * A fitted linear model  y = w . x + b.
 */
class LinearModel
{
  public:
    /**
     * Fit by least squares.
     *
     * @param features one row per sample (all rows the same length)
     * @param targets one target per sample
     * @param ridge L2 regularization strength (0 = plain OLS)
     * @throws std::invalid_argument on shape mismatch or an
     *         unsolvable (degenerate) system
     */
    static LinearModel fit(const std::vector<std::vector<double>> &features,
                           const std::vector<double> &targets,
                           double ridge = 0.0);

    /** Predict the target for one feature row. */
    double predict(const std::vector<double> &x) const;

    /** Feature weights (size = feature count). */
    const std::vector<double> &weights() const { return weights_; }

    /** Intercept term. */
    double intercept() const { return intercept_; }

    /** Mean absolute error over a labelled set. */
    double meanAbsoluteError(
        const std::vector<std::vector<double>> &features,
        const std::vector<double> &targets) const;

  private:
    LinearModel() = default;

    std::vector<double> weights_;
    double intercept_ = 0.0;
};

/**
 * Solve the dense linear system A x = b in place (partial pivoting).
 * @throws std::invalid_argument if the matrix is singular
 */
std::vector<double> solveDense(std::vector<std::vector<double>> a,
                               std::vector<double> b);

} // namespace smite::stats

#endif // SMITE_STATS_REGRESSION_H
