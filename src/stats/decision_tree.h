/**
 * @file
 * CART-style regression tree.
 *
 * The paper's baseline search ("we experimented with ... linear
 * regression, decision tree, higher order polynomial regression")
 * needs a decision-tree regressor; this is a small axis-aligned CART
 * with variance-reduction splits, depth and leaf-size limits.
 */

#ifndef SMITE_STATS_DECISION_TREE_H
#define SMITE_STATS_DECISION_TREE_H

#include <cstddef>
#include <memory>
#include <vector>

namespace smite::stats {

/**
 * Regression tree fit by recursive binary splitting on the feature
 * and threshold that maximize variance reduction.
 */
class RegressionTree
{
  public:
    /**
     * Fit a tree.
     *
     * @param features one row per sample (rectangular)
     * @param targets one target per sample
     * @param max_depth maximum tree depth (root = depth 0)
     * @param min_leaf minimum samples per leaf
     * @throws std::invalid_argument on shape errors
     */
    static RegressionTree
    fit(const std::vector<std::vector<double>> &features,
        const std::vector<double> &targets, int max_depth = 6,
        std::size_t min_leaf = 5);

    /** Predict the target for one feature row. */
    double predict(const std::vector<double> &x) const;

    /** Mean absolute error over a labelled set. */
    double meanAbsoluteError(
        const std::vector<std::vector<double>> &features,
        const std::vector<double> &targets) const;

    /** Number of leaf nodes. */
    int leafCount() const;

  private:
    struct Node {
        bool leaf = true;
        double value = 0.0;   ///< mean target (leaves)
        int feature = -1;     ///< split feature (internal)
        double threshold = 0; ///< split threshold (internal)
        std::unique_ptr<Node> left;   ///< x[feature] <= threshold
        std::unique_ptr<Node> right;  ///< x[feature] >  threshold
    };

    static std::unique_ptr<Node>
    build(const std::vector<std::vector<double>> &x,
          const std::vector<double> &y, std::vector<std::size_t> idx,
          int depth, int max_depth, std::size_t min_leaf);

    static int countLeaves(const Node &node);

    RegressionTree() = default;

    std::unique_ptr<Node> root_;
};

/**
 * Quadratic feature expansion: appends the square of every feature
 * (no cross terms), doubling the dimensionality. Used for the
 * "higher order polynomial regression" baseline.
 */
std::vector<double> withSquares(const std::vector<double> &x);

} // namespace smite::stats

#endif // SMITE_STATS_DECISION_TREE_H
