#include "stats/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace smite::stats {

namespace {

double
meanOf(const std::vector<double> &y, const std::vector<std::size_t> &idx)
{
    double sum = 0.0;
    for (std::size_t i : idx)
        sum += y[i];
    return sum / static_cast<double>(idx.size());
}

/** Sum of squared deviations from the mean over a subset. */
double
sse(const std::vector<double> &y, const std::vector<std::size_t> &idx)
{
    const double mu = meanOf(y, idx);
    double sum = 0.0;
    for (std::size_t i : idx) {
        const double d = y[i] - mu;
        sum += d * d;
    }
    return sum;
}

} // namespace

std::unique_ptr<RegressionTree::Node>
RegressionTree::build(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &y,
                      std::vector<std::size_t> idx, int depth,
                      int max_depth, std::size_t min_leaf)
{
    auto node = std::make_unique<Node>();
    node->value = meanOf(y, idx);
    if (depth >= max_depth || idx.size() < 2 * min_leaf)
        return node;

    const double parent_sse = sse(y, idx);
    if (parent_sse < 1e-12)
        return node;

    const std::size_t dims = x.front().size();
    double best_gain = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<std::size_t> order = idx;
    for (std::size_t f = 0; f < dims; ++f) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return x[a][f] < x[b][f];
                  });
        // Prefix sums over the sorted order for O(n) split scan.
        double left_sum = 0.0, left_sq = 0.0;
        double total_sum = 0.0, total_sq = 0.0;
        for (std::size_t i : order) {
            total_sum += y[i];
            total_sq += y[i] * y[i];
        }
        const auto n = static_cast<double>(order.size());
        for (std::size_t k = 0; k + 1 < order.size(); ++k) {
            const double v = y[order[k]];
            left_sum += v;
            left_sq += v * v;
            const auto nl = static_cast<double>(k + 1);
            const double nr = n - nl;
            if (k + 1 < min_leaf || nr < static_cast<double>(min_leaf))
                continue;
            // Can't split between equal feature values.
            if (x[order[k]][f] == x[order[k + 1]][f])
                continue;
            const double right_sum = total_sum - left_sum;
            const double right_sq = total_sq - left_sq;
            const double child_sse =
                (left_sq - left_sum * left_sum / nl) +
                (right_sq - right_sum * right_sum / nr);
            const double gain = parent_sse - child_sse;
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = static_cast<int>(f);
                best_threshold =
                    0.5 * (x[order[k]][f] + x[order[k + 1]][f]);
            }
        }
    }

    if (best_feature < 0)
        return node;

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : idx) {
        if (x[i][best_feature] <= best_threshold)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    if (left_idx.empty() || right_idx.empty())
        return node;

    node->leaf = false;
    node->feature = best_feature;
    node->threshold = best_threshold;
    node->left = build(x, y, std::move(left_idx), depth + 1, max_depth,
                       min_leaf);
    node->right = build(x, y, std::move(right_idx), depth + 1,
                        max_depth, min_leaf);
    return node;
}

RegressionTree
RegressionTree::fit(const std::vector<std::vector<double>> &features,
                    const std::vector<double> &targets, int max_depth,
                    std::size_t min_leaf)
{
    if (features.empty() || features.size() != targets.size())
        throw std::invalid_argument("features/targets shape mismatch");
    const std::size_t dims = features.front().size();
    if (dims == 0)
        throw std::invalid_argument("need at least one feature");
    for (const auto &row : features) {
        if (row.size() != dims)
            throw std::invalid_argument("ragged feature rows");
    }
    if (max_depth < 0 || min_leaf == 0)
        throw std::invalid_argument("bad tree hyperparameters");

    std::vector<std::size_t> idx(features.size());
    std::iota(idx.begin(), idx.end(), 0);
    RegressionTree tree;
    tree.root_ = build(features, targets, std::move(idx), 0, max_depth,
                       min_leaf);
    return tree;
}

double
RegressionTree::predict(const std::vector<double> &x) const
{
    const Node *node = root_.get();
    while (!node->leaf) {
        if (static_cast<std::size_t>(node->feature) >= x.size())
            throw std::invalid_argument("feature dimension mismatch");
        node = x[node->feature] <= node->threshold ? node->left.get()
                                                   : node->right.get();
    }
    return node->value;
}

double
RegressionTree::meanAbsoluteError(
    const std::vector<std::vector<double>> &features,
    const std::vector<double> &targets) const
{
    if (features.empty() || features.size() != targets.size())
        throw std::invalid_argument("features/targets shape mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i)
        sum += std::abs(predict(features[i]) - targets[i]);
    return sum / static_cast<double>(features.size());
}

int
RegressionTree::countLeaves(const Node &node)
{
    if (node.leaf)
        return 1;
    return countLeaves(*node.left) + countLeaves(*node.right);
}

int
RegressionTree::leafCount() const
{
    return countLeaves(*root_);
}

std::vector<double>
withSquares(const std::vector<double> &x)
{
    std::vector<double> out;
    out.reserve(2 * x.size());
    out.insert(out.end(), x.begin(), x.end());
    for (double v : x)
        out.push_back(v * v);
    return out;
}

} // namespace smite::stats
