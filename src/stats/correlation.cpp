#include "stats/correlation.h"

#include <cmath>
#include <stdexcept>

namespace smite::stats {

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("sample length mismatch");
    if (a.size() < 2)
        throw std::invalid_argument("need at least two samples");

    const double n = static_cast<double>(a.size());
    double mean_a = 0.0, mean_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    mean_a /= n;
    mean_b /= n;

    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - mean_a;
        const double db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if (var_a <= 0.0 || var_b <= 0.0)
        return 0.0;
    return cov / std::sqrt(var_a * var_b);
}

} // namespace smite::stats
