/**
 * @file
 * Summary statistics and empirical-distribution helpers used by the
 * figure-reproduction harnesses (means, percentiles, CDF sampling).
 */

#ifndef SMITE_STATS_SUMMARY_H
#define SMITE_STATS_SUMMARY_H

#include <utility>
#include <vector>

namespace smite::stats {

/** Arithmetic mean. @throws std::invalid_argument if empty. */
double mean(const std::vector<double> &xs);

/** Minimum value. @throws std::invalid_argument if empty. */
double minOf(const std::vector<double> &xs);

/** Maximum value. @throws std::invalid_argument if empty. */
double maxOf(const std::vector<double> &xs);

/**
 * Empirical p-th quantile with linear interpolation,
 * p in [0, 1]. @throws std::invalid_argument if empty or p invalid.
 */
double quantile(std::vector<double> xs, double p);

/** Median (0.5 quantile). @throws std::invalid_argument if empty. */
double median(const std::vector<double> &xs);

/**
 * Outlier-robust location estimate for repeated measurements of one
 * quantity: the median of the samples that survive MAD rejection.
 * A sample is an outlier when |x - median| > k * 1.4826 * MAD, with
 * MAD the median absolute deviation and 1.4826 the factor that makes
 * it consistent with a Gaussian sigma. When MAD is zero (a majority
 * of identical samples, e.g. jitter-free measurements), the plain
 * median is returned unchanged.
 *
 * @throws std::invalid_argument if empty or k <= 0
 */
double robustMedian(const std::vector<double> &xs, double k = 3.5);

/**
 * Sample the empirical CDF of @p xs at evenly spaced points.
 *
 * @return pairs (x, F(x)) at @p points quantiles, suitable for
 *         plotting a distribution like the paper's Figures 3 and 5
 */
std::vector<std::pair<double, double>>
empiricalCdf(std::vector<double> xs, int points = 20);

} // namespace smite::stats

#endif // SMITE_STATS_SUMMARY_H
