#include "stats/regression.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace smite::stats {

std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const size_t n = a.size();
    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        }
        if (std::abs(a[pivot][col]) < 1e-12)
            throw std::invalid_argument("singular system");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }

    std::vector<double> x(n);
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i][k] * x[k];
        x[i] = sum / a[i][i];
    }
    return x;
}

LinearModel
LinearModel::fit(const std::vector<std::vector<double>> &features,
                 const std::vector<double> &targets, double ridge)
{
    if (features.empty() || features.size() != targets.size())
        throw std::invalid_argument("features/targets shape mismatch");
    const size_t d = features.front().size();
    for (const auto &row : features) {
        if (row.size() != d)
            throw std::invalid_argument("ragged feature rows");
    }

    // Augment with the intercept column: p = d + 1 parameters.
    const size_t p = d + 1;
    std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
    std::vector<double> xty(p, 0.0);

    for (size_t s = 0; s < features.size(); ++s) {
        const auto &row = features[s];
        auto at = [&](size_t j) { return j < d ? row[j] : 1.0; };
        for (size_t i = 0; i < p; ++i) {
            xty[i] += at(i) * targets[s];
            for (size_t j = i; j < p; ++j)
                xtx[i][j] += at(i) * at(j);
        }
    }
    for (size_t i = 0; i < p; ++i) {
        for (size_t j = 0; j < i; ++j)
            xtx[i][j] = xtx[j][i];
    }
    // Regularize the weights (not the intercept).
    for (size_t i = 0; i < d; ++i)
        xtx[i][i] += ridge;

    std::vector<double> beta = solveDense(std::move(xtx), std::move(xty));

    LinearModel m;
    m.weights_.assign(beta.begin(), beta.begin() + d);
    m.intercept_ = beta[d];
    return m;
}

double
LinearModel::predict(const std::vector<double> &x) const
{
    if (x.size() != weights_.size())
        throw std::invalid_argument("feature dimension mismatch");
    double y = intercept_;
    for (size_t i = 0; i < x.size(); ++i)
        y += weights_[i] * x[i];
    return y;
}

double
LinearModel::meanAbsoluteError(
    const std::vector<std::vector<double>> &features,
    const std::vector<double> &targets) const
{
    if (features.size() != targets.size() || features.empty())
        throw std::invalid_argument("features/targets shape mismatch");
    double sum = 0.0;
    for (size_t s = 0; s < features.size(); ++s)
        sum += std::abs(predict(features[s]) - targets[s]);
    return sum / static_cast<double>(features.size());
}

} // namespace smite::stats
