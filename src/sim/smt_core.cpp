#include "sim/smt_core.h"

namespace smite::sim {

SmtCore::SmtCore(const MachineConfig &config, int core_id)
    : coreConfig_(config.core), coreId_(core_id)
{
    contexts_.reserve(config.contextsPerCore);
    for (int i = 0; i < config.contextsPerCore; ++i)
        contexts_.emplace_back(config.core, config.itlb, config.dtlb);
}

void
SmtCore::tick(Cycle now, MemorySystem &mem)
{
    // Idle contexts no-op through fetch and issue, so arbitration
    // only matters when at least two contexts are live: an idle core
    // returns immediately and a solo context just consumes the full
    // core bandwidth, skipping rotation and ICOUNT entirely. Both
    // fast paths are observationally identical to the general loop.
    const int n = numContexts();
    int active = 0;
    int solo = -1;
    for (int k = 0; k < n; ++k) {
        if (contexts_[k].active()) {
            ++active;
            solo = k;
        }
    }
    if (active == 0)
        return;
    if (active == 1) {
        HardwareContext &ctx = contexts_[solo];
        ctx.fetch(now, coreConfig_.fetchWidth, coreId_, mem);
        unsigned port_busy = 0;
        int core_budget = coreConfig_.issuePerCore;
        ctx.issue(now, port_busy, core_budget, coreId_, mem,
                  /*solo_on_core=*/true);
        return;
    }

    // Rotation seed; contexts-per-core is virtually always a power of
    // two, so avoid the hardware divide on this per-tick path.
    int first = (n & (n - 1)) == 0
                    ? static_cast<int>(now & static_cast<Cycle>(n - 1))
                    : static_cast<int>(now % n);
    if (coreConfig_.fetchPolicy == FetchPolicy::kIcount) {
        // ICOUNT: the context with the fewest in-flight uops fetches
        // first (ties fall back to rotation).
        for (int k = 0; k < n; ++k) {
            if (contexts_[k].inFlight() <
                contexts_[first].inFlight()) {
                first = k;
            }
        }
    }

    // Front end: contexts share the fetch bandwidth.
    int fetch_budget = coreConfig_.fetchWidth;
    int idx = first;
    for (int k = 0; k < n && fetch_budget > 0; ++k) {
        fetch_budget -= contexts_[idx].fetch(now, fetch_budget,
                                             coreId_, mem);
        idx = idx + 1 == n ? 0 : idx + 1;
    }

    // Issue: ports and core dispatch slots are shared; same rotation.
    unsigned port_busy = 0;
    int core_budget = coreConfig_.issuePerCore;
    idx = first;
    for (int k = 0; k < n && core_budget > 0; ++k) {
        contexts_[idx].issue(now, port_busy, core_budget, coreId_, mem,
                             /*solo_on_core=*/false);
        idx = idx + 1 == n ? 0 : idx + 1;
    }
}

} // namespace smite::sim
