#include "sim/smt_core.h"

namespace smite::sim {

SmtCore::SmtCore(const MachineConfig &config, int core_id)
    : coreConfig_(config.core), coreId_(core_id)
{
    contexts_.reserve(config.contextsPerCore);
    for (int i = 0; i < config.contextsPerCore; ++i)
        contexts_.emplace_back(config.core, config.itlb, config.dtlb);
}

void
SmtCore::tick(Cycle now, MemorySystem &mem)
{
    const int n = numContexts();
    int first = static_cast<int>(now % n);
    if (coreConfig_.fetchPolicy == FetchPolicy::kIcount) {
        // ICOUNT: the context with the fewest in-flight uops fetches
        // first (ties fall back to rotation).
        for (int k = 0; k < n; ++k) {
            if (contexts_[k].inFlight() <
                contexts_[first].inFlight()) {
                first = k;
            }
        }
    }

    // Front end: contexts share the fetch bandwidth.
    int fetch_budget = coreConfig_.fetchWidth;
    for (int k = 0; k < n && fetch_budget > 0; ++k) {
        HardwareContext &ctx = contexts_[(first + k) % n];
        fetch_budget -= ctx.fetch(now, fetch_budget, coreId_, mem);
    }

    // Issue: ports and core dispatch slots are shared; same rotation.
    unsigned port_busy = 0;
    int core_budget = coreConfig_.issuePerCore;
    for (int k = 0; k < n && core_budget > 0; ++k) {
        HardwareContext &ctx = contexts_[(first + k) % n];
        ctx.issue(now, port_busy, core_budget, coreId_, mem);
    }

    for (HardwareContext &ctx : contexts_) {
        if (ctx.active())
            ctx.tickAccounting();
    }
}

} // namespace smite::sim
