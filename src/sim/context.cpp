#include "sim/context.h"

#include <cassert>
#include <stdexcept>

namespace smite::sim {

HardwareContext::HardwareContext(const CoreConfig &core_config,
                                 const TlbConfig &itlb_config,
                                 const TlbConfig &dtlb_config)
    : coreConfig_(core_config), itlb_(itlb_config), dtlb_(dtlb_config)
{
    // Distances reach up to 63 uops behind any in-window uop, so the
    // ring must cover window + 63 live seq slots.
    if (core_config.windowSize + 63 >= kDepRing) {
        throw std::invalid_argument(
            "window size too large for the dependence ring");
    }
    windowCap_ = core_config.windowSize;
    window_.resize(windowCap_);
    mshrBusyUntil_.assign(core_config.mshrs, 0);
    completion_.fill(0);
}

void
HardwareContext::bind(UopSource *source, Addr addr_base, Addr pc_base)
{
    source_ = source;
    addrBase_ = addr_base;
    pcBase_ = pc_base;
    if (source_ != nullptr)
        source_->reset();
    head_ = 0;
    count_ = 0;
    nextSeq_ = 0;
    completion_.fill(0);
    fetchStallUntil_ = 0;
    waitingBranch_ = false;
    lastFetchLine_ = ~Addr{0};
    mshrBusyUntil_.assign(coreConfig_.mshrs, 0);
    counters_ = CounterBlock{};
}

bool
HardwareContext::operandsReady(const Slot &slot, Cycle now) const
{
    const Uop &uop = slot.uop;
    if (uop.srcDist1 != 0) {
        const Cycle done =
            completion_[(slot.seq - uop.srcDist1) % kDepRing];
        if (done > now)
            return false;
    }
    if (uop.srcDist2 != 0) {
        const Cycle done =
            completion_[(slot.seq - uop.srcDist2) % kDepRing];
        if (done > now)
            return false;
    }
    return true;
}

int
HardwareContext::freeMshr(Cycle now) const
{
    for (size_t i = 0; i < mshrBusyUntil_.size(); ++i) {
        if (mshrBusyUntil_[i] <= now)
            return static_cast<int>(i);
    }
    return -1;
}

int
HardwareContext::pickPort(unsigned mask, unsigned port_busy)
{
    const unsigned available = mask & ~port_busy;
    if (available == 0)
        return -1;
    for (int k = 0; k < kNumPorts; ++k) {
        const int port = (portRotor_ + k) % kNumPorts;
        if (available & (1u << port)) {
            portRotor_ = (port + 1) % kNumPorts;
            return port;
        }
    }
    return -1;
}

int
HardwareContext::fetch(Cycle now, int budget, int core, MemorySystem &mem)
{
    if (!active())
        return 0;
    if (waitingBranch_ || fetchStallUntil_ > now) {
        ++counters_.fetchStallCycles;
        return 0;
    }

    int fetched = 0;
    while (fetched < budget && count_ < windowCap_) {
        Uop uop = source_->next();
        uop.pc += pcBase_;
        if (uop.type == UopType::kLoad || uop.type == UopType::kStore)
            uop.addr += addrBase_;

        // Instruction supply: probe the L1I once per new line. A miss
        // stalls subsequent fetch for the fill latency.
        const Addr fetch_line = lineAddr(uop.pc);
        if (fetch_line != lastFetchLine_) {
            lastFetchLine_ = fetch_line;
            const Cycle lat =
                mem.instrAccess(core, uop.pc, now, counters_, itlb_);
            if (lat > mem.l1iHitLatency())
                fetchStallUntil_ = now + lat;
        }

        const std::uint64_t seq = nextSeq_++;
        completion_[seq % kDepRing] = kNeverCycle;
        Slot &slot = window_[(head_ + count_) % windowCap_];
        slot.uop = uop;
        slot.seq = seq;
        slot.issued = false;
        ++count_;
        ++fetched;

        if (uop.type == UopType::kBranch) {
            ++counters_.branches;
            if (uop.mispredict) {
                ++counters_.branchMispredicts;
                // Fetch must stop until this branch resolves; the
                // redirect penalty is added when it issues.
                waitingBranch_ = true;
                waitingBranchSeq_ = seq;
                break;
            }
        }
        if (fetchStallUntil_ > now)
            break;  // the line miss above blocks further fetch
    }
    return fetched;
}

int
HardwareContext::issue(Cycle now, unsigned &port_busy, int &core_budget,
                       int core, MemorySystem &mem)
{
    if (!active() || count_ == 0)
        return 0;

    int issued = 0;
    int examined = 0;
    for (int i = 0;
         i < count_ && issued < coreConfig_.issuePerContext &&
         core_budget > 0 && examined < coreConfig_.schedDepth;
         ++i) {
        Slot &slot = slotAt(i);
        if (slot.issued)
            continue;
        ++examined;  // scheduler only sees the oldest unissued uops
        if (!operandsReady(slot, now))
            continue;

        const Uop &uop = slot.uop;
        Cycle finish;
        int port = -1;

        switch (uop.type) {
          case UopType::kLoad: {
            port = pickPort(portMask(UopType::kLoad), port_busy);
            if (port < 0)
                continue;
            const int mshr = freeMshr(now);
            if (mshr < 0)
                continue;  // no miss slot; try younger non-loads
            const Cycle lat = mem.dataAccess(core, false, uop.addr, now,
                                             counters_, dtlb_);
            ++counters_.loads;
            finish = now + lat;
            if (lat > mem.l1dHitLatency())
                mshrBusyUntil_[mshr] = finish;
            break;
          }
          case UopType::kStore: {
            port = pickPort(portMask(UopType::kStore), port_busy);
            if (port < 0)
                continue;
            const int mshr = freeMshr(now);
            if (mshr < 0)
                continue;  // store buffer full of outstanding misses
            // Stores drain through a store buffer: program progress
            // does not wait for the cache update, but a missing
            // store holds a miss slot until its line arrives, which
            // flow-controls the DRAM traffic stores can generate.
            const Cycle lat = mem.dataAccess(core, true, uop.addr, now,
                                             counters_, dtlb_);
            ++counters_.stores;
            finish = now + execLatency(UopType::kStore);
            if (lat > mem.l1dHitLatency())
                mshrBusyUntil_[mshr] = now + lat;
            break;
          }
          case UopType::kNop:
            finish = now + 1;
            break;
          default: {
            port = pickPort(portMask(uop.type), port_busy);
            if (port < 0)
                continue;
            finish = now + execLatency(uop.type);
            break;
          }
        }

        if (port >= 0) {
            port_busy |= 1u << port;
            ++counters_.portIssued[port];
        }
        completion_[slot.seq % kDepRing] = finish;
        slot.issued = true;
        ++counters_.uops;
        ++issued;
        --core_budget;

        if (waitingBranch_ && slot.seq == waitingBranchSeq_) {
            waitingBranch_ = false;
            fetchStallUntil_ = finish + coreConfig_.redirectPenalty;
        }
    }

    // In-order retirement of issued slots frees window capacity.
    while (count_ > 0 && window_[head_].issued) {
        head_ = (head_ + 1) % windowCap_;
        --count_;
    }
    return issued;
}

} // namespace smite::sim
