#include "sim/context.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace smite::sim {

HardwareContext::HardwareContext(const CoreConfig &core_config,
                                 const TlbConfig &itlb_config,
                                 const TlbConfig &dtlb_config)
    : coreConfig_(core_config), itlb_(itlb_config), dtlb_(dtlb_config)
{
    // Distances reach up to 63 uops behind any in-window uop, so the
    // ring must cover window + 63 live seq slots.
    if (core_config.windowSize + 63 >= kDepRing) {
        throw std::invalid_argument(
            "window size too large for the dependence ring");
    }
    windowCap_ = core_config.windowSize;
    slotType_.assign(windowCap_, 0);
    slotPort_.assign(windowCap_, 0);
    slotLat_.assign(windowCap_, 0);
    slotAddr_.assign(windowCap_, 0);
    slotSeq_.assign(windowCap_, 0);
    slotReady_.assign(windowCap_, 0);
    slotPending_.assign(windowCap_, 0);
    slotWaiters_.assign(windowCap_, -1);
    edgeNext_.assign(2 * windowCap_, -1);
    unissuedBits_.assign((windowCap_ + 63) / 64, 0);
    readyBits_.assign(unissuedBits_.size(), 0);
    calHead_.assign(kCalendar, -1);
    calNext_.assign(windowCap_, -1);
    mshrBusyUntil_.assign(core_config.mshrs, 0);
    completion_.fill(0);
}

void
HardwareContext::bind(UopSource *source, Addr addr_base, Addr pc_base)
{
    source_ = source;
    addrBase_ = addr_base;
    pcBase_ = pc_base;
    if (source_ != nullptr)
        source_->reset();
    head_ = 0;
    count_ = 0;
    slotReady_.assign(windowCap_, 0);
    slotPending_.assign(windowCap_, 0);
    slotWaiters_.assign(windowCap_, -1);
    edgeNext_.assign(2 * windowCap_, -1);
    unissuedBits_.assign(unissuedBits_.size(), 0);
    readyBits_.assign(readyBits_.size(), 0);
    calHead_.assign(kCalendar, -1);
    calNext_.assign(windowCap_, -1);
    calOcc_.fill(0);
    lastDrain_ = 0;
    unissued_ = 0;
    nextSeq_ = 0;
    completion_.fill(0);
    fetchStallUntil_ = 0;
    waitingBranch_ = false;
    lastFetchLine_ = ~Addr{0};
    mshrBusyUntil_.assign(coreConfig_.mshrs, 0);
    mshrAllBusyUntil_ = 0;
    noIssueBefore_ = 0;
    fetchBufPos_ = 0;
    fetchBufLen_ = 0;
    replayMasks_.clear();
    lastScanCycle_ = kNeverCycle;
    replayValid_ = false;
    counters_ = CounterBlock{};
}

int
HardwareContext::freeMshr(Cycle now)
{
    if (now < mshrAllBusyUntil_)
        return -1;
    const std::size_t n = mshrBusyUntil_.size();
    Cycle earliest = kNeverCycle;
    for (std::size_t i = 0; i < n; ++i) {
        if (mshrBusyUntil_[i] <= now)
            return static_cast<int>(i);
        earliest = earliest < mshrBusyUntil_[i] ? earliest
                                                : mshrBusyUntil_[i];
    }
    // No mutation can free a slot earlier than the current minimum:
    // assignments only happen after a successful scan, and time only
    // moves forward, so the memo stays valid until it expires.
    mshrAllBusyUntil_ = earliest;
    return -1;
}

int
HardwareContext::pickPort(unsigned mask, unsigned port_busy)
{
    const unsigned available = mask & ~port_busy;
    if (available == 0)
        return -1;
    // First free port cyclically at or after the rotor: scan the bits
    // >= rotor, falling back to the lowest set bit on wrap-around.
    const unsigned at_or_after = available >> portRotor_;
    const int port = at_or_after != 0
                         ? portRotor_ + std::countr_zero(at_or_after)
                         : std::countr_zero(available);
    portRotor_ = port + 1 == kNumPorts ? 0 : port + 1;
    return port;
}

void
HardwareContext::pushCalendar(int idx, Cycle r)
{
    const int bucket = static_cast<int>(r & (kCalendar - 1));
    calNext_[idx] = calHead_[bucket];
    calHead_[bucket] = idx;
    calOcc_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
}

void
HardwareContext::drainCalendar(Cycle now)
{
    const auto drain_bucket = [&](int bucket) {
        std::int32_t idx = calHead_[bucket];
        calHead_[bucket] = -1;
        calOcc_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
        while (idx >= 0) {
            const std::int32_t next = calNext_[idx];
            if (slotReady_[idx] <= now) {
                readyBits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            } else {
                // Aliased entry (a full lap or more ahead); it comes
                // back around on a later drain.
                pushCalendar(idx, slotReady_[idx]);
            }
            idx = next;
        }
    };
    // Visit the occupied buckets among those a ready cycle in
    // (lastDrain_, now] can map to: every bucket once the span covers
    // a whole lap, otherwise the cyclic bucket range between the two
    // drain points. Aliased re-pushes may land in not-yet-visited
    // buckets of the range; the repeat visit re-pushes them again —
    // wasted motion, but a slot is never dropped or duplicated.
    const auto visit_range = [&](int lo, int hi) {  // inclusive buckets
        const int lw = lo >> 6;
        const int hw = hi >> 6;
        for (int w = lw; w <= hw; ++w) {
            std::uint64_t m = calOcc_[w];
            if (w == lw)
                m &= ~std::uint64_t{0} << (lo & 63);
            if (w == hw && (hi & 63) != 63)
                m &= ~(~std::uint64_t{0} << ((hi & 63) + 1));
            while (m != 0) {
                drain_bucket((w << 6) + std::countr_zero(m));
                m &= m - 1;
            }
        }
    };
    if (now - lastDrain_ >= kCalendar) {
        visit_range(0, kCalendar - 1);
    } else {
        const int lo = static_cast<int>((lastDrain_ + 1) & (kCalendar - 1));
        const int hi = static_cast<int>(now & (kCalendar - 1));
        if (lo <= hi) {
            visit_range(lo, hi);
        } else {
            visit_range(lo, kCalendar - 1);
            visit_range(0, hi);
        }
    }
    lastDrain_ = now;
}

Cycle
HardwareContext::calendarNextEvent(Cycle now) const
{
    constexpr int kMask = kCalendar - 1;
    constexpr int kWords = kCalendar / 64;
    const int start = static_cast<int>((now + 1) & kMask);
    const int start_word = start >> 6;
    // Walk the occupancy bitmap cyclically from the bucket for
    // now + 1; the final iteration picks up the wrapped low bits of
    // the start word. The first set bit in cyclic order is the
    // nearest bucket, hence the smallest distance.
    for (int k = 0; k <= kWords; ++k) {
        int w = start_word + k;
        if (w >= kWords)
            w -= kWords;
        std::uint64_t m = calOcc_[w];
        if (k == 0)
            m &= ~std::uint64_t{0} << (start & 63);
        else if (k == kWords)
            m &= ~(~std::uint64_t{0} << (start & 63));
        if (m != 0) {
            const int bucket = (w << 6) + std::countr_zero(m);
            return now + 1 + ((bucket - start) & kMask);
        }
    }
    return kNeverCycle;
}

void
HardwareContext::resolveWaiters(int idx, Cycle finish)
{
    std::int32_t edge = slotWaiters_[idx];
    slotWaiters_[idx] = -1;
    while (edge >= 0) {
        const int waiter = edge >> 1;
        const std::int32_t next = edgeNext_[edge];
        if (finish > slotReady_[waiter])
            slotReady_[waiter] = finish;
        if (--slotPending_[waiter] == 0) {
            // Last producer known: the ready time is now exact. The
            // producer completes strictly after the current cycle, so
            // the waiter always lands in a future calendar bucket.
            pushCalendar(waiter, slotReady_[waiter]);
        }
        edge = next;
    }
}

int
HardwareContext::fetch(Cycle now, int budget, int core, MemorySystem &mem)
{
    if (!active())
        return 0;
    if (waitingBranch_ || fetchStallUntil_ > now) {
        ++counters_.fetchStallCycles;
        return 0;
    }

    const int cap = windowCap_;
    int fetched = 0;
    while (fetched < budget && count_ < cap) {
        if (fetchBufPos_ == fetchBufLen_) {
            fetchBufLen_ =
                source_->nextBatch(fetchBuf_.data(), kFetchBatch);
            fetchBufPos_ = 0;
        }
        int tail = head_ + count_;
        if (tail >= cap)
            tail -= cap;
        const Uop &uop = fetchBuf_[fetchBufPos_++];
        const Addr pc = uop.pc + pcBase_;

        // Instruction supply: probe the L1I once per new line. A miss
        // stalls subsequent fetch for the fill latency.
        const Addr fetch_line = lineAddr(pc);
        if (fetch_line != lastFetchLine_) {
            lastFetchLine_ = fetch_line;
            const Cycle lat =
                mem.instrAccess(core, pc, now, counters_, itlb_);
            if (lat > mem.l1iHitLatency())
                fetchStallUntil_ = now + lat;
        }

        const std::uint64_t seq = nextSeq_++;
        completion_[seq % kDepRing] = kNeverCycle;
        slotSeq_[tail] = seq;
        slotType_[tail] = static_cast<std::uint8_t>(uop.type);
        slotPort_[tail] = portMask(uop.type);
        slotLat_[tail] = execLatency(uop.type);
        if (uop.type == UopType::kLoad || uop.type == UopType::kStore)
            slotAddr_[tail] = uop.addr + addrBase_;

        // Operand readiness, resolved eagerly at insert: an issued
        // producer's completion cycle is already recorded in the
        // dependence ring (entries within distance 63 cannot have
        // been recycled); an unissued producer is still in the window
        // at index seq%cap (inserts and seqs advance in lockstep), so
        // a forward edge defers this slot until that producer issues.
        Cycle ready = 0;
        int pending = 0;
        const auto link = [&](std::uint8_t dist, int op) {
            if (dist == 0)
                return;
            const std::uint64_t pseq = seq - dist;
            const Cycle done = completion_[pseq % kDepRing];
            if (done != kNeverCycle) {
                if (done > ready)
                    ready = done;
                return;
            }
            // pseq % cap without the runtime divide: inserts and seqs
            // advance in lockstep, so the producer sits `dist` slots
            // behind this one in the ring.
            int pidx = tail - dist;
            if (pidx < 0)
                pidx += cap;
            const std::int32_t edge = 2 * tail + op;
            edgeNext_[edge] = slotWaiters_[pidx];
            slotWaiters_[pidx] = edge;
            ++pending;
        };
        link(uop.srcDist1, 0);
        link(uop.srcDist2, 1);
        slotReady_[tail] = ready;
        slotPending_[tail] = static_cast<std::uint8_t>(pending);
        if (pending == 0) {
            // Exact ready time already known: a cycle the calendar
            // has drained past goes straight into the ready bitmap;
            // anything later waits in its calendar bucket (the next
            // drain covers (lastDrain_, now], so a ready cycle at or
            // before `now` still surfaces in time).
            if (ready <= lastDrain_)
                readyBits_[tail >> 6] |= std::uint64_t{1} << (tail & 63);
            else
                pushCalendar(tail, ready);
        }

        unissuedBits_[tail >> 6] |= std::uint64_t{1} << (tail & 63);
        ++unissued_;
        ++count_;
        ++fetched;

        if (uop.type == UopType::kBranch) {
            ++counters_.branches;
            if (uop.mispredict) {
                ++counters_.branchMispredicts;
                // Fetch must stop until this branch resolves; the
                // redirect penalty is added when it issues.
                waitingBranch_ = true;
                waitingBranchSeq_ = seq;
                break;
            }
        }
        if (fetchStallUntil_ > now)
            break;  // the line miss above blocks further fetch
    }
    if (fetched > 0)
        noIssueBefore_ = 0;  // a new uop may be issuable right away
    return fetched;
}

void
HardwareContext::replaySkippedScans(Cycle scans)
{
    // Tabulate one skipped scan's effect on the rotor from each of
    // the kNumPorts possible start states (the masks are applied
    // against an empty busy mask, exactly as the skipped scans would
    // have — mirrors pickPort with port_busy == 0).
    std::array<int, kNumPorts> next{};
    for (int r = 0; r < kNumPorts; ++r) {
        int rr = r;
        for (const unsigned mask : replayMasks_) {
            const unsigned at_or_after = mask >> rr;
            const int port = at_or_after != 0
                                 ? rr + std::countr_zero(at_or_after)
                                 : std::countr_zero(mask);
            rr = port + 1 == kNumPorts ? 0 : port + 1;
        }
        next[r] = rr;
    }
    // Walk the orbit with cycle detection; it has at most kNumPorts
    // states, so arbitrarily long spans reduce to a short remainder.
    std::array<int, kNumPorts> seen_at;
    seen_at.fill(-1);
    int r = portRotor_;
    int step = 0;
    Cycle left = scans;
    while (left > 0) {
        if (seen_at[r] >= 0) {
            left %= static_cast<Cycle>(step - seen_at[r]);
            while (left > 0) {
                r = next[r];
                --left;
            }
            break;
        }
        seen_at[r] = step++;
        r = next[r];
        --left;
    }
    portRotor_ = r;
}

int
HardwareContext::issue(Cycle now, unsigned &port_busy, int &core_budget,
                       int core, MemorySystem &mem, bool solo_on_core)
{
    if (!active() || count_ == 0)
        return 0;
    if (now < noIssueBefore_)
        return 0;  // last scan proved nothing can issue yet

    // Catch the rotor up on the scans the exact MSHR bound skipped:
    // the reference would have re-run the recorded zero-issue scan on
    // every cycle since the last real one.
    if (replayValid_) {
        if (now > lastScanCycle_ + 1 && !replayMasks_.empty())
            replaySkippedScans(now - lastScanCycle_ - 1);
        replayValid_ = false;
    }
    if (solo_on_core)
        replayMasks_.clear();

    // Surface every slot whose exact ready cycle has arrived.
    if (now > lastDrain_)
        drainCalendar(now);

    const int cap = windowCap_;
    const int issue_limit = coreConfig_.issuePerContext;
    const int sched_depth = coreConfig_.schedDepth;
    const std::uint8_t *const types = slotType_.data();
    const std::uint8_t *const ports = slotPort_.data();
    const Cycle *const lats = slotLat_.data();
    std::uint64_t *const bits = unissuedBits_.data();
    std::uint64_t *const ready_bits = readyBits_.data();
    const int words = static_cast<int>(unissuedBits_.size());
    const std::uint64_t ones = ~std::uint64_t{0};

    // Scheduler-depth gate: with no more unissued uops than the
    // scheduler examines, every candidate is in depth and the
    // per-candidate rank checks can be skipped wholesale. Issues only
    // shrink the count, so the gate holds for the entire scan.
    const bool need_rank = unissued_ > sched_depth;

    const int head_word = head_ >> 6;
    const std::uint64_t head_mask = ones << (head_ & 63);

    // Scheduler-depth cutoff, resolved once per scan: the reference
    // walk stops at the first slot whose in-scan rank (unissued slots
    // examined before it, plus slots already issued this scan) reaches
    // sched_depth. Every slot issued during a scan lies before any
    // later candidate in ring order, so each issue lowers the live
    // rank by exactly what it adds back — the cutoff is the ring
    // position of the sched_depth-th unissued slot at scan START, a
    // constant. Candidates past it end the scan; everything at or
    // before it is in depth.
    int cutoff_dist = 0;
    if (need_rank) {
        int need = sched_depth;  // looking for the need-th set bit
        int ws = head_word;
        for (int v = 0; v <= words; ++v) {
            std::uint64_t m;
            if (v == 0) {
                m = bits[ws] & head_mask;
            } else {
                ws = ws + 1 == words ? 0 : ws + 1;
                m = bits[ws];
                if (v == words)
                    m &= ~head_mask;
            }
            const int pc = std::popcount(m);
            if (pc >= need) {
                while (--need > 0)
                    m &= m - 1;
                const int idx = (ws << 6) + std::countr_zero(m);
                cutoff_dist = idx - head_;
                if (cutoff_dist < 0)
                    cutoff_dist += cap;
                break;
            }
            need -= pc;
        }
        // unissued_ > sched_depth guarantees the bit exists.
    }

    int issued = 0;
    // Earliest cycle any slot this scan rejected could issue instead.
    Cycle retry = kNeverCycle;
    bool stop = false;
    // Did a width limit (issue_limit / core budget) cut the walk off
    // with candidates still unexamined? The reference scan leaves
    // noIssueBefore_ alone in that case — the limits may relax next
    // cycle — so the calendar bound must not be applied either.
    bool cut_by_width = false;

    // Enumerate ready candidates in ring order from the head: the
    // head word masked at the head bit, the remaining words
    // cyclically, then the wrapped low bits of the head word. Every
    // set bit is unissued with operands ready (readyBits_ invariant),
    // so each candidate reaching the switch below is exactly one slot
    // the reference walk would have attempted, in the same order —
    // which keeps the pickPort rotor sequence byte-identical.
    std::uint64_t any_ready = 0;
    for (int v = 0; v < words; ++v)
        any_ready |= ready_bits[v];

    int wi = head_word;
    for (int v = 0; any_ready != 0 && v <= words && !stop; ++v) {
        std::uint64_t word;
        if (v == 0) {
            word = ready_bits[wi] & head_mask;
        } else {
            wi = wi + 1 == words ? 0 : wi + 1;
            word = ready_bits[wi];
            if (v == words)
                word &= ~head_mask;  // wrapped tail of the head word
        }
        const int idx_base = wi << 6;
        while (word != 0) {
            const int idx = idx_base + std::countr_zero(word);
            word &= word - 1;
            if (issued >= issue_limit || core_budget <= 0) {
                cut_by_width = true;
                stop = true;
                break;
            }
            if (need_rank) {
                int dist = idx - head_;
                if (dist < 0)
                    dist += cap;
                if (dist > cutoff_dist) {
                    // The reference walk hits the depth limit before
                    // this candidate. Ranks only grow along the ring,
                    // so no later candidate is in depth either.
                    stop = true;
                    break;
                }
            }

            const auto type = static_cast<UopType>(types[idx]);
            Cycle finish;
            int port = -1;

            switch (type) {
              case UopType::kLoad: {
                port = pickPort(ports[idx], port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                const int mshr = freeMshr(now);
                if (mshr < 0) {
                    // No miss slot; try younger non-loads. Solo on the
                    // core, the slot provably cannot issue before the
                    // earliest MSHR deadline (freeMshr just memoized
                    // it), so the retry bound is exact and the skipped
                    // rescans' rotor effects are replayable; with a
                    // sibling the rescans observe its port traffic, so
                    // they must really run.
                    if (solo_on_core) {
                        const Cycle free_at = mshrAllBusyUntil_;
                        retry = free_at < retry ? free_at : retry;
                        replayMasks_.push_back(ports[idx]);
                    } else {
                        retry = now + 1 < retry ? now + 1 : retry;
                    }
                    continue;
                }
                const Cycle lat =
                    mem.dataAccess(core, false, slotAddr_[idx], now,
                                   counters_, dtlb_);
                ++counters_.loads;
                finish = now + lat;
                if (lat > mem.l1dHitLatency())
                    mshrBusyUntil_[mshr] = finish;
                break;
              }
              case UopType::kStore: {
                port = pickPort(ports[idx], port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                const int mshr = freeMshr(now);
                if (mshr < 0) {
                    // Store buffer full of outstanding misses; same
                    // solo-exact / sibling-conservative split as loads.
                    if (solo_on_core) {
                        const Cycle free_at = mshrAllBusyUntil_;
                        retry = free_at < retry ? free_at : retry;
                        replayMasks_.push_back(ports[idx]);
                    } else {
                        retry = now + 1 < retry ? now + 1 : retry;
                    }
                    continue;
                }
                // Stores drain through a store buffer: program
                // progress does not wait for the cache update, but a
                // missing store holds a miss slot until its line
                // arrives, which flow-controls the DRAM traffic
                // stores can generate.
                const Cycle lat =
                    mem.dataAccess(core, true, slotAddr_[idx], now,
                                   counters_, dtlb_);
                ++counters_.stores;
                finish = now + lats[idx];
                if (lat > mem.l1dHitLatency())
                    mshrBusyUntil_[mshr] = now + lat;
                break;
              }
              case UopType::kNop:
                finish = now + 1;
                break;
              default: {
                port = pickPort(ports[idx], port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                finish = now + lats[idx];
                break;
              }
            }

            if (port >= 0) {
                port_busy |= 1u << port;
                ++counters_.portIssued[port];
            }
            completion_[slotSeq_[idx] % kDepRing] = finish;
            bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            ready_bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            if (slotWaiters_[idx] >= 0)
                resolveWaiters(idx, finish);
            ++counters_.uops;
            ++issued;
            --unissued_;
            --core_budget;

            if (waitingBranch_ && slotSeq_[idx] == waitingBranchSeq_) {
                waitingBranch_ = false;
                fetchStallUntil_ = finish + coreConfig_.redirectPenalty;
            }
        }
    }

    // With nothing issued and the window unchanged, the same scan
    // would reject the same slots every cycle until the earliest
    // retry bound; remember it so those scans are skipped outright.
    // The rejection bounds alone are not enough: a slot whose exact
    // ready cycle is still in the future was never enumerated at all,
    // so the next calendar event joins the bound. (A pending slot
    // contributes nothing: its producer is an older in-window slot
    // whose own bound is already covered.)
    if (issued == 0 && !cut_by_width) {
        const Cycle cal = calendarNextEvent(now);
        retry = cal < retry ? cal : retry;
    }
    if (issued == 0 && retry != kNeverCycle)
        noIssueBefore_ = retry;
    lastScanCycle_ = now;
    // A solo zero-issue scan is replayable: with no sibling, its only
    // pickPort calls were the MSHR-full rejections recorded above
    // (port_busy stayed empty, so pickPort never failed outright).
    replayValid_ = solo_on_core && issued == 0;

    // In-order retirement of issued slots frees window capacity (a
    // clear bit on an in-window slot means it issued). Whole runs of
    // cleared bits retire per word instead of slot by slot; bits past
    // the in-window tail are clear too, so the run is capped by
    // count_ (and by the ring end, where head_ wraps).
    while (count_ > 0) {
        const std::uint64_t above = bits[head_ >> 6] >> (head_ & 63);
        int run = above != 0 ? std::countr_zero(above)
                             : 64 - (head_ & 63);
        if (run > count_)
            run = count_;
        if (run > cap - head_)
            run = cap - head_;
        if (run == 0)
            break;
        head_ += run;
        if (head_ == cap)
            head_ = 0;
        count_ -= run;
        if (above != 0 && run == std::countr_zero(above))
            break;  // stopped at a still-unissued slot
    }
    return issued;
}

} // namespace smite::sim
