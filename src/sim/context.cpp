#include "sim/context.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace smite::sim {

HardwareContext::HardwareContext(const CoreConfig &core_config,
                                 const TlbConfig &itlb_config,
                                 const TlbConfig &dtlb_config)
    : coreConfig_(core_config), itlb_(itlb_config), dtlb_(dtlb_config)
{
    // Distances reach up to 63 uops behind any in-window uop, so the
    // ring must cover window + 63 live seq slots.
    if (core_config.windowSize + 63 >= kDepRing) {
        throw std::invalid_argument(
            "window size too large for the dependence ring");
    }
    windowCap_ = core_config.windowSize;
    window_.resize(windowCap_);
    slotState_.assign(windowCap_, 0);
    unissuedBits_.assign((windowCap_ + 63) / 64, 0);
    mshrBusyUntil_.assign(core_config.mshrs, 0);
    completion_.fill(0);
}

void
HardwareContext::bind(UopSource *source, Addr addr_base, Addr pc_base)
{
    source_ = source;
    addrBase_ = addr_base;
    pcBase_ = pc_base;
    if (source_ != nullptr)
        source_->reset();
    head_ = 0;
    count_ = 0;
    slotState_.assign(windowCap_, 0);
    unissuedBits_.assign(unissuedBits_.size(), 0);
    nextSeq_ = 0;
    completion_.fill(0);
    fetchStallUntil_ = 0;
    waitingBranch_ = false;
    lastFetchLine_ = ~Addr{0};
    mshrBusyUntil_.assign(coreConfig_.mshrs, 0);
    mshrAllBusyUntil_ = 0;
    noIssueBefore_ = 0;
    fetchBufPos_ = 0;
    fetchBufLen_ = 0;
    counters_ = CounterBlock{};
}

Cycle
HardwareContext::slotReadyAt(const Slot &slot, Cycle now) const
{
    // An issued producer completes at a fixed, already-recorded cycle
    // (the dependence ring outlives the window, so the entry cannot
    // have been recycled). An unissued producer finishes no earlier
    // than next cycle: every execution latency is at least one.
    const Uop &uop = slot.uop;
    Cycle ready = 0;
    if (uop.srcDist1 != 0) {
        Cycle done = completion_[(slot.seq - uop.srcDist1) % kDepRing];
        if (done == kNeverCycle)
            done = now + 1;
        ready = done;
    }
    if (uop.srcDist2 != 0) {
        Cycle done = completion_[(slot.seq - uop.srcDist2) % kDepRing];
        if (done == kNeverCycle)
            done = now + 1;
        if (done > ready)
            ready = done;
    }
    return ready;
}

int
HardwareContext::freeMshr(Cycle now)
{
    if (now < mshrAllBusyUntil_)
        return -1;
    const std::size_t n = mshrBusyUntil_.size();
    Cycle earliest = kNeverCycle;
    for (std::size_t i = 0; i < n; ++i) {
        if (mshrBusyUntil_[i] <= now)
            return static_cast<int>(i);
        earliest = earliest < mshrBusyUntil_[i] ? earliest
                                                : mshrBusyUntil_[i];
    }
    // No mutation can free a slot earlier than the current minimum:
    // assignments only happen after a successful scan, and time only
    // moves forward, so the memo stays valid until it expires.
    mshrAllBusyUntil_ = earliest;
    return -1;
}

int
HardwareContext::pickPort(unsigned mask, unsigned port_busy)
{
    const unsigned available = mask & ~port_busy;
    if (available == 0)
        return -1;
    // First free port cyclically at or after the rotor: scan the bits
    // >= rotor, falling back to the lowest set bit on wrap-around.
    const unsigned at_or_after = available >> portRotor_;
    const int port = at_or_after != 0
                         ? portRotor_ + std::countr_zero(at_or_after)
                         : std::countr_zero(available);
    portRotor_ = port + 1 == kNumPorts ? 0 : port + 1;
    return port;
}

int
HardwareContext::fetch(Cycle now, int budget, int core, MemorySystem &mem)
{
    if (!active())
        return 0;
    if (waitingBranch_ || fetchStallUntil_ > now) {
        ++counters_.fetchStallCycles;
        return 0;
    }

    const int cap = windowCap_;
    int fetched = 0;
    while (fetched < budget && count_ < cap) {
        if (fetchBufPos_ == fetchBufLen_) {
            fetchBufLen_ =
                source_->nextBatch(fetchBuf_.data(), kFetchBatch);
            fetchBufPos_ = 0;
        }
        int tail = head_ + count_;
        if (tail >= cap)
            tail -= cap;
        Slot &slot = window_[tail];
        slot.uop = fetchBuf_[fetchBufPos_++];
        Uop &uop = slot.uop;
        uop.pc += pcBase_;
        if (uop.type == UopType::kLoad || uop.type == UopType::kStore)
            uop.addr += addrBase_;

        // Instruction supply: probe the L1I once per new line. A miss
        // stalls subsequent fetch for the fill latency.
        const Addr fetch_line = lineAddr(uop.pc);
        if (fetch_line != lastFetchLine_) {
            lastFetchLine_ = fetch_line;
            const Cycle lat =
                mem.instrAccess(core, uop.pc, now, counters_, itlb_);
            if (lat > mem.l1iHitLatency())
                fetchStallUntil_ = now + lat;
        }

        const std::uint64_t seq = nextSeq_++;
        completion_[seq % kDepRing] = kNeverCycle;
        slot.seq = seq;
        slotState_[tail] = 0;
        unissuedBits_[tail >> 6] |= std::uint64_t{1} << (tail & 63);
        ++count_;
        ++fetched;
        noIssueBefore_ = 0;  // the new uop may be issuable right away

        if (uop.type == UopType::kBranch) {
            ++counters_.branches;
            if (uop.mispredict) {
                ++counters_.branchMispredicts;
                // Fetch must stop until this branch resolves; the
                // redirect penalty is added when it issues.
                waitingBranch_ = true;
                waitingBranchSeq_ = seq;
                break;
            }
        }
        if (fetchStallUntil_ > now)
            break;  // the line miss above blocks further fetch
    }
    return fetched;
}

int
HardwareContext::issue(Cycle now, unsigned &port_busy, int &core_budget,
                       int core, MemorySystem &mem)
{
    if (!active() || count_ == 0)
        return 0;
    if (now < noIssueBefore_)
        return 0;  // last scan proved nothing can issue yet

    const int cap = windowCap_;
    const int issue_limit = coreConfig_.issuePerContext;
    const int sched_depth = coreConfig_.schedDepth;
    Slot *const window = window_.data();
    Cycle *const state = slotState_.data();
    std::uint64_t *const bits = unissuedBits_.data();
    const int words = static_cast<int>(unissuedBits_.size());

    int issued = 0;
    int examined = 0;
    // Earliest cycle any slot this scan rejected could issue instead.
    Cycle retry = kNeverCycle;
    bool stop = false;

    // Enumerate unissued slots in ring order from the head: the head
    // word masked at the head bit, the remaining words cyclically,
    // and finally the wrapped low bits of the head word. Each set bit
    // is exactly one slot the slot-by-slot walk would have examined,
    // in the same order; issued holes cost nothing.
    const std::uint64_t ones = ~std::uint64_t{0};
    const int head_word = head_ >> 6;
    const std::uint64_t head_mask = ones << (head_ & 63);
    int wi = head_word;
    for (int v = 0; v <= words && !stop; ++v) {
        std::uint64_t word;
        if (v == 0) {
            word = bits[wi] & head_mask;
        } else {
            wi = wi + 1 == words ? 0 : wi + 1;
            word = bits[wi];
            if (v == words)
                word &= ~head_mask;  // wrapped tail of the head word
        }
        const int idx_base = wi << 6;
        while (word != 0) {
            if (issued >= issue_limit || core_budget <= 0 ||
                examined >= sched_depth) {
                stop = true;
                break;
            }
            const int idx = idx_base + std::countr_zero(word);
            word &= word - 1;
            ++examined;  // scheduler sees the oldest unissued uops
            const Cycle bound = state[idx];
            if (now < bound) {
                retry = retry < bound ? retry : bound;
                continue;
            }
            Slot &slot = window[idx];
            const Cycle ready_at = slotReadyAt(slot, now);
            if (ready_at > now) {
                state[idx] = ready_at;
                retry = retry < ready_at ? retry : ready_at;
                continue;
            }

            const Uop &uop = slot.uop;
            Cycle finish;
            int port = -1;

            switch (uop.type) {
              case UopType::kLoad: {
                port = pickPort(portMask(UopType::kLoad), port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                const int mshr = freeMshr(now);
                if (mshr < 0) {
                    // No miss slot; try younger non-loads.
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                const Cycle lat = mem.dataAccess(core, false, uop.addr,
                                                 now, counters_, dtlb_);
                ++counters_.loads;
                finish = now + lat;
                if (lat > mem.l1dHitLatency())
                    mshrBusyUntil_[mshr] = finish;
                break;
              }
              case UopType::kStore: {
                port = pickPort(portMask(UopType::kStore), port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                const int mshr = freeMshr(now);
                if (mshr < 0) {
                    // Store buffer full of outstanding misses.
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                // Stores drain through a store buffer: program
                // progress does not wait for the cache update, but a
                // missing store holds a miss slot until its line
                // arrives, which flow-controls the DRAM traffic
                // stores can generate.
                const Cycle lat = mem.dataAccess(core, true, uop.addr,
                                                 now, counters_, dtlb_);
                ++counters_.stores;
                finish = now + execLatency(UopType::kStore);
                if (lat > mem.l1dHitLatency())
                    mshrBusyUntil_[mshr] = now + lat;
                break;
              }
              case UopType::kNop:
                finish = now + 1;
                break;
              default: {
                port = pickPort(portMask(uop.type), port_busy);
                if (port < 0) {
                    retry = now + 1 < retry ? now + 1 : retry;
                    continue;
                }
                finish = now + execLatency(uop.type);
                break;
              }
            }

            if (port >= 0) {
                port_busy |= 1u << port;
                ++counters_.portIssued[port];
            }
            completion_[slot.seq % kDepRing] = finish;
            bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            ++counters_.uops;
            ++issued;
            --core_budget;

            if (waitingBranch_ && slot.seq == waitingBranchSeq_) {
                waitingBranch_ = false;
                fetchStallUntil_ = finish + coreConfig_.redirectPenalty;
            }
        }
    }

    // With nothing issued and the window unchanged, the same scan
    // would reject the same slots every cycle until the earliest
    // retry bound; remember it so those scans are skipped outright.
    if (issued == 0 && retry != kNeverCycle)
        noIssueBefore_ = retry;

    // In-order retirement of issued slots frees window capacity (a
    // clear bit on an in-window slot means it issued).
    while (count_ > 0 &&
           (bits[head_ >> 6] & (std::uint64_t{1} << (head_ & 63))) == 0) {
        head_ = head_ + 1 == cap ? 0 : head_ + 1;
        --count_;
    }
    return issued;
}

} // namespace smite::sim
