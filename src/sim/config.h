/**
 * @file
 * Machine configuration schema and the two experimental platforms of
 * the paper's Table I (Sandy Bridge-EN and Ivy Bridge presets).
 */

#ifndef SMITE_SIM_CONFIG_H
#define SMITE_SIM_CONFIG_H

#include <string>

#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/tlb.h"
#include "sim/types.h"

namespace smite::sim {

/**
 * SMT fetch arbitration policy.
 *
 * kRoundRobin alternates priority each cycle; kIcount gives priority
 * to the context with fewer uops in flight (Tullsen et al.'s ICOUNT,
 * which starves stalled threads less often than it starves fast
 * ones).
 */
enum class FetchPolicy {
    kRoundRobin,
    kIcount,
};

/** Pipeline parameters of one SMT core. */
struct CoreConfig {
    int fetchWidth = 5;       ///< uops fetched per core per cycle
    int issuePerContext = 4;  ///< per-context issue width
    int issuePerCore = 6;     ///< total dispatch slots per cycle
    int windowSize = 128;     ///< in-flight uop window per context
    int schedDepth = 48;      ///< unissued uops examined per cycle
    int mshrs = 16;           ///< outstanding L1D misses per context
    Cycle redirectPenalty = 10;  ///< front-end bubble after mispredict
    FetchPolicy fetchPolicy = FetchPolicy::kRoundRobin;
};

/** Full machine description (cores + memory hierarchy + DRAM). */
struct MachineConfig {
    std::string name = "generic";
    std::string microarchitecture = "generic";
    double ghz = 2.0;
    std::string kernel = "3.8.0";  ///< Table I flavour text
    int numCores = 2;
    int contextsPerCore = 2;

    CoreConfig core;

    /**
     * Optional next-line prefetcher at the L2: on an L2 demand miss
     * the following line is pulled into the L2 in the background
     * (consuming DRAM bandwidth if it is not cached). Off by
     * default; see bench_ablation_machine for its effect.
     */
    bool l2NextLinePrefetch = false;

    /**
     * Optional inclusive L3: evicting an L3 line back-invalidates it
     * from every core's private caches (the "inclusion victim"
     * effect of Sandy Bridge-class parts). Off by default.
     */
    bool inclusiveL3 = false;

    CacheConfig l1i{"L1I", 32 * 1024, 4, 4};
    CacheConfig l1d{"L1D", 32 * 1024, 8, 4};
    CacheConfig l2{"L2", 256 * 1024, 8, 12};
    CacheConfig l3{"L3", 8 * 1024 * 1024, 16, 30};
    TlbConfig itlb{128, 20};
    TlbConfig dtlb{512, 30};  ///< combined L1+L2 TLB reach
    DramConfig dram{160, 10};

    /** Total hardware contexts on the machine. */
    int totalContexts() const { return numCores * contextsPerCore; }

    /**
     * Table I row 1: Intel Xeon E5-2420 @ 1.90GHz (Sandy Bridge-EN),
     * 6 cores x 2 SMT contexts, 15MB shared L3.
     */
    static MachineConfig sandyBridgeEN();

    /**
     * Table I row 2: Intel i7-3770 @ 3.40GHz (Ivy Bridge),
     * 4 cores x 2 SMT contexts, 8MB shared L3.
     */
    static MachineConfig ivyBridge();
};

} // namespace smite::sim

#endif // SMITE_SIM_CONFIG_H
