/**
 * @file
 * Bandwidth-limited DRAM channel model.
 *
 * The channel serializes line transfers: each transfer occupies the
 * channel for a fixed number of cycles, so concurrent misses from
 * multiple contexts/cores queue behind each other. This is the shared
 * memory-bandwidth dimension of both CMP and SMT co-location.
 */

#ifndef SMITE_SIM_DRAM_H
#define SMITE_SIM_DRAM_H

#include <cstdint>

#include "sim/types.h"

namespace smite::sim {

/** Timing of the DRAM channel. */
struct DramConfig {
    Cycle accessLatency = 180;   ///< idle-channel load-to-use latency
    Cycle occupancyPerLine = 8;  ///< channel busy time per 64B transfer
};

/**
 * Single shared DRAM channel with first-come first-served queueing.
 */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &config) : config_(config) {}

    /**
     * Issue a demand line transfer at @p now.
     * @return total latency until the data is available, including
     *         any time spent waiting for the channel
     */
    Cycle
    access(Cycle now)
    {
        const Cycle start = now > nextFree_ ? now : nextFree_;
        nextFree_ = start + config_.occupancyPerLine;
        ++transfers_;
        return (start - now) + config_.accessLatency;
    }

    /**
     * Account a write-back line transfer at @p now. Write-backs
     * consume channel bandwidth but nothing waits for them.
     */
    void
    writeback(Cycle now)
    {
        const Cycle start = now > nextFree_ ? now : nextFree_;
        nextFree_ = start + config_.occupancyPerLine;
        ++transfers_;
    }

    /** Total line transfers (demand + write-back) so far. */
    std::uint64_t transfers() const { return transfers_; }

    /**
     * Next channel response event: the cycle the channel frees up and
     * a queued transfer could start without waiting. Latencies are
     * computed in full at access() time (nothing polls the channel
     * per cycle), so this feeds the machine's wake list only as a
     * bound on when a bandwidth-blocked core could make progress.
     */
    Cycle nextEventAt() const { return nextFree_; }

    /** Reset queueing state (e.g. between runs). */
    void
    reset()
    {
        nextFree_ = 0;
        transfers_ = 0;
    }

  private:
    DramConfig config_;
    Cycle nextFree_ = 0;
    std::uint64_t transfers_ = 0;
};

} // namespace smite::sim

#endif // SMITE_SIM_DRAM_H
