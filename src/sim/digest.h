/**
 * @file
 * FNV-1a 64-bit streaming digest used to build replay identity keys.
 *
 * The run-level replay store (sim/replay.h) keys on digests of machine
 * configurations and uop-stream identities. The hash only ever has to
 * be *stable within one process* (the store is in-memory), but it must
 * be exact: two different configurations colliding would replay the
 * wrong results, so every field that influences a run's outcome is
 * folded in bit-for-bit (doubles via their bit patterns).
 */

#ifndef SMITE_SIM_DIGEST_H
#define SMITE_SIM_DIGEST_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace smite::sim {

/** Incremental FNV-1a 64-bit hasher. */
class Digest {
  public:
    /** Fold in a 64-bit value. */
    Digest &
    u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= value & 0xFF;
            hash_ *= kPrime;
            value >>= 8;
        }
        return *this;
    }

    /** Fold in a double via its bit pattern. */
    Digest &
    f64(double value)
    {
        return u64(std::bit_cast<std::uint64_t>(value));
    }

    /** Fold in a string, length-prefixed so fields cannot bleed. */
    Digest &
    str(std::string_view value)
    {
        u64(value.size());
        for (const char c : value) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= kPrime;
        }
        return *this;
    }

    /** The digest so far (never returns 0: 0 means "no digest"). */
    std::uint64_t
    value() const
    {
        return hash_ == 0 ? kOffset : hash_;
    }

  private:
    static constexpr std::uint64_t kOffset = 1469598103934665603ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t hash_ = kOffset;
};

} // namespace smite::sim

#endif // SMITE_SIM_DIGEST_H
