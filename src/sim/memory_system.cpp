#include "sim/memory_system.h"

namespace smite::sim {

MemorySystem::MemorySystem(const MachineConfig &config)
    : config_(config), l3_(config.l3), dram_(config.dram)
{
    cores_.reserve(config.numCores);
    for (int c = 0; c < config.numCores; ++c) {
        cores_.push_back(CoreCaches{SetAssocCache(config.l1i),
                                    SetAssocCache(config.l1d),
                                    SetAssocCache(config.l2)});
    }
}

void
MemorySystem::handleL3Eviction(const SetAssocCache::AccessResult &result,
                               Cycle now)
{
    if (!result.evictedValid)
        return;
    if (result.evictedDirty)
        dram_.writeback(now);
    if (!config_.inclusiveL3)
        return;
    // Inclusion victims: the line leaves every private cache too;
    // dirty private copies must drain to memory.
    for (CoreCaches &caches : cores_) {
        caches.l1i.invalidate(result.evictedLine);
        if (caches.l1d.invalidate(result.evictedLine))
            dram_.writeback(now);
        if (caches.l2.invalidate(result.evictedLine))
            dram_.writeback(now);
    }
}

void
MemorySystem::writebackFromL2(Addr line, Cycle now)
{
    const auto result = l3_.access(line, true);
    if (!result.hit)
        handleL3Eviction(result, now);
}

void
MemorySystem::prefetchNextLine(int core, Addr line, Cycle now)
{
    const Addr next = line + 1;
    CoreCaches &caches = cores_[core];
    if (caches.l2.probe(next))
        return;
    // Pull the line toward the L2 in the background; nothing waits
    // for it, but an uncached line consumes DRAM bandwidth.
    const auto l3 = l3_.access(next, false);
    if (!l3.hit) {
        handleL3Eviction(l3, now);
        dram_.writeback(now);  // bandwidth for the prefetch fill
    }
    const auto l2 = caches.l2.access(next, false);
    if (l2.evictedDirty)
        writebackFromL2(l2.evictedLine, now);
}

Cycle
MemorySystem::dataAccess(int core, bool write, Addr addr, Cycle now,
                         CounterBlock &ctr, Tlb &dtlb)
{
    Cycle penalty = 0;
    if (!dtlb.access(pageAddr(addr))) {
        penalty += dtlb.walkLatency();
        if (write)
            ++ctr.dtlbStoreMisses;
        else
            ++ctr.dtlbLoadMisses;
    }

    const Addr line = lineAddr(addr);
    CoreCaches &caches = cores_[core];

    const auto l1 = caches.l1d.access(line, write);
    if (l1.hit) {
        ++ctr.l1dHits;
        return penalty + config_.l1d.hitLatency;
    }
    ++ctr.l1dMisses;
    if (l1.evictedDirty) {
        const auto wb = caches.l2.access(l1.evictedLine, true);
        if (!wb.hit && wb.evictedDirty)
            writebackFromL2(wb.evictedLine, now);
    }

    // Stream-confirmed next-line prefetch: only when the previous
    // line is resident (an ascending access pattern), so random
    // misses do not waste DRAM bandwidth on useless prefetches.
    if (config_.l2NextLinePrefetch && line > 0 &&
        caches.l2.probe(line - 1)) {
        prefetchNextLine(core, line, now);
    }

    const auto l2 = caches.l2.access(line, false);
    if (l2.hit) {
        ++ctr.l2Hits;
        return penalty + config_.l2.hitLatency;
    }
    ++ctr.l2Misses;
    if (l2.evictedDirty)
        writebackFromL2(l2.evictedLine, now);

    const auto l3 = l3_.access(line, false);
    if (l3.hit) {
        ++ctr.l3Hits;
        return penalty + config_.l3.hitLatency;
    }
    ++ctr.l3Misses;
    handleL3Eviction(l3, now);

    return penalty + config_.l3.hitLatency + dram_.access(now);
}

Cycle
MemorySystem::instrAccess(int core, Addr pc, Cycle now, CounterBlock &ctr,
                          Tlb &itlb)
{
    Cycle penalty = 0;
    if (!itlb.access(pageAddr(pc))) {
        penalty += itlb.walkLatency();
        ++ctr.itlbMisses;
    }

    const Addr line = lineAddr(pc);
    CoreCaches &caches = cores_[core];

    const auto l1 = caches.l1i.access(line, false);
    if (l1.hit)
        return penalty + config_.l1i.hitLatency;
    ++ctr.icacheMisses;

    const auto l2 = caches.l2.access(line, false);
    if (l2.hit) {
        ++ctr.l2Hits;
        return penalty + config_.l2.hitLatency;
    }
    ++ctr.l2Misses;
    if (l2.evictedDirty)
        writebackFromL2(l2.evictedLine, now);

    const auto l3 = l3_.access(line, false);
    if (l3.hit) {
        ++ctr.l3Hits;
        return penalty + config_.l3.hitLatency;
    }
    ++ctr.l3Misses;
    handleL3Eviction(l3, now);

    return penalty + config_.l3.hitLatency + dram_.access(now);
}

} // namespace smite::sim
