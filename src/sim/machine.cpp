#include "sim/machine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/digest.h"

namespace smite::sim {

namespace {

/** Base of the data address slice of placement @p i. */
constexpr Addr
dataBase(size_t i)
{
    return (2 * i + 1) * (Addr{1} << 40);
}

/** Base of the code address slice of placement @p i. */
constexpr Addr
codeBase(size_t i)
{
    return (2 * i + 2) * (Addr{1} << 40);
}

/**
 * Split the L3 capacity between the placements' hot data sets in
 * proportion to @p weights (water-filling, capped at each stream's
 * hot footprint). The result — lines granted per placement — fully
 * determines the pass-1 functional warmup, which is why it doubles as
 * the warm-state snapshot key (see runLive).
 */
std::vector<std::uint64_t>
computeBudgets(const MachineConfig &config,
               const std::vector<Placement> &placements,
               const std::vector<double> &weights)
{
    const std::uint64_t l3_lines = config.l3.sizeBytes / kLineBytes;

    std::vector<std::uint64_t> want(placements.size());
    for (size_t i = 0; i < placements.size(); ++i)
        want[i] = placements[i].source->hotFootprint() / kLineBytes;

    // Weighted water-fill of the L3 capacity.
    std::vector<std::uint64_t> budget(placements.size(), 0);
    std::uint64_t pool = l3_lines;
    bool grew = true;
    while (grew && pool > 0) {
        grew = false;
        double weight_sum = 0.0;
        for (size_t i = 0; i < placements.size(); ++i) {
            if (budget[i] < want[i])
                weight_sum += weights[i];
        }
        if (weight_sum <= 0.0)
            break;
        const std::uint64_t round_pool = pool;
        for (size_t i = 0; i < placements.size() && pool > 0; ++i) {
            if (budget[i] >= want[i])
                continue;
            const auto share = static_cast<std::uint64_t>(
                static_cast<double>(round_pool) * weights[i] /
                weight_sum);
            const std::uint64_t grant =
                std::min({std::max<std::uint64_t>(1, share),
                          want[i] - budget[i], pool});
            if (grant > 0) {
                budget[i] += grant;
                pool -= grant;
                grew = true;
            }
        }
    }
    return budget;
}

/** Lines of program text pre-warmed for placement @p i. */
std::uint64_t
codeLineCount(const MachineConfig &config, const Placement &placement)
{
    const Addr code = std::min<Addr>(placement.source->codeFootprint(),
                                     config.l3.sizeBytes / 4);
    return (code + kLineBytes - 1) / kLineBytes;
}

/**
 * Functionally install the placements' hot data sets into the shared
 * L3, @p budget lines each. Insertion is chunk-interleaved so
 * co-runners' lines mix the way a shared LRU cache mixes them.
 */
void
prewarmData(MemorySystem &mem, size_t n, std::vector<std::uint64_t> budget,
            bool fresh)
{
    // On the first pass over a fresh machine every inserted line is
    // provably new (cursors only advance, address slices are
    // disjoint), so the L3 hit scan can be skipped wholesale.
    std::vector<Addr> cursor(n, 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t i = 0; i < n; ++i) {
            if (fresh) {
                // Same chunk-interleaved insertion order, one batched
                // call per chunk instead of a call per line.
                const std::uint64_t chunk =
                    std::min<std::uint64_t>(64, budget[i]);
                if (chunk > 0) {
                    mem.prewarmDataAbsentRange(dataBase(i) + cursor[i],
                                               chunk);
                    cursor[i] += chunk * kLineBytes;
                    budget[i] -= chunk;
                    progress = true;
                }
                continue;
            }
            for (int k = 0; k < 64 && budget[i] > 0; ++k) {
                mem.prewarmData(dataBase(i) + cursor[i]);
                cursor[i] += kLineBytes;
                --budget[i];
                progress = true;
            }
        }
    }
}

/** Install the placements' program text (resident long before a run). */
void
prewarmCode(MemorySystem &mem, const MachineConfig &config,
            const std::vector<Placement> &placements, bool fresh)
{
    for (size_t i = 0; i < placements.size(); ++i) {
        if (fresh) {
            mem.prewarmDataAbsentRange(
                codeBase(i), codeLineCount(config, placements[i]));
            continue;
        }
        const Addr code = std::min<Addr>(
            placements[i].source->codeFootprint(),
            config.l3.sizeBytes / 4);
        for (Addr off = 0; off < code; off += kLineBytes)
            mem.prewarmData(codeBase(i) + off);
    }
}

} // namespace

ReplayEntry
Machine::runLive(const std::vector<Placement> &placements, Cycle warmup,
                 Cycle measure, bool snapshots) const
{
    MemorySystem mem(config_);

    // Cores are constructed lazily, only where a placement lands: an
    // unplaced core is never ticked and never issues a memory access,
    // so its absence is unobservable — while its window, TLB and MSHR
    // arrays are a measurable share of the per-run setup cost for the
    // common 1-2 core runs.
    std::vector<std::unique_ptr<SmtCore>> cores(config_.numCores);
    for (size_t i = 0; i < placements.size(); ++i) {
        const Placement &p = placements[i];
        if (p.core < 0 || p.core >= config_.numCores ||
            p.context < 0 || p.context >= config_.contextsPerCore ||
            p.source == nullptr) {
            throw std::invalid_argument("invalid placement");
        }
        if (cores[p.core] == nullptr)
            cores[p.core] = std::make_unique<SmtCore>(config_, p.core);
        // Give each context a private slice of the address space so
        // co-runners contend for capacity, never share lines.
        cores[p.core]->context(p.context).bind(p.source, dataBase(i),
                                               codeBase(i));
    }

    auto counters_of = [&](size_t i) -> const CounterBlock & {
        const Placement &p = placements[i];
        return cores[p.core]->context(p.context).counters();
    };

    // Only tick cores with at least one bound context; an idle core's
    // tick is a no-op, so skipping it is behavior-preserving. Cycle
    // counters are bulk-added per interval (one cycle per tick per
    // active context) instead of being bumped inside every tick.
    std::vector<SmtCore *> live;
    for (const auto &core : cores) {
        if (core == nullptr)
            continue;
        for (int k = 0; k < core->numContexts(); ++k) {
            if (core->context(k).active()) {
                live.push_back(core.get());
                break;
            }
        }
    }
    // Event-driven scheduling state, persistent across the warmup and
    // measurement intervals so skips carry over interval boundaries.
    // wake[i] is the earliest cycle core i could act (its idleBound);
    // idleFrom[i] marks how far its idle accounting has been applied.
    const size_t n_live = live.size();
    std::vector<Cycle> wake(n_live, 0);
    std::vector<Cycle> idle_from(n_live, 0);
    std::uint64_t idle_skipped = 0;
    std::uint64_t wake_events = 0;

    auto tick_for = [&](Cycle from, Cycle to) {
        if (referenceTicking_) {
            // Reference mode: tick every live core every cycle, no
            // skipping. The ground truth the equivalence tests compare
            // the event-driven loop against.
            for (Cycle now = from; now < to; ++now) {
                for (SmtCore *core : live)
                    core->tick(now, mem);
            }
        } else {
            // Event loop: advance straight to the earliest per-core
            // wake time. A core whose wake is beyond `now` is provably
            // a no-op at `now` (its idleBound only depends on its own
            // state, which is frozen while it sleeps), so not ticking
            // it is behavior-preserving; the fetch-stall counters its
            // skipped ticks would have bumped are replayed in bulk by
            // accountIdle just before it runs again. Cores sharing a
            // wake cycle tick in `live` order — the same relative
            // order as the reference loop — so the interleaving of
            // shared-L3/DRAM accesses is identical.
            for (;;) {
                Cycle now = kNeverCycle;
                for (size_t i = 0; i < n_live; ++i)
                    now = wake[i] < now ? wake[i] : now;
                if (now >= to)
                    break;
                for (size_t i = 0; i < n_live; ++i) {
                    if (wake[i] != now)
                        continue;
                    if (now > idle_from[i]) {
                        live[i]->accountIdle(idle_from[i], now);
                        idle_skipped += now - idle_from[i];
                    }
                    live[i]->tick(now, mem);
                    ++wake_events;
                    idle_from[i] = now + 1;
                    wake[i] = live[i]->idleBound(now + 1);
                }
            }
            // Interval boundary: settle idle accounting up to `to` so
            // the counter snapshot taken between intervals is exact.
            // Spans never cross a core's wake time (to <= wake[i]
            // here), so the stall condition is constant across each.
            for (size_t i = 0; i < n_live; ++i) {
                if (to > idle_from[i]) {
                    live[i]->accountIdle(idle_from[i], to);
                    idle_skipped += to - idle_from[i];
                    idle_from[i] = to;
                }
            }
        }
        for (SmtCore *core : live) {
            for (int k = 0; k < core->numContexts(); ++k) {
                if (core->context(k).active())
                    core->context(k).counters().cycles += to - from;
            }
        }
    };

    // Pass 1: functional warming with statically estimated shared-
    // cache claims, then half the warmup interval. Weights enter as
    // square roots: under mixed LRU traffic a faster client gains
    // occupancy sub-linearly (its own lines also age), so softening
    // dominance matches observed shared-cache behaviour better than
    // a winner-take-most split.
    std::vector<double> weights(placements.size());
    for (size_t i = 0; i < placements.size(); ++i) {
        weights[i] =
            std::sqrt(placements[i].source->residencyWeight());
    }
    std::vector<std::uint64_t> budgets =
        computeBudgets(config_, placements, weights);

    // The pass-1 warm state is a pure function of (L3 geometry, line
    // budgets, code line counts) — the insertion order is fixed chunk
    // interleaving over fixed address slices. Same-shape runs
    // therefore share one immutable post-prewarm L3 image instead of
    // each re-filling megabytes of arrays; the adopting run restores
    // touched sets copy-on-read (SetAssocCache::Snapshot).
    bool adopted = false;
    if (snapshots) {
        ReplayKey skey;
        skey.reserve(2 + 2 * placements.size());
        skey.push_back(configDigest(config_));
        skey.push_back(placements.size());
        for (size_t i = 0; i < placements.size(); ++i) {
            skey.push_back(budgets[i]);
            skey.push_back(codeLineCount(config_, placements[i]));
        }
        std::shared_ptr<const SetAssocCache::Snapshot> snap =
            SnapshotStore::global().find(skey);
        if (snap != nullptr) {
            mem.adoptL3Snapshot(std::move(snap));
            adopted = true;
        } else {
            prewarmData(mem, placements.size(), budgets, /*fresh=*/true);
            prewarmCode(mem, config_, placements, /*fresh=*/true);
            SnapshotStore::global().insert(skey, mem.captureL3Snapshot());
        }
    } else {
        prewarmData(mem, placements.size(), budgets, /*fresh=*/true);
        prewarmCode(mem, config_, placements, /*fresh=*/true);
    }
    const Cycle half_warmup = warmup / 2;
    tick_for(0, half_warmup);

    // Pass 2: under LRU, steady-state occupancy follows the achieved
    // access *rate*, so re-balance the warm sets using the IPC each
    // placement actually reached, then finish the warmup.
    if (placements.size() > 1 && half_warmup > 0) {
        for (size_t i = 0; i < placements.size(); ++i) {
            const double ipc = counters_of(i).ipc();
            weights[i] *= std::sqrt(std::max(ipc, 0.05));
        }
        prewarmData(mem, placements.size(),
                    computeBudgets(config_, placements, weights),
                    /*fresh=*/false);
        prewarmCode(mem, config_, placements,
                    /*fresh=*/false);  // keep text resident
    }
    tick_for(half_warmup, warmup);

    std::vector<CounterBlock> at_warmup(placements.size());
    for (size_t i = 0; i < placements.size(); ++i)
        at_warmup[i] = counters_of(i);

    tick_for(warmup, warmup + measure);

    ReplayEntry entry;
    entry.results.resize(placements.size());
    for (size_t i = 0; i < placements.size(); ++i)
        entry.results[i] = counters_of(i) - at_warmup[i];
    entry.idleSkipped = idle_skipped;
    entry.wakeEvents = wake_events;

    if (adopted) {
        static obs::Counter &restored = obs::Registry::global().counter(
            "machine.snapshot.bytes_restored");
        static obs::Counter &unique = obs::Registry::global().counter(
            "machine.snapshot.bytes_materialized_unique");
        restored.add(mem.l3SnapshotRestoredBytes());
        unique.add(mem.l3SnapshotFirstTouchBytes());
    }
    return entry;
}

std::vector<CounterBlock>
Machine::run(const std::vector<Placement> &placements, Cycle warmup,
             Cycle measure) const
{
    obs::Span span("machine.run",
                   std::to_string(placements.size()) + " contexts");
    fault::FaultPlan &faults = fault::FaultPlan::global();

    // Replay eligibility: every placed source must carry a stream
    // identity, and the reference tick loop opts out (it exists to
    // re-derive outcomes from scratch, never to replay them). The
    // kill-switch disables both stores (docs/ROBUSTNESS.md).
    const bool stores_on = replayEnabled() && !referenceTicking_;
    bool memo = stores_on;
    bool snapshots = stores_on;
    ReplayKey key;
    if (memo) {
        key.reserve(4 + 3 * placements.size());
        key.push_back(configDigest(config_));
        key.push_back(warmup);
        key.push_back(measure);
        key.push_back(placements.size());
        for (const Placement &p : placements) {
            const std::uint64_t digest =
                p.source != nullptr ? p.source->streamDigest() : 0;
            if (digest == 0) {
                memo = false;
                break;
            }
            key.push_back(static_cast<std::uint64_t>(p.core));
            key.push_back(static_cast<std::uint64_t>(p.context));
            key.push_back(digest);
        }
    }

    // `sim.replay` chaos site: a fired check sends this run down the
    // live path, both stores bypassed. Live and replayed outcomes are
    // byte-identical by contract, so arming the site must not change
    // any result — exactly what the chaos-determinism test asserts.
    // Keyed on the replay key, so the decision is independent of call
    // order and thread interleaving.
    if (memo && faults.enabled() && faults.armed("sim.replay")) {
        Digest key_digest;
        for (const std::uint64_t word : key)
            key_digest.u64(word);
        if (faults.shouldInject("sim.replay",
                                std::to_string(key_digest.value()))) {
            memo = false;
            snapshots = false;
        }
    }

    ReplayEntry entry;
    if (memo) {
        bool computed = false;
        const ReplayEntry &stored = replayStore().getOrCompute(key, [&] {
            computed = true;
            return runLive(placements, warmup, measure, snapshots);
        });
        if (!computed) {
            static obs::Counter &restored =
                obs::Registry::global().counter(
                    "machine.replay.bytes_restored");
            restored.add(stored.results.size() * sizeof(CounterBlock));
        }
        entry = stored;
    } else {
        entry = runLive(placements, warmup, measure, snapshots);
    }
    std::vector<CounterBlock> results = std::move(entry.results);

    // `machine.jitter` fault site: real PMUs never report the same
    // instruction count twice; perturb the retired-uop counts with
    // seeded Gaussian noise so the Lab's multi-trial aggregation has
    // something to reject. Sequence-seeded, so repeated trials of the
    // same placement see different draws — the replayed (pre-jitter)
    // entry is perturbed per call, so replay hits consume the exact
    // draw sequence a live run would. Idle plan: untouched.
    if (faults.enabled() && faults.armed("machine.jitter")) {
        for (CounterBlock &block : results) {
            if (!faults.shouldInject("machine.jitter"))
                continue;
            const double eps =
                std::max(-0.99, faults.gaussianNext("machine.jitter"));
            block.uops = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(block.uops) *
                             (1.0 + eps)));
        }
    }

    // The obs tail runs here — never inside runLive — so a replayed
    // run contributes the same metric totals as the live run it
    // replays (memo-on and memo-off runs are indistinguishable in
    // machine.* counters).
    static obs::Counter &runs =
        obs::Registry::global().counter("machine.runs");
    static obs::Counter &cycles =
        obs::Registry::global().counter("machine.cycles");
    static obs::Counter &skipped =
        obs::Registry::global().counter("machine.idle_skipped_cycles");
    static obs::Counter &wakes =
        obs::Registry::global().counter("machine.wake_events");
    static obs::Histogram &ipc_samples =
        obs::Registry::global().histogram("machine.ipc");
    runs.add();
    cycles.add(warmup + measure);
    skipped.add(entry.idleSkipped);
    wakes.add(entry.wakeEvents);
    for (const CounterBlock &block : results)
        ipc_samples.observe(block.ipc());
    return results;
}

CounterBlock
Machine::runSolo(UopSource &app, Cycle warmup, Cycle measure) const
{
    return run({Placement{0, 0, &app}}, warmup, measure).front();
}

std::vector<CounterBlock>
Machine::runPairSmt(UopSource &app, UopSource &corunner, Cycle warmup,
                    Cycle measure) const
{
    return run({Placement{0, 0, &app}, Placement{0, 1, &corunner}},
               warmup, measure);
}

std::vector<CounterBlock>
Machine::runPairCmp(UopSource &app, UopSource &corunner, Cycle warmup,
                    Cycle measure) const
{
    return run({Placement{0, 0, &app}, Placement{1, 0, &corunner}},
               warmup, measure);
}

} // namespace smite::sim
