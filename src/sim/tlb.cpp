#include "sim/tlb.h"

#include <stdexcept>

namespace smite::sim {

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    if (config.entries <= 0)
        throw std::invalid_argument("TLB must have at least one entry");
    entries_.resize(config.entries);
}

bool
Tlb::access(Addr page)
{
    ++useClock_;
    Entry *victim = &entries_[0];
    for (Entry &entry : entries_) {
        if (entry.page == page) {
            entry.lastUse = useClock_;
            return true;
        }
        if (entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    victim->page = page;
    victim->lastUse = useClock_;
    return false;
}

void
Tlb::flush()
{
    for (Entry &entry : entries_)
        entry = Entry{};
    useClock_ = 0;
}

} // namespace smite::sim
