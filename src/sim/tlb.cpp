#include "sim/tlb.h"

#include <stdexcept>

namespace smite::sim {

namespace {

/** Smallest power of two >= @p v. */
std::size_t
nextPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    if (config.entries <= 0)
        throw std::invalid_argument("TLB must have at least one entry");
    const auto n = static_cast<std::size_t>(config.entries);
    pages_.resize(n);
    prev_.resize(n);
    next_.resize(n);
    // <= 25% load factor keeps linear-probe chains short.
    table_.resize(nextPow2(4 * n));
    tableMask_ = table_.size() - 1;
    resetState();
}

void
Tlb::resetState()
{
    const auto n = static_cast<std::int32_t>(pages_.size());
    pages_.assign(pages_.size(), kNoPage);
    table_.assign(table_.size(), kNil);
    // Seed the LRU list in entry-index order: the scan model fills
    // empty entries lowest-index first, and a fresh list reproduces
    // exactly that victim sequence.
    for (std::int32_t i = 0; i < n; ++i) {
        prev_[i] = i - 1;
        next_[i] = i + 1 < n ? i + 1 : kNil;
    }
    lruHead_ = 0;
    lruTail_ = n - 1;
    lastPage_ = kNoPage;
}

void
Tlb::unlink(std::int32_t e)
{
    if (prev_[e] != kNil)
        next_[prev_[e]] = next_[e];
    else
        lruHead_ = next_[e];
    if (next_[e] != kNil)
        prev_[next_[e]] = prev_[e];
    else
        lruTail_ = prev_[e];
}

void
Tlb::pushMru(std::int32_t e)
{
    prev_[e] = lruTail_;
    next_[e] = kNil;
    if (lruTail_ != kNil)
        next_[lruTail_] = e;
    else
        lruHead_ = e;
    lruTail_ = e;
}

void
Tlb::tableInsert(Addr page, std::int32_t entry)
{
    std::size_t cell = hashOf(page) & tableMask_;
    while (table_[cell] != kNil)
        cell = (cell + 1) & tableMask_;
    table_[cell] = entry;
}

std::size_t
Tlb::cellOf(Addr page) const
{
    std::size_t cell = hashOf(page) & tableMask_;
    while (pages_[table_[cell]] != page)
        cell = (cell + 1) & tableMask_;
    return cell;
}

void
Tlb::tableErase(std::size_t cell)
{
    // Backward-shift deletion: pull later probe-chain members into
    // the hole so lookups never need tombstones.
    std::size_t i = cell;
    std::size_t j = cell;
    while (true) {
        table_[i] = kNil;
        std::size_t ideal;
        do {
            j = (j + 1) & tableMask_;
            if (table_[j] == kNil)
                return;
            ideal = hashOf(pages_[table_[j]]) & tableMask_;
            // Skip entries whose ideal cell lies cyclically in (i, j]:
            // they are reachable without passing through the hole.
        } while (i <= j ? (i < ideal && ideal <= j)
                        : (i < ideal || ideal <= j));
        table_[i] = table_[j];
        i = j;
    }
}

bool
Tlb::access(Addr page)
{
    // Repeat of the previous translation: the page's entry is already
    // the MRU tail, so the hash probe and relink are dead work.
    if (page == lastPage_)
        return true;
    lastPage_ = page;
    std::size_t cell = hashOf(page) & tableMask_;
    for (std::int32_t e = table_[cell]; e != kNil;
         cell = (cell + 1) & tableMask_, e = table_[cell]) {
        if (pages_[e] == page) {
            if (e != lruTail_) {
                unlink(e);
                pushMru(e);
            }
            return true;
        }
    }

    // Miss: evict the least recently used entry and refill it.
    const std::int32_t victim = lruHead_;
    if (pages_[victim] != kNoPage)
        tableErase(cellOf(pages_[victim]));
    pages_[victim] = page;
    tableInsert(page, victim);
    if (victim != lruTail_) {
        unlink(victim);
        pushMru(victim);
    }
    return false;
}

void
Tlb::flush()
{
    resetState();
}

} // namespace smite::sim
