/**
 * @file
 * Fundamental scalar types shared across the SMT machine simulator.
 */

#ifndef SMITE_SIM_TYPES_H
#define SMITE_SIM_TYPES_H

#include <cstdint>

namespace smite::sim {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated (virtual) byte address. */
using Addr = std::uint64_t;

/** Sentinel for "event has not happened yet". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/** Cache line size in bytes; all caches in the model use 64B lines. */
inline constexpr Addr kLineBytes = 64;

/** Page size used by the TLB models (4 KiB). */
inline constexpr Addr kPageBytes = 4096;

/** Extract the line-granular address (tag + index bits). */
constexpr Addr
lineAddr(Addr addr)
{
    return addr / kLineBytes;
}

/** Extract the page number of an address. */
constexpr Addr
pageAddr(Addr addr)
{
    return addr / kPageBytes;
}

} // namespace smite::sim

#endif // SMITE_SIM_TYPES_H
