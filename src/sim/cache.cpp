#include "sim/cache.h"

#include <cassert>
#include <stdexcept>

namespace smite::sim {

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config)
{
    if (config.assoc <= 0)
        throw std::invalid_argument("cache assoc must be positive");
    const std::uint64_t line_bytes = kLineBytes;
    const std::uint64_t lines = config.sizeBytes / line_bytes;
    if (lines == 0 || lines % config.assoc != 0) {
        throw std::invalid_argument(
            "cache size must be a positive multiple of assoc * 64B");
    }
    numSets_ = lines / config.assoc;
    lines_.resize(lines);
}

SetAssocCache::AccessResult
SetAssocCache::access(Addr line, bool write)
{
    AccessResult result;
    const std::uint64_t set = setIndex(line);
    Line *base = &lines_[set * config_.assoc];
    ++useClock_;

    Line *victim = base;
    for (int w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (entry.tag == line) {
            entry.lastUse = useClock_;
            entry.dirty = entry.dirty || write;
            result.hit = true;
            return result;
        }
        if (entry.tag == kNoTag) {
            // Prefer empty ways; an empty way always loses to another
            // empty way found earlier, which is fine.
            if (victim->tag != kNoTag || victim->lastUse > entry.lastUse)
                victim = &entry;
        } else if (victim->tag != kNoTag &&
                   entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    if (victim->tag != kNoTag) {
        result.evictedValid = true;
        result.evictedDirty = victim->dirty;
        result.evictedLine = victim->tag;
    }
    victim->tag = line;
    victim->lastUse = useClock_;
    victim->dirty = write;
    return result;
}

bool
SetAssocCache::probe(Addr line) const
{
    const std::uint64_t set = setIndex(line);
    const Line *base = &lines_[set * config_.assoc];
    for (int w = 0; w < config_.assoc; ++w) {
        if (base[w].tag == line)
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr line)
{
    const std::uint64_t set = setIndex(line);
    Line *base = &lines_[set * config_.assoc];
    for (int w = 0; w < config_.assoc; ++w) {
        if (base[w].tag == line) {
            base[w] = Line{};
            return true;
        }
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (Line &entry : lines_)
        entry = Line{};
    useClock_ = 0;
}

} // namespace smite::sim
