#include "sim/cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define SMITE_CACHE_SIMD 1
#include <immintrin.h>
#endif

namespace smite::sim {

namespace {

/** File-scope alias of SetAssocCache::kNoTag (private). */
constexpr Addr kNoTag = ~Addr{0};

/**
 * Index of the first way whose tag equals @p needle, or -1. This scan
 * runs for every cache access (hits included) and for every miss a
 * second time to find an empty way, so it is the single hottest
 * comparison loop in the simulator.
 */
int
findWayScalar(const Addr *tags, Addr needle, int assoc)
{
    for (int w = 0; w < assoc; ++w) {
        if (tags[w] == needle)
            return w;
    }
    return -1;
}

/**
 * Combined lookup: way holding @p line (preferred) or, failing that,
 * the first empty way, in one pass over the tags. Fill-heavy callers
 * (prewarm) would otherwise pay two full scans per insert.
 */
struct WayPair {
    int hit;    ///< way holding the line, or -1
    int empty;  ///< first invalid way, or -1 (valid only on miss)
};

WayPair
findWaysScalar(const Addr *tags, Addr line, int assoc)
{
    WayPair r{-1, -1};
    for (int w = 0; w < assoc; ++w) {
        if (tags[w] == line) {
            r.hit = w;
            return r;
        }
        if (r.empty < 0 && tags[w] == kNoTag)
            r.empty = w;
    }
    return r;
}

#ifdef SMITE_CACHE_SIMD
#pragma GCC push_options
#pragma GCC target("avx2")
int
findWayAvx2(const Addr *tags, Addr needle, int assoc)
{
    const __m256i splat =
        _mm256_set1_epi64x(static_cast<long long>(needle));
    int w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, splat)));
        if (m != 0)
            return w + __builtin_ctz(static_cast<unsigned>(m));
    }
    for (; w < assoc; ++w) {
        if (tags[w] == needle)
            return w;
    }
    return -1;
}

WayPair
findWaysAvx2(const Addr *tags, Addr line, int assoc)
{
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(line));
    const __m256i none =
        _mm256_set1_epi64x(static_cast<long long>(kNoTag));
    WayPair r{-1, -1};
    int w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int hit = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, want)));
        if (hit != 0) {
            r.hit = w + __builtin_ctz(static_cast<unsigned>(hit));
            return r;  // a hit makes any empty way irrelevant
        }
        if (r.empty < 0) {
            const int inv = _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, none)));
            if (inv != 0)
                r.empty = w + __builtin_ctz(static_cast<unsigned>(inv));
        }
    }
    for (; w < assoc; ++w) {
        if (tags[w] == line) {
            r.hit = w;
            return r;
        }
        if (r.empty < 0 && tags[w] == kNoTag)
            r.empty = w;
    }
    return r;
}
#pragma GCC pop_options

int
findWay(const Addr *tags, Addr needle, int assoc)
{
    // Resolved once; a single well-predicted branch afterwards. All
    // real-machine associativities are multiples of 4, so the vector
    // loop covers the full set.
    static const bool have_avx2 = __builtin_cpu_supports("avx2");
    return have_avx2 ? findWayAvx2(tags, needle, assoc)
                     : findWayScalar(tags, needle, assoc);
}

WayPair
findWays(const Addr *tags, Addr line, int assoc)
{
    static const bool have_avx2 = __builtin_cpu_supports("avx2");
    return have_avx2 ? findWaysAvx2(tags, line, assoc)
                     : findWaysScalar(tags, line, assoc);
}
#else
int
findWay(const Addr *tags, Addr needle, int assoc)
{
    return findWayScalar(tags, needle, assoc);
}

WayPair
findWays(const Addr *tags, Addr line, int assoc)
{
    return findWaysScalar(tags, line, assoc);
}
#endif

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config), assoc_(config.assoc)
{
    if (config.assoc <= 0)
        throw std::invalid_argument("cache assoc must be positive");
    const std::uint64_t line_bytes = kLineBytes;
    const std::uint64_t lines = config.sizeBytes / line_bytes;
    if (lines == 0 || lines % config.assoc != 0) {
        throw std::invalid_argument(
            "cache size must be a positive multiple of assoc * 64B");
    }
    numSets_ = lines / config.assoc;
    setsPow2_ = (numSets_ & (numSets_ - 1)) == 0;
    setMask_ = numSets_ - 1;
    tags_.assign(lines, kNoTag);
    lastUse_.assign(lines, 0);
    dirty_.assign(lines, 0);
    // An associativity that collides with the sentinel (never a real
    // machine) simply starts broken and always scans.
    fillWays_.assign(numSets_,
                     assoc_ < kNoPrefix ? std::uint8_t{0} : kNoPrefix);
}

SetAssocCache::AccessResult
SetAssocCache::access(Addr line, bool write)
{
    AccessResult result;
    // Repeat of the immediately preceding access: the line is the
    // array's MRU way, so this is a hit whose stamp refresh is
    // order-preserving dead work (see lastLine_) — skip it all.
    if (line == lastLine_) {
        if (write)
            dirty_[lastIdx_] = 1;
        result.hit = true;
        return result;
    }
    const std::uint64_t set = setIndex(line);
    touchSet(set);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const Addr *tags = tags_.data() + base;
    const int assoc = assoc_;
    ++useClock_;

    const WayPair ways = findWays(tags, line, assoc);
    if (ways.hit >= 0) {
        lastUse_[base + ways.hit] = useClock_;
        if (write)
            dirty_[base + ways.hit] = 1;
        lastLine_ = line;
        lastIdx_ = base + ways.hit;
        result.hit = true;
        return result;
    }

    // Miss: the first empty way is the victim while the set is still
    // filling (empty ways hold stamp 0, valid ways stamps >= 1, so
    // this is what an argmin over stamps would pick, first index
    // winning ties). Only a full set needs the LRU stamp scan — the
    // fill-heavy prewarm path never touches the stamp array at all.
    int victim = ways.empty;
    if (victim >= 0) {
        // Under the prefix invariant the first empty way IS the fill
        // count, so allocating it just extends the prefix.
        if (fillWays_[set] != kNoPrefix) {
            assert(victim == fillWays_[set]);
            ++fillWays_[set];
        }
    }
    if (victim < 0) {
        const std::uint64_t *use = lastUse_.data() + base;
        victim = 0;
        std::uint64_t best = use[0];
        for (int w = 1; w < assoc; ++w) {
            if (use[w] < best) {
                best = use[w];
                victim = w;
            }
        }
    }

    const std::size_t v = base + victim;
    if (tags_[v] != kNoTag) {
        result.evictedValid = true;
        result.evictedDirty = dirty_[v] != 0;
        result.evictedLine = tags_[v];
    }
    tags_[v] = line;
    lastUse_[v] = useClock_;
    dirty_[v] = static_cast<std::uint8_t>(write);
    lastLine_ = line;
    lastIdx_ = v;
    return result;
}

SetAssocCache::AccessResult
SetAssocCache::insertAbsent(Addr line)
{
    AccessResult result;
    const std::uint64_t set = setIndex(line);
    touchSet(set);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const Addr *tags = tags_.data() + base;
    const int assoc = assoc_;
    ++useClock_;
    assert(findWay(tags, line, assoc) < 0 &&
           "insertAbsent: line already present");

    // Same victim selection as the access() miss path: first empty
    // way while the set fills, LRU stamp argmin once it is full.
    // With the prefix invariant intact the first empty way is known
    // without reading a single tag — the common case while prewarm
    // streams megabytes of lines into a fresh cache.
    const std::uint8_t fill = fillWays_[set];
    int victim;
    if (fill == kNoPrefix) {
        victim = findWay(tags, kNoTag, assoc);
    } else if (fill < assoc) {
        victim = fill;
        fillWays_[set] = fill + 1;
    } else {
        victim = -1;  // prefix full: every way valid, go to LRU
    }
    if (victim < 0) {
        const std::uint64_t *use = lastUse_.data() + base;
        victim = 0;
        std::uint64_t best = use[0];
        for (int w = 1; w < assoc; ++w) {
            if (use[w] < best) {
                best = use[w];
                victim = w;
            }
        }
    }

    const std::size_t v = base + victim;
    if (tags_[v] != kNoTag) {
        result.evictedValid = true;
        result.evictedDirty = dirty_[v] != 0;
        result.evictedLine = tags_[v];
    }
    tags_[v] = line;
    lastUse_[v] = useClock_;
    dirty_[v] = 0;
    // The insert may have evicted the memoized line; the new line is
    // now the MRU way, so point the memo at it.
    lastLine_ = line;
    lastIdx_ = v;
    return result;
}

void
SetAssocCache::insertAbsentRange(Addr line, std::uint64_t count)
{
    // The fast loop needs set = line & mask so consecutive lines walk
    // consecutive sets; non-power-of-two geometries take the slow path.
    if (!setsPow2_) {
        for (std::uint64_t k = 0; k < count; ++k)
            insertAbsent(line + k);
        return;
    }
    const int assoc = assoc_;
    for (std::uint64_t k = 0; k < count; ++k) {
        const Addr l = line + k;
        const std::uint64_t set = l & setMask_;
        touchSet(set);
        const std::uint8_t fill = fillWays_[set];
        // fill < assoc implies the prefix invariant holds (kNoPrefix
        // exceeds any real associativity) and way `fill` is empty, so
        // this insert cannot evict: it is exactly the insertAbsent()
        // prefix path with the victim known up front.
        if (fill < assoc) {
            const std::size_t v =
                static_cast<std::size_t>(set) * assoc + fill;
            fillWays_[set] = fill + 1;
            tags_[v] = l;
            lastUse_[v] = ++useClock_;
            // dirty_[v] is already 0: a way beyond the fill prefix was
            // either never valid or was invalidated as the last prefix
            // way, and both paths leave the dirty bit cleared.
            lastLine_ = l;
            lastIdx_ = v;
        } else {
            insertAbsent(l);
        }
    }
}

bool
SetAssocCache::probe(Addr line) const
{
    const std::uint64_t set = setIndex(line);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const Addr *tags = tags_.data() + base;
    // A probe is non-mutating, so an unmaterialized set is answered
    // straight out of the snapshot instead of being copied in.
    if (snapshot_ &&
        (snapPending_[set >> 6] >> (set & 63) & 1) != 0) {
        tags = snapshot_->tags.data() + base;
    }
    return findWay(tags, line, assoc_) >= 0;
}

bool
SetAssocCache::invalidate(Addr line)
{
    const std::uint64_t set = setIndex(line);
    touchSet(set);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const int w = findWay(tags_.data() + base, line, assoc_);
    if (w < 0)
        return false;
    tags_[base + w] = kNoTag;
    lastUse_[base + w] = 0;
    dirty_[base + w] = 0;
    lastLine_ = kNoTag;  // the memo may point at the dropped line
    // Dropping the last prefix way just shortens the prefix; a hole
    // anywhere else breaks it for good (until flush).
    const std::uint8_t fill = fillWays_[set];
    if (fill != kNoPrefix)
        fillWays_[set] = (w == fill - 1) ? fill - 1 : kNoPrefix;
    return true;
}

void
SetAssocCache::flush()
{
    tags_.assign(tags_.size(), kNoTag);
    lastUse_.assign(lastUse_.size(), 0);
    dirty_.assign(dirty_.size(), 0);
    fillWays_.assign(fillWays_.size(),
                     assoc_ < kNoPrefix ? std::uint8_t{0} : kNoPrefix);
    useClock_ = 0;
    lastLine_ = kNoTag;
    lastIdx_ = 0;
    snapshot_.reset();
    snapPending_.clear();
}

std::size_t
SetAssocCache::Snapshot::bytes() const
{
    return tags.size() * sizeof(Addr) +
           lastUse.size() * sizeof(std::uint64_t) +
           dirty.size() + fillWays.size() +
           // touched + everMaterialized bitmaps (same word count).
           2 * touched.size() * sizeof(std::uint64_t);
}

std::shared_ptr<const SetAssocCache::Snapshot>
SetAssocCache::captureSnapshot() const
{
    auto snap = std::make_shared<Snapshot>();
    snap->tags = tags_;
    snap->lastUse = lastUse_;
    snap->dirty = dirty_;
    snap->fillWays = fillWays_;
    snap->useClock = useClock_;
    snap->lastLine = lastLine_;
    snap->lastIdx = lastIdx_;
    // A set differs from fresh iff it holds a valid tag or its fill
    // counter moved (invalidate can empty a set's tags while leaving
    // the counter perturbed).
    const std::uint8_t fresh_fill =
        assoc_ < kNoPrefix ? std::uint8_t{0} : kNoPrefix;
    snap->touched.assign((numSets_ + 63) / 64, 0);
    // Value-initialized: no set has been materialized by any adopter.
    snap->everMaterialized =
        std::make_unique<std::atomic<std::uint64_t>[]>((numSets_ + 63) /
                                                       64);
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        bool touched = fillWays_[set] != fresh_fill;
        for (int w = 0; !touched && w < assoc_; ++w)
            touched = tags_[base + w] != kNoTag;
        if (touched)
            snap->touched[set >> 6] |= std::uint64_t{1} << (set & 63);
    }
    return snap;
}

void
SetAssocCache::adoptSnapshot(std::shared_ptr<const Snapshot> snapshot)
{
    assert(useClock_ == 0 && snapshot_ == nullptr &&
           "adoptSnapshot requires a fresh array");
    assert(snapshot->tags.size() == tags_.size() &&
           "snapshot geometry mismatch");
    snapshot_ = std::move(snapshot);
    // Eager part: the per-set fill counters (the insert fast path
    // reads them before any row), the touched bitmap, and the scalar
    // clock/memo state. The lastLine_ fast path in access() writes
    // dirty_[lastIdx_] without going through touchSet(), so the set
    // the memo points into is the one row restored up front.
    fillWays_ = snapshot_->fillWays;
    snapPending_ = snapshot_->touched;
    useClock_ = snapshot_->useClock;
    lastLine_ = snapshot_->lastLine;
    lastIdx_ = snapshot_->lastIdx;
    restoredBytes_ = 0;
    firstTouchBytes_ = 0;
    if (lastLine_ != kNoTag)
        materializeSet(lastIdx_ / static_cast<std::size_t>(assoc_));
}

void
SetAssocCache::materializeSet(std::uint64_t set)
{
    const std::size_t word = set >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (set & 63);
    if ((snapPending_[word] & bit) == 0)
        return;
    snapPending_[word] &= ~bit;
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::size_t n = static_cast<std::size_t>(assoc_);
    std::copy_n(snapshot_->tags.begin() + base, n, tags_.begin() + base);
    std::copy_n(snapshot_->lastUse.begin() + base, n,
                lastUse_.begin() + base);
    std::copy_n(snapshot_->dirty.begin() + base, n, dirty_.begin() + base);
    const std::uint64_t bytes =
        n * (sizeof(Addr) + sizeof(std::uint64_t) + 1);
    restoredBytes_ += bytes;
    if (snapshot_->claimFirstTouch(set))
        firstTouchBytes_ += bytes;
}

} // namespace smite::sim
