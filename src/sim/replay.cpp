#include "sim/replay.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "sim/digest.h"

namespace smite::sim {

namespace {

bool
envEnabled()
{
    // Kill-switch contract (docs/ROBUSTNESS.md): exactly "0" disables
    // both stores; anything else (including unset) leaves them on.
    const char *v = std::getenv("SMITE_SIM_MEMO");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{envEnabled()};
    return flag;
}

} // namespace

bool
replayEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

bool
setReplayEnabled(bool on)
{
    return enabledFlag().exchange(on, std::memory_order_relaxed);
}

std::uint64_t
configDigest(const MachineConfig &config)
{
    Digest d;
    d.str("machine.config");
    d.str(config.name);
    d.str(config.microarchitecture);
    d.f64(config.ghz);
    d.str(config.kernel);
    d.u64(static_cast<std::uint64_t>(config.numCores));
    d.u64(static_cast<std::uint64_t>(config.contextsPerCore));
    const CoreConfig &core = config.core;
    d.u64(static_cast<std::uint64_t>(core.fetchWidth));
    d.u64(static_cast<std::uint64_t>(core.issuePerContext));
    d.u64(static_cast<std::uint64_t>(core.issuePerCore));
    d.u64(static_cast<std::uint64_t>(core.windowSize));
    d.u64(static_cast<std::uint64_t>(core.schedDepth));
    d.u64(static_cast<std::uint64_t>(core.mshrs));
    d.u64(core.redirectPenalty);
    d.u64(static_cast<std::uint64_t>(core.fetchPolicy));
    d.u64(config.l2NextLinePrefetch ? 1 : 0);
    d.u64(config.inclusiveL3 ? 1 : 0);
    for (const CacheConfig *c :
         {&config.l1i, &config.l1d, &config.l2, &config.l3}) {
        d.str(c->name);
        d.u64(c->sizeBytes);
        d.u64(static_cast<std::uint64_t>(c->assoc));
        d.u64(c->hitLatency);
    }
    for (const TlbConfig *t : {&config.itlb, &config.dtlb}) {
        d.u64(static_cast<std::uint64_t>(t->entries));
        d.u64(t->walkLatency);
    }
    d.u64(config.dram.accessLatency);
    d.u64(config.dram.occupancyPerLine);
    return d.value();
}

core::MemoCache<ReplayKey, ReplayEntry> &
replayStore()
{
    static core::MemoCache<ReplayKey, ReplayEntry> store;
    static const bool instrumented =
        (store.instrument("machine.replay"), true);
    (void)instrumented;
    return store;
}

SnapshotStore &
SnapshotStore::global()
{
    static SnapshotStore store;
    return store;
}

std::shared_ptr<const SetAssocCache::Snapshot>
SnapshotStore::find(const ReplayKey &key)
{
    static obs::Counter &hits =
        obs::Registry::global().counter("machine.snapshot.hits");
    static obs::Counter &misses =
        obs::Registry::global().counter("machine.snapshot.misses");
    std::shared_lock<std::shared_mutex> read(mu_);
    const auto it = images_.find(key);
    if (it == images_.end()) {
        misses.add();
        return nullptr;
    }
    hits.add();
    return it->second;
}

void
SnapshotStore::insert(const ReplayKey &key,
                      std::shared_ptr<const SetAssocCache::Snapshot> snap)
{
    static obs::Counter &captured =
        obs::Registry::global().counter("machine.snapshot.bytes_captured");
    std::unique_lock<std::shared_mutex> write(mu_);
    if (images_.size() >= kMaxEntries)
        return;
    const auto [it, inserted] = images_.try_emplace(key);
    if (!inserted)
        return;
    captured.add(snap->bytes());
    it->second = std::move(snap);
}

std::size_t
SnapshotStore::size() const
{
    std::shared_lock<std::shared_mutex> read(mu_);
    return images_.size();
}

} // namespace smite::sim
