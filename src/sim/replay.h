/**
 * @file
 * Run-level replay: interval memoization and warm-state snapshots.
 *
 * Machine::run() binds (and therefore resets) every placed uop
 * source, so a run's outcome is a pure function of
 *
 *   (machine config, per-placement (core, context, stream identity),
 *    warmup cycles, measure cycles)
 *
 * — which is exactly what the Lab, the fig-grid harnesses and the
 * benchmark repeats key their requests on. Two stores exploit that:
 *
 *  - the **ReplayStore** memoizes whole run outcomes (the counter
 *    deltas plus the event-loop tallies) in a single-flight
 *    `core::MemoCache`, so a repeated run replays its recorded
 *    results without constructing a machine or ticking a cycle;
 *  - the **SnapshotStore** shares the post-prewarm L3 image between
 *    runs whose pass-1 functional warmup is provably identical (same
 *    geometry, same per-placement line budgets), so a replay *miss*
 *    still skips re-filling megabytes of cache arrays — the adopted
 *    snapshot is immutable and restored copy-on-read, set by set
 *    (SetAssocCache::Snapshot).
 *
 * Byte-identity contract: with the stores enabled, every observable
 * output — counters returned, fault draws consumed, obs metrics
 * totals — is byte-identical to the `SMITE_SIM_MEMO=0` disabled path
 * (pinned by tests/test_replay.cpp and the tier-1 memo-on/off
 * compare). Sources that cannot promise a stream identity
 * (UopSource::streamDigest() == 0) and reference-ticking runs bypass
 * the ReplayStore automatically.
 */

#ifndef SMITE_SIM_REPLAY_H
#define SMITE_SIM_REPLAY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/memo_cache.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace smite::sim {

/**
 * Is run-level replay (ReplayStore + SnapshotStore) enabled?
 * Defaults to on; the environment kill-switch `SMITE_SIM_MEMO=0`
 * (read once at first query) and setReplayEnabled() turn it off.
 */
bool replayEnabled();

/**
 * Programmatically enable/disable replay (tests and benchmarks that
 * need both paths in one process). @return the previous setting.
 */
bool setReplayEnabled(bool on);

/** Digest of every outcome-relevant MachineConfig field. */
std::uint64_t configDigest(const MachineConfig &config);

/** Everything Machine::run() produces, recorded for replay. */
struct ReplayEntry {
    std::vector<CounterBlock> results;  ///< pre-jitter counter deltas
    std::uint64_t idleSkipped = 0;      ///< event-loop cycles skipped
    std::uint64_t wakeEvents = 0;       ///< event-loop core wakes
};

/**
 * Replay keys are flat digest vectors (ordered, cheap to compare):
 * [config digest, warmup, measure, n, then (core, context, stream
 * digest) per placement] for runs; [config digest, n, then per-
 * placement data-line budget and code-line count] for snapshots.
 */
using ReplayKey = std::vector<std::uint64_t>;

/**
 * The process-wide run-outcome store, instrumented as
 * `machine.replay.{hits,misses,waits}`. Replay hits additionally
 * count `machine.replay.bytes_restored` (see machine.cpp).
 */
core::MemoCache<ReplayKey, ReplayEntry> &replayStore();

/**
 * Bounded store of shared immutable post-prewarm L3 images.
 * Publishes `machine.snapshot.{hits,misses,bytes_captured}`;
 * `machine.snapshot.bytes_restored` counts the bytes runs actually
 * materialize out of adopted images (the copy-on-read win: for short
 * runs it is a small fraction of bytes_captured).
 */
class SnapshotStore
{
  public:
    static SnapshotStore &global();

    /** The image for @p key, or nullptr. Counts a hit or a miss. */
    std::shared_ptr<const SetAssocCache::Snapshot>
    find(const ReplayKey &key);

    /**
     * Publish an image (first writer wins; dropped when the store is
     * at capacity — images are megabytes, so the store stays small
     * and a dropped insert only costs re-warming).
     */
    void insert(const ReplayKey &key,
                std::shared_ptr<const SetAssocCache::Snapshot> snap);

    /** Entries currently held. */
    std::size_t size() const;

  private:
    /** Each image is ~2 MB for an 8 MB L3: keep the store bounded. */
    static constexpr std::size_t kMaxEntries = 32;

    mutable std::shared_mutex mu_;
    std::map<ReplayKey,
             std::shared_ptr<const SetAssocCache::Snapshot>>
        images_;
};

} // namespace smite::sim

#endif // SMITE_SIM_REPLAY_H
