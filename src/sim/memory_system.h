/**
 * @file
 * Memory hierarchy of one machine: per-core L1I/L1D/L2, shared L3,
 * and a shared bandwidth-limited DRAM channel.
 *
 * SMT co-location shares every level (both contexts of a core probe
 * the same L1/L2); CMP co-location shares only the L3 and DRAM.
 */

#ifndef SMITE_SIM_MEMORY_SYSTEM_H
#define SMITE_SIM_MEMORY_SYSTEM_H

#include <memory>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/dram.h"
#include "sim/tlb.h"
#include "sim/types.h"

namespace smite::sim {

/**
 * Owns the cache arrays and DRAM channel of one machine and services
 * data and instruction accesses, accounting hits/misses into the
 * requesting context's counters.
 *
 * Latencies are cumulative per level (an L2 hit costs the configured
 * L2 latency in total, not L1 + L2). TLB walks add on top.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &config);

    /**
     * Service a load or store.
     *
     * @param core index of the requesting core
     * @param write true for stores
     * @param addr virtual data address
     * @param now issue cycle
     * @param ctr counters of the requesting context
     * @param dtlb data TLB of the requesting context
     * @return load-to-use latency in cycles
     */
    Cycle dataAccess(int core, bool write, Addr addr, Cycle now,
                     CounterBlock &ctr, Tlb &dtlb);

    /**
     * Service an instruction-line fetch.
     *
     * @return latency in cycles; equals the L1I hit latency when the
     *         line is resident (hidden by the pipeline)
     */
    Cycle instrAccess(int core, Addr pc, Cycle now, CounterBlock &ctr,
                      Tlb &itlb);

    /**
     * Functionally install a line into the shared L3 (no counters,
     * no timing). Used to pre-warm long-lived working sets that a
     * cycle-accurate warmup interval could never fill.
     */
    void prewarmData(Addr addr) { l3_.access(lineAddr(addr), false); }

    /**
     * prewarmData for a line the caller knows is not yet resident
     * (the first prewarm pass over a fresh machine): skips the L3
     * hit scan, with identical resulting state.
     */
    void
    prewarmDataAbsent(Addr addr)
    {
        l3_.insertAbsent(lineAddr(addr));
    }

    /**
     * prewarmDataAbsent for @p count consecutive lines starting at
     * @p addr, batched into one pass over the L3 arrays.
     */
    void
    prewarmDataAbsentRange(Addr addr, std::uint64_t count)
    {
        l3_.insertAbsentRange(lineAddr(addr), count);
    }

    /**
     * Capture the shared L3's post-prewarm state as an immutable
     * snapshot, shareable across machines of the same config. Only
     * the L3 participates: prewarm never touches the private levels
     * or the TLBs (both start every run empty).
     */
    std::shared_ptr<const SetAssocCache::Snapshot>
    captureL3Snapshot() const
    {
        return l3_.captureSnapshot();
    }

    /** Adopt a captured L3 image in place of re-running prewarm. */
    void
    adoptL3Snapshot(std::shared_ptr<const SetAssocCache::Snapshot> snap)
    {
        l3_.adoptSnapshot(std::move(snap));
    }

    /** Bytes the adopted L3 snapshot materialized so far this run. */
    std::uint64_t
    l3SnapshotRestoredBytes() const
    {
        return l3_.snapshotRestoredBytes();
    }

    /**
     * Subset of l3SnapshotRestoredBytes() this run materialized first
     * across all adopters of the image (SetAssocCache docs).
     */
    std::uint64_t
    l3SnapshotFirstTouchBytes() const
    {
        return l3_.snapshotFirstTouchBytes();
    }

    /** L1D hit latency (used to detect misses for MSHR occupancy). */
    Cycle l1dHitLatency() const { return config_.l1d.hitLatency; }

    /** L1I hit latency (fetch stalls only above this). */
    Cycle l1iHitLatency() const { return config_.l1i.hitLatency; }

    /** Shared DRAM channel (exposed for bandwidth statistics). */
    const DramChannel &dram() const { return dram_; }

    /**
     * Next memory-system progress event (currently: the DRAM channel
     * freeing up). The hierarchy computes full latencies at access
     * time — nothing in it is polled per cycle — so this exists to
     * feed the machine wake list, not to drive state transitions.
     */
    Cycle nextEventAt() const { return dram_.nextEventAt(); }

  private:
    struct CoreCaches {
        SetAssocCache l1i;
        SetAssocCache l1d;
        SetAssocCache l2;
    };

    /** Handle a dirty victim cascading out of the L2. */
    void writebackFromL2(Addr line, Cycle now);

    /** Write-backs and (if inclusive) back-invalidation of an L3 victim. */
    void handleL3Eviction(const SetAssocCache::AccessResult &result,
                          Cycle now);

    /** Background next-line prefetch toward a core's L2. */
    void prefetchNextLine(int core, Addr line, Cycle now);

    MachineConfig config_;
    std::vector<CoreCaches> cores_;
    SetAssocCache l3_;
    DramChannel dram_;
};

} // namespace smite::sim

#endif // SMITE_SIM_MEMORY_SYSTEM_H
