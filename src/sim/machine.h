/**
 * @file
 * Whole-machine model: N SMT cores, shared L3 and DRAM, plus the
 * co-location run protocols used throughout the paper (solo, SMT
 * pair, CMP pair, and many-instance mixes).
 */

#ifndef SMITE_SIM_MACHINE_H
#define SMITE_SIM_MACHINE_H

#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "sim/replay.h"
#include "sim/smt_core.h"
#include "sim/types.h"
#include "sim/uop.h"

namespace smite::sim {

/** Default cycles to run before counters start accumulating. */
inline constexpr Cycle kDefaultWarmupCycles = 50'000;

/** Default measurement interval. */
inline constexpr Cycle kDefaultMeasureCycles = 200'000;

/**
 * Binds one uop stream to one hardware context for a run.
 */
struct Placement {
    int core = 0;           ///< physical core index
    int context = 0;        ///< SMT context slot on that core
    UopSource *source = nullptr;  ///< stream to execute (not owned)
};

/**
 * A complete machine. Machines are cheap to construct; every run()
 * builds fresh microarchitectural state so runs are independent and
 * reproducible.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config) : config_(config) {}

    /**
     * An independent machine with the same configuration. A Machine
     * holds no microarchitectural state between runs (run() builds it
     * fresh on each call, which is also why run() is const and safe
     * to call concurrently); cloning exists so parallel drivers can
     * be explicit that per-run state never aliases.
     */
    Machine clone() const { return Machine(config_); }

    /**
     * Execute the placed streams for warmup + measure cycles.
     *
     * Each placed context is given a disjoint address-space offset so
     * contexts contend for capacity but never share lines.
     *
     * When every placed source carries a stream identity
     * (UopSource::streamDigest() != 0) and replay is enabled
     * (sim/replay.h), a repeated run is served out of the run-level
     * ReplayStore without ticking — byte-identical to a live run by
     * contract. The `sim.replay` fault site, when armed, forces
     * individual runs down the live path (chaos coverage for the
     * byte-identity claim).
     *
     * @return one CounterBlock per placement (measurement interval
     *         only), in placement order
     */
    std::vector<CounterBlock>
    run(const std::vector<Placement> &placements,
        Cycle warmup = kDefaultWarmupCycles,
        Cycle measure = kDefaultMeasureCycles) const;

    /** Run one stream alone on core 0, context 0. */
    CounterBlock runSolo(UopSource &app,
                         Cycle warmup = kDefaultWarmupCycles,
                         Cycle measure = kDefaultMeasureCycles) const;

    /**
     * SMT co-location: both streams on the two contexts of core 0.
     * @return counters for {app, corunner}
     */
    std::vector<CounterBlock>
    runPairSmt(UopSource &app, UopSource &corunner,
               Cycle warmup = kDefaultWarmupCycles,
               Cycle measure = kDefaultMeasureCycles) const;

    /**
     * CMP co-location: the streams on context 0 of cores 0 and 1
     * (sharing only L3 and DRAM).
     * @return counters for {app, corunner}
     */
    std::vector<CounterBlock>
    runPairCmp(UopSource &app, UopSource &corunner,
               Cycle warmup = kDefaultWarmupCycles,
               Cycle measure = kDefaultMeasureCycles) const;

    /** Machine description. */
    const MachineConfig &config() const { return config_; }

    /**
     * Force the reference cycle-by-cycle tick loop instead of the
     * event-driven wake list. Slow; exists so equivalence tests can
     * compare the two execution modes on identical inputs. Both modes
     * are byte-identical by construction (see docs/PERFORMANCE.md).
     */
    void setReferenceTicking(bool on) { referenceTicking_ = on; }

  private:
    /**
     * The actual simulation: build fresh state, prewarm (or adopt a
     * shared post-prewarm L3 snapshot when @p snapshots is true and
     * one exists), tick the intervals, return the counter deltas and
     * event-loop tallies. No observability side effects beyond the
     * snapshot counters — the run() wrapper replays the obs tail so
     * metric totals match whether the entry was computed or replayed.
     */
    ReplayEntry runLive(const std::vector<Placement> &placements,
                        Cycle warmup, Cycle measure,
                        bool snapshots) const;

    MachineConfig config_;
    bool referenceTicking_ = false;
};

} // namespace smite::sim

#endif // SMITE_SIM_MACHINE_H
