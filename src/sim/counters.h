/**
 * @file
 * Per-hardware-context performance counters.
 *
 * The counter block doubles as the simulated PMU: the eleven rates the
 * paper's PMU baseline model uses (Section IV-B1) are derived from it
 * via pmuRates().
 */

#ifndef SMITE_SIM_COUNTERS_H
#define SMITE_SIM_COUNTERS_H

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.h"
#include "sim/uop.h"

namespace smite::sim {

/** Number of PMU-derived rates exposed for the baseline model. */
inline constexpr int kNumPmuRates = 11;

/** Names of the PMU rates, in pmuRates() order. */
inline constexpr std::array<std::string_view, kNumPmuRates> kPmuRateNames = {
    "instructions/cycle",
    "iTLB-misses/cycle",
    "dTLB-load-misses/cycle",
    "dTLB-store-misses/cycle",
    "i-cache-misses/cycle",
    "L1D-hits/cycle",
    "L2-hits/cycle",
    "L2-misses/cycle",
    "L3-hits/cycle",
    "MEM-hits/cycle",
    "branch-mispredictions/cycle",
};

/**
 * Event counts accumulated by one hardware context during a run
 * (deltas over the measurement interval).
 */
struct CounterBlock {
    std::uint64_t cycles = 0;       ///< elapsed core cycles
    std::uint64_t uops = 0;         ///< uops issued (we retire at issue)
    std::array<std::uint64_t, kNumPorts> portIssued{};  ///< per-port uops

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;     ///< == DRAM demand accesses
    std::uint64_t icacheMisses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbLoadMisses = 0;
    std::uint64_t dtlbStoreMisses = 0;

    std::uint64_t fetchStallCycles = 0;  ///< cycles front end was blocked

    /** Instructions per cycle over the interval. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(uops) /
                                 static_cast<double>(cycles);
    }

    /** Utilization (issued uops per cycle) of one issue port. */
    double
    portUtilization(int port) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(portIssued.at(port)) /
                                 static_cast<double>(cycles);
    }

    /**
     * The eleven per-cycle PMU rates of the paper's baseline model:
     * instructions, iTLB misses, dTLB load misses, dTLB store misses,
     * i-cache misses, L1D hits, L2 hits, L2 misses, L3 hits, MEM hits
     * and branch mispredictions, each divided by cycles.
     */
    std::array<double, kNumPmuRates>
    pmuRates() const
    {
        const double c = cycles == 0 ? 1.0 : static_cast<double>(cycles);
        return {
            static_cast<double>(uops) / c,
            static_cast<double>(itlbMisses) / c,
            static_cast<double>(dtlbLoadMisses) / c,
            static_cast<double>(dtlbStoreMisses) / c,
            static_cast<double>(icacheMisses) / c,
            static_cast<double>(l1dHits) / c,
            static_cast<double>(l2Hits) / c,
            static_cast<double>(l2Misses) / c,
            static_cast<double>(l3Hits) / c,
            static_cast<double>(l3Misses) / c,
            static_cast<double>(branchMispredicts) / c,
        };
    }

    /** Element-wise difference (this - earlier), used for warmup. */
    CounterBlock
    operator-(const CounterBlock &other) const
    {
        CounterBlock d;
        d.cycles = cycles - other.cycles;
        d.uops = uops - other.uops;
        for (int p = 0; p < kNumPorts; ++p)
            d.portIssued[p] = portIssued[p] - other.portIssued[p];
        d.loads = loads - other.loads;
        d.stores = stores - other.stores;
        d.branches = branches - other.branches;
        d.branchMispredicts = branchMispredicts - other.branchMispredicts;
        d.l1dHits = l1dHits - other.l1dHits;
        d.l1dMisses = l1dMisses - other.l1dMisses;
        d.l2Hits = l2Hits - other.l2Hits;
        d.l2Misses = l2Misses - other.l2Misses;
        d.l3Hits = l3Hits - other.l3Hits;
        d.l3Misses = l3Misses - other.l3Misses;
        d.icacheMisses = icacheMisses - other.icacheMisses;
        d.itlbMisses = itlbMisses - other.itlbMisses;
        d.dtlbLoadMisses = dtlbLoadMisses - other.dtlbLoadMisses;
        d.dtlbStoreMisses = dtlbStoreMisses - other.dtlbStoreMisses;
        d.fetchStallCycles = fetchStallCycles - other.fetchStallCycles;
        return d;
    }
};

} // namespace smite::sim

#endif // SMITE_SIM_COUNTERS_H
