#include "sim/config.h"

namespace smite::sim {

MachineConfig
MachineConfig::sandyBridgeEN()
{
    MachineConfig config;
    config.name = "Intel Xeon E5-2420 @ 1.90GHz";
    config.microarchitecture = "Sandy Bridge-EN";
    config.ghz = 1.9;
    config.numCores = 6;
    config.l3 = CacheConfig{"L3", 15 * 1024 * 1024, 20, 30};
    // Server part: three DDR3 channels give roughly 3x the desktop
    // bandwidth, which the 12-context co-location experiments need.
    config.dram = DramConfig{160, 4};
    return config;
}

MachineConfig
MachineConfig::ivyBridge()
{
    MachineConfig config;
    config.name = "Intel i7-3770 @ 3.40GHz";
    config.microarchitecture = "Ivy Bridge";
    config.ghz = 3.4;
    config.numCores = 4;
    config.l3 = CacheConfig{"L3", 8 * 1024 * 1024, 16, 30};
    return config;
}

} // namespace smite::sim
