/**
 * @file
 * One SMT hardware context: private front end, in-flight uop window,
 * register dependence scoreboard, MSHRs and TLBs.
 *
 * Execution model (restricted out-of-order): every cycle the context
 * fetches uops from its UopSource into a window, then issues ready
 * uops oldest-first subject to (a) register dependences, (b) issue
 * port availability shared with the sibling context, (c) per-context
 * and per-core issue width, and (d) MSHR availability for loads that
 * miss. Uops retire (free their window slot) in program order once
 * issued. This is the cheapest model in which port contention, ILP
 * and memory-level parallelism all emerge naturally — exactly the
 * effects the paper's Rulers measure.
 *
 * The window is a ring buffer indexed with wrap-if arithmetic (never
 * `%`, whose runtime divide dominated the issue scan), uops are
 * pulled from the UopSource in batches to amortize the virtual
 * dispatch, and the MSHR scan memoizes the earliest-free deadline so
 * a full set of outstanding misses is rejected in O(1). All of it is
 * behavior-preserving (enforced by test_golden_sim).
 */

#ifndef SMITE_SIM_CONTEXT_H
#define SMITE_SIM_CONTEXT_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "sim/tlb.h"
#include "sim/types.h"
#include "sim/uop.h"

namespace smite::sim {

/**
 * One hardware thread of an SMT core.
 */
class HardwareContext
{
  public:
    /**
     * Size of the dependence scoreboard ring. The window size plus
     * the maximum dependence distance (63) must stay below this.
     */
    static constexpr int kDepRing = 256;

    HardwareContext(const CoreConfig &core_config,
                    const TlbConfig &itlb_config,
                    const TlbConfig &dtlb_config);

    /**
     * Attach a uop stream and give the context a private address
     * space (all data/instruction addresses are offset so distinct
     * contexts contend for cache capacity, never share lines).
     *
     * @param source stream to execute, or nullptr to idle the context
     * @param addr_base offset added to every data address
     * @param pc_base offset added to every instruction address
     */
    void bind(UopSource *source, Addr addr_base, Addr pc_base);

    /** Is a workload bound to this context? */
    bool active() const { return source_ != nullptr; }

    /**
     * Fetch stage for this cycle.
     *
     * @param now current cycle
     * @param budget remaining core fetch slots this cycle
     * @param core owning core's index (for cache routing)
     * @param mem machine memory system
     * @return number of uops fetched (consumed from @p budget)
     */
    int fetch(Cycle now, int budget, int core, MemorySystem &mem);

    /**
     * Issue stage for this cycle.
     *
     * @param now current cycle
     * @param port_busy in/out bitmask of issue ports taken this cycle
     *        (shared between the sibling contexts of a core)
     * @param core_budget in/out remaining core-wide dispatch slots
     * @param core owning core's index
     * @param mem machine memory system
     * @return number of uops issued
     */
    int issue(Cycle now, unsigned &port_busy, int &core_budget, int core,
              MemorySystem &mem);

    /** Uops currently in the window (ICOUNT fetch arbitration). */
    int inFlight() const { return count_; }

    /**
     * Earliest future cycle at which this context's fetch or issue
     * stage could have any observable effect, given its state now —
     * or @p now itself when a stage would act this very cycle (no
     * skip possible). Ticks strictly before the bound are no-ops
     * except for the per-cycle fetch-stall counter, which the caller
     * replays in bulk via addFetchStallCycles() (see stallCounts()).
     * Inactive contexts never act (kNeverCycle).
     */
    Cycle
    idleBound(Cycle now) const
    {
        if (!active())
            return kNeverCycle;
        Cycle fetch_bound;
        if (waitingBranch_)
            fetch_bound = kNeverCycle;  // blocked until a (future) issue
        else if (fetchStallUntil_ > now)
            fetch_bound = fetchStallUntil_;
        else if (count_ == windowCap_)
            fetch_bound = kNeverCycle;  // full; frees only via issue
        else
            return now;  // fetch would insert uops this cycle
        if (count_ == 0)
            return fetch_bound;  // nothing to issue until a fetch
        if (noIssueBefore_ > now) {
            return fetch_bound < noIssueBefore_ ? fetch_bound
                                                : noIssueBefore_;
        }
        return now;  // issue would scan this cycle
    }

    /**
     * Would each cycle in an idle stretch starting at @p now bump the
     * fetch-stall counter? (Exactly the condition under which fetch()
     * counts a stalled cycle; constant across the stretch, since the
     * deciding state only changes when a stage acts.)
     */
    bool
    stallCounts(Cycle now) const
    {
        return active() && (waitingBranch_ || fetchStallUntil_ > now);
    }

    /** Bulk-account fetch-stall cycles for skipped idle ticks. */
    void addFetchStallCycles(Cycle n) { counters_.fetchStallCycles += n; }

    /** Counter block (mutable: memory system accounts into it). */
    CounterBlock &counters() { return counters_; }
    const CounterBlock &counters() const { return counters_; }

  private:
    struct Slot {
        Uop uop;
        std::uint64_t seq = 0;
    };

    /** Uops pulled per UopSource::nextBatch() call. */
    static constexpr int kFetchBatch = 16;

    /**
     * Earliest cycle the operands of @p slot can be available (exact
     * for issued producers; now + 1 for unissued ones). The slot is
     * ready at @p now iff the returned bound is <= @p now.
     */
    Cycle slotReadyAt(const Slot &slot, Cycle now) const;

    /**
     * Find a free MSHR, or -1. Picks the lowest free index, like the
     * linear scan it replaced; when all MSHRs are busy the earliest
     * deadline is memoized so the (common) repeat query next cycle
     * fails without rescanning.
     */
    int freeMshr(Cycle now);

    /** Pick a free port from @p mask honouring @p port_busy, or -1. */
    int pickPort(unsigned mask, unsigned port_busy);

    CoreConfig coreConfig_;
    Tlb itlb_;
    Tlb dtlb_;
    CounterBlock counters_;

    UopSource *source_ = nullptr;
    Addr addrBase_ = 0;
    Addr pcBase_ = 0;

    std::vector<Slot> window_;

    /**
     * Per-slot readiness memo, kept outside Slot so the issue scan
     * streams through a dense 8-byte-per-slot array: a lower bound on
     * the first cycle the slot's operands can be ready (issued
     * producers complete at a known cycle, unissued ones no earlier
     * than next cycle, so re-evaluating readiness before the bound is
     * provably futile; 0 = not yet evaluated).
     */
    std::vector<Cycle> slotState_;

    /**
     * One bit per window slot, set iff the slot holds an unissued
     * uop. The issue scan measured ~3 issued-but-unretired "holes"
     * for every unissued slot it actually examines, so it enumerates
     * this bitmap with count-trailing-zeros instead of walking the
     * ring slot by slot. Invariant: bit set <=> slot is in the window
     * and unissued (cleared at issue, so retired slots are always
     * clear; fetch sets the bit on insert).
     */
    std::vector<std::uint64_t> unissuedBits_;

    int windowCap_ = 0;
    int head_ = 0;
    int count_ = 0;

    /** Read-ahead buffer over source_ (order-preserving). */
    std::array<Uop, kFetchBatch> fetchBuf_{};
    int fetchBufPos_ = 0;
    int fetchBufLen_ = 0;

    /** Completion cycle per seq (mod kDepRing); kNeverCycle = pending. */
    std::array<Cycle, kDepRing> completion_{};
    std::uint64_t nextSeq_ = 0;

    Cycle fetchStallUntil_ = 0;
    bool waitingBranch_ = false;       ///< fetch blocked on mispredict
    std::uint64_t waitingBranchSeq_ = 0;

    std::vector<Cycle> mshrBusyUntil_;
    Cycle mshrAllBusyUntil_ = 0;  ///< no MSHR frees before this cycle

    /**
     * A failed issue scan with an unchanged window is deterministic:
     * nothing can issue again before the minimum retry bound the scan
     * computed, so until that cycle (or the next fetch into the
     * window, which resets this to 0) issue() returns without
     * scanning. Skipped scans have no observable effects — no
     * counters move and retirement would find nothing issued.
     */
    Cycle noIssueBefore_ = 0;
    Addr lastFetchLine_ = ~Addr{0};
    int portRotor_ = 0;  ///< rotates port preference for multi-port uops
};

} // namespace smite::sim

#endif // SMITE_SIM_CONTEXT_H
