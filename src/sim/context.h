/**
 * @file
 * One SMT hardware context: private front end, in-flight uop window,
 * register dependence scoreboard, MSHRs and TLBs.
 *
 * Execution model (restricted out-of-order): every cycle the context
 * fetches uops from its UopSource into a window, then issues ready
 * uops oldest-first subject to (a) register dependences, (b) issue
 * port availability shared with the sibling context, (c) per-context
 * and per-core issue width, and (d) MSHR availability for loads that
 * miss. Uops retire (free their window slot) in program order once
 * issued. This is the cheapest model in which port contention, ILP
 * and memory-level parallelism all emerge naturally — exactly the
 * effects the paper's Rulers measure.
 *
 * The window is stored structure-of-arrays: flat per-slot arrays
 * (type, ready time, sequence number) instead of 32-byte slot
 * records, and readiness is propagated eagerly along forward
 * dependence edges at producer-issue time, so every unissued slot
 * carries an *exact* operand-ready cycle. Future ready cycles park in
 * a calendar ring that drains into a ready bitmap as time advances;
 * the issue scan enumerates only that bitmap, so its cost tracks the
 * number of issuable uops, not the window size. All of it is
 * behavior-preserving (enforced by test_golden_sim).
 */

#ifndef SMITE_SIM_CONTEXT_H
#define SMITE_SIM_CONTEXT_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "sim/tlb.h"
#include "sim/types.h"
#include "sim/uop.h"

namespace smite::sim {

/**
 * One hardware thread of an SMT core.
 */
class HardwareContext
{
  public:
    /**
     * Size of the dependence scoreboard ring. The window size plus
     * the maximum dependence distance (63) must stay below this.
     */
    static constexpr int kDepRing = 256;

    HardwareContext(const CoreConfig &core_config,
                    const TlbConfig &itlb_config,
                    const TlbConfig &dtlb_config);

    /**
     * Attach a uop stream and give the context a private address
     * space (all data/instruction addresses are offset so distinct
     * contexts contend for cache capacity, never share lines).
     *
     * @param source stream to execute, or nullptr to idle the context
     * @param addr_base offset added to every data address
     * @param pc_base offset added to every instruction address
     */
    void bind(UopSource *source, Addr addr_base, Addr pc_base);

    /** Is a workload bound to this context? */
    bool active() const { return source_ != nullptr; }

    /**
     * Fetch stage for this cycle.
     *
     * @param now current cycle
     * @param budget remaining core fetch slots this cycle
     * @param core owning core's index (for cache routing)
     * @param mem machine memory system
     * @return number of uops fetched (consumed from @p budget)
     */
    int fetch(Cycle now, int budget, int core, MemorySystem &mem);

    /**
     * Issue stage for this cycle.
     *
     * @param now current cycle
     * @param port_busy in/out bitmask of issue ports taken this cycle
     *        (shared between the sibling contexts of a core)
     * @param core_budget in/out remaining core-wide dispatch slots
     * @param core owning core's index
     * @param mem machine memory system
     * @param solo_on_core true when this is the only active context on
     *        its core this cycle. Enables the exact MSHR-bound scan
     *        skip with rotor replay (see replaySkippedScans): with no
     *        sibling, skipped scans see an empty port mask and a full
     *        dispatch budget every cycle, so their port-rotor effects
     *        are deterministic and can be replayed in bulk.
     * @return number of uops issued
     */
    int issue(Cycle now, unsigned &port_busy, int &core_budget, int core,
              MemorySystem &mem, bool solo_on_core);

    /** Uops currently in the window (ICOUNT fetch arbitration). */
    int inFlight() const { return count_; }

    /**
     * Earliest future cycle at which this context's fetch or issue
     * stage could have any observable effect, given its state now —
     * or @p now itself when a stage would act this very cycle (no
     * skip possible). Ticks strictly before the bound are no-ops
     * except for the per-cycle fetch-stall counter, which the caller
     * replays in bulk via addFetchStallCycles() (see stallCounts()).
     * Inactive contexts never act (kNeverCycle).
     */
    Cycle
    idleBound(Cycle now) const
    {
        if (!active())
            return kNeverCycle;
        Cycle fetch_bound;
        if (waitingBranch_)
            fetch_bound = kNeverCycle;  // blocked until a (future) issue
        else if (fetchStallUntil_ > now)
            fetch_bound = fetchStallUntil_;
        else if (count_ == windowCap_)
            fetch_bound = kNeverCycle;  // full; frees only via issue
        else
            return now;  // fetch would insert uops this cycle
        if (count_ == 0)
            return fetch_bound;  // nothing to issue until a fetch
        if (noIssueBefore_ > now) {
            return fetch_bound < noIssueBefore_ ? fetch_bound
                                                : noIssueBefore_;
        }
        return now;  // issue would scan this cycle
    }

    /**
     * Would each cycle in an idle stretch starting at @p now bump the
     * fetch-stall counter? (Exactly the condition under which fetch()
     * counts a stalled cycle; constant across the stretch, since the
     * deciding state only changes when a stage acts.)
     */
    bool
    stallCounts(Cycle now) const
    {
        return active() && (waitingBranch_ || fetchStallUntil_ > now);
    }

    /** Bulk-account fetch-stall cycles for skipped idle ticks. */
    void addFetchStallCycles(Cycle n) { counters_.fetchStallCycles += n; }

    /** Counter block (mutable: memory system accounts into it). */
    CounterBlock &counters() { return counters_; }
    const CounterBlock &counters() const { return counters_; }

  private:
    /** Uops pulled per UopSource::nextBatch() call. */
    static constexpr int kFetchBatch = 16;

    /**
     * Find a free MSHR, or -1. Picks the lowest free index, like the
     * linear scan it replaced; when all MSHRs are busy the earliest
     * deadline is memoized so the (common) repeat query next cycle
     * fails without rescanning.
     */
    int freeMshr(Cycle now);

    /** Pick a free port from @p mask honouring @p port_busy, or -1. */
    int pickPort(unsigned mask, unsigned port_busy);

    /**
     * Resolve the forward dependence edges of an issuing producer at
     * window slot @p idx completing at @p finish: every registered
     * waiter folds the completion cycle into its ready time; waiters
     * whose last pending producer this was become exactly-timed.
     */
    void resolveWaiters(int idx, Cycle finish);

    /** File slot @p idx to become issuable at its ready cycle @p r. */
    void pushCalendar(int idx, Cycle r);

    /**
     * Move every slot whose ready cycle lies in (lastDrain_, now]
     * from the calendar into the ready bitmap.
     */
    void drainCalendar(Cycle now);

    /**
     * Earliest cycle after @p now with a calendar entry, or
     * kNeverCycle. May undershoot for entries a full calendar lap
     * ahead (alias) — an undershot bound only costs a futile rescan,
     * never a missed one.
     */
    Cycle calendarNextEvent(Cycle now) const;

    /**
     * Advance the port rotor as if @p scans additional zero-issue
     * scans had run, each making the pickPort call sequence recorded
     * in replayMasks_ against an empty busy mask. Valid only in the
     * solo-on-core regime, where skipped scans are cycle-for-cycle
     * identical to the recorded one (frozen window, empty port mask,
     * fresh budget). The rotor orbit has at most kNumPorts states, so
     * arbitrarily long spans replay in O(kNumPorts * |masks|).
     */
    void replaySkippedScans(Cycle scans);

    CoreConfig coreConfig_;
    Tlb itlb_;
    Tlb dtlb_;
    CounterBlock counters_;

    UopSource *source_ = nullptr;
    Addr addrBase_ = 0;
    Addr pcBase_ = 0;

    // ---------------------------------------------------------------
    // Window storage, structure-of-arrays. A slot's index is its
    // sequence number modulo the window capacity (inserts and seqs
    // advance in lockstep from bind()), so no slot->seq map is
    // needed beyond slotSeq_ itself.
    // ---------------------------------------------------------------

    /** Uop type per slot (selects the issue path). */
    std::vector<std::uint8_t> slotType_;

    /**
     * Port mask and execution latency per slot, resolved once at
     * fetch (portMask()/execLatency() of the slot's type). The issue
     * scan re-examines rejected candidates scan after scan, so it
     * reads these flat lanes instead of re-deriving both through the
     * per-candidate type switch. Values are identical by construction
     * — pure functions of the type — so issue order is unchanged.
     */
    std::vector<std::uint8_t> slotPort_;
    std::vector<Cycle> slotLat_;

    /** Data address per slot (loads/stores only). */
    std::vector<Addr> slotAddr_;

    /** Sequence number per slot (dependence ring, branch resolve). */
    std::vector<std::uint64_t> slotSeq_;

    /**
     * Exact cycle the slot's operands are available. While any
     * producer is unissued the field holds the partial maximum over
     * already-known producer completions and slotPending_ is nonzero;
     * once the last producer issues it becomes exact and the slot
     * enters either the ready bitmap or the calendar below.
     */
    std::vector<Cycle> slotReady_;

    /** Count of unissued producers feeding the slot (0, 1 or 2). */
    std::vector<std::uint8_t> slotPending_;

    /**
     * Forward dependence edges, producer -> waiters. Edge id
     * `2*slot + operand`; slotWaiters_ heads an intrusive list per
     * producer slot, edgeNext_ chains it. Edges are drained exactly
     * once, when the producer issues, so recycled slots start clean.
     */
    std::vector<std::int32_t> slotWaiters_;
    std::vector<std::int32_t> edgeNext_;

    /**
     * One bit per window slot, set iff the slot holds an unissued
     * uop. Retirement and scheduler-depth ranking enumerate it with
     * count-trailing-zeros; issued-but-unretired "holes" cost
     * nothing. Invariant: bit set <=> slot in the window, unissued.
     */
    std::vector<std::uint64_t> unissuedBits_;

    /**
     * One bit per window slot, set iff the slot is unissued, has no
     * pending producers, and its exact ready cycle has passed (<= the
     * last drained cycle). The issue scan enumerates only this
     * bitmap, so scan cost tracks the number of issuable uops rather
     * than the window size. Slots whose ready cycle is still in the
     * future wait in the calendar below and are drained in as
     * simulated time reaches them.
     */
    std::vector<std::uint64_t> readyBits_;

    /**
     * Ready-time calendar: a ring of kCalendar cycle buckets, each an
     * intrusive list (calNext_) of slots whose exact ready cycle maps
     * to it. calOcc_ is a bitmap of non-empty buckets, used both to
     * drain elapsed buckets without touching empty ones and to find
     * the next future readiness event for the scan-skip bound. An
     * entry whose ready cycle aliases (ready > drain cycle, same
     * bucket) is re-pushed and fires one lap later.
     */
    static constexpr int kCalendar = 1024;
    std::vector<std::int32_t> calHead_;
    std::vector<std::int32_t> calNext_;
    std::array<std::uint64_t, kCalendar / 64> calOcc_{};
    Cycle lastDrain_ = 0;

    int windowCap_ = 0;
    int head_ = 0;
    int count_ = 0;
    int unissued_ = 0;  ///< set bits in unissuedBits_, kept incrementally

    /** Read-ahead buffer over source_ (order-preserving). */
    std::array<Uop, kFetchBatch> fetchBuf_{};
    int fetchBufPos_ = 0;
    int fetchBufLen_ = 0;

    /** Completion cycle per seq (mod kDepRing); kNeverCycle = pending. */
    std::array<Cycle, kDepRing> completion_{};
    std::uint64_t nextSeq_ = 0;

    Cycle fetchStallUntil_ = 0;
    bool waitingBranch_ = false;       ///< fetch blocked on mispredict
    std::uint64_t waitingBranchSeq_ = 0;

    std::vector<Cycle> mshrBusyUntil_;
    Cycle mshrAllBusyUntil_ = 0;  ///< no MSHR frees before this cycle

    /**
     * A failed issue scan with an unchanged window is deterministic:
     * nothing can issue again before the minimum retry bound the scan
     * computed, so until that cycle (or the next fetch into the
     * window, which resets this to 0) issue() returns without
     * scanning. Skipped scans have no observable effects — no
     * counters move and retirement would find nothing issued.
     */
    Cycle noIssueBefore_ = 0;
    Addr lastFetchLine_ = ~Addr{0};
    int portRotor_ = 0;  ///< rotates port preference for multi-port uops

    /**
     * Rotor-replay state for the solo-on-core exact MSHR skip. A
     * zero-issue scan whose only rejections are MSHR-full may set
     * noIssueBefore_ to the earliest MSHR deadline instead of now+1 —
     * but the reference execution would have re-run that scan every
     * cycle, advancing the port rotor via the rejected slots' pickPort
     * calls. replayMasks_ records that scan's pickPort masks in order;
     * the next real scan first replays the skipped-scan rotor
     * evolution so the rotor (and thus every later port assignment)
     * stays byte-identical to the reference.
     */
    std::vector<unsigned> replayMasks_;
    Cycle lastScanCycle_ = kNeverCycle;
    bool replayValid_ = false;
};

} // namespace smite::sim

#endif // SMITE_SIM_CONTEXT_H
