/**
 * @file
 * One SMT hardware context: private front end, in-flight uop window,
 * register dependence scoreboard, MSHRs and TLBs.
 *
 * Execution model (restricted out-of-order): every cycle the context
 * fetches uops from its UopSource into a window, then issues ready
 * uops oldest-first subject to (a) register dependences, (b) issue
 * port availability shared with the sibling context, (c) per-context
 * and per-core issue width, and (d) MSHR availability for loads that
 * miss. Uops retire (free their window slot) in program order once
 * issued. This is the cheapest model in which port contention, ILP
 * and memory-level parallelism all emerge naturally — exactly the
 * effects the paper's Rulers measure.
 */

#ifndef SMITE_SIM_CONTEXT_H
#define SMITE_SIM_CONTEXT_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "sim/tlb.h"
#include "sim/types.h"
#include "sim/uop.h"

namespace smite::sim {

/**
 * One hardware thread of an SMT core.
 */
class HardwareContext
{
  public:
    /**
     * Size of the dependence scoreboard ring. The window size plus
     * the maximum dependence distance (63) must stay below this.
     */
    static constexpr int kDepRing = 256;

    HardwareContext(const CoreConfig &core_config,
                    const TlbConfig &itlb_config,
                    const TlbConfig &dtlb_config);

    /**
     * Attach a uop stream and give the context a private address
     * space (all data/instruction addresses are offset so distinct
     * contexts contend for cache capacity, never share lines).
     *
     * @param source stream to execute, or nullptr to idle the context
     * @param addr_base offset added to every data address
     * @param pc_base offset added to every instruction address
     */
    void bind(UopSource *source, Addr addr_base, Addr pc_base);

    /** Is a workload bound to this context? */
    bool active() const { return source_ != nullptr; }

    /**
     * Fetch stage for this cycle.
     *
     * @param now current cycle
     * @param budget remaining core fetch slots this cycle
     * @param core owning core's index (for cache routing)
     * @param mem machine memory system
     * @return number of uops fetched (consumed from @p budget)
     */
    int fetch(Cycle now, int budget, int core, MemorySystem &mem);

    /**
     * Issue stage for this cycle.
     *
     * @param now current cycle
     * @param port_busy in/out bitmask of issue ports taken this cycle
     *        (shared between the sibling contexts of a core)
     * @param core_budget in/out remaining core-wide dispatch slots
     * @param core owning core's index
     * @param mem machine memory system
     * @return number of uops issued
     */
    int issue(Cycle now, unsigned &port_busy, int &core_budget, int core,
              MemorySystem &mem);

    /** Advance per-cycle accounting (call once per tick when active). */
    void tickAccounting() { ++counters_.cycles; }

    /** Uops currently in the window (ICOUNT fetch arbitration). */
    int inFlight() const { return count_; }

    /** Counter block (mutable: memory system accounts into it). */
    CounterBlock &counters() { return counters_; }
    const CounterBlock &counters() const { return counters_; }

  private:
    struct Slot {
        Uop uop;
        std::uint64_t seq = 0;
        bool issued = false;
    };

    Slot &slotAt(int i) { return window_[(head_ + i) % windowCap_]; }

    /** Are the register operands of @p slot available at @p now? */
    bool operandsReady(const Slot &slot, Cycle now) const;

    /** Find a free MSHR, or -1. */
    int freeMshr(Cycle now) const;

    /** Pick a free port from @p mask honouring @p port_busy, or -1. */
    int pickPort(unsigned mask, unsigned port_busy);

    CoreConfig coreConfig_;
    Tlb itlb_;
    Tlb dtlb_;
    CounterBlock counters_;

    UopSource *source_ = nullptr;
    Addr addrBase_ = 0;
    Addr pcBase_ = 0;

    std::vector<Slot> window_;
    int windowCap_ = 0;
    int head_ = 0;
    int count_ = 0;

    /** Completion cycle per seq (mod kDepRing); kNeverCycle = pending. */
    std::array<Cycle, kDepRing> completion_{};
    std::uint64_t nextSeq_ = 0;

    Cycle fetchStallUntil_ = 0;
    bool waitingBranch_ = false;       ///< fetch blocked on mispredict
    std::uint64_t waitingBranchSeq_ = 0;

    std::vector<Cycle> mshrBusyUntil_;
    Addr lastFetchLine_ = ~Addr{0};
    int portRotor_ = 0;  ///< rotates port preference for multi-port uops
};

} // namespace smite::sim

#endif // SMITE_SIM_CONTEXT_H
