/**
 * @file
 * Fully-associative LRU translation lookaside buffer model.
 *
 * A TLB miss costs a fixed page-walk latency that is added to the
 * access latency of the triggering load/store/instruction fetch.
 */

#ifndef SMITE_SIM_TLB_H
#define SMITE_SIM_TLB_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace smite::sim {

/** Geometry and timing of a TLB. */
struct TlbConfig {
    int entries = 64;
    Cycle walkLatency = 30;
};

/**
 * Fully-associative LRU TLB. Each hardware context owns private
 * instruction and data TLBs (SMT processors typically partition or
 * tag them; private models the common case).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Translate a page.
     * @param page page number (addr / 4096)
     * @return true on hit; on miss the entry is filled
     */
    bool access(Addr page);

    /** Latency added to the access on a miss. */
    Cycle walkLatency() const { return config_.walkLatency; }

    /** Drop all translations. */
    void flush();

  private:
    struct Entry {
        Addr page = kNoPage;
        std::uint64_t lastUse = 0;
    };

    static constexpr Addr kNoPage = ~Addr{0};

    TlbConfig config_;
    std::uint64_t useClock_ = 0;
    std::vector<Entry> entries_;
};

} // namespace smite::sim

#endif // SMITE_SIM_TLB_H
