/**
 * @file
 * Fully-associative LRU translation lookaside buffer model.
 *
 * A TLB miss costs a fixed page-walk latency that is added to the
 * access latency of the triggering load/store/instruction fetch.
 *
 * Lookups are O(1): an open-addressing page index finds the entry and
 * an intrusive doubly-linked list maintains exact LRU order, replacing
 * the seed model's O(entries) linear scan (the data TLB has 512
 * entries and is probed by every load and store, which made that scan
 * the simulator's hottest loop). Hit/miss decisions and victim choice
 * are bit-identical to the scan model (enforced by test_golden_sim).
 */

#ifndef SMITE_SIM_TLB_H
#define SMITE_SIM_TLB_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace smite::sim {

/** Geometry and timing of a TLB. */
struct TlbConfig {
    int entries = 64;
    Cycle walkLatency = 30;
};

/**
 * Fully-associative LRU TLB. Each hardware context owns private
 * instruction and data TLBs (SMT processors typically partition or
 * tag them; private models the common case).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Translate a page.
     * @param page page number (addr / 4096)
     * @return true on hit; on miss the entry is filled
     */
    bool access(Addr page);

    /** Latency added to the access on a miss. */
    Cycle walkLatency() const { return config_.walkLatency; }

    /** Drop all translations. */
    void flush();

  private:
    static constexpr Addr kNoPage = ~Addr{0};
    static constexpr std::int32_t kNil = -1;

    /** Bit mixer spreading page numbers over the hash table. */
    static std::uint64_t
    hashOf(Addr page)
    {
        std::uint64_t x = page;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ull;
        x ^= x >> 33;
        return x;
    }

    /** Detach entry @p e from the LRU list. */
    void unlink(std::int32_t e);

    /** Append entry @p e at the MRU end of the list. */
    void pushMru(std::int32_t e);

    /** Insert a resident page into the hash table. */
    void tableInsert(Addr page, std::int32_t entry);

    /** Remove the (present) page of cell @p cell, back-shifting. */
    void tableErase(std::size_t cell);

    /** Table cell holding @p page; the page must be resident. */
    std::size_t cellOf(Addr page) const;

    /** Rebuild the empty-TLB state (list 0..n-1, clear table). */
    void resetState();

    TlbConfig config_;

    std::vector<Addr> pages_;         ///< per-entry resident page
    std::vector<std::int32_t> prev_;  ///< LRU list links (kNil = end)
    std::vector<std::int32_t> next_;
    std::int32_t lruHead_ = kNil;     ///< least recently used entry
    std::int32_t lruTail_ = kNil;     ///< most recently used entry

    std::vector<std::int32_t> table_;  ///< page -> entry, linear probing
    std::size_t tableMask_ = 0;

    /**
     * Repeat-access memo: the page of the last access(). After any
     * access the page's entry is the MRU list tail, and re-accessing
     * the MRU entry changes nothing, so a back-to-back translation of
     * the same page is a hit needing one compare. Dominant on the
     * data path: a 64B-line stream stays on one 4K page for ~512
     * consecutive accesses. Reset by flush().
     */
    Addr lastPage_ = kNoPage;
};

} // namespace smite::sim

#endif // SMITE_SIM_TLB_H
