/**
 * @file
 * Micro-operation (uop) definitions and the Sandy Bridge style port
 * binding table (paper, Figure 1).
 *
 * The simulated execution cluster has six issue ports. Ports 0, 1 and
 * 5 host functional units, ports 2 and 3 are load ports, and port 4 is
 * the store port. Several operations are port-specific: FP_MUL only
 * executes on port 0, FP_ADD only on port 1, FP_SHF (shuffle) and
 * branches only on port 5, while simple integer ALU ops can go to any
 * of ports 0, 1 and 5. This port specificity is the property the
 * paper's functional-unit Rulers exploit.
 */

#ifndef SMITE_SIM_UOP_H
#define SMITE_SIM_UOP_H

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace smite::sim {

/** Number of issue ports on the modeled core. */
inline constexpr int kNumPorts = 6;

/** Kinds of micro-operations the trace generators can emit. */
enum class UopType : std::uint8_t {
    kFpMul,   ///< floating point multiply (port 0)
    kFpAdd,   ///< floating point add (port 1)
    kFpShf,   ///< floating point shuffle (port 5)
    kIntAdd,  ///< integer ALU op (ports 0, 1, 5)
    kIntMul,  ///< integer multiply (port 1)
    kBranch,  ///< conditional/indirect branch (port 5)
    kLoad,    ///< memory load (ports 2, 3)
    kStore,   ///< memory store (port 4)
    kNop,     ///< consumes front-end bandwidth but no issue port
    kNumTypes
};

/** Count of distinct uop types. */
inline constexpr int kNumUopTypes = static_cast<int>(UopType::kNumTypes);

/** Bitmask of ports (bit p set = port p allowed) per uop type. */
constexpr std::uint8_t
portMask(UopType type)
{
    switch (type) {
      case UopType::kFpMul:  return 0b000001;  // port 0
      case UopType::kFpAdd:  return 0b000010;  // port 1
      case UopType::kFpShf:  return 0b100000;  // port 5
      case UopType::kIntAdd: return 0b100011;  // ports 0, 1, 5
      case UopType::kIntMul: return 0b000010;  // port 1
      case UopType::kBranch: return 0b100000;  // port 5
      case UopType::kLoad:   return 0b001100;  // ports 2, 3
      case UopType::kStore:  return 0b010000;  // port 4
      default:               return 0;         // kNop needs no port
    }
}

/**
 * Execution latency in cycles from issue to result availability.
 * Loads add their memory-hierarchy latency on top of this.
 */
constexpr Cycle
execLatency(UopType type)
{
    switch (type) {
      case UopType::kFpMul:  return 5;
      case UopType::kFpAdd:  return 3;
      case UopType::kFpShf:  return 1;
      case UopType::kIntAdd: return 1;
      case UopType::kIntMul: return 3;
      case UopType::kBranch: return 1;
      case UopType::kLoad:   return 0;  // memory system supplies latency
      case UopType::kStore:  return 1;
      default:               return 1;
    }
}

/** Human-readable name of a uop type. */
constexpr std::string_view
uopTypeName(UopType type)
{
    switch (type) {
      case UopType::kFpMul:  return "FP_MUL";
      case UopType::kFpAdd:  return "FP_ADD";
      case UopType::kFpShf:  return "FP_SHF";
      case UopType::kIntAdd: return "INT_ADD";
      case UopType::kIntMul: return "INT_MUL";
      case UopType::kBranch: return "BRANCH";
      case UopType::kLoad:   return "LOAD";
      case UopType::kStore:  return "STORE";
      case UopType::kNop:    return "NOP";
      default:               return "?";
    }
}

/**
 * One micro-operation produced by a trace generator.
 *
 * Register dependences are encoded as distances in program order:
 * srcDist1/srcDist2 say "this uop reads the result of the uop N
 * positions earlier" (0 means no such operand). Distances must be
 * less than HardwareContext::kDepRing.
 */
struct Uop {
    UopType type = UopType::kNop;
    std::uint8_t srcDist1 = 0;   ///< first operand distance, 0 = none
    std::uint8_t srcDist2 = 0;   ///< second operand distance, 0 = none
    bool mispredict = false;     ///< branches: predicted wrong?
    Addr addr = 0;               ///< loads/stores: virtual data address
    Addr pc = 0;                 ///< virtual instruction address
};

/**
 * Abstract producer of an (infinite) uop stream for one hardware
 * context. Implementations must be deterministic: after reset() the
 * exact same stream is produced again.
 */
class UopSource {
  public:
    virtual ~UopSource() = default;

    /** Produce the next uop in program order. */
    virtual Uop next() = 0;

    /**
     * Fill @p out with the next @p max uops in program order and
     * return how many were produced (always @p max for the infinite
     * streams this interface models). The batch form lets hot callers
     * amortize the virtual dispatch; overriding it in a `final` class
     * additionally devirtualizes the per-uop next() calls.
     */
    virtual int
    nextBatch(Uop *out, int max)
    {
        for (int i = 0; i < max; ++i)
            out[i] = next();
        return max;
    }

    /** Rewind the stream to its initial state. */
    virtual void reset() = 0;

    /**
     * Bytes of long-lived hot data at the base of this stream's data
     * space. The machine functionally pre-warms this region into the
     * shared cache before a run (capacity contention appears only
     * once resident sets are actually resident).
     */
    virtual Addr hotFootprint() const { return 0; }

    /**
     * Bytes of static code at the base of this stream's instruction
     * space, pre-warmed like hotFootprint() (a process's text is
     * resident long before a measurement interval starts).
     */
    virtual Addr codeFootprint() const { return 0; }

    /**
     * Relative rate at which this stream touches the shared cache
     * (accesses that reach beyond the private levels). Under LRU,
     * steady-state occupancy follows re-reference rate, so the
     * machine splits pre-warm budgets between co-runners in
     * proportion to this weight. Dimensionless; only ratios matter.
     */
    virtual double residencyWeight() const { return 1.0; }

    /**
     * Identity digest of the stream this source produces, or 0 if the
     * source cannot promise one. Two sources with the same non-zero
     * digest must emit byte-identical uop streams after reset() —
     * Machine::run() binds (hence resets) every source, so a run's
     * outcome is a pure function of (machine config, placement
     * coordinates, stream digests, interval bounds). That is exactly
     * the key the run-level replay store (sim/replay.h) memoizes on;
     * sources returning 0 opt out of replay entirely. Every production
     * source (ruler, profile and trace-replay streams) overrides this;
     * the zero default exists only for ad-hoc test doubles.
     */
    virtual std::uint64_t streamDigest() const { return 0; }
};

} // namespace smite::sim

#endif // SMITE_SIM_UOP_H
