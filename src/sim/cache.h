/**
 * @file
 * Set-associative write-back LRU cache model.
 *
 * The model tracks tags, LRU ordering and dirty bits only (no data).
 * It is used for the private L1I/L1D/L2 caches of each core and for
 * the shared L3. SMT capacity contention arises naturally because the
 * two hardware contexts of a core probe the same L1/L2 arrays with
 * disjoint address spaces.
 *
 * Storage is flattened into per-field arrays (tags / LRU stamps /
 * dirty bits) so a set lookup scans one contiguous run of tags —
 * typically a single cache line on the host — instead of striding
 * through an array of structs. Behavior is bit-identical to the
 * array-of-structs model it replaced (enforced by test_golden_sim).
 */

#ifndef SMITE_SIM_CACHE_H
#define SMITE_SIM_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.h"

namespace smite::sim {

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    int assoc = 8;
    Cycle hitLatency = 4;
};

/**
 * A single set-associative LRU cache array.
 *
 * Addresses are line-granular (see lineAddr()). The cache allocates on
 * both read and write misses (write-allocate) and reports dirty
 * victims so the caller can model write-back traffic.
 */
class SetAssocCache
{
  public:
    /** Outcome of an access(). */
    struct AccessResult {
        bool hit = false;
        bool evictedValid = false;  ///< a valid victim was replaced
        bool evictedDirty = false;  ///< ... and it was dirty
        Addr evictedLine = 0;       ///< line address of the victim
    };

    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up (and on miss, allocate) a line.
     *
     * @param line line-granular address (addr / 64)
     * @param write true for stores (marks the line dirty)
     * @return hit/miss and any dirty eviction
     */
    AccessResult access(Addr line, bool write);

    /**
     * Read-allocate a line the caller knows is absent: exactly
     * access(line, false) minus the hit scan, which absence makes a
     * provable miss (asserted in debug builds). The prewarm paths
     * fill a fresh machine with each line exactly once, so they pay
     * this instead of a full-set scan per insert.
     */
    AccessResult insertAbsent(Addr line);

    /**
     * insertAbsent() for @p count consecutive lines starting at
     * @p line, with state identical to the per-line loop. Consecutive
     * lines land in consecutive sets, so while the prefix-fill
     * invariant holds the whole batch reduces to sequential stores —
     * no per-line call or eviction bookkeeping. Sets that are full
     * (or have a broken prefix) fall back to insertAbsent().
     */
    void insertAbsentRange(Addr line, std::uint64_t count);

    /** Non-mutating lookup: is the line present? */
    bool probe(Addr line) const;

    /**
     * Immutable image of the whole array, shared between runs.
     *
     * A snapshot is taken once after prewarm and then *adopted* by any
     * number of later fresh arrays of the same geometry (same config):
     * adoption copies only the tiny per-set fill counters and a
     * touched-set bitmap up front, and each touched set's tag/stamp/
     * dirty rows lazily on first access. A short run that touches a
     * fraction of an 8MB L3 therefore restores a fraction of its
     * bytes — the answer to the old "restoring a snapshot moves the
     * same bytes as prewarming" objection (docs/PERFORMANCE.md).
     */
    struct Snapshot {
        std::vector<Addr> tags;
        std::vector<std::uint64_t> lastUse;
        std::vector<std::uint8_t> dirty;
        std::vector<std::uint8_t> fillWays;
        /** Bitmap (64 sets per word) of sets that differ from fresh. */
        std::vector<std::uint64_t> touched;
        std::uint64_t useClock = 0;
        Addr lastLine = 0;
        std::size_t lastIdx = 0;

        /** Total heap bytes held by the image. */
        std::size_t bytes() const;

        /**
         * Claim set @p set's first materialization across *all*
         * adopters of this image. snapshotRestoredBytes() sums every
         * adoption's copies, so over N adopters it can legitimately
         * exceed the image size; the first-touch claim is what makes
         * the unique-bytes split (machine.snapshot.
         * bytes_materialized_unique) a true subset of bytes_captured.
         * Atomic because parallel labs adopt one image concurrently.
         * @return true exactly once per set per image
         */
        bool
        claimFirstTouch(std::uint64_t set) const
        {
            const std::uint64_t bit = std::uint64_t{1} << (set & 63);
            return (everMaterialized[set >> 6].fetch_or(
                        bit, std::memory_order_relaxed) &
                    bit) == 0;
        }

        /** First-touch claims, one bit per set (64 sets per word). */
        mutable std::unique_ptr<std::atomic<std::uint64_t>[]>
            everMaterialized;
    };

    /** Capture the current state as a shared immutable snapshot. */
    std::shared_ptr<const Snapshot> captureSnapshot() const;

    /**
     * Adopt a snapshot into this (required: freshly constructed or
     * flushed) array. State afterwards is observably identical to the
     * array the snapshot was captured from; rows materialize lazily.
     */
    void adoptSnapshot(std::shared_ptr<const Snapshot> snapshot);

    /** Bytes lazily materialized since the last adoptSnapshot(). */
    std::uint64_t snapshotRestoredBytes() const { return restoredBytes_; }

    /**
     * Subset of snapshotRestoredBytes() whose sets this adoption was
     * the *first* (across all adopters of the image) to materialize.
     * Summed over every adoption of one snapshot this never exceeds
     * the image's captured bytes.
     */
    std::uint64_t snapshotFirstTouchBytes() const
    {
        return firstTouchBytes_;
    }

    /**
     * Drop one line if present (back-invalidation from an inclusive
     * outer level). The dirty bit is discarded with it; the write-
     * back traffic is accounted by the caller.
     * @return true if the line was present
     */
    bool invalidate(Addr line);

    /** Invalidate all lines and reset LRU state. */
    void flush();

    /** Hit latency of this level. */
    Cycle hitLatency() const { return config_.hitLatency; }

    /** Number of sets in the array. */
    std::uint64_t numSets() const { return numSets_; }

    /** Configured geometry. */
    const CacheConfig &config() const { return config_; }

  private:
    static constexpr Addr kNoTag = ~Addr{0};

    /** fillWays_ value meaning "valid ways are not a [0, n) prefix". */
    static constexpr std::uint8_t kNoPrefix = 0xFF;

    /** Set of @p line: masked when numSets_ is a power of two. */
    std::uint64_t
    setIndex(Addr line) const
    {
        return setsPow2_ ? (line & setMask_) : (line % numSets_);
    }

    /** Copy set @p set's rows out of the adopted snapshot (once). */
    void materializeSet(std::uint64_t set);

    /**
     * Pre-mutation hook: with a snapshot adopted, make sure @p set's
     * rows are materialized before anything reads or writes them. One
     * predictable null check when no snapshot is live.
     */
    void
    touchSet(std::uint64_t set)
    {
        if (snapshot_)
            materializeSet(set);
    }

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint64_t setMask_ = 0;   ///< numSets_ - 1 when a power of two
    bool setsPow2_ = false;
    int assoc_;
    std::uint64_t useClock_ = 0;

    /**
     * Repeat-access memo: the line touched by the last access() and
     * where it sits. A back-to-back access to the same line is a hit
     * on the array's most recently used way, and re-stamping a way
     * that nothing else has touched in between cannot change any
     * future victim choice (within-set stamp order is unchanged), so
     * the whole lookup collapses to one compare. Spatial locality
     * makes this the common case on the L1 data path — streaming
     * code touches each 64B line ~8 times in a row. Invalidated by
     * any other line's access, insert, invalidate or flush.
     */
    Addr lastLine_ = kNoTag;
    std::size_t lastIdx_ = 0;

    // Flat set-major arrays, numSets_ * assoc_ entries each. Empty
    // ways carry tag kNoTag and stamp 0; valid stamps are >= 1.
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint8_t> dirty_;

    /**
     * Per-set prefix-fill tracker: when != kNoPrefix, the set's valid
     * ways are exactly ways [0, fillWays_[s]) — true from empty
     * through sequential filling, since misses allocate the first
     * empty way. insertAbsent() then places its line at way
     * fillWays_[s] directly, no tag scan needed (the dominant cost of
     * prewarming a multi-megabyte L3 line by line). An invalidate in
     * the middle of the prefix breaks the invariant; the set falls
     * back to scanning forever after (kNoPrefix is sticky until
     * flush).
     */
    std::vector<std::uint8_t> fillWays_;

    /**
     * Adopted warm-state snapshot, if any. While set, snapPending_
     * flags the touched sets whose tag/stamp/dirty rows still live
     * only in the snapshot; every mutating path materializes a set
     * before touching it, and probe() reads pending rows straight out
     * of the snapshot. Cleared by flush().
     */
    std::shared_ptr<const Snapshot> snapshot_;
    std::vector<std::uint64_t> snapPending_;
    std::uint64_t restoredBytes_ = 0;
    std::uint64_t firstTouchBytes_ = 0;
};

} // namespace smite::sim

#endif // SMITE_SIM_CACHE_H
