/**
 * @file
 * Set-associative write-back LRU cache model.
 *
 * The model tracks tags, LRU ordering and dirty bits only (no data).
 * It is used for the private L1I/L1D/L2 caches of each core and for
 * the shared L3. SMT capacity contention arises naturally because the
 * two hardware contexts of a core probe the same L1/L2 arrays with
 * disjoint address spaces.
 */

#ifndef SMITE_SIM_CACHE_H
#define SMITE_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace smite::sim {

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    int assoc = 8;
    Cycle hitLatency = 4;
};

/**
 * A single set-associative LRU cache array.
 *
 * Addresses are line-granular (see lineAddr()). The cache allocates on
 * both read and write misses (write-allocate) and reports dirty
 * victims so the caller can model write-back traffic.
 */
class SetAssocCache
{
  public:
    /** Outcome of an access(). */
    struct AccessResult {
        bool hit = false;
        bool evictedValid = false;  ///< a valid victim was replaced
        bool evictedDirty = false;  ///< ... and it was dirty
        Addr evictedLine = 0;       ///< line address of the victim
    };

    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up (and on miss, allocate) a line.
     *
     * @param line line-granular address (addr / 64)
     * @param write true for stores (marks the line dirty)
     * @return hit/miss and any dirty eviction
     */
    AccessResult access(Addr line, bool write);

    /** Non-mutating lookup: is the line present? */
    bool probe(Addr line) const;

    /**
     * Drop one line if present (back-invalidation from an inclusive
     * outer level). The dirty bit is discarded with it; the write-
     * back traffic is accounted by the caller.
     * @return true if the line was present
     */
    bool invalidate(Addr line);

    /** Invalidate all lines and reset LRU state. */
    void flush();

    /** Hit latency of this level. */
    Cycle hitLatency() const { return config_.hitLatency; }

    /** Number of sets in the array. */
    std::uint64_t numSets() const { return numSets_; }

    /** Configured geometry. */
    const CacheConfig &config() const { return config_; }

  private:
    struct Line {
        Addr tag = kNoTag;
        std::uint64_t lastUse = 0;
        bool dirty = false;
    };

    static constexpr Addr kNoTag = ~Addr{0};

    std::uint64_t setIndex(Addr line) const { return line % numSets_; }

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_;  ///< numSets_ * assoc, set-major
};

} // namespace smite::sim

#endif // SMITE_SIM_CACHE_H
