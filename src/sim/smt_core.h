/**
 * @file
 * SMT core: two (or more) hardware contexts sharing a front end and
 * the six-port execution cluster of Figure 1.
 */

#ifndef SMITE_SIM_SMT_CORE_H
#define SMITE_SIM_SMT_CORE_H

#include <vector>

#include "sim/config.h"
#include "sim/context.h"
#include "sim/memory_system.h"
#include "sim/types.h"

namespace smite::sim {

/**
 * One physical core. The contexts share fetch bandwidth, dispatch
 * bandwidth and issue ports; arbitration alternates priority between
 * contexts each cycle (round-robin), which splits a contended
 * resource roughly evenly — the behaviour commodity SMT exhibits.
 */
class SmtCore
{
  public:
    SmtCore(const MachineConfig &config, int core_id);

    /** Context accessor (0 .. contextsPerCore-1). */
    HardwareContext &context(int i) { return contexts_[i]; }
    const HardwareContext &context(int i) const { return contexts_[i]; }

    /** Number of hardware contexts on this core. */
    int numContexts() const { return static_cast<int>(contexts_.size()); }

    /** Advance the core by one cycle. */
    void tick(Cycle now, MemorySystem &mem);

  private:
    CoreConfig coreConfig_;
    int coreId_;
    std::vector<HardwareContext> contexts_;
};

} // namespace smite::sim

#endif // SMITE_SIM_SMT_CORE_H
