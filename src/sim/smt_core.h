/**
 * @file
 * SMT core: two (or more) hardware contexts sharing a front end and
 * the six-port execution cluster of Figure 1.
 */

#ifndef SMITE_SIM_SMT_CORE_H
#define SMITE_SIM_SMT_CORE_H

#include <vector>

#include "sim/config.h"
#include "sim/context.h"
#include "sim/memory_system.h"
#include "sim/types.h"

namespace smite::sim {

/**
 * One physical core. The contexts share fetch bandwidth, dispatch
 * bandwidth and issue ports; arbitration alternates priority between
 * contexts each cycle (round-robin), which splits a contended
 * resource roughly evenly — the behaviour commodity SMT exhibits.
 */
class SmtCore
{
  public:
    SmtCore(const MachineConfig &config, int core_id);

    /** Context accessor (0 .. contextsPerCore-1). */
    HardwareContext &context(int i) { return contexts_[i]; }
    const HardwareContext &context(int i) const { return contexts_[i]; }

    /** Number of hardware contexts on this core. */
    int numContexts() const { return static_cast<int>(contexts_.size()); }

    /**
     * Advance the core by one cycle. Per-context cycle counters are
     * NOT touched here: the caller owns cycle accounting and adds
     * whole intervals in bulk (active contexts accrue exactly one
     * cycle per tick, so the sum is the same either way).
     */
    void tick(Cycle now, MemorySystem &mem);

    /**
     * Earliest future cycle at which any context of this core could
     * act, or @p now when some stage would act this very cycle. tick()
     * itself is pure arbitration — all its effects flow through
     * fetch() and issue() — so while every active context is inside
     * its idle bound, whole ticks are provably no-ops (except the
     * per-cycle fetch-stall counters, replayed via accountIdle()).
     */
    Cycle
    idleBound(Cycle now) const
    {
        Cycle bound = kNeverCycle;
        for (const HardwareContext &ctx : contexts_) {
            const Cycle b = ctx.idleBound(now);
            if (b <= now)
                return now;
            bound = b < bound ? b : bound;
        }
        return bound;
    }

    /**
     * Replay the only observable effect of the skipped no-op ticks in
     * [@p from, @p to): one fetch-stall cycle per tick for each
     * context whose fetch was stalled (not merely window-full).
     */
    void
    accountIdle(Cycle from, Cycle to)
    {
        for (HardwareContext &ctx : contexts_) {
            if (ctx.stallCounts(from))
                ctx.addFetchStallCycles(to - from);
        }
    }

  private:
    CoreConfig coreConfig_;
    int coreId_;
    std::vector<HardwareContext> contexts_;
};

} // namespace smite::sim

#endif // SMITE_SIM_SMT_CORE_H
