#include "tco/tco.h"

#include <stdexcept>

namespace smite::tco {

TcoModel::TcoModel(const TcoParams &params)
    : params_(params)
{
    if (params.serverAmortYears <= 0.0 ||
        params.datacenterAmortYears <= 0.0 ||
        params.horizonYears <= 0.0) {
        throw std::invalid_argument("amortization spans must be positive");
    }
    if (params.serverPeakWatts < params.serverIdleWatts)
        throw std::invalid_argument("peak power below idle power");
    if (params.pue < 1.0)
        throw std::invalid_argument("PUE cannot be below 1");
}

double
TcoModel::serverPower(double u) const
{
    if (u < 0.0 || u > 1.0)
        throw std::invalid_argument("utilization outside [0, 1]");
    return params_.serverIdleWatts +
           (params_.serverPeakWatts - params_.serverIdleWatts) * u;
}

double
TcoModel::horizonCost(double servers, double avg_utilization) const
{
    if (servers < 0.0)
        throw std::invalid_argument("negative server count");
    const double years = params_.horizonYears;

    // Amortized capital.
    const double server_capital = servers * params_.serverCapex *
                                  (years / params_.serverAmortYears);
    const double provisioned_watts =
        servers * params_.serverPeakWatts * params_.pue;
    const double dc_capital = provisioned_watts *
                              params_.datacenterCapexPerWatt *
                              (years / params_.datacenterAmortYears);

    // Operating cost.
    const double avg_watts =
        servers * serverPower(avg_utilization) * params_.pue;
    const double kwh = avg_watts / 1000.0 * 24.0 * 365.0 * years;
    const double energy = kwh * params_.electricityPerKwh;
    const double maintenance = servers * params_.serverCapex *
                               params_.maintenanceFraction * years;

    return server_capital + dc_capital + energy + maintenance;
}

} // namespace smite::tco
