/**
 * @file
 * Total cost of ownership model (paper Section IV-E).
 *
 * Follows the analytical methodology of Barroso, Clidaras and Hölzle,
 * "The Datacenter as a Computer" (paper reference [21]): server
 * capital amortized over its service life, datacenter capital
 * amortized per provisioned watt, electricity at the fleet PUE
 * (paper reference [22] — Google's published fleet PUE), and
 * maintenance opex proportional to server capital.
 */

#ifndef SMITE_TCO_TCO_H
#define SMITE_TCO_TCO_H

namespace smite::tco {

/** Cost and power parameters of the fleet. */
struct TcoParams {
    double serverCapex = 2500.0;        ///< $ per server
    double serverAmortYears = 3.0;      ///< server service life
    double datacenterCapexPerWatt = 12.0;  ///< $ per provisioned watt
    double datacenterAmortYears = 12.0;    ///< facility service life
    double serverIdleWatts = 150.0;     ///< power at zero utilization
    double serverPeakWatts = 350.0;     ///< power at full utilization
    double pue = 1.12;                  ///< fleet power usage effectiveness
    double electricityPerKwh = 0.067;   ///< $ per kWh
    double maintenanceFraction = 0.05;  ///< yearly opex / server capex
    double horizonYears = 3.0;          ///< evaluation horizon
};

/**
 * Fleet-level TCO calculator.
 */
class TcoModel
{
  public:
    explicit TcoModel(const TcoParams &params = TcoParams());

    /** Average wall power of one server at utilization @p u. */
    double serverPower(double u) const;

    /**
     * Total cost of @p servers servers over the horizon, at average
     * utilization @p avg_utilization: amortized server + datacenter
     * capital, electricity (at PUE), and maintenance.
     */
    double horizonCost(double servers, double avg_utilization) const;

    /** Parameters in use. */
    const TcoParams &params() const { return params_; }

  private:
    TcoParams params_;
};

} // namespace smite::tco

#endif // SMITE_TCO_TCO_H
