/**
 * @file
 * Umbrella header: the SMiTe public API.
 *
 * Typical usage:
 * @code
 *   using namespace smite;
 *   core::Lab lab(sim::MachineConfig::ivyBridge());
 *   auto model = lab.trainSmite(workload::spec2006::evenNumbered(),
 *                               core::CoLocationMode::kSmt);
 *   const auto &a = workload::spec2006::byName("429.mcf");
 *   const auto &b = workload::spec2006::byName("453.povray");
 *   double predicted = model.predict(
 *       lab.characterization(a, core::CoLocationMode::kSmt),
 *       lab.characterization(b, core::CoLocationMode::kSmt));
 * @endcode
 */

#ifndef SMITE_CORE_SMITE_H
#define SMITE_CORE_SMITE_H

#include "core/characterize.h"
#include "core/experiment.h"
#include "core/pmu_model.h"
#include "core/predictor.h"
#include "core/smite_model.h"
#include "core/tail_latency.h"
#include "queueing/des.h"
#include "queueing/mm1.h"
#include "rulers/ruler.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "stats/correlation.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "workload/cloudsuite.h"
#include "workload/generator.h"
#include "workload/spec2006.h"

#endif // SMITE_CORE_SMITE_H
