/**
 * @file
 * The experiment lab: a memoizing front end over the machine model
 * that provides every measurement the paper's evaluation needs —
 * solo IPCs, PMU profiles, Ruler characterizations, pair and
 * many-instance co-location degradations — plus the training
 * protocols for the SMiTe and PMU models.
 *
 * Measurements are cached by (workload, mode, shape), so harnesses
 * that revisit the same co-locations (e.g. a figure sweep) pay for
 * each simulation once.
 */

#ifndef SMITE_CORE_EXPERIMENT_H
#define SMITE_CORE_EXPERIMENT_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/characterize.h"
#include "core/pmu_model.h"
#include "core/smite_model.h"
#include "sim/machine.h"
#include "workload/profile.h"

namespace smite::core {

/**
 * Memoizing measurement front end for one machine configuration.
 */
class Lab
{
  public:
    /**
     * @param config machine to measure on
     * @param warmup cycles before counters accumulate
     * @param measure measurement interval in cycles
     */
    explicit Lab(const sim::MachineConfig &config,
                 sim::Cycle warmup = sim::kDefaultWarmupCycles,
                 sim::Cycle measure = sim::kDefaultMeasureCycles);

    /** The machine under test. */
    const sim::Machine &machine() const { return machine_; }

    /** The default Ruler suite for this machine. */
    const std::vector<rulers::Ruler> &rulerSuite() const { return suite_; }

    /** The characterization driver. */
    const Characterizer &characterizer() const { return characterizer_; }

    /** Solo IPC (aggregate over @p threads instances, one per core). */
    double soloIpc(const workload::WorkloadProfile &profile,
                   int threads = 1);

    /** Solo counter block of a single-threaded run. */
    const sim::CounterBlock &
    soloCounters(const workload::WorkloadProfile &profile);

    /** The 11 PMU rates of a solo run (input to the PMU model). */
    PmuProfile pmuProfile(const workload::WorkloadProfile &profile);

    /** Ruler characterization (cached). */
    const Characterization &
    characterization(const workload::WorkloadProfile &profile,
                     CoLocationMode mode, int threads = 1);

    /**
     * Measured degradation of @p victim co-located with
     * @p aggressor (Equation 7). Both directions of a pair are
     * measured in one run and cached.
     */
    double pairDegradation(const workload::WorkloadProfile &victim,
                           const workload::WorkloadProfile &aggressor,
                           CoLocationMode mode);

    /**
     * Aggregated per-port utilization (sum over both co-located
     * contexts) of a co-location pair — the quantity of the paper's
     * Figures 3 and 5.
     */
    std::array<double, sim::kNumPorts>
    pairPortUtilization(const workload::WorkloadProfile &a,
                        const workload::WorkloadProfile &b,
                        CoLocationMode mode);

    /**
     * Measured aggregate degradation of a @p threads -thread
     * latency-sensitive application co-located with @p instances
     * instances of @p batch (the paper's CloudSuite protocol:
     * 6 threads + 1..6 batch instances for SMT, 3 + 1..3 for CMP).
     */
    double
    multiInstanceDegradation(const workload::WorkloadProfile &latency,
                             int threads,
                             const workload::WorkloadProfile &batch,
                             int instances, CoLocationMode mode);

    /**
     * Train a SMiTe model: characterize every workload in
     * @p training_set, measure all ordered co-location pairs among
     * them, and fit Equation 3.
     */
    SmiteModel trainSmite(
        const std::vector<workload::WorkloadProfile> &training_set,
        CoLocationMode mode);

    /** Train the PMU baseline (Equation 9) on the same protocol. */
    PmuModel trainPmu(
        const std::vector<workload::WorkloadProfile> &training_set,
        CoLocationMode mode);

    /**
     * Predicted degradation for the many-instance protocol: the
     * pairwise model prediction scaled by the fraction of app
     * threads that actually have a co-runner.
     */
    static double scaleToInstances(double pair_prediction, int instances,
                                   int threads);

    /**
     * Persist measurements to @p path (write-through) and preload
     * any measurements already recorded there. Several experiment
     * harnesses share co-location measurements this way instead of
     * re-simulating them. The file is a plain text key/value log;
     * delete it to invalidate.
     */
    void enableDiskCache(const std::string &path);

  private:
    void appendToDisk(const std::string &line);
    void loadDiskCache(const std::string &path);
    std::string pairKey(const std::string &a, const std::string &b,
                        CoLocationMode mode) const;

    sim::Machine machine_;
    std::vector<rulers::Ruler> suite_;
    Characterizer characterizer_;
    sim::Cycle warmup_;
    sim::Cycle measure_;

    std::map<std::string, double> soloIpcCache_;
    std::map<std::string, sim::CounterBlock> soloCounterCache_;
    std::map<std::string, PmuProfile> pmuCache_;
    std::map<std::string, Characterization> characterizationCache_;
    /** key -> (degradation of first, degradation of second) */
    std::map<std::string, std::pair<double, double>> pairCache_;
    std::map<std::string, double> multiCache_;
    std::map<std::string, std::array<double, sim::kNumPorts>>
        portCache_;

    std::string diskCachePath_;  ///< empty = disk cache disabled
};

} // namespace smite::core

#endif // SMITE_CORE_EXPERIMENT_H
