/**
 * @file
 * The experiment lab: a memoizing front end over the machine model
 * that provides every measurement the paper's evaluation needs —
 * solo IPCs, PMU profiles, Ruler characterizations, pair and
 * many-instance co-location degradations — plus the training
 * protocols for the SMiTe and PMU models.
 *
 * Measurements are cached by (workload, mode, shape), so harnesses
 * that revisit the same co-locations (e.g. a figure sweep) pay for
 * each simulation once.
 *
 * The Lab is safe to call from many threads at once: every cache is
 * a single-flight MemoCache (two threads never simulate the same key
 * twice) and the underlying sim::Machine builds all microarchitectural
 * state fresh inside each const run() call, so concurrent runs never
 * alias. The characterizeAll / measureAllPairs / soloIpcAll /
 * pmuProfileAll batch APIs fan the independent simulations of the
 * paper's protocol out across a thread pool (SMITE_THREADS or
 * setParallelism() controls the width) and assemble results in input
 * order, byte-identical to the serial loop.
 *
 * The Lab is also the pipeline's resilience boundary (see
 * docs/ROBUSTNESS.md). Real-machine measurement campaigns lose runs;
 * the fault layer (src/fault) simulates that, and the Lab absorbs it:
 * every measurement is retried with backoff on a transient
 * MeasurementError (SMITE_LAB_RETRIES attempts, default 3), can run
 * as a median-of-N multi-trial protocol with MAD outlier rejection
 * (SMITE_LAB_TRIALS, default 1), and the batch/training APIs degrade
 * gracefully — a sample that fails past the retry budget is marked
 * invalid or dropped from the fit and logged to the IncidentLog
 * instead of aborting the run. With no faults armed none of this
 * changes a single output byte.
 */

#ifndef SMITE_CORE_EXPERIMENT_H
#define SMITE_CORE_EXPERIMENT_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/characterize.h"
#include "core/disk_cache.h"
#include "core/memo_cache.h"
#include "core/pmu_model.h"
#include "core/smite_model.h"
#include "fault/fault.h"
#include "sim/machine.h"
#include "workload/profile.h"

namespace smite::core {

/**
 * Memoizing measurement front end for one machine configuration.
 */
class Lab
{
  public:
    /**
     * @param config machine to measure on
     * @param warmup cycles before counters accumulate
     * @param measure measurement interval in cycles
     */
    explicit Lab(const sim::MachineConfig &config,
                 sim::Cycle warmup = sim::kDefaultWarmupCycles,
                 sim::Cycle measure = sim::kDefaultMeasureCycles);

    /** Convenience: construct with the disk cache already enabled. */
    Lab(const sim::MachineConfig &config, const std::string &cache_path,
        sim::Cycle warmup = sim::kDefaultWarmupCycles,
        sim::Cycle measure = sim::kDefaultMeasureCycles);

    // The characterizer holds a reference to machine_ and the caches
    // hold synchronization primitives; the Lab stays where it was
    // built.
    Lab(const Lab &) = delete;
    Lab &operator=(const Lab &) = delete;

    /** The machine under test. */
    const sim::Machine &machine() const { return machine_; }

    /** The default Ruler suite for this machine. */
    const std::vector<rulers::Ruler> &rulerSuite() const { return suite_; }

    /** The characterization driver. */
    const Characterizer &characterizer() const { return characterizer_; }

    /**
     * Worker threads for the batch APIs: 0 (default) means the
     * SMITE_THREADS environment variable, else hardware concurrency.
     * 1 selects the serial path (no pool).
     */
    void setParallelism(int threads) { parallelism_ = threads; }

    /** The resolved batch-API worker count. */
    int parallelism() const;

    /**
     * Attempts per measurement before a transient MeasurementError
     * is surfaced: 0 (default) means the SMITE_LAB_RETRIES
     * environment variable, else 3. 1 disables retrying.
     */
    void setMaxAttempts(int attempts) { maxAttempts_ = attempts; }

    /** The resolved per-measurement attempt budget (at least 1). */
    int maxAttempts() const;

    /**
     * Independent trials per scalar measurement, aggregated with an
     * MAD-robust median: 0 (default) means the SMITE_LAB_TRIALS
     * environment variable, else 1 (single-shot, byte-identical to
     * the historical protocol).
     */
    void setTrials(int trials) { trials_ = trials; }

    /** The resolved trial count (at least 1). */
    int trials() const;

    /** Solo IPC (aggregate over @p threads instances, one per core). */
    double soloIpc(const workload::WorkloadProfile &profile,
                   int threads = 1);

    /** Solo counter block of a single-threaded run. */
    const sim::CounterBlock &
    soloCounters(const workload::WorkloadProfile &profile);

    /** The 11 PMU rates of a solo run (input to the PMU model). */
    PmuProfile pmuProfile(const workload::WorkloadProfile &profile);

    /** Ruler characterization (cached). */
    const Characterization &
    characterization(const workload::WorkloadProfile &profile,
                     CoLocationMode mode, int threads = 1);

    /**
     * Measured degradation of @p victim co-located with
     * @p aggressor (Equation 7). Both directions of a pair are
     * measured in one run (simulated with the name-ordered workload
     * in the first placement slot, so the measurement is independent
     * of which direction is asked first) and cached.
     */
    double pairDegradation(const workload::WorkloadProfile &victim,
                           const workload::WorkloadProfile &aggressor,
                           CoLocationMode mode);

    /**
     * Aggregated per-port utilization (sum over both co-located
     * contexts) of a co-location pair — the quantity of the paper's
     * Figures 3 and 5.
     */
    std::array<double, sim::kNumPorts>
    pairPortUtilization(const workload::WorkloadProfile &a,
                        const workload::WorkloadProfile &b,
                        CoLocationMode mode);

    /**
     * Measured aggregate degradation of a @p threads -thread
     * latency-sensitive application co-located with @p instances
     * instances of @p batch (the paper's CloudSuite protocol:
     * 6 threads + 1..6 batch instances for SMT, 3 + 1..3 for CMP).
     */
    double
    multiInstanceDegradation(const workload::WorkloadProfile &latency,
                             int threads,
                             const workload::WorkloadProfile &batch,
                             int instances, CoLocationMode mode);

    /**
     * Batch solo IPCs, fanned out across the pool; result i belongs
     * to profiles[i].
     */
    std::vector<double>
    soloIpcAll(const std::vector<workload::WorkloadProfile> &profiles,
               int threads = 1);

    /**
     * Batch characterization: warms the per-dimension Ruler baselines
     * in parallel, then characterizes every profile in parallel.
     * Result i belongs to profiles[i]; values are byte-identical to
     * calling characterization() serially.
     */
    std::vector<Characterization>
    characterizeAll(const std::vector<workload::WorkloadProfile> &profiles,
                    CoLocationMode mode, int threads = 1);

    /** Batch PMU profiles; result i belongs to profiles[i]. */
    std::vector<PmuProfile>
    pmuProfileAll(const std::vector<workload::WorkloadProfile> &profiles);

    /**
     * Measure every ordered co-location pair among @p profiles in
     * parallel (one simulation per unordered pair covers both
     * directions). result[i][j] is the degradation of profiles[i]
     * co-located with profiles[j]; the diagonal is 0.
     */
    std::vector<std::vector<double>>
    measureAllPairs(const std::vector<workload::WorkloadProfile> &profiles,
                    CoLocationMode mode);

    /**
     * Warm the multi-instance degradation cache for every
     * (latency app, batch app, 1..max_instances) tuple — the
     * measurement grid of the Figures 14-17 scale-out sweeps — in
     * parallel across the pool. Subsequent multiInstanceDegradation()
     * calls for these tuples are cache hits, so a serial assembly
     * loop after this produces values byte-identical to the
     * all-serial protocol. A tuple that fails past its retry budget
     * is skipped here (already logged) and re-fails deterministically
     * when asked for directly.
     */
    void multiInstancePrefetch(
        const std::vector<workload::WorkloadProfile> &latency,
        int threads,
        const std::vector<workload::WorkloadProfile> &batch,
        int max_instances, CoLocationMode mode);

    /**
     * Train a SMiTe model: characterize every workload in
     * @p training_set, measure all ordered co-location pairs among
     * them (both phases parallel, see the batch APIs), and fit
     * Equation 3. The sample order — and therefore the fit — is
     * identical to the serial protocol.
     */
    SmiteModel trainSmite(
        const std::vector<workload::WorkloadProfile> &training_set,
        CoLocationMode mode);

    /** Train the PMU baseline (Equation 9) on the same protocol. */
    PmuModel trainPmu(
        const std::vector<workload::WorkloadProfile> &training_set,
        CoLocationMode mode);

    /**
     * Predicted degradation for the many-instance protocol: the
     * pairwise model prediction scaled by the fraction of app
     * threads that actually have a co-runner.
     */
    static double scaleToInstances(double pair_prediction, int instances,
                                   int threads);

    /**
     * Persist measurements under @p path (write-through) and preload
     * any measurements already recorded there. Several experiment
     * harnesses share co-location measurements this way instead of
     * re-simulating them. Records are sharded across
     * `<path>.shard0..N-1` by key hash (SMITE_CACHE_SHARDS files,
     * default 4, each with its own writer lock); a legacy single
     * file at @p path itself is still preloaded. Each file is a
     * plain text key/value log headed by a version line; delete the
     * files to invalidate. Corrupt or truncated lines are skipped
     * with a warning on stderr.
     */
    void enableDiskCache(const std::string &path);

    /** The sharded disk cache (for inspection in tests). */
    const ShardedDiskCache &diskCache() const { return disk_; }

    /** Per-cache counts of measurements actually simulated. */
    struct Stats {
        std::uint64_t solo_ipc = 0;
        std::uint64_t solo_counters = 0;
        std::uint64_t pmu = 0;
        std::uint64_t characterizations = 0;
        std::uint64_t pairs = 0;
        std::uint64_t multi = 0;
        std::uint64_t ports = 0;
        std::uint64_t ruler_baselines = 0;

        /** Total memo-cache misses (computations performed). */
        std::uint64_t total() const
        {
            return solo_ipc + solo_counters + pmu + characterizations +
                   pairs + multi + ports + ruler_baselines;
        }
    };

    /** Computation counts since construction (thread-safe). */
    Stats stats() const;

  private:
    void appendToDisk(const std::string &key, const std::string &line);
    void loadDiskCache(const std::string &path);
    std::string pairKey(const std::string &a, const std::string &b,
                        CoLocationMode mode) const;

    /**
     * Handle one failed measurement attempt: count a retry and back
     * off, or — once the attempt budget is spent — count a failure,
     * log an incident and rethrow the active MeasurementError. Must
     * be called from inside a catch handler.
     */
    void onMeasurementFailure(const std::string &key, const char *what,
                              int attempt, int max_attempts);

    /**
     * Run @p fn until it succeeds or the attempt budget is spent.
     * @p fn receives an attempt-qualified key ("<key>/aN") so keyed
     * fault decisions differ between attempts — a transient fault
     * stays transient.
     */
    template <typename Fn>
    auto
    withRetry(const std::string &key, Fn &&fn)
    {
        const int attempts = maxAttempts();
        for (int attempt = 1;; ++attempt) {
            try {
                return fn(key + "/a" + std::to_string(attempt));
            } catch (const fault::MeasurementError &err) {
                onMeasurementFailure(key, err.what(), attempt,
                                     attempts);
            }
        }
    }

    /**
     * The multi-trial measurement protocol: run @p fn trials() times
     * (each trial retried independently, keys "<key>/tT/aN") and
     * reduce component-wise with the MAD-robust median. One trial
     * short-circuits to plain retry, preserving byte-identical
     * single-shot behaviour.
     */
    std::vector<double> measureTrials(
        const std::string &key,
        const std::function<std::vector<double>(const std::string &)>
            &fn);

    sim::Machine machine_;
    std::vector<rulers::Ruler> suite_;
    Characterizer characterizer_;
    sim::Cycle warmup_;
    sim::Cycle measure_;
    int parallelism_ = 0;
    int maxAttempts_ = 0;
    int trials_ = 0;

    MemoCache<std::string, double> soloIpcCache_;
    MemoCache<std::string, sim::CounterBlock> soloCounterCache_;
    MemoCache<std::string, PmuProfile> pmuCache_;
    MemoCache<std::string, Characterization> characterizationCache_;
    /** key -> (degradation of first, degradation of second) */
    MemoCache<std::string, std::pair<double, double>> pairCache_;
    MemoCache<std::string, double> multiCache_;
    MemoCache<std::string, std::array<double, sim::kNumPorts>>
        portCache_;

    ShardedDiskCache disk_;  ///< not enabled() = disk cache disabled
};

} // namespace smite::core

#endif // SMITE_CORE_EXPERIMENT_H
