/**
 * @file
 * The predictor zoo: one interface over every QoS/slowdown predictor.
 *
 * SMiTe's Ruler regression (Equation 3) and the PMU-counter baseline
 * (Equation 9) are two points in a larger design space of
 * interference predictors. This module pins the shared contract —
 * characterize a workload once into a WorkloadSignature, then predict
 * the degradation of a victim next to an arbitrary co-runner set —
 * and populates the space with four implementations:
 *
 *  - SmitePredictor: the paper's Ruler model (SmiteModel);
 *  - PmuPredictor:   the paper's PMU baseline (PmuModel);
 *  - MisePredictor:  a MISE-style estimator (Subramanian et al.,
 *    "Predictable Performance and Fairness Through Accurate Slowdown
 *    Estimation in Shared Main Memory Systems"): slowdown is driven
 *    by memory-request behaviour, reduced here to a regression over
 *    the simulator's existing solo cache/DRAM counter rates and their
 *    victim x aggressor interference products;
 *  - AlvesDrummondPredictor: the cross-application interference model
 *    of Alves & Drummond ("A Quantitative Model for Predicting
 *    Cross-application Interference in Virtual Environments"):
 *    per-dimension sensitivity scaled by a *saturating* function of
 *    aggregate co-runner pressure, fit by least squares.
 *
 * All four train on the same measured-pair corpus (trainPredictorZoo)
 * so head-to-head comparisons (bench_predictor_zoo) are apples to
 * apples. Every prediction funnels through the range guard of
 * core/prediction_guard.h and the `predictor.*` counters
 * (docs/OBSERVABILITY.md).
 */

#ifndef SMITE_CORE_PREDICTOR_H
#define SMITE_CORE_PREDICTOR_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/characterize.h"
#include "core/pmu_model.h"
#include "core/smite_model.h"
#include "sim/counters.h"
#include "workload/profile.h"

namespace smite::core {

class Lab;

/**
 * Everything any predictor in the zoo may ask about one workload,
 * gathered once (signatureOf) and reused across predictors. The
 * characterization is the expensive part (one solo run plus one
 * co-run per Ruler dimension); the PMU rates, solo counters and solo
 * IPC all fall out of a single solo run.
 */
struct WorkloadSignature {
    std::string name;
    Characterization characterization;
    PmuProfile pmu{};
    sim::CounterBlock soloCounters;
    double soloIpc = 0.0;
    /** False when any underlying measurement failed past its retry
        budget; predictors treat the signature as unusable. */
    bool valid = true;
};

/** Gather one workload's signature through a Lab (cached measurements). */
WorkloadSignature signatureOf(Lab &lab,
                              const workload::WorkloadProfile &profile,
                              CoLocationMode mode);

/**
 * Batch variant: fans the underlying measurements out through the
 * Lab's parallel batch APIs; result i belongs to profiles[i] and is
 * byte-identical to calling signatureOf() serially.
 */
std::vector<WorkloadSignature>
signaturesOf(Lab &lab,
             const std::vector<workload::WorkloadProfile> &profiles,
             CoLocationMode mode);

/** One training observation shared by every predictor in the zoo. */
struct PredictorSample {
    const WorkloadSignature *victim = nullptr;
    const WorkloadSignature *aggressor = nullptr;
    double degradation = 0.0;  ///< measured Deg(victim|aggressor)
};

/**
 * A trained QoS/slowdown predictor.
 *
 * The public predict entry points are non-virtual: they validate the
 * signatures, delegate to rawDegradation(), guard the result into
 * [0, 1] (core/prediction_guard.h) and maintain the `predictor.*`
 * counters. Implementations only provide the raw model arithmetic.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Short stable identifier ("smite", "pmu", "mise", "alves-drummond"). */
    virtual std::string_view name() const = 0;

    /**
     * Machine runs needed to build a *new* workload's signature as
     * far as this predictor reads it (Ruler-based predictors pay one
     * solo run plus one co-run per dimension; counter-based ones pay
     * a single solo run). Shared ruler baselines amortize across
     * workloads and are excluded.
     */
    virtual int signatureRuns() const = 0;

    /**
     * Predicted degradation (1 - QoS) of @p victim co-located with
     * the @p aggressors set, guarded into [0, 1]. An empty set
     * predicts 0 (solo). Invalid or non-finite signatures yield the
     * conservative worst case 1.0 with an incident-log record.
     */
    double predictDegradation(
        const WorkloadSignature &victim,
        const std::vector<const WorkloadSignature *> &aggressors) const;

    /** Pairwise convenience overload. */
    double predictDegradation(const WorkloadSignature &victim,
                              const WorkloadSignature &aggressor) const;

    /** Predicted QoS = 1 - predictDegradation(). */
    double
    predictQos(const WorkloadSignature &victim,
               const std::vector<const WorkloadSignature *> &aggressors)
        const
    {
        return 1.0 - predictDegradation(victim, aggressors);
    }

  protected:
    /** Unguarded model arithmetic over validated signatures. */
    virtual double rawDegradation(
        const WorkloadSignature &victim,
        const std::vector<const WorkloadSignature *> &aggressors)
        const = 0;
};

/** The paper's Ruler regression (Equation 3) behind the zoo interface. */
class SmitePredictor final : public Predictor
{
  public:
    explicit SmitePredictor(SmiteModel model) : model_(std::move(model)) {}

    /** Fit Equation 3 on the shared corpus. */
    static SmitePredictor train(const std::vector<PredictorSample> &samples,
                                double ridge = 1e-8);

    std::string_view name() const override { return "smite"; }
    int signatureRuns() const override
    {
        return 1 + rulers::kNumDimensions;
    }

    /** The wrapped regression model. */
    const SmiteModel &model() const { return model_; }

  protected:
    double rawDegradation(const WorkloadSignature &victim,
                          const std::vector<const WorkloadSignature *>
                              &aggressors) const override;

  private:
    SmiteModel model_;
};

/** The paper's PMU-counter baseline (Equation 9) behind the interface. */
class PmuPredictor final : public Predictor
{
  public:
    explicit PmuPredictor(PmuModel model) : model_(std::move(model)) {}

    /** Fit Equation 9 on the shared corpus. */
    static PmuPredictor train(const std::vector<PredictorSample> &samples,
                              double ridge = 1e-6);

    std::string_view name() const override { return "pmu"; }
    int signatureRuns() const override { return 1; }

  protected:
    double rawDegradation(const WorkloadSignature &victim,
                          const std::vector<const WorkloadSignature *>
                              &aggressors) const override;

  private:
    PmuModel model_;
};

/**
 * MISE-style slowdown estimator from memory-request behaviour.
 *
 * MISE observes that slowdown tracks the ratio of memory-request
 * service rates alone vs. shared. Without a per-request DRAM model in
 * the loop, the zoo's reduction regresses degradation on the solo
 * memory-demand rates the simulator already counts — the victim's
 * DRAM and shared-L3 demand per cycle, the aggregate aggressor
 * demand, and their products (the interference terms: a memory-bound
 * victim next to memory-bound aggressors slows the most). Four
 * features; see miseFeatures().
 */
class MisePredictor final : public Predictor
{
  public:
    /** Number of regression features. */
    static constexpr int kNumFeatures = 4;

    /** Fit the memory-rate regression on the shared corpus. */
    static MisePredictor train(const std::vector<PredictorSample> &samples,
                               double ridge = 1e-8);

    std::string_view name() const override { return "mise"; }
    int signatureRuns() const override { return 1; }

    /**
     * Feature row of one (victim, aggressor set): victim DRAM demand
     * per cycle, aggregate aggressor DRAM demand, and the DRAM and
     * shared-L3 interference products.
     */
    static std::vector<double> features(
        const WorkloadSignature &victim,
        const std::vector<const WorkloadSignature *> &aggressors);

  protected:
    double rawDegradation(const WorkloadSignature &victim,
                          const std::vector<const WorkloadSignature *>
                              &aggressors) const override;

  private:
    explicit MisePredictor(stats::LinearModel model)
        : model_(std::move(model))
    {}

    stats::LinearModel model_;
};

/**
 * Alves-Drummond cross-application interference model over the
 * characterization vectors: per dimension, the victim's sensitivity
 * scaled by a saturating exponential of the aggregate co-runner
 * contentiousness,
 *
 *   x_i = Sen_i^A * (1 - exp(-sum_B Con_i^B)),
 *
 * fit by least squares. The saturation is the model's point: doubling
 * an already-contended resource's pressure does not double the
 * interference.
 */
class AlvesDrummondPredictor final : public Predictor
{
  public:
    /** Fit the saturating-feature regression on the shared corpus. */
    static AlvesDrummondPredictor
    train(const std::vector<PredictorSample> &samples, double ridge = 1e-8);

    std::string_view name() const override { return "alves-drummond"; }
    int signatureRuns() const override
    {
        return 1 + rulers::kNumDimensions;
    }

    /** Saturating feature row (one per sharing dimension). */
    static std::vector<double> features(
        const WorkloadSignature &victim,
        const std::vector<const WorkloadSignature *> &aggressors);

  protected:
    double rawDegradation(const WorkloadSignature &victim,
                          const std::vector<const WorkloadSignature *>
                              &aggressors) const override;

  private:
    explicit AlvesDrummondPredictor(stats::LinearModel model)
        : model_(std::move(model))
    {}

    stats::LinearModel model_;
};

/** The four predictors trained on one shared corpus. */
struct PredictorZoo {
    /** Signatures of the training set, in input order. */
    std::vector<WorkloadSignature> signatures;
    /** Trained predictors: smite, pmu, mise, alves-drummond. */
    std::vector<std::unique_ptr<Predictor>> predictors;
};

/**
 * Train every predictor in the zoo on the same corpus: gather the
 * training set's signatures, measure all ordered co-location pairs
 * (both phases through the Lab's parallel batch APIs), and fit each
 * model on the identical sample list. Samples involving a signature
 * whose measurements failed are dropped (and already logged by the
 * Lab); the fit order matches the serial protocol.
 *
 * @throws std::invalid_argument if too few samples survive for any
 *         model (the PMU baseline needs the most: > 22)
 */
PredictorZoo
trainPredictorZoo(Lab &lab,
                  const std::vector<workload::WorkloadProfile> &training_set,
                  CoLocationMode mode);

} // namespace smite::core

#endif // SMITE_CORE_PREDICTOR_H
