/**
 * @file
 * Application characterization via Ruler co-location
 * (paper Section III-B2, Equations 1-2).
 *
 * For each sharing dimension i, the application runs next to Ruler_i
 * on the neighbouring hardware context (SMT) or a neighbouring core
 * (CMP). Its own IPC drop is its *sensitivity* Sen_i; the Ruler's IPC
 * drop is the application's *contentiousness* Con_i.
 */

#ifndef SMITE_CORE_CHARACTERIZE_H
#define SMITE_CORE_CHARACTERIZE_H

#include <array>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/memo_cache.h"
#include "rulers/ruler.h"
#include "sim/machine.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace smite::core {

/** Where the co-runner sits relative to the application. */
enum class CoLocationMode {
    kSmt,  ///< sibling hardware context, same core
    kCmp,  ///< neighbouring core, shared L3/DRAM only
};

/** Name of a co-location mode. */
constexpr const char *
modeName(CoLocationMode mode)
{
    return mode == CoLocationMode::kSmt ? "SMT" : "CMP";
}

/**
 * An application's decoupled contention fingerprint: sensitivity and
 * contentiousness per sharing dimension (Equations 1 and 2).
 */
struct Characterization {
    std::array<double, rulers::kNumDimensions> sensitivity{};
    std::array<double, rulers::kNumDimensions> contentiousness{};
    /**
     * False when the measurement failed past the retry budget (fault
     * injection, see docs/ROBUSTNESS.md) and the arrays are
     * meaningless. Batch consumers must skip invalid entries.
     */
    bool valid = true;
};

/**
 * Runs the Ruler co-location protocol on a machine.
 */
class Characterizer
{
  public:
    /**
     * @param machine machine model to measure on
     * @param suite one Ruler per sharing dimension
     * @param warmup cycles before counters accumulate
     * @param measure measurement interval in cycles
     */
    Characterizer(const sim::Machine &machine,
                  std::vector<rulers::Ruler> suite,
                  sim::Cycle warmup = sim::kDefaultWarmupCycles,
                  sim::Cycle measure = sim::kDefaultMeasureCycles);

    /**
     * Characterize an application.
     *
     * @param profile the application
     * @param mode SMT (sibling context) or CMP (neighbouring core)
     * @param threads instances of the application, one per core (the
     *        paper uses 6 for SMT / 3 for CMP CloudSuite runs); an
     *        equal number of Ruler instances co-locates with them
     */
    Characterization characterize(const workload::WorkloadProfile &profile,
                                  CoLocationMode mode,
                                  int threads = 1) const;

    /** Solo IPC of an application (aggregate over @p threads). */
    double soloIpc(const workload::WorkloadProfile &profile,
                   int threads = 1) const;

    /** The ruler suite in dimension order. */
    const std::vector<rulers::Ruler> &suite() const { return suite_; }

    /** The machine under test. */
    const sim::Machine &machine() const { return machine_; }

    /**
     * Aggregate IPC of @p threads instances of Ruler @p d running
     * alone in their co-location slots. Independent of the
     * application, so memoized across characterize() calls
     * (thread-safe, single-flight). Public so batch drivers can warm
     * all dimensions in parallel before fanning out applications.
     */
    double rulerBaseline(size_t d, CoLocationMode mode,
                         int threads) const;

    /** Baseline simulations actually run (memo-cache misses). */
    std::uint64_t baselineComputeCount() const
    {
        return baselineCache_.computeCount();
    }

  private:
    /** Placements of an N-thread app (context 0 of cores 0..N-1). */
    std::vector<sim::Placement>
    appPlacements(std::vector<workload::ProfileUopSource> &threads) const;

    const sim::Machine &machine_;
    std::vector<rulers::Ruler> suite_;
    sim::Cycle warmup_;
    sim::Cycle measure_;

    /** (dimension, mode, threads) -> baseline aggregate IPC. */
    using BaselineKey = std::tuple<std::size_t, CoLocationMode, int>;
    mutable MemoCache<BaselineKey, double> baselineCache_;
};

} // namespace smite::core

#endif // SMITE_CORE_CHARACTERIZE_H
