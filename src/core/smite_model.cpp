#include "core/smite_model.h"

#include "core/prediction_guard.h"

#include <stdexcept>

namespace smite::core {

std::vector<double>
SmiteModel::features(const Characterization &victim,
                     const Characterization &aggressor)
{
    std::vector<double> x(rulers::kNumDimensions);
    for (int i = 0; i < rulers::kNumDimensions; ++i)
        x[i] = victim.sensitivity[i] * aggressor.contentiousness[i];
    return x;
}

SmiteModel
SmiteModel::train(const std::vector<Sample> &samples, double ridge)
{
    if (samples.size() <= rulers::kNumDimensions) {
        throw std::invalid_argument(
            "need more samples than sharing dimensions");
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (const Sample &s : samples) {
        x.push_back(features(s.victim, s.aggressor));
        y.push_back(s.degradation);
    }
    return SmiteModel(stats::LinearModel::fit(x, y, ridge));
}

double
SmiteModel::predict(const Characterization &victim,
                    const Characterization &aggressor) const
{
    return guardDegradation(model_.predict(features(victim, aggressor)),
                            "SmiteModel");
}

} // namespace smite::core
