/**
 * @file
 * Tail-latency prediction (paper Section III-C3, Equations 4-6).
 *
 * Maps a (predicted) throughput degradation of a latency-sensitive
 * service onto its p-th percentile latency via the closed-form FCFS
 * M/M/1 response-time distribution: the degraded service rate is
 * mu' = (1 - Deg) mu, and t_p = -ln(1-p) / (mu' - lambda).
 */

#ifndef SMITE_CORE_TAIL_LATENCY_H
#define SMITE_CORE_TAIL_LATENCY_H

#include "queueing/des.h"
#include "queueing/mm1.h"
#include "workload/profile.h"

namespace smite::core {

/**
 * Percentile-latency predictor for a latency-sensitive workload.
 */
class TailLatencyPredictor
{
  public:
    /**
     * @param profile workload carrying arrival/service rates
     * @throws std::invalid_argument if the profile has no queueing
     *         parameters
     */
    explicit TailLatencyPredictor(const workload::WorkloadProfile &profile);

    /** Solo p-th percentile latency (closed form). */
    double soloPercentile(double p) const;

    /**
     * Predicted p-th percentile latency under a predicted
     * throughput degradation (Equation 6). Returns +inf if the
     * degraded queue is unstable.
     */
    double predictPercentile(double p, double predicted_degradation) const;

    /** Warmup arrivals discarded by measurePercentile(). */
    static constexpr std::uint64_t kWarmupRequests = 1000;

    /**
     * "Measured" p-th percentile latency: the open-loop discrete-
     * event simulation (queueing::simulateOpenLoop fed by a keyed
     * Poisson loadgen::ArrivalStream) driven at the profile's design
     * arrival rate against the service rate degraded by the *actual*
     * degradation observed on the machine — this stands in for the
     * paper's harness-reported latency statistics. The first
     * kWarmupRequests arrivals are discarded.
     *
     * @param p percentile in (0, 1)
     * @param actual_degradation measured throughput degradation
     * @param requests simulated request count (> kWarmupRequests)
     * @param seed simulation seed (arrival and service streams)
     */
    double measurePercentile(double p, double actual_degradation,
                             std::uint64_t requests = 200000,
                             std::uint64_t seed = 7) const;

    /** The underlying solo queue. */
    const queueing::Mm1 &queue() const { return queue_; }

  private:
    queueing::Mm1 queue_;
};

} // namespace smite::core

#endif // SMITE_CORE_TAIL_LATENCY_H
