/**
 * @file
 * The SMiTe performance-interference prediction model
 * (paper Section III-C1, Equation 3).
 *
 * The degradation of application A co-located with application B is
 * modeled as a linear combination of the per-dimension products of
 * A's sensitivity and B's contentiousness:
 *
 *   Deg(A|B) = sum_i c_i * Sen_i^A * Con_i^B + c_0
 *
 * Coefficients are fit by least squares against measured pair
 * degradations of a training set.
 */

#ifndef SMITE_CORE_SMITE_MODEL_H
#define SMITE_CORE_SMITE_MODEL_H

#include <vector>

#include "core/characterize.h"
#include "stats/regression.h"

namespace smite::core {

/**
 * Regression model over Ruler characterizations.
 */
class SmiteModel
{
  public:
    /** One training observation. */
    struct Sample {
        Characterization victim;     ///< application A (degraded)
        Characterization aggressor;  ///< application B (co-runner)
        double degradation = 0.0;    ///< measured Deg(A|B), Eq. 7
    };

    /**
     * Fit the model on measured co-location samples.
     * @param samples training observations (needs more samples than
     *        sharing dimensions)
     * @param ridge small L2 regularizer for numerical robustness
     */
    static SmiteModel train(const std::vector<Sample> &samples,
                            double ridge = 1e-8);

    /**
     * Predict Deg(A|B) from A's sensitivity and B's contentiousness.
     * Guarded into [0, 1]: degradations are fractions of solo
     * performance, so regression overshoot is clamped and non-finite
     * values (adversarial characterizations) fall back to the
     * conservative worst case with an incident-log record
     * (core/prediction_guard.h).
     */
    double predict(const Characterization &victim,
                   const Characterization &aggressor) const;

    /** The per-dimension coefficients c_i (in dimension order). */
    const std::vector<double> &coefficients() const
    {
        return model_.weights();
    }

    /** The constant term c_0 (residual interference). */
    double constantTerm() const { return model_.intercept(); }

    /**
     * Feature vector of a (victim, aggressor) pair:
     * x_i = Sen_i^A * Con_i^B.
     */
    static std::vector<double> features(const Characterization &victim,
                                        const Characterization &aggressor);

  private:
    explicit SmiteModel(stats::LinearModel model)
        : model_(std::move(model))
    {}

    stats::LinearModel model_;
};

} // namespace smite::core

#endif // SMITE_CORE_SMITE_MODEL_H
