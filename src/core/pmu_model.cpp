#include "core/pmu_model.h"

#include "core/prediction_guard.h"

#include <stdexcept>

namespace smite::core {

std::vector<double>
PmuModel::features(const PmuProfile &victim, const PmuProfile &aggressor)
{
    std::vector<double> x;
    x.reserve(2 * sim::kNumPmuRates);
    x.insert(x.end(), victim.begin(), victim.end());
    x.insert(x.end(), aggressor.begin(), aggressor.end());
    return x;
}

PmuModel
PmuModel::train(const std::vector<Sample> &samples, double ridge)
{
    if (samples.size() <= 2 * sim::kNumPmuRates) {
        throw std::invalid_argument(
            "need more samples than PMU features");
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (const Sample &s : samples) {
        x.push_back(features(s.victim, s.aggressor));
        y.push_back(s.degradation);
    }
    return PmuModel(stats::LinearModel::fit(x, y, ridge));
}

double
PmuModel::predict(const PmuProfile &victim,
                  const PmuProfile &aggressor) const
{
    return guardDegradation(model_.predict(features(victim, aggressor)),
                            "PmuModel");
}

} // namespace smite::core
