/**
 * @file
 * Minimal parallel-execution engine for the measurement Lab.
 *
 * Every measurement the paper's protocol needs — N workloads x 7
 * Ruler dimensions x {SMT, CMP}, plus O(N^2) ordered training pairs —
 * is an independent simulation with no cross-run state, so the Lab
 * fans them out across cores. The primitives here are deliberately
 * small: a ThreadPool whose workers self-schedule loop iterations off
 * a shared atomic cursor (work-stealing-friendly dynamic scheduling;
 * no per-thread static partition to go idle early), and a
 * parallelFor() convenience wrapper.
 *
 * Determinism contract: parallelFor(n, body) invokes body(i) exactly
 * once for every i in [0, n), in unspecified order and concurrently.
 * Callers index results by i, so the *assembled* result of a parallel
 * batch is byte-identical to the serial loop — the simulations
 * themselves are pure functions of (config, seed).
 *
 * The worker count defaults to the SMITE_THREADS environment variable
 * when set, else std::thread::hardware_concurrency(). With one
 * thread, parallelFor degrades to a plain loop on the calling thread
 * (no pool, no locks) — the serial path.
 */

#ifndef SMITE_CORE_PARALLEL_H
#define SMITE_CORE_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smite::core {

/**
 * Worker threads to use when the caller does not say: the
 * SMITE_THREADS environment variable if set to a positive integer,
 * else std::thread::hardware_concurrency(), and at least 1.
 */
int defaultThreadCount();

/**
 * A fixed-size pool executing one indexed loop at a time.
 *
 * The pool owns size()-1 worker threads; the thread calling
 * parallelFor() participates as the size()-th worker, so a pool of
 * size 1 owns no threads at all and runs everything inline.
 * Iterations are claimed dynamically (one atomic fetch_add per
 * iteration), so unequal iteration costs balance automatically.
 */
class ThreadPool
{
  public:
    /** @param threads logical worker count; <= 0 means default. */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Logical worker count (including the calling thread). */
    int size() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run body(i) for every i in [0, n), blocking until all
     * iterations finish. The first exception thrown by any iteration
     * is rethrown here (remaining iterations still run). Only one
     * parallelFor may be active on a pool at a time.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();
    /** Claim and run iterations of the current batch until empty. */
    void drainBatch();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;   ///< workers wait for a batch
    std::condition_variable done_cv_;   ///< caller waits for drain
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::atomic<std::size_t> next_{0};  ///< shared iteration cursor
    std::size_t total_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t epoch_ = 0;           ///< batch generation counter
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * One-shot parallel loop: run body(i) for i in [0, n) on @p threads
 * workers (<= 0 = defaultThreadCount()). With one thread or n <= 1
 * this is a plain serial loop on the calling thread.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 int threads = 0);

} // namespace smite::core

#endif // SMITE_CORE_PARALLEL_H
