#include "core/predictor.h"

#include <cmath>
#include <stdexcept>

#include "core/experiment.h"
#include "core/prediction_guard.h"
#include "fault/fault.h"
#include "obs/incident.h"
#include "obs/metrics.h"

namespace smite::core {

namespace {

/** A rate per solo cycle, 0 for an empty interval. */
double
soloRate(std::uint64_t events, std::uint64_t cycles)
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(events) /
                             static_cast<double>(cycles);
}

/** Element-wise sum of the aggressor set's contentiousness vectors. */
Characterization
combinedContentiousness(
    const std::vector<const WorkloadSignature *> &aggressors)
{
    Characterization combined;
    for (const WorkloadSignature *a : aggressors) {
        for (int d = 0; d < rulers::kNumDimensions; ++d)
            combined.contentiousness[d] +=
                a->characterization.contentiousness[d];
    }
    return combined;
}

/** Element-wise sum of the aggressor set's PMU rates. */
PmuProfile
combinedPmu(const std::vector<const WorkloadSignature *> &aggressors)
{
    PmuProfile combined{};
    for (const WorkloadSignature *a : aggressors) {
        for (int r = 0; r < sim::kNumPmuRates; ++r)
            combined[r] += a->pmu[r];
    }
    return combined;
}

/** Is every number a predictor would read from @p s finite? */
bool
signatureFinite(const WorkloadSignature &s)
{
    if (!std::isfinite(s.soloIpc))
        return false;
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        if (!std::isfinite(s.characterization.sensitivity[d]) ||
            !std::isfinite(s.characterization.contentiousness[d]))
            return false;
    }
    for (int r = 0; r < sim::kNumPmuRates; ++r) {
        if (!std::isfinite(s.pmu[r]))
            return false;
    }
    return true;
}

/** Minimum solo IPC a prediction denominator may rest on. */
constexpr double kMinSoloIpc = 1e-9;

obs::Counter &
predictionsCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("predictor.predictions");
    return c;
}

obs::Counter &
clampedCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("predictor.clamped");
    return c;
}

obs::Counter &
invalidCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("predictor.invalid_inputs");
    return c;
}

} // namespace

double
Predictor::predictDegradation(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors) const
{
    predictionsCounter().add();
    if (aggressors.empty())
        return 0.0;  // running solo

    // Validate inputs before any arithmetic: a signature built on a
    // failed measurement or a near-zero solo IPC denominator cannot
    // support a meaningful ratio, so fall back to the conservative
    // worst case rather than propagate garbage into admission
    // decisions.
    bool usable = victim.valid && signatureFinite(victim) &&
                  victim.soloIpc > kMinSoloIpc;
    for (const WorkloadSignature *a : aggressors)
        usable = usable && a != nullptr && a->valid && signatureFinite(*a);
    if (!usable) {
        invalidCounter().add();
        obs::IncidentLog::global().record(
            std::string(name()) + " predictor: unusable signature for " +
            victim.name + ", using worst case 1.0");
        return 1.0;
    }

    const double raw = rawDegradation(victim, aggressors);
    if (!std::isfinite(raw)) {
        invalidCounter().add();
        obs::IncidentLog::global().record(
            std::string(name()) +
            " predictor: non-finite prediction for " + victim.name +
            ", using worst case 1.0");
        return 1.0;
    }
    if (raw < 0.0 || raw > 1.0)
        clampedCounter().add();
    return guardDegradation(raw, "Predictor");
}

double
Predictor::predictDegradation(const WorkloadSignature &victim,
                              const WorkloadSignature &aggressor) const
{
    return predictDegradation(victim, {&aggressor});
}

SmitePredictor
SmitePredictor::train(const std::vector<PredictorSample> &samples,
                      double ridge)
{
    std::vector<SmiteModel::Sample> rows;
    rows.reserve(samples.size());
    for (const PredictorSample &s : samples) {
        SmiteModel::Sample row;
        row.victim = s.victim->characterization;
        row.aggressor = s.aggressor->characterization;
        row.degradation = s.degradation;
        rows.push_back(std::move(row));
    }
    return SmitePredictor(SmiteModel::train(rows, ridge));
}

double
SmitePredictor::rawDegradation(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors) const
{
    return model_.predict(victim.characterization,
                          combinedContentiousness(aggressors));
}

PmuPredictor
PmuPredictor::train(const std::vector<PredictorSample> &samples,
                    double ridge)
{
    std::vector<PmuModel::Sample> rows;
    rows.reserve(samples.size());
    for (const PredictorSample &s : samples) {
        PmuModel::Sample row;
        row.victim = s.victim->pmu;
        row.aggressor = s.aggressor->pmu;
        row.degradation = s.degradation;
        rows.push_back(std::move(row));
    }
    return PmuPredictor(PmuModel::train(rows, ridge));
}

double
PmuPredictor::rawDegradation(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors) const
{
    return model_.predict(victim.pmu, combinedPmu(aggressors));
}

std::vector<double>
MisePredictor::features(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors)
{
    const sim::CounterBlock &v = victim.soloCounters;
    const double v_dram = soloRate(v.l3Misses, v.cycles);
    const double v_l3 = soloRate(v.l2Misses, v.cycles);
    double a_dram = 0.0, a_l3 = 0.0;
    for (const WorkloadSignature *a : aggressors) {
        const sim::CounterBlock &c = a->soloCounters;
        a_dram += soloRate(c.l3Misses, c.cycles);
        a_l3 += soloRate(c.l2Misses, c.cycles);
    }
    return {v_dram, a_dram, v_dram * a_dram, v_l3 * a_l3};
}

MisePredictor
MisePredictor::train(const std::vector<PredictorSample> &samples,
                     double ridge)
{
    if (samples.size() <= kNumFeatures) {
        throw std::invalid_argument(
            "need more samples than MISE features");
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (const PredictorSample &s : samples) {
        x.push_back(features(*s.victim, {s.aggressor}));
        y.push_back(s.degradation);
    }
    return MisePredictor(stats::LinearModel::fit(x, y, ridge));
}

double
MisePredictor::rawDegradation(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors) const
{
    return model_.predict(features(victim, aggressors));
}

std::vector<double>
AlvesDrummondPredictor::features(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors)
{
    const Characterization combined = combinedContentiousness(aggressors);
    std::vector<double> x(rulers::kNumDimensions);
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        x[d] = victim.characterization.sensitivity[d] *
               (1.0 - std::exp(-combined.contentiousness[d]));
    }
    return x;
}

AlvesDrummondPredictor
AlvesDrummondPredictor::train(const std::vector<PredictorSample> &samples,
                              double ridge)
{
    if (samples.size() <= rulers::kNumDimensions) {
        throw std::invalid_argument(
            "need more samples than sharing dimensions");
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (const PredictorSample &s : samples) {
        x.push_back(features(*s.victim, {s.aggressor}));
        y.push_back(s.degradation);
    }
    return AlvesDrummondPredictor(stats::LinearModel::fit(x, y, ridge));
}

double
AlvesDrummondPredictor::rawDegradation(
    const WorkloadSignature &victim,
    const std::vector<const WorkloadSignature *> &aggressors) const
{
    return model_.predict(features(victim, aggressors));
}

WorkloadSignature
signatureOf(Lab &lab, const workload::WorkloadProfile &profile,
            CoLocationMode mode)
{
    WorkloadSignature sig;
    sig.name = profile.name;
    try {
        sig.characterization = lab.characterization(profile, mode);
        sig.pmu = lab.pmuProfile(profile);
        sig.soloCounters = lab.soloCounters(profile);
        sig.soloIpc = lab.soloIpc(profile);
        sig.valid = sig.characterization.valid;
    } catch (const fault::MeasurementError &) {
        // Retry budget spent (already logged by the Lab); the
        // signature is unusable but the batch survives.
        sig.valid = false;
    }
    return sig;
}

std::vector<WorkloadSignature>
signaturesOf(Lab &lab,
             const std::vector<workload::WorkloadProfile> &profiles,
             CoLocationMode mode)
{
    // Warm the expensive measurements through the parallel batch APIs;
    // the serial signatureOf() assembly below then hits the Lab's
    // caches in input order, byte-identical to the all-serial path.
    lab.characterizeAll(profiles, mode);
    lab.pmuProfileAll(profiles);
    lab.soloIpcAll(profiles);

    std::vector<WorkloadSignature> sigs;
    sigs.reserve(profiles.size());
    for (const workload::WorkloadProfile &p : profiles)
        sigs.push_back(signatureOf(lab, p, mode));
    return sigs;
}

PredictorZoo
trainPredictorZoo(Lab &lab,
                  const std::vector<workload::WorkloadProfile> &training_set,
                  CoLocationMode mode)
{
    PredictorZoo zoo;
    zoo.signatures = signaturesOf(lab, training_set, mode);
    const std::vector<std::vector<double>> pairs =
        lab.measureAllPairs(training_set, mode);

    static obs::Counter &dropped =
        obs::Registry::global().counter("lab.dropped_samples");
    std::vector<PredictorSample> samples;
    for (std::size_t i = 0; i < training_set.size(); ++i) {
        for (std::size_t j = 0; j < training_set.size(); ++j) {
            if (i == j)
                continue;
            // Mirror the trainSmite protocol: a sample resting on a
            // failed measurement is dropped from every fit, not
            // allowed to poison one.
            if (!zoo.signatures[i].valid || !zoo.signatures[j].valid ||
                std::isnan(pairs[i][j])) {
                dropped.add();
                obs::IncidentLog::global().record(
                    "trainPredictorZoo: dropped sample " +
                    training_set[i].name + "|" + training_set[j].name +
                    " (" + modeName(mode) + ")");
                continue;
            }
            samples.push_back({&zoo.signatures[i], &zoo.signatures[j],
                               pairs[i][j]});
        }
    }

    zoo.predictors.push_back(
        std::make_unique<SmitePredictor>(SmitePredictor::train(samples)));
    zoo.predictors.push_back(
        std::make_unique<PmuPredictor>(PmuPredictor::train(samples)));
    zoo.predictors.push_back(
        std::make_unique<MisePredictor>(MisePredictor::train(samples)));
    zoo.predictors.push_back(std::make_unique<AlvesDrummondPredictor>(
        AlvesDrummondPredictor::train(samples)));

    static obs::Counter &trained =
        obs::Registry::global().counter("predictor.trained");
    trained.add(zoo.predictors.size());
    return zoo;
}

} // namespace smite::core
