#include "core/disk_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace smite::core {

namespace {

/** FNV-1a, for stable key -> shard assignment across runs. */
std::uint64_t
hashKey(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

int
defaultShardCount()
{
    const char *env = std::getenv("SMITE_CACHE_SHARDS");
    if (env != nullptr) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
        std::fprintf(stderr,
                     "smite: SMITE_CACHE_SHARDS='%s' invalid, using 4\n",
                     env);
    }
    return 4;
}

/**
 * Create @p path containing only the version header, via a temp file
 * renamed into place so a crash cannot leave a partial header. Keeps
 * any file that already has content (e.g. from a previous run).
 */
void
ensureHeader(const std::string &path)
{
    std::error_code ec;
    if (std::filesystem::exists(path, ec) &&
        std::filesystem::file_size(path, ec) > 0) {
        return;
    }
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << kLabCacheHeader << "\n";
        out.flush();
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::fprintf(stderr,
                     "smite: disk cache: cannot create %s: %s\n",
                     path.c_str(), ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

/**
 * Damage @p line for the `disk.corrupt` fault site. The variant is
 * chosen from the line's own hash so a given record is always
 * corrupted the same way.
 */
std::string
corruptLine(const std::string &line, bool *keep_newline)
{
    const std::uint64_t h = hashKey(line);
    std::string damaged = line;
    switch (h % 3) {
    case 0:
        // Bit-flip a character in the middle of the record.
        if (!damaged.empty())
            damaged[damaged.size() / 2] ^= 0x10;
        break;
    case 1:
        // Truncate the record at half length.
        damaged.resize(damaged.size() / 2);
        break;
    default:
        // Torn append: the process "crashed" before the newline.
        *keep_newline = false;
        break;
    }
    return damaged;
}

} // namespace

std::string
ShardedDiskCache::shardPath(const std::string &base, int index)
{
    return base + ".shard" + std::to_string(index);
}

void
ShardedDiskCache::open(const std::string &base, int shards)
{
    base_ = base;
    const int n = shards >= 1 ? shards : defaultShardCount();
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        auto shard = std::make_unique<Shard>();
        shard->path = shardPath(base, k);
        shards_.push_back(std::move(shard));
    }
}

ShardedDiskCache::Shard &
ShardedDiskCache::shardFor(const std::string &key)
{
    return *shards_[hashKey(key) % shards_.size()];
}

void
ShardedDiskCache::append(const std::string &key, const std::string &line)
{
    if (!enabled())
        return;
    static obs::Counter &appends =
        obs::Registry::global().counter("lab.disk.appends");
    appends.add();

    std::string payload = line;
    bool newline = true;
    fault::FaultPlan &plan = fault::FaultPlan::global();
    if (plan.enabled() && plan.shouldInject("disk.corrupt", line))
        payload = corruptLine(line, &newline);

    Shard &shard = shardFor(key);
    // One writer per shard keeps header creation race-free; appends
    // to *different* shards proceed concurrently.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.headered) {
        ensureHeader(shard.path);
        shard.headered = true;
    }
    // A single fwrite of the whole record (newline included) through
    // an O_APPEND stream is line-atomic: concurrent processes can't
    // interleave bytes, and a crash tears at most this one line.
    std::FILE *out = std::fopen(shard.path.c_str(), "ab");
    if (out == nullptr) {
        std::fprintf(stderr, "smite: disk cache: cannot append to %s\n",
                     shard.path.c_str());
        return;
    }
    if (newline)
        payload += '\n';
    std::fwrite(payload.data(), 1, payload.size(), out);
    std::fclose(out);
}

std::vector<std::string>
ShardedDiskCache::readPaths() const
{
    std::vector<std::string> paths;
    if (!enabled())
        return paths;
    std::error_code ec;
    // Legacy single-file layout first: older builds wrote every record
    // to basePath() itself.
    if (std::filesystem::exists(base_, ec))
        paths.push_back(base_);
    for (const auto &shard : shards_) {
        if (std::filesystem::exists(shard->path, ec))
            paths.push_back(shard->path);
    }
    return paths;
}

} // namespace smite::core
