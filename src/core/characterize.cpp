#include "core/characterize.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace smite::core {

namespace {

/** Aggregate IPC over a span of counter blocks. */
double
aggregateIpc(const std::vector<sim::CounterBlock> &counters, size_t begin,
             size_t end)
{
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i)
        sum += counters[i].ipc();
    return sum;
}

} // namespace

Characterizer::Characterizer(const sim::Machine &machine,
                             std::vector<rulers::Ruler> suite,
                             sim::Cycle warmup, sim::Cycle measure)
    : machine_(machine), suite_(std::move(suite)), warmup_(warmup),
      measure_(measure)
{
    if (suite_.empty())
        throw std::invalid_argument("empty ruler suite");
    baselineCache_.instrument("characterizer.cache.baseline");
}

std::vector<sim::Placement>
Characterizer::appPlacements(
    std::vector<workload::ProfileUopSource> &threads) const
{
    std::vector<sim::Placement> placements;
    placements.reserve(threads.size());
    for (size_t t = 0; t < threads.size(); ++t) {
        placements.push_back(
            sim::Placement{static_cast<int>(t), 0, &threads[t]});
    }
    return placements;
}

double
Characterizer::soloIpc(const workload::WorkloadProfile &profile,
                       int threads) const
{
    if (threads < 1 || threads > machine_.config().numCores)
        throw std::invalid_argument("bad thread count");
    std::vector<workload::ProfileUopSource> sources;
    sources.reserve(threads);
    for (int t = 0; t < threads; ++t)
        sources.emplace_back(profile, /*seed=*/1 + t);
    const auto counters =
        machine_.run(appPlacements(sources), warmup_, measure_);
    return aggregateIpc(counters, 0, counters.size());
}

double
Characterizer::rulerBaseline(size_t d, CoLocationMode mode,
                             int threads) const
{
    return baselineCache_.getOrCompute(
        BaselineKey{d, mode, threads}, [&] {
            const rulers::Ruler &ruler = suite_[d];
            obs::Span span("characterizer.baseline", ruler.name());
            std::vector<std::unique_ptr<sim::UopSource>> sources;
            std::vector<sim::Placement> placements;
            for (int t = 0; t < threads; ++t) {
                sources.push_back(ruler.makeSource());
                placements.push_back(
                    mode == CoLocationMode::kSmt
                        ? sim::Placement{t, 1, sources.back().get()}
                        : sim::Placement{threads + t, 0,
                                         sources.back().get()});
            }
            const auto counters =
                machine_.run(placements, warmup_, measure_);
            return aggregateIpc(counters, 0, counters.size());
        });
}

Characterization
Characterizer::characterize(const workload::WorkloadProfile &profile,
                            CoLocationMode mode, int threads) const
{
    const int cores = machine_.config().numCores;
    if (threads < 1)
        throw std::invalid_argument("bad thread count");
    if (mode == CoLocationMode::kSmt && threads > cores)
        throw std::invalid_argument("too many threads for SMT mode");
    if (mode == CoLocationMode::kCmp && 2 * threads > cores)
        throw std::invalid_argument("too many threads for CMP mode");

    obs::Span characterize_span("characterizer.characterize",
                                profile.name + "#" + modeName(mode));
    const double app_solo = soloIpc(profile, threads);

    Characterization result;
    for (size_t d = 0; d < suite_.size(); ++d) {
        const rulers::Ruler &ruler = suite_[d];
        obs::Span dimension_span("characterizer.dimension",
                                 ruler.name());

        // Ruler placements mirror where they will sit in the
        // co-location: sibling contexts (SMT) or the far cores (CMP).
        auto rulerPlacement = [&](int t, sim::UopSource *src) {
            return mode == CoLocationMode::kSmt
                       ? sim::Placement{t, 1, src}
                       : sim::Placement{threads + t, 0, src};
        };

        // Ruler baseline: the same ruler instances running alone
        // (application-independent, so memoized).
        const double ruler_solo = rulerBaseline(d, mode, threads);

        // Co-location: app threads + ruler instances.
        std::vector<workload::ProfileUopSource> app_sources;
        app_sources.reserve(threads);
        for (int t = 0; t < threads; ++t)
            app_sources.emplace_back(profile, /*seed=*/1 + t);
        std::vector<sim::Placement> placements =
            appPlacements(app_sources);
        std::vector<std::unique_ptr<sim::UopSource>> co_rulers;
        for (int t = 0; t < threads; ++t) {
            co_rulers.push_back(ruler.makeSource());
            placements.push_back(
                rulerPlacement(t, co_rulers.back().get()));
        }
        const auto counters = machine_.run(placements, warmup_, measure_);

        const double app_co = aggregateIpc(counters, 0, threads);
        const double ruler_co =
            aggregateIpc(counters, threads, counters.size());

        // Equations 1 and 2.
        result.sensitivity[d] =
            app_solo > 0.0 ? (app_solo - app_co) / app_solo : 0.0;
        result.contentiousness[d] =
            ruler_solo > 0.0 ? (ruler_solo - ruler_co) / ruler_solo
                             : 0.0;
    }
    return result;
}

} // namespace smite::core
