#include "core/tail_latency.h"

#include <limits>
#include <stdexcept>

#include "loadgen/arrival.h"

namespace smite::core {

TailLatencyPredictor::TailLatencyPredictor(
    const workload::WorkloadProfile &profile)
    : queue_(profile.isLatencySensitive() ? profile.arrivalRate : 1.0,
             profile.isLatencySensitive() ? profile.serviceRate : 2.0)
{
    if (!profile.isLatencySensitive()) {
        throw std::invalid_argument(
            "profile has no arrival/service rates: " + profile.name);
    }
}

double
TailLatencyPredictor::soloPercentile(double p) const
{
    return queue_.percentileLatency(p);
}

double
TailLatencyPredictor::predictPercentile(double p,
                                        double predicted_degradation) const
{
    if (predicted_degradation < 0.0)
        predicted_degradation = 0.0;
    if (predicted_degradation >= 1.0) {
        // The model predicts a dead server: the queue has no
        // capacity left, so the percentile diverges.
        return std::numeric_limits<double>::infinity();
    }
    return queue_.degradedPercentileLatency(p, predicted_degradation);
}

double
TailLatencyPredictor::measurePercentile(double p,
                                        double actual_degradation,
                                        std::uint64_t requests,
                                        std::uint64_t seed) const
{
    if (actual_degradation < 0.0)
        actual_degradation = 0.0;
    if (actual_degradation >= 1.0)
        throw std::invalid_argument("degradation must be below 1");
    if (requests <= kWarmupRequests)
        throw std::invalid_argument(
            "need more requests than the warmup window");
    const double mu_prime = (1.0 - actual_degradation) * queue_.mu();

    // Measured path: the open-loop DES — a Poisson arrival stream at
    // the profile's design rate through one server at the degraded
    // service rate. Statistically this is still M/M/1 (the closed
    // form stays a valid cross-check), but the engine is the same one
    // the load sweeps and knee searches use, exercises the
    // `des.arrival_burst` / `des.server_stall` / `des.drop` chaos
    // sites, and is keyed, so the measurement is byte-identical
    // across repeats and thread counts.
    loadgen::ArrivalConfig arrival;
    arrival.kind = loadgen::ArrivalKind::kPoisson;
    arrival.rate = queue_.lambda();
    arrival.seed = seed;
    loadgen::ArrivalStream source(arrival);

    queueing::OpenLoopConfig server;
    server.serviceRates = {mu_prime};
    server.seed = seed;

    const auto sim = queueing::simulateOpenLoop(
        source.generate(static_cast<std::size_t>(requests)), server);
    return sim.percentile(p, kWarmupRequests);
}

} // namespace smite::core
