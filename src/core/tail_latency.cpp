#include "core/tail_latency.h"

#include <limits>
#include <stdexcept>

namespace smite::core {

TailLatencyPredictor::TailLatencyPredictor(
    const workload::WorkloadProfile &profile)
    : queue_(profile.isLatencySensitive() ? profile.arrivalRate : 1.0,
             profile.isLatencySensitive() ? profile.serviceRate : 2.0)
{
    if (!profile.isLatencySensitive()) {
        throw std::invalid_argument(
            "profile has no arrival/service rates: " + profile.name);
    }
}

double
TailLatencyPredictor::soloPercentile(double p) const
{
    return queue_.percentileLatency(p);
}

double
TailLatencyPredictor::predictPercentile(double p,
                                        double predicted_degradation) const
{
    if (predicted_degradation < 0.0)
        predicted_degradation = 0.0;
    if (predicted_degradation >= 1.0) {
        // The model predicts a dead server: the queue has no
        // capacity left, so the percentile diverges.
        return std::numeric_limits<double>::infinity();
    }
    return queue_.degradedPercentileLatency(p, predicted_degradation);
}

double
TailLatencyPredictor::measurePercentile(double p,
                                        double actual_degradation,
                                        std::uint64_t requests,
                                        std::uint64_t seed) const
{
    if (actual_degradation < 0.0)
        actual_degradation = 0.0;
    if (actual_degradation >= 1.0)
        throw std::invalid_argument("degradation must be below 1");
    const double mu_prime = (1.0 - actual_degradation) * queue_.mu();
    const auto sim =
        queueing::simulateMm1(queue_.lambda(), mu_prime, requests, seed);
    return sim.percentile(p);
}

} // namespace smite::core
