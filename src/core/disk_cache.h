/**
 * @file
 * Sharded, crash-safe disk persistence for the Lab's measurement
 * log.
 *
 * The Lab's write-through disk cache used to be a single append-only
 * text file guarded by one mutex — fine for a serial harness, a
 * bottleneck once the batch APIs land measurements from a thread
 * pool. ShardedDiskCache hashes each record's key to one of N shard
 * files (`<base>.shard0` .. `<base>.shardN-1`), each with its own
 * writer mutex, so concurrent appends to different shards never
 * contend.
 *
 * Crash safety:
 *  - a shard's version header is created by writing a temp file and
 *    atomically renaming it into place, so a crash never leaves a
 *    half-written header;
 *  - each record is appended with a single O_APPEND write of the
 *    whole line (including the newline), so records from concurrent
 *    writers never interleave and a crash mid-append leaves at most
 *    one torn final line, which the reader skips with a warning.
 *
 * Readers get the shard paths *plus* the legacy single-file path
 * (`<base>` itself) from readPaths(), so caches written by older
 * builds keep working: their records are preloaded and new records
 * land in the shards.
 *
 * The `disk.corrupt` fault site (see src/fault) deliberately damages
 * appended records — bit flips, truncation, torn trailing newline —
 * to exercise the reader's skip-and-warn recovery path.
 */

#ifndef SMITE_CORE_DISK_CACHE_H
#define SMITE_CORE_DISK_CACHE_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smite::core {

/**
 * Version header of the disk-cache format. Files without it are read
 * as the legacy (v1, headerless) format; bump the version when a
 * record's shape changes so stale files are not silently misparsed.
 */
inline constexpr const char *kLabCacheHeader = "smite-lab-cache v2";

/**
 * A set of append-only record files sharded by key hash, one writer
 * mutex per shard. Not copyable or movable once open; the Lab owns
 * exactly one.
 */
class ShardedDiskCache
{
  public:
    ShardedDiskCache() = default;
    ShardedDiskCache(const ShardedDiskCache &) = delete;
    ShardedDiskCache &operator=(const ShardedDiskCache &) = delete;

    /**
     * Configure the cache rooted at @p base. @p shards <= 0 reads
     * the SMITE_CACHE_SHARDS environment variable (default 4, min 1).
     * Opening performs no writes: shard files are created lazily,
     * header first, on the first append that hashes to them.
     */
    void open(const std::string &base, int shards = 0);

    /** True once open() has been called with a non-empty base. */
    bool enabled() const { return !base_.empty(); }

    /** The base path passed to open(), or empty. */
    const std::string &basePath() const { return base_; }

    /** Number of shard files. 0 before open(). */
    int shardCount() const { return static_cast<int>(shards_.size()); }

    /** Path of shard @p index under @p base. */
    static std::string shardPath(const std::string &base, int index);

    /**
     * Append one record line (newline added here) to the shard that
     * @p key hashes to. Creates the shard file with its version
     * header (temp file + rename) on first use. No-op when disabled.
     */
    void append(const std::string &key, const std::string &line);

    /**
     * Every file a reader should preload, oldest format first: the
     * legacy single file at basePath() if it exists, then each shard
     * file that exists. Empty when disabled.
     */
    std::vector<std::string> readPaths() const;

  private:
    struct Shard {
        std::string path;
        std::mutex mu;
        bool headered = false;  ///< header known present (this run)
    };

    Shard &shardFor(const std::string &key);

    std::string base_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace smite::core

#endif // SMITE_CORE_DISK_CACHE_H
