#include "core/sensitivity_curve.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "workload/generator.h"

namespace smite::core {

SensitivityCurve::SensitivityCurve(std::vector<Point> points)
    : points_(std::move(points))
{
    if (points_.size() < 2)
        throw std::invalid_argument("curve needs at least two points");
    for (size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].intensity <= points_[i - 1].intensity) {
            throw std::invalid_argument(
                "curve intensities must strictly increase");
        }
    }
}

double
SensitivityCurve::at(double intensity) const
{
    if (intensity <= points_.front().intensity)
        return points_.front().degradation;
    if (intensity >= points_.back().intensity)
        return points_.back().degradation;
    for (size_t i = 1; i < points_.size(); ++i) {
        if (intensity <= points_[i].intensity) {
            const Point &lo = points_[i - 1];
            const Point &hi = points_[i];
            const double t = (intensity - lo.intensity) /
                             (hi.intensity - lo.intensity);
            return lo.degradation +
                   t * (hi.degradation - lo.degradation);
        }
    }
    return points_.back().degradation;  // unreachable
}

SensitivityCurve
SensitivityCurve::sparsified(int keep) const
{
    if (keep < 2)
        throw std::invalid_argument("must keep at least two points");
    if (static_cast<size_t>(keep) >= points_.size())
        return *this;
    std::vector<Point> kept;
    kept.push_back(points_.front());
    // Interior points, evenly spread by index.
    for (int i = 1; i < keep - 1; ++i) {
        const size_t idx =
            i * (points_.size() - 1) / (keep - 1);
        kept.push_back(points_[idx]);
    }
    kept.push_back(points_.back());
    return SensitivityCurve(std::move(kept));
}

double
SensitivityCurve::meanAbsoluteError(const SensitivityCurve &other) const
{
    double sum = 0.0;
    for (const Point &p : points_)
        sum += std::abs(p.degradation - other.at(p.intensity));
    return sum / static_cast<double>(points_.size());
}

CurveProfiler::CurveProfiler(const sim::Machine &machine,
                             sim::Cycle warmup, sim::Cycle measure)
    : machine_(machine), warmup_(warmup), measure_(measure)
{
}

double
CurveProfiler::degradationUnder(const workload::WorkloadProfile &profile,
                                const rulers::Ruler &ruler) const
{
    workload::ProfileUopSource solo(profile, /*seed=*/1);
    const double solo_ipc =
        machine_.runSolo(solo, warmup_, measure_).ipc();

    workload::ProfileUopSource victim(profile, /*seed=*/1);
    auto stressor = ruler.makeSource();
    const auto counters =
        machine_.runPairSmt(victim, *stressor, warmup_, measure_);
    return solo_ipc > 0.0 ? (solo_ipc - counters[0].ipc()) / solo_ipc
                          : 0.0;
}

SensitivityCurve
CurveProfiler::functionalUnitCurve(
    const workload::WorkloadProfile &profile, rulers::Dimension dim,
    const std::vector<double> &duties) const
{
    std::vector<SensitivityCurve::Point> points;
    points.reserve(duties.size());
    for (double duty : duties) {
        const rulers::Ruler ruler =
            rulers::Ruler::functionalUnit(dim, duty);
        points.push_back({duty, degradationUnder(profile, ruler)});
    }
    return SensitivityCurve(std::move(points));
}

SensitivityCurve
CurveProfiler::memoryCurve(
    const workload::WorkloadProfile &profile, rulers::Dimension dim,
    const std::vector<std::uint64_t> &working_sets) const
{
    std::vector<SensitivityCurve::Point> points;
    points.reserve(working_sets.size());
    for (std::uint64_t bytes : working_sets) {
        const rulers::Ruler ruler = rulers::Ruler::memory(dim, bytes);
        points.push_back({static_cast<double>(bytes),
                          degradationUnder(profile, ruler)});
    }
    return SensitivityCurve(std::move(points));
}

} // namespace smite::core
