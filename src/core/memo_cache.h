/**
 * @file
 * Thread-safe single-flight memoization cache for measurement
 * results.
 *
 * The Lab's measurements are expensive (whole-machine simulations)
 * and keyed (workload, mode, shape), so when the batch APIs fan
 * requests across a thread pool two guarantees matter:
 *
 *  1. *thread safety* — concurrent lookups and inserts never race
 *     (reads take a shared lock, writes an exclusive one);
 *  2. *single flight* — when several threads miss on the same key at
 *     once, exactly one runs the compute function; the others block
 *     until the value is ready and then share it. Two threads never
 *     simulate the same key twice.
 *
 * Slots are heap-allocated and shared, so the references handed out
 * stay valid for as long as any consumer holds them — the Lab's
 * reference-returning accessors keep their contract under
 * concurrency.
 *
 * Failure semantics (pinned by tests/test_parallel.cpp): if a compute
 * function throws, the exception propagates to the computing caller
 * *and* to every thread waiting on that in-flight key, but the key is
 * NOT poisoned — the failed slot is discarded, and a later call with
 * the same key runs the compute function again. Measurement failures
 * are transient under fault injection (see src/fault), so retrying
 * must be possible; only successful values are memoized.
 */

#ifndef SMITE_CORE_MEMO_CACHE_H
#define SMITE_CORE_MEMO_CACHE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace smite::core {

/**
 * Shared-mutex-guarded map with single-flight computation.
 *
 * @tparam Key ordered key type
 * @tparam Value default-constructible result type
 */
template <typename Key, typename Value>
class MemoCache
{
  public:
    /**
     * Register this cache's traffic with the global metrics
     * Registry under `<prefix>.hits` / `<prefix>.misses` /
     * `<prefix>.waits` (see docs/OBSERVABILITY.md): a *hit* found a
     * ready value on the shared-lock fast path, a *miss* elected this
     * caller to compute, a *wait* blocked on another thread's
     * in-flight computation of the same key (single-flight
     * contention). Call once, before concurrent use; updates are
     * relaxed atomic increments.
     */
    void
    instrument(const std::string &prefix)
    {
        obs::Registry &registry = obs::Registry::global();
        hits_ = &registry.counter(prefix + ".hits");
        misses_ = &registry.counter(prefix + ".misses");
        waits_ = &registry.counter(prefix + ".waits");
    }

    /**
     * Return the cached value for @p key, computing it with
     * @p compute on a miss. Concurrent callers of the same key
     * block until the one elected computer finishes (single-flight).
     * If the computer throws, all of them — computer and waiters —
     * see the exception and the key is left absent, so the next call
     * retries. The returned reference is stable for the cache's
     * lifetime.
     */
    template <typename Fn>
    const Value &
    getOrCompute(const Key &key, Fn &&compute)
    {
        {
            std::shared_lock<std::shared_mutex> read(mu_);
            const auto it = slots_.find(key);
            if (it != slots_.end() && it->second->ready) {
                if (hits_)
                    hits_->add();
                return it->second->value;
            }
        }
        std::unique_lock<std::shared_mutex> write(mu_);
        const auto [it, inserted] = slots_.try_emplace(key);
        if (!inserted) {
            // Someone else owns (or finished) this key: wait it out.
            // Keep the slot alive independently of the map — a failed
            // flight erases its map entry before we wake.
            const std::shared_ptr<Slot> slot = it->second;
            if (slot->ready) {
                if (hits_)
                    hits_->add();
            } else if (waits_) {
                waits_->add();
            }
            cv_.wait(write, [&] { return slot->ready; });
            if (slot->error)
                std::rethrow_exception(slot->error);
            return slot->value;
        }
        it->second = std::make_shared<Slot>();
        const std::shared_ptr<Slot> slot = it->second;
        if (misses_)
            misses_->add();
        // We own the computation; run it unlocked so other keys
        // proceed and nested lookups cannot deadlock.
        write.unlock();
        computes_.fetch_add(1, std::memory_order_relaxed);
        Value value{};
        std::exception_ptr error;
        try {
            value = compute();
        } catch (...) {
            error = std::current_exception();
        }
        write.lock();
        slot->value = std::move(value);
        slot->error = error;
        slot->ready = true;
        if (error) {
            // Don't memoize the failure: waiters hold the slot and
            // rethrow; the next caller finds no entry and retries.
            slots_.erase(key);
        }
        cv_.notify_all();
        if (error)
            std::rethrow_exception(error);
        return slot->value;
    }

    /**
     * Insert a ready value if the key is absent (e.g. preloading from
     * the disk cache, or publishing the mirror direction of a pair
     * measurement). Existing entries — ready or in flight — win.
     */
    void
    put(const Key &key, Value value)
    {
        std::unique_lock<std::shared_mutex> write(mu_);
        const auto [it, inserted] = slots_.try_emplace(key);
        if (!inserted)
            return;
        it->second = std::make_shared<Slot>();
        it->second->value = std::move(value);
        it->second->ready = true;
    }

    /** Ready value for @p key, or nullptr if absent or in flight. */
    const Value *
    peek(const Key &key) const
    {
        std::shared_lock<std::shared_mutex> read(mu_);
        const auto it = slots_.find(key);
        if (it == slots_.end() || !it->second->ready)
            return nullptr;
        if (hits_)
            hits_->add();
        return &it->second->value;
    }

    /** Number of compute invocations (misses actually attempted). */
    std::uint64_t
    computeCount() const
    {
        return computes_.load(std::memory_order_relaxed);
    }

    /** Number of entries (ready or in flight). */
    std::size_t
    size() const
    {
        std::shared_lock<std::shared_mutex> read(mu_);
        return slots_.size();
    }

  private:
    struct Slot {
        Value value{};
        std::exception_ptr error;
        bool ready = false;
    };

    mutable std::shared_mutex mu_;
    std::condition_variable_any cv_;
    std::map<Key, std::shared_ptr<Slot>> slots_;
    std::atomic<std::uint64_t> computes_{0};
    obs::Counter *hits_ = nullptr;    ///< null until instrument()
    obs::Counter *misses_ = nullptr;
    obs::Counter *waits_ = nullptr;
};

} // namespace smite::core

#endif // SMITE_CORE_MEMO_CACHE_H
