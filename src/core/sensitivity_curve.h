/**
 * @file
 * Sensitivity curves and the paper's low-overhead profiling claim
 * (Section III-B1).
 *
 * An application's sensitivity to a sharing dimension is a *curve*:
 * degradation as a function of Ruler intensity (duty cycle for
 * functional units, working-set size for caches). Because the Rulers
 * are designed so interference is near-linear in intensity, the
 * paper profiles only the curve's endpoints and interpolates,
 * cutting characterization time from a sweep to a couple of runs.
 *
 * This module measures full curves, builds interpolants from sparse
 * samples, and quantifies the interpolation error — the evidence
 * behind the "profiling in the order of seconds" claim.
 */

#ifndef SMITE_CORE_SENSITIVITY_CURVE_H
#define SMITE_CORE_SENSITIVITY_CURVE_H

#include <cstdint>
#include <vector>

#include "rulers/ruler.h"
#include "sim/machine.h"
#include "workload/profile.h"

namespace smite::core {

/**
 * A measured sensitivity curve: degradation sampled at increasing
 * Ruler intensities, with linear interpolation between samples.
 */
class SensitivityCurve
{
  public:
    /** One measured point. */
    struct Point {
        double intensity = 0.0;    ///< duty cycle or working-set bytes
        double degradation = 0.0;  ///< victim degradation at it
    };

    /**
     * @param points samples with strictly increasing intensity
     * @throws std::invalid_argument on fewer than two points or
     *         non-increasing intensities
     */
    explicit SensitivityCurve(std::vector<Point> points);

    /**
     * Degradation at an arbitrary intensity (linear interpolation;
     * clamped to the sampled range at the ends).
     */
    double at(double intensity) const;

    /** The measured samples. */
    const std::vector<Point> &points() const { return points_; }

    /**
     * Build a sparse interpolant from this curve: keep only the
     * first and last points (@p keep = 2) or also the middle one
     * (@p keep = 3, the paper's three-cache-size scheme).
     */
    SensitivityCurve sparsified(int keep) const;

    /**
     * Mean absolute difference between this curve and @p other,
     * evaluated at this curve's sample intensities.
     */
    double meanAbsoluteError(const SensitivityCurve &other) const;

  private:
    std::vector<Point> points_;
};

/**
 * Measure a sensitivity curve of one application against one
 * dimension on a machine.
 */
class CurveProfiler
{
  public:
    /**
     * @param machine machine model to measure on
     * @param warmup warmup cycles per run
     * @param measure measurement cycles per run
     */
    CurveProfiler(const sim::Machine &machine,
                  sim::Cycle warmup = sim::kDefaultWarmupCycles,
                  sim::Cycle measure = sim::kDefaultMeasureCycles);

    /**
     * Sweep a functional-unit Ruler's duty cycle.
     * @param profile the victim application
     * @param dim one of the FU dimensions
     * @param duties duty cycles to sample (increasing)
     */
    SensitivityCurve
    functionalUnitCurve(const workload::WorkloadProfile &profile,
                        rulers::Dimension dim,
                        const std::vector<double> &duties) const;

    /**
     * Sweep a memory Ruler's working-set size.
     * @param profile the victim application
     * @param dim kL1, kL2 or kL3
     * @param working_sets footprints in bytes (increasing)
     */
    SensitivityCurve
    memoryCurve(const workload::WorkloadProfile &profile,
                rulers::Dimension dim,
                const std::vector<std::uint64_t> &working_sets) const;

  private:
    double degradationUnder(const workload::WorkloadProfile &profile,
                            const rulers::Ruler &ruler) const;

    const sim::Machine &machine_;
    sim::Cycle warmup_;
    sim::Cycle measure_;
};

} // namespace smite::core

#endif // SMITE_CORE_SENSITIVITY_CURVE_H
