#include "core/parallel.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smite::core {

namespace {

/**
 * Pool metrics (docs/OBSERVABILITY.md): batches/tasks executed, the
 * width of the last batch, and — only while SMITE_METRICS is on,
 * because it costs two clock reads per task — a task-latency
 * histogram in microseconds.
 */
struct PoolMetrics {
    obs::Counter &batches =
        obs::Registry::global().counter("pool.batches");
    obs::Counter &tasks = obs::Registry::global().counter("pool.tasks");
    obs::Gauge &width = obs::Registry::global().gauge("pool.width");
    obs::Histogram &task_us =
        obs::Registry::global().histogram("pool.task_us");

    static PoolMetrics &
    get()
    {
        static PoolMetrics metrics;
        return metrics;
    }
};

/**
 * `pool.delay` fault site: stall this task for the site's configured
 * microseconds, emulating a loaded machine where some workers lag.
 * Purely a scheduling perturbation — results must not change, which
 * is exactly what the determinism tests lean on.
 */
void
maybeDelayTask(std::size_t i)
{
    fault::FaultPlan &faults = fault::FaultPlan::global();
    if (!faults.enabled())
        return;
    if (!faults.shouldInject("pool.delay", std::to_string(i)))
        return;
    const double us = faults.spec("pool.delay").micros;
    if (us > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::micro>(us));
    }
}

/** Run one iteration, timing it into the histogram when enabled. */
void
runTimed(const std::function<void(std::size_t)> &body, std::size_t i)
{
    maybeDelayTask(i);
    if (!obs::metricsEnabled()) {
        body(i);
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    body(i);
    const auto t1 = std::chrono::steady_clock::now();
    PoolMetrics::get().task_us.observe(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
}

} // namespace

int
defaultThreadCount()
{
    if (const char *env = std::getenv("SMITE_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<int>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    workers_.reserve(threads - 1);
    for (int t = 0; t < threads - 1; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::drainBatch()
{
    for (;;) {
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_)
            return;
        try {
            runTimed(*body_, i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (++completed_ == total_)
            done_cv_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(
                lock, [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
        }
        drainBatch();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    PoolMetrics &metrics = PoolMetrics::get();
    metrics.batches.add();
    metrics.tasks.add(n);
    metrics.width.set(size());
    obs::Span span("pool.batch", std::to_string(n) + " tasks x " +
                                     std::to_string(size()) +
                                     " workers");
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            runTimed(body, i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        body_ = &body;
        total_ = n;
        completed_ = 0;
        error_ = nullptr;
        next_.store(0, std::memory_order_relaxed);
        ++epoch_;
    }
    work_cv_.notify_all();
    drainBatch();  // the caller is a worker too
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return completed_ == total_; });
    body_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    if (threads == 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ThreadPool pool(threads);
    pool.parallelFor(n, body);
}

} // namespace smite::core
