/**
 * @file
 * Range guard shared by every degradation predictor.
 *
 * A fitted linear model is an unconstrained affine map: regression
 * overshoot routinely lands a little below 0 or above 1, and
 * pathological inputs (a characterization built from a near-zero solo
 * IPC, NaNs smuggled in through a corrupted profile) propagate
 * non-finite values straight into scheduler admission decisions.
 * Degradations are fractions of solo performance, so every public
 * predict path funnels through this guard:
 *
 *  - finite out-of-range values are clamped into [0, 1] silently
 *    (ordinary overshoot, not a failure — the predictor.clamped
 *    counter makes the rate observable);
 *  - non-finite values are replaced by the conservative worst case
 *    1.0 (full degradation, QoS 0) and logged to the IncidentLog, so
 *    a run that made decisions on garbage is marked partial.
 */

#ifndef SMITE_CORE_PREDICTION_GUARD_H
#define SMITE_CORE_PREDICTION_GUARD_H

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/incident.h"

namespace smite::core {

/** Clamp a raw degradation prediction into [0, 1] (see file docs). */
inline double
guardDegradation(double raw, const char *model)
{
    if (!std::isfinite(raw)) {
        obs::IncidentLog::global().record(
            std::string(model) +
            ": non-finite degradation prediction, using worst case 1.0");
        return 1.0;
    }
    return std::clamp(raw, 0.0, 1.0);
}

} // namespace smite::core

#endif // SMITE_CORE_PREDICTION_GUARD_H
