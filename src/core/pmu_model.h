/**
 * @file
 * The PMU-counter baseline prediction model
 * (paper Section IV-B1, Equation 9).
 *
 * The strongest baseline the paper could construct without Rulers: a
 * linear regression over eleven solo-run hardware-counter rates of
 * both co-located applications,
 *
 *   Deg(A|B) = sum_i (c_i^A PMU_i^A + c_i^B PMU_i^B) + c_0.
 */

#ifndef SMITE_CORE_PMU_MODEL_H
#define SMITE_CORE_PMU_MODEL_H

#include <array>
#include <vector>

#include "sim/counters.h"
#include "stats/regression.h"

namespace smite::core {

/** Solo PMU profile of one application (the 11 rates of Eq. 9). */
using PmuProfile = std::array<double, sim::kNumPmuRates>;

/**
 * Linear model over the solo PMU rates of both applications.
 */
class PmuModel
{
  public:
    /** One training observation. */
    struct Sample {
        PmuProfile victim{};      ///< solo PMU rates of application A
        PmuProfile aggressor{};   ///< solo PMU rates of application B
        double degradation = 0.0; ///< measured Deg(A|B)
    };

    /**
     * Fit the model.
     * @param samples training observations (needs more samples than
     *        2 * kNumPmuRates)
     * @param ridge small L2 regularizer; PMU rates are collinear
     *        (e.g. L2 hits vs L1 misses), so a nonzero default keeps
     *        the normal equations well-posed
     */
    static PmuModel train(const std::vector<Sample> &samples,
                          double ridge = 1e-6);

    /**
     * Predict Deg(A|B) from both solo PMU profiles. Guarded into
     * [0, 1] like SmiteModel::predict (core/prediction_guard.h).
     */
    double predict(const PmuProfile &victim,
                   const PmuProfile &aggressor) const;

    /** Concatenated feature vector (A's rates then B's). */
    static std::vector<double> features(const PmuProfile &victim,
                                        const PmuProfile &aggressor);

  private:
    explicit PmuModel(stats::LinearModel model) : model_(std::move(model))
    {}

    stats::LinearModel model_;
};

} // namespace smite::core

#endif // SMITE_CORE_PMU_MODEL_H
