#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/parallel.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace smite::core {

namespace {

/** Resolve a positive-integer knob from the environment. */
int
envInt(const char *name, int fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<int>(n);
        std::fprintf(stderr, "smite: %s='%s' invalid, using %d\n",
                     name, env, fallback);
    }
    return fallback;
}

/** Format doubles for the cache file at full precision. */
std::string
formatValues(std::initializer_list<double> values)
{
    std::ostringstream out;
    out.precision(17);
    for (double v : values)
        out << " " << v;
    return out.str();
}

/** True if the stream has no tokens left (trailing garbage check). */
bool
exhausted(std::istream &in)
{
    std::string extra;
    return !(in >> extra);
}

} // namespace

Lab::Lab(const sim::MachineConfig &config, sim::Cycle warmup,
         sim::Cycle measure)
    : machine_(config), suite_(rulers::defaultSuite(config)),
      characterizer_(machine_, suite_, warmup, measure),
      warmup_(warmup), measure_(measure)
{
    soloIpcCache_.instrument("lab.cache.solo_ipc");
    soloCounterCache_.instrument("lab.cache.solo_counters");
    pmuCache_.instrument("lab.cache.pmu");
    characterizationCache_.instrument("lab.cache.characterization");
    pairCache_.instrument("lab.cache.pair");
    multiCache_.instrument("lab.cache.multi");
    portCache_.instrument("lab.cache.ports");
}

Lab::Lab(const sim::MachineConfig &config, const std::string &cache_path,
         sim::Cycle warmup, sim::Cycle measure)
    : Lab(config, warmup, measure)
{
    enableDiskCache(cache_path);
}

int
Lab::parallelism() const
{
    return parallelism_ > 0 ? parallelism_ : defaultThreadCount();
}

int
Lab::maxAttempts() const
{
    if (maxAttempts_ > 0)
        return maxAttempts_;
    return envInt("SMITE_LAB_RETRIES", 3);
}

int
Lab::trials() const
{
    if (trials_ > 0)
        return trials_;
    return envInt("SMITE_LAB_TRIALS", 1);
}

void
Lab::onMeasurementFailure(const std::string &key, const char *what,
                          int attempt, int max_attempts)
{
    static obs::Counter &retries =
        obs::Registry::global().counter("lab.retries");
    static obs::Counter &failures =
        obs::Registry::global().counter("lab.failures");
    if (attempt >= max_attempts) {
        failures.add();
        obs::IncidentLog::global().record(
            "measurement '" + key + "' failed after " +
            std::to_string(attempt) + " attempts: " + what);
        throw;  // rethrow the MeasurementError being handled
    }
    retries.add();
    // Exponential backoff, capped: on a real cluster a failed run is
    // re-queued, not re-fired instantly. Unreachable without faults
    // armed, so plain runs never sleep.
    std::this_thread::sleep_for(
        std::chrono::microseconds(50ull << std::min(attempt - 1, 6)));
}

std::vector<double>
Lab::measureTrials(
    const std::string &key,
    const std::function<std::vector<double>(const std::string &)> &fn)
{
    const int n = trials();
    static obs::Counter &trial_count =
        obs::Registry::global().counter("lab.trials");
    trial_count.add(static_cast<std::uint64_t>(n));
    if (n <= 1)
        return withRetry(key, fn);
    std::vector<std::vector<double>> runs;
    runs.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        runs.push_back(withRetry(key + "/t" + std::to_string(t), fn));
    std::vector<double> out(runs.front().size());
    for (std::size_t c = 0; c < out.size(); ++c) {
        std::vector<double> samples;
        samples.reserve(runs.size());
        for (const auto &r : runs)
            samples.push_back(r[c]);
        out[c] = stats::robustMedian(samples);
    }
    return out;
}

std::string
Lab::pairKey(const std::string &a, const std::string &b,
             CoLocationMode mode) const
{
    return a + "|" + b + "|" + modeName(mode);
}

void
Lab::appendToDisk(const std::string &key, const std::string &line)
{
    disk_.append(key, line);
}

void
Lab::loadDiskCache(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    std::size_t lineno = 0;
    bool first = true;
    obs::Counter &preloaded =
        obs::Registry::global().counter("lab.disk.preloaded");
    auto warn = [&](const char *what) {
        std::fprintf(stderr,
                     "smite: disk cache %s:%zu: skipping %s line\n",
                     path.c_str(), lineno, what);
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (first) {
            first = false;
            if (line == kLabCacheHeader)
                continue;  // current format
            if (line.rfind("smite-lab-cache", 0) == 0) {
                std::fprintf(stderr,
                             "smite: disk cache %s: unknown version "
                             "'%s', reading best-effort\n",
                             path.c_str(), line.c_str());
                continue;
            }
            // No header: legacy v1 file; fall through and parse the
            // line as a record.
        }
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string kind, key;
        if (!(row >> kind >> key)) {
            warn("unparseable");
            continue;
        }
        if (kind == "solo") {
            double v;
            if (row >> v && exhausted(row)) {
                soloIpcCache_.put(key, v);
                preloaded.add();
            } else {
                warn("truncated 'solo'");
            }
        } else if (kind == "pair") {
            double a, b;
            if (row >> a >> b && exhausted(row)) {
                pairCache_.put(key, {a, b});
                preloaded.add();
            } else {
                warn("truncated 'pair'");
            }
        } else if (kind == "multi") {
            double v;
            if (row >> v && exhausted(row)) {
                multiCache_.put(key, v);
                preloaded.add();
            } else {
                warn("truncated 'multi'");
            }
        } else if (kind == "pmu") {
            PmuProfile p{};
            bool ok = true;
            for (double &v : p)
                ok = ok && static_cast<bool>(row >> v);
            if (ok && exhausted(row)) {
                pmuCache_.put(key, p);
                preloaded.add();
            } else {
                warn("truncated 'pmu'");
            }
        } else if (kind == "ports") {
            std::array<double, sim::kNumPorts> utilization{};
            bool ok = true;
            for (double &v : utilization)
                ok = ok && static_cast<bool>(row >> v);
            if (ok && exhausted(row)) {
                portCache_.put(key, utilization);
                preloaded.add();
            } else {
                warn("truncated 'ports'");
            }
        } else if (kind == "char") {
            Characterization c;
            bool ok = true;
            for (double &v : c.sensitivity)
                ok = ok && static_cast<bool>(row >> v);
            for (double &v : c.contentiousness)
                ok = ok && static_cast<bool>(row >> v);
            if (ok && exhausted(row)) {
                characterizationCache_.put(key, c);
                preloaded.add();
            } else {
                warn("truncated 'char'");
            }
        } else {
            warn("unrecognized");
        }
    }
}

void
Lab::enableDiskCache(const std::string &path)
{
    disk_.open(path);
    // Preload the legacy single file (if present) and every existing
    // shard; new records land sharded, headers created lazily.
    for (const std::string &file : disk_.readPaths())
        loadDiskCache(file);
}

double
Lab::soloIpc(const workload::WorkloadProfile &profile, int threads)
{
    const std::string key =
        profile.name + "#" + std::to_string(threads);
    return soloIpcCache_.getOrCompute(key, [&] {
        obs::Span span("lab.solo_ipc", key);
        const std::vector<double> vals =
            measureTrials(key, [&](const std::string &tkey) {
                fault::maybeThrow("lab.measure", tkey);
                return std::vector<double>{
                    characterizer_.soloIpc(profile, threads)};
            });
        appendToDisk(key, "solo " + key + formatValues({vals[0]}));
        return vals[0];
    });
}

const sim::CounterBlock &
Lab::soloCounters(const workload::WorkloadProfile &profile)
{
    return soloCounterCache_.getOrCompute(profile.name, [&] {
        obs::Span span("lab.solo_counters", profile.name);
        return withRetry(profile.name, [&](const std::string &tkey) {
            fault::maybeThrow("lab.measure", tkey);
            workload::ProfileUopSource source(profile);
            return machine_.runSolo(source, warmup_, measure_);
        });
    });
}

PmuProfile
Lab::pmuProfile(const workload::WorkloadProfile &profile)
{
    return pmuCache_.getOrCompute(profile.name, [&] {
        obs::Span span("lab.pmu_profile", profile.name);
        // Retry lives in soloCounters(); this lambda only derives.
        const PmuProfile rates = soloCounters(profile).pmuRates();
        std::string line = "pmu " + profile.name;
        for (double v : rates)
            line += formatValues({v});
        appendToDisk(profile.name, line);
        return rates;
    });
}

const Characterization &
Lab::characterization(const workload::WorkloadProfile &profile,
                      CoLocationMode mode, int threads)
{
    const std::string key = profile.name + "#" + modeName(mode) + "#" +
                            std::to_string(threads);
    return characterizationCache_.getOrCompute(key, [&] {
        obs::Span span("lab.characterize", key);
        Characterization c =
            withRetry(key, [&](const std::string &tkey) {
                fault::maybeThrow("lab.measure", tkey);
                return characterizer_.characterize(profile, mode,
                                                   threads);
            });
        std::string line = "char " + key;
        for (double v : c.sensitivity)
            line += formatValues({v});
        for (double v : c.contentiousness)
            line += formatValues({v});
        appendToDisk(key, line);
        return c;
    });
}

double
Lab::pairDegradation(const workload::WorkloadProfile &victim,
                     const workload::WorkloadProfile &aggressor,
                     CoLocationMode mode)
{
    const std::string key = pairKey(victim.name, aggressor.name, mode);
    if (const auto *hit = pairCache_.peek(key))
        return hit->first;

    // Simulate with the name-ordered workload in the first placement
    // slot so the run — and thus the measurement — is the same
    // whichever direction is asked first, serially or in parallel.
    const bool ordered = victim.name <= aggressor.name;
    const workload::WorkloadProfile &first =
        ordered ? victim : aggressor;
    const workload::WorkloadProfile &second =
        ordered ? aggressor : victim;
    const std::string canonical =
        pairKey(first.name, second.name, mode);
    const std::string mirror = pairKey(second.name, first.name, mode);

    const auto &degs = pairCache_.getOrCompute(canonical, [&] {
        obs::Span span("lab.pair", canonical);
        // The solo references have their own retry/trial protocol;
        // hoist them so a pair-trial failure never double-counts a
        // solo failure.
        const double solo_a = soloIpc(first);
        const double solo_b = soloIpc(second);
        const std::vector<double> deg =
            measureTrials(canonical, [&](const std::string &tkey) {
                fault::maybeThrow("lab.measure", tkey);
                workload::ProfileUopSource a(first, /*seed=*/1);
                workload::ProfileUopSource b(second, /*seed=*/2);
                const auto counters =
                    mode == CoLocationMode::kSmt
                        ? machine_.runPairSmt(a, b, warmup_, measure_)
                        : machine_.runPairCmp(a, b, warmup_, measure_);
                const double deg_a =
                    solo_a > 0.0
                        ? (solo_a - counters[0].ipc()) / solo_a
                        : 0.0;
                const double deg_b =
                    solo_b > 0.0
                        ? (solo_b - counters[1].ipc()) / solo_b
                        : 0.0;
                return std::vector<double>{deg_a, deg_b};
            });

        appendToDisk(canonical, "pair " + canonical +
                                    formatValues({deg[0], deg[1]}));
        appendToDisk(mirror,
                     "pair " + mirror + formatValues({deg[1], deg[0]}));
        return std::make_pair(deg[0], deg[1]);
    });
    pairCache_.put(mirror, {degs.second, degs.first});
    return ordered ? degs.first : degs.second;
}

std::array<double, sim::kNumPorts>
Lab::pairPortUtilization(const workload::WorkloadProfile &a,
                         const workload::WorkloadProfile &b,
                         CoLocationMode mode)
{
    const std::string key = "ports|" + pairKey(a.name, b.name, mode);
    return portCache_.getOrCompute(key, [&] {
        obs::Span span("lab.ports", key);
        const std::vector<double> vals =
            measureTrials(key, [&](const std::string &tkey) {
                fault::maybeThrow("lab.measure", tkey);
                workload::ProfileUopSource sa(a, /*seed=*/1);
                workload::ProfileUopSource sb(b, /*seed=*/2);
                const auto counters =
                    mode == CoLocationMode::kSmt
                        ? machine_.runPairSmt(sa, sb, warmup_, measure_)
                        : machine_.runPairCmp(sa, sb, warmup_,
                                              measure_);
                std::vector<double> u(sim::kNumPorts);
                for (int p = 0; p < sim::kNumPorts; ++p) {
                    u[p] = counters[0].portUtilization(p) +
                           counters[1].portUtilization(p);
                }
                return u;
            });

        std::array<double, sim::kNumPorts> utilization{};
        std::copy(vals.begin(), vals.end(), utilization.begin());
        std::string line = "ports " + key;
        for (double u : utilization)
            line += formatValues({u});
        appendToDisk(key, line);
        return utilization;
    });
}

double
Lab::multiInstanceDegradation(const workload::WorkloadProfile &latency,
                              int threads,
                              const workload::WorkloadProfile &batch,
                              int instances, CoLocationMode mode)
{
    const int cores = machine_.config().numCores;
    if (threads < 1 || instances < 1 || instances > threads)
        throw std::invalid_argument("bad thread/instance counts");
    if (mode == CoLocationMode::kSmt && threads > cores)
        throw std::invalid_argument("too many threads for SMT");
    if (mode == CoLocationMode::kCmp && threads + instances > cores)
        throw std::invalid_argument("too many placements for CMP");

    const std::string key = latency.name + "#" + batch.name + "#" +
                            modeName(mode) + "#" +
                            std::to_string(threads) + "x" +
                            std::to_string(instances);
    return multiCache_.getOrCompute(key, [&] {
        obs::Span span("lab.multi", key);
        const double solo = soloIpc(latency, threads);
        const std::vector<double> vals =
            measureTrials(key, [&](const std::string &tkey) {
                fault::maybeThrow("lab.measure", tkey);
                // Latency app: context 0 of cores 0..threads-1.
                std::vector<workload::ProfileUopSource> app_sources;
                app_sources.reserve(threads);
                for (int t = 0; t < threads; ++t)
                    app_sources.emplace_back(latency, /*seed=*/1 + t);
                std::vector<sim::Placement> placements;
                for (int t = 0; t < threads; ++t)
                    placements.push_back(
                        sim::Placement{t, 0, &app_sources[t]});

                // Batch instances: sibling contexts (SMT) or the
                // idle cores (CMP).
                std::vector<workload::ProfileUopSource> batch_sources;
                batch_sources.reserve(instances);
                for (int k = 0; k < instances; ++k)
                    batch_sources.emplace_back(batch, /*seed=*/100 + k);
                for (int k = 0; k < instances; ++k) {
                    if (mode == CoLocationMode::kSmt)
                        placements.push_back(
                            sim::Placement{k, 1, &batch_sources[k]});
                    else
                        placements.push_back(sim::Placement{
                            threads + k, 0, &batch_sources[k]});
                }

                const auto counters =
                    machine_.run(placements, warmup_, measure_);
                double co_ipc = 0.0;
                for (int t = 0; t < threads; ++t)
                    co_ipc += counters[t].ipc();
                return std::vector<double>{
                    solo > 0.0 ? (solo - co_ipc) / solo : 0.0};
            });
        appendToDisk(key, "multi " + key + formatValues({vals[0]}));
        return vals[0];
    });
}

std::vector<double>
Lab::soloIpcAll(const std::vector<workload::WorkloadProfile> &profiles,
                int threads)
{
    std::vector<double> results(profiles.size());
    parallelFor(
        profiles.size(),
        [&](std::size_t i) {
            try {
                results[i] = soloIpc(profiles[i], threads);
            } catch (const fault::MeasurementError &) {
                // Retry budget spent (already logged): NaN marks the
                // hole instead of sinking the whole batch.
                results[i] = std::nan("");
            }
        },
        parallelism());
    return results;
}

std::vector<Characterization>
Lab::characterizeAll(const std::vector<workload::WorkloadProfile> &profiles,
                     CoLocationMode mode, int threads)
{
    const int workers = parallelism();
    // Warm the per-dimension Ruler baselines first; otherwise every
    // fanned-out characterization would single-flight-block on
    // dimension 0's baseline at once.
    parallelFor(
        suite_.size(),
        [&](std::size_t d) {
            characterizer_.rulerBaseline(d, mode, threads);
        },
        workers);
    std::vector<Characterization> results(profiles.size());
    parallelFor(
        profiles.size(),
        [&](std::size_t i) {
            try {
                results[i] =
                    characterization(profiles[i], mode, threads);
            } catch (const fault::MeasurementError &) {
                results[i].valid = false;
            }
        },
        workers);
    return results;
}

std::vector<PmuProfile>
Lab::pmuProfileAll(const std::vector<workload::WorkloadProfile> &profiles)
{
    std::vector<PmuProfile> results(profiles.size());
    parallelFor(
        profiles.size(),
        [&](std::size_t i) {
            try {
                results[i] = pmuProfile(profiles[i]);
            } catch (const fault::MeasurementError &) {
                results[i].fill(std::nan(""));
            }
        },
        parallelism());
    return results;
}

std::vector<std::vector<double>>
Lab::measureAllPairs(const std::vector<workload::WorkloadProfile> &profiles,
                     CoLocationMode mode)
{
    const std::size_t n = profiles.size();
    const int workers = parallelism();

    // Solo IPCs enter every degradation; measure them first so pair
    // tasks don't serialize on the single-flight solo of a hot name.
    // A solo failure here resurfaces from the pair that needs it.
    parallelFor(
        n,
        [&](std::size_t i) {
            try {
                soloIpc(profiles[i]);
            } catch (const fault::MeasurementError &) {
            }
        },
        workers);

    // One task per unordered pair covers both directions.
    std::vector<std::pair<std::size_t, std::size_t>> tasks;
    tasks.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j)
            tasks.emplace_back(i, j);
    }
    parallelFor(
        tasks.size(),
        [&](std::size_t t) {
            try {
                pairDegradation(profiles[tasks[t].first],
                                profiles[tasks[t].second], mode);
            } catch (const fault::MeasurementError &) {
                // The assembly pass below marks the hole.
            }
        },
        workers);

    // Assemble in input order from the (now warm) cache; a pair that
    // failed past its retry budget re-fails deterministically here
    // and lands as NaN.
    std::vector<std::vector<double>> result(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) {
                result[i][j] = 0.0;
                continue;
            }
            try {
                result[i][j] =
                    pairDegradation(profiles[i], profiles[j], mode);
            } catch (const fault::MeasurementError &) {
                result[i][j] = std::nan("");
            }
        }
    }
    return result;
}

void
Lab::multiInstancePrefetch(
    const std::vector<workload::WorkloadProfile> &latency, int threads,
    const std::vector<workload::WorkloadProfile> &batch,
    int max_instances, CoLocationMode mode)
{
    const int workers = parallelism();

    // Every tuple of one latency app divides by the same solo IPC;
    // measure those first so the fanned-out tuples don't serialize on
    // the single-flight solo entry. A failure resurfaces from the
    // tuple that needs it.
    parallelFor(
        latency.size(),
        [&](std::size_t l) {
            try {
                soloIpc(latency[l], threads);
            } catch (const fault::MeasurementError &) {
            }
        },
        workers);

    struct Tuple {
        std::size_t l;
        std::size_t b;
        int k;
    };
    std::vector<Tuple> tuples;
    tuples.reserve(latency.size() * batch.size() *
                   static_cast<std::size_t>(max_instances));
    for (std::size_t l = 0; l < latency.size(); ++l) {
        for (std::size_t b = 0; b < batch.size(); ++b) {
            for (int k = 1; k <= max_instances; ++k)
                tuples.push_back(Tuple{l, b, k});
        }
    }
    parallelFor(
        tuples.size(),
        [&](std::size_t t) {
            try {
                multiInstanceDegradation(latency[tuples[t].l], threads,
                                         batch[tuples[t].b],
                                         tuples[t].k, mode);
            } catch (const fault::MeasurementError &) {
                // Retry budget spent (already logged); the caller's
                // assembly loop sees the deterministic re-failure.
            }
        },
        workers);
}

SmiteModel
Lab::trainSmite(const std::vector<workload::WorkloadProfile> &training_set,
                CoLocationMode mode)
{
    obs::Span span("lab.train_smite", modeName(mode));
    static obs::Counter &dropped =
        obs::Registry::global().counter("lab.dropped_samples");
    // Fan the independent measurements out; the serial assembly below
    // then reads the batch results in the original sample order.
    const std::vector<Characterization> chars =
        characterizeAll(training_set, mode);
    const std::vector<std::vector<double>> pairs =
        measureAllPairs(training_set, mode);

    std::vector<SmiteModel::Sample> samples;
    for (std::size_t i = 0; i < training_set.size(); ++i) {
        for (std::size_t j = 0; j < training_set.size(); ++j) {
            if (training_set[i].name == training_set[j].name)
                continue;
            // A sample whose characterization or degradation failed
            // past the retry budget is dropped from the fit, not
            // allowed to poison it.
            if (!chars[i].valid || !chars[j].valid ||
                std::isnan(pairs[i][j])) {
                dropped.add();
                obs::IncidentLog::global().record(
                    "trainSmite: dropped sample " +
                    training_set[i].name + "|" + training_set[j].name +
                    " (" + modeName(mode) + ")");
                continue;
            }
            SmiteModel::Sample s;
            s.victim = chars[i];
            s.aggressor = chars[j];
            s.degradation = pairs[i][j];
            samples.push_back(std::move(s));
        }
    }
    return SmiteModel::train(samples);
}

PmuModel
Lab::trainPmu(const std::vector<workload::WorkloadProfile> &training_set,
              CoLocationMode mode)
{
    obs::Span span("lab.train_pmu", modeName(mode));
    static obs::Counter &dropped =
        obs::Registry::global().counter("lab.dropped_samples");
    const std::vector<PmuProfile> profiles =
        pmuProfileAll(training_set);
    const std::vector<std::vector<double>> pairs =
        measureAllPairs(training_set, mode);

    std::vector<PmuModel::Sample> samples;
    for (std::size_t i = 0; i < training_set.size(); ++i) {
        for (std::size_t j = 0; j < training_set.size(); ++j) {
            if (training_set[i].name == training_set[j].name)
                continue;
            if (std::isnan(profiles[i][0]) ||
                std::isnan(profiles[j][0]) ||
                std::isnan(pairs[i][j])) {
                dropped.add();
                obs::IncidentLog::global().record(
                    "trainPmu: dropped sample " + training_set[i].name +
                    "|" + training_set[j].name + " (" + modeName(mode) +
                    ")");
                continue;
            }
            PmuModel::Sample s;
            s.victim = profiles[i];
            s.aggressor = profiles[j];
            s.degradation = pairs[i][j];
            samples.push_back(std::move(s));
        }
    }
    return PmuModel::train(samples);
}

double
Lab::scaleToInstances(double pair_prediction, int instances, int threads)
{
    if (threads <= 0)
        throw std::invalid_argument("threads must be positive");
    return pair_prediction * static_cast<double>(instances) /
           static_cast<double>(threads);
}

Lab::Stats
Lab::stats() const
{
    Stats s;
    s.solo_ipc = soloIpcCache_.computeCount();
    s.solo_counters = soloCounterCache_.computeCount();
    s.pmu = pmuCache_.computeCount();
    s.characterizations = characterizationCache_.computeCount();
    s.pairs = pairCache_.computeCount();
    s.multi = multiCache_.computeCount();
    s.ports = portCache_.computeCount();
    s.ruler_baselines = characterizer_.baselineComputeCount();
    return s;
}

} // namespace smite::core
