#include "core/experiment.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "workload/generator.h"

namespace smite::core {

Lab::Lab(const sim::MachineConfig &config, sim::Cycle warmup,
         sim::Cycle measure)
    : machine_(config), suite_(rulers::defaultSuite(config)),
      characterizer_(machine_, suite_, warmup, measure),
      warmup_(warmup), measure_(measure)
{
}

std::string
Lab::pairKey(const std::string &a, const std::string &b,
             CoLocationMode mode) const
{
    return a + "|" + b + "|" + modeName(mode);
}

void
Lab::appendToDisk(const std::string &line)
{
    if (diskCachePath_.empty())
        return;
    std::ofstream out(diskCachePath_, std::ios::app);
    out.precision(17);
    out << line << "\n";
}

void
Lab::loadDiskCache(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream row(line);
        std::string kind, key;
        if (!(row >> kind >> key))
            continue;
        if (kind == "solo") {
            double v;
            if (row >> v)
                soloIpcCache_[key] = v;
        } else if (kind == "pair") {
            double a, b;
            if (row >> a >> b)
                pairCache_[key] = {a, b};
        } else if (kind == "multi") {
            double v;
            if (row >> v)
                multiCache_[key] = v;
        } else if (kind == "pmu") {
            PmuProfile p{};
            bool ok = true;
            for (double &v : p)
                ok = ok && static_cast<bool>(row >> v);
            if (ok)
                pmuCache_[key] = p;
        } else if (kind == "ports") {
            std::array<double, sim::kNumPorts> utilization{};
            bool ok = true;
            for (double &v : utilization)
                ok = ok && static_cast<bool>(row >> v);
            if (ok)
                portCache_[key] = utilization;
        } else if (kind == "char") {
            Characterization c;
            bool ok = true;
            for (double &v : c.sensitivity)
                ok = ok && static_cast<bool>(row >> v);
            for (double &v : c.contentiousness)
                ok = ok && static_cast<bool>(row >> v);
            if (ok)
                characterizationCache_[key] = c;
        }
    }
}

void
Lab::enableDiskCache(const std::string &path)
{
    loadDiskCache(path);
    diskCachePath_ = path;
}

namespace {

/** Format doubles for the cache file at full precision. */
std::string
formatValues(std::initializer_list<double> values)
{
    std::ostringstream out;
    out.precision(17);
    for (double v : values)
        out << " " << v;
    return out.str();
}

} // namespace

double
Lab::soloIpc(const workload::WorkloadProfile &profile, int threads)
{
    const std::string key =
        profile.name + "#" + std::to_string(threads);
    const auto it = soloIpcCache_.find(key);
    if (it != soloIpcCache_.end())
        return it->second;
    const double ipc = characterizer_.soloIpc(profile, threads);
    soloIpcCache_.emplace(key, ipc);
    appendToDisk("solo " + key + formatValues({ipc}));
    return ipc;
}

const sim::CounterBlock &
Lab::soloCounters(const workload::WorkloadProfile &profile)
{
    const auto it = soloCounterCache_.find(profile.name);
    if (it != soloCounterCache_.end())
        return it->second;
    workload::ProfileUopSource source(profile);
    sim::CounterBlock counters =
        machine_.runSolo(source, warmup_, measure_);
    return soloCounterCache_.emplace(profile.name, counters)
        .first->second;
}

PmuProfile
Lab::pmuProfile(const workload::WorkloadProfile &profile)
{
    const auto it = pmuCache_.find(profile.name);
    if (it != pmuCache_.end())
        return it->second;
    const PmuProfile rates = soloCounters(profile).pmuRates();
    pmuCache_.emplace(profile.name, rates);
    std::string line = "pmu " + profile.name;
    for (double v : rates)
        line += formatValues({v});
    appendToDisk(line);
    return rates;
}

const Characterization &
Lab::characterization(const workload::WorkloadProfile &profile,
                      CoLocationMode mode, int threads)
{
    const std::string key = profile.name + "#" + modeName(mode) + "#" +
                            std::to_string(threads);
    const auto it = characterizationCache_.find(key);
    if (it != characterizationCache_.end())
        return it->second;
    Characterization c =
        characterizer_.characterize(profile, mode, threads);
    std::string line = "char " + key;
    for (double v : c.sensitivity)
        line += formatValues({v});
    for (double v : c.contentiousness)
        line += formatValues({v});
    appendToDisk(line);
    return characterizationCache_.emplace(key, c).first->second;
}

double
Lab::pairDegradation(const workload::WorkloadProfile &victim,
                     const workload::WorkloadProfile &aggressor,
                     CoLocationMode mode)
{
    const std::string key = pairKey(victim.name, aggressor.name, mode);
    const auto it = pairCache_.find(key);
    if (it != pairCache_.end())
        return it->second.first;

    workload::ProfileUopSource a(victim, /*seed=*/1);
    workload::ProfileUopSource b(aggressor, /*seed=*/2);
    const auto counters =
        mode == CoLocationMode::kSmt
            ? machine_.runPairSmt(a, b, warmup_, measure_)
            : machine_.runPairCmp(a, b, warmup_, measure_);

    const double solo_a = soloIpc(victim);
    const double solo_b = soloIpc(aggressor);
    const double deg_a =
        solo_a > 0.0 ? (solo_a - counters[0].ipc()) / solo_a : 0.0;
    const double deg_b =
        solo_b > 0.0 ? (solo_b - counters[1].ipc()) / solo_b : 0.0;

    pairCache_.emplace(key, std::make_pair(deg_a, deg_b));
    pairCache_.emplace(pairKey(aggressor.name, victim.name, mode),
                       std::make_pair(deg_b, deg_a));
    appendToDisk("pair " + key + formatValues({deg_a, deg_b}));
    appendToDisk("pair " + pairKey(aggressor.name, victim.name, mode) +
                 formatValues({deg_b, deg_a}));
    return deg_a;
}

std::array<double, sim::kNumPorts>
Lab::pairPortUtilization(const workload::WorkloadProfile &a,
                         const workload::WorkloadProfile &b,
                         CoLocationMode mode)
{
    const std::string key = "ports|" + pairKey(a.name, b.name, mode);
    const auto it = portCache_.find(key);
    if (it != portCache_.end())
        return it->second;

    workload::ProfileUopSource sa(a, /*seed=*/1);
    workload::ProfileUopSource sb(b, /*seed=*/2);
    const auto counters =
        mode == CoLocationMode::kSmt
            ? machine_.runPairSmt(sa, sb, warmup_, measure_)
            : machine_.runPairCmp(sa, sb, warmup_, measure_);

    std::array<double, sim::kNumPorts> utilization{};
    for (int p = 0; p < sim::kNumPorts; ++p) {
        utilization[p] = counters[0].portUtilization(p) +
                         counters[1].portUtilization(p);
    }
    portCache_.emplace(key, utilization);
    std::string line = "ports " + key;
    for (double u : utilization)
        line += formatValues({u});
    appendToDisk(line);
    return utilization;
}

double
Lab::multiInstanceDegradation(const workload::WorkloadProfile &latency,
                              int threads,
                              const workload::WorkloadProfile &batch,
                              int instances, CoLocationMode mode)
{
    const int cores = machine_.config().numCores;
    if (threads < 1 || instances < 1 || instances > threads)
        throw std::invalid_argument("bad thread/instance counts");
    if (mode == CoLocationMode::kSmt && threads > cores)
        throw std::invalid_argument("too many threads for SMT");
    if (mode == CoLocationMode::kCmp && threads + instances > cores)
        throw std::invalid_argument("too many placements for CMP");

    const std::string key = latency.name + "#" + batch.name + "#" +
                            modeName(mode) + "#" +
                            std::to_string(threads) + "x" +
                            std::to_string(instances);
    const auto it = multiCache_.find(key);
    if (it != multiCache_.end())
        return it->second;

    // Latency app: context 0 of cores 0..threads-1.
    std::vector<workload::ProfileUopSource> app_sources;
    app_sources.reserve(threads);
    for (int t = 0; t < threads; ++t)
        app_sources.emplace_back(latency, /*seed=*/1 + t);
    std::vector<sim::Placement> placements;
    for (int t = 0; t < threads; ++t)
        placements.push_back(sim::Placement{t, 0, &app_sources[t]});

    // Batch instances: sibling contexts (SMT) or the idle cores (CMP).
    std::vector<workload::ProfileUopSource> batch_sources;
    batch_sources.reserve(instances);
    for (int k = 0; k < instances; ++k)
        batch_sources.emplace_back(batch, /*seed=*/100 + k);
    for (int k = 0; k < instances; ++k) {
        if (mode == CoLocationMode::kSmt)
            placements.push_back(sim::Placement{k, 1, &batch_sources[k]});
        else
            placements.push_back(
                sim::Placement{threads + k, 0, &batch_sources[k]});
    }

    const auto counters = machine_.run(placements, warmup_, measure_);
    double co_ipc = 0.0;
    for (int t = 0; t < threads; ++t)
        co_ipc += counters[t].ipc();

    const double solo = soloIpc(latency, threads);
    const double deg = solo > 0.0 ? (solo - co_ipc) / solo : 0.0;
    multiCache_.emplace(key, deg);
    appendToDisk("multi " + key + formatValues({deg}));
    return deg;
}

SmiteModel
Lab::trainSmite(const std::vector<workload::WorkloadProfile> &training_set,
                CoLocationMode mode)
{
    std::vector<SmiteModel::Sample> samples;
    for (const auto &a : training_set) {
        for (const auto &b : training_set) {
            if (a.name == b.name)
                continue;
            SmiteModel::Sample s;
            s.victim = characterization(a, mode);
            s.aggressor = characterization(b, mode);
            s.degradation = pairDegradation(a, b, mode);
            samples.push_back(std::move(s));
        }
    }
    return SmiteModel::train(samples);
}

PmuModel
Lab::trainPmu(const std::vector<workload::WorkloadProfile> &training_set,
              CoLocationMode mode)
{
    std::vector<PmuModel::Sample> samples;
    for (const auto &a : training_set) {
        for (const auto &b : training_set) {
            if (a.name == b.name)
                continue;
            PmuModel::Sample s;
            s.victim = pmuProfile(a);
            s.aggressor = pmuProfile(b);
            s.degradation = pairDegradation(a, b, mode);
            samples.push_back(std::move(s));
        }
    }
    return PmuModel::train(samples);
}

double
Lab::scaleToInstances(double pair_prediction, int instances, int threads)
{
    if (threads <= 0)
        throw std::invalid_argument("threads must be positive");
    return pair_prediction * static_cast<double>(instances) /
           static_cast<double>(threads);
}

} // namespace smite::core
