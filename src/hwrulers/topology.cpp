#include "hwrulers/topology.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#if defined(__linux__)
#include <sched.h>
#endif

namespace smite::hwrulers {

std::vector<int>
CpuTopology::parseCpuList(const std::string &list)
{
    std::vector<int> cpus;
    std::stringstream stream(list);
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (token.empty())
            continue;
        const auto dash = token.find('-');
        try {
            if (dash == std::string::npos) {
                cpus.push_back(std::stoi(token));
            } else {
                const int lo = std::stoi(token.substr(0, dash));
                const int hi = std::stoi(token.substr(dash + 1));
                for (int c = lo; c <= hi; ++c)
                    cpus.push_back(c);
            }
        } catch (const std::exception &) {
            // Malformed chunk: skip it, keep what we can parse.
        }
    }
    return cpus;
}

CpuTopology
CpuTopology::detect()
{
    CpuTopology topo;

    std::ifstream online("/sys/devices/system/cpu/online");
    std::string line;
    if (online && std::getline(online, line))
        topo.onlineCpus_ = parseCpuList(line);

    std::set<int> seen;
    for (int cpu : topo.onlineCpus_) {
        if (seen.count(cpu))
            continue;
        std::ifstream sib("/sys/devices/system/cpu/cpu" +
                          std::to_string(cpu) +
                          "/topology/thread_siblings_list");
        if (!sib || !std::getline(sib, line))
            continue;
        std::vector<int> sibs = parseCpuList(line);
        std::sort(sibs.begin(), sibs.end());
        for (int s : sibs)
            seen.insert(s);
        if (sibs.size() >= 2)
            topo.siblingPairs_.emplace_back(sibs[0], sibs[1]);
    }
    return topo;
}

bool
pinToCpu(int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

} // namespace smite::hwrulers
