#include "hwrulers/mem_stressors.h"

#include <chrono>
#include <stdexcept>
#include <vector>

namespace smite::hwrulers {

namespace {

constexpr std::uint64_t kChunkOps = 1 << 14;

using Clock = std::chrono::steady_clock;

} // namespace

StressorResult
runMemRandomStressor(std::size_t footprintBytes, double seconds,
                     const std::atomic<bool> *stop)
{
    if (footprintBytes < 64)
        throw std::invalid_argument("footprint too small");

    std::vector<std::uint8_t> data(footprintBytes, 1);
    volatile std::uint8_t *chunk = data.data();
    Lfsr32 lfsr;

    const auto start = Clock::now();
    const auto deadline = start + std::chrono::duration<double>(seconds);

    StressorResult result;
    while (Clock::now() < deadline &&
           (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
        for (std::uint64_t i = 0; i < kChunkOps; ++i) {
            const std::size_t idx = lfsr.next() % footprintBytes;
            chunk[idx] = chunk[idx] + 1;
        }
        result.operations += kChunkOps;
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.seconds > 0.0) {
        result.opsPerSecond =
            static_cast<double>(result.operations) / result.seconds;
    }
    return result;
}

StressorResult
runMemStrideStressor(std::size_t footprintBytes, double seconds,
                     const std::atomic<bool> *stop)
{
    if (footprintBytes < 128)
        throw std::invalid_argument("footprint too small");

    const std::size_t half = footprintBytes / 2;
    std::vector<std::uint8_t> data(footprintBytes, 1);
    volatile std::uint8_t *first = data.data();
    volatile std::uint8_t *second = data.data() + half;

    const auto start = Clock::now();
    const auto deadline = start + std::chrono::duration<double>(seconds);

    StressorResult result;
    while (Clock::now() < deadline &&
           (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i < half; i += 64) {
            first[i] = second[i] + 1;
            ++ops;
        }
        for (std::size_t i = 0; i < half; i += 64) {
            second[i] = first[i] + 1;
            ++ops;
        }
        result.operations += ops;
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.seconds > 0.0) {
        result.opsPerSecond =
            static_cast<double>(result.operations) / result.seconds;
    }
    return result;
}

} // namespace smite::hwrulers
