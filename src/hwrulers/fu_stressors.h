/**
 * @file
 * Real-hardware functional-unit stressors: the unrolled
 * mulps/addps/shufps/addl loops of the paper's Figure 9(a-d),
 * implemented with SSE intrinsics plus compiler barriers so the
 * independent operations actually reach the targeted issue port.
 *
 * These run on the host CPU (not the simulator). On a machine with
 * SMT siblings they can be co-scheduled against an application to
 * measure real sensitivity/contentiousness; on hosts without SMT
 * they still demonstrate and validate the stressor kernels.
 */

#ifndef SMITE_HWRULERS_FU_STRESSORS_H
#define SMITE_HWRULERS_FU_STRESSORS_H

#include <atomic>
#include <cstdint>
#include <string_view>

namespace smite::hwrulers {

/** Kinds of hardware functional-unit stressors. */
enum class FuKind {
    kFpMul,   ///< mulps loop (port 0 on Sandy Bridge)
    kFpAdd,   ///< addps loop (port 1)
    kFpShf,   ///< shufps loop (port 5)
    kIntAdd,  ///< addl loop (ports 0, 1, 5)
};

/** Name of a stressor kind. */
constexpr std::string_view
fuKindName(FuKind kind)
{
    switch (kind) {
      case FuKind::kFpMul:  return "FP_MUL(mulps)";
      case FuKind::kFpAdd:  return "FP_ADD(addps)";
      case FuKind::kFpShf:  return "FP_SHF(shufps)";
      case FuKind::kIntAdd: return "INT_ADD(addl)";
    }
    return "?";
}

/** Throughput measurement of a stressor run. */
struct StressorResult {
    std::uint64_t operations = 0;  ///< retired kernel operations
    double seconds = 0.0;          ///< wall-clock duration
    double opsPerSecond = 0.0;     ///< operations / seconds
};

/**
 * Run a functional-unit stressor for approximately @p seconds of
 * wall-clock time (or until @p stop becomes true, if provided).
 *
 * @param kind which port-specific kernel to run
 * @param seconds target duration
 * @param stop optional external cancellation flag
 * @return measured throughput in kernel operations per second
 */
StressorResult runFuStressor(FuKind kind, double seconds,
                             const std::atomic<bool> *stop = nullptr);

} // namespace smite::hwrulers

#endif // SMITE_HWRULERS_FU_STRESSORS_H
