#include "hwrulers/fu_stressors.h"

#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SMITE_HAVE_SSE 1
#endif

namespace smite::hwrulers {

namespace {

/** Operations per inner chunk; large enough to amortize clock reads. */
constexpr std::uint64_t kChunkOps = 1 << 16;

#if SMITE_HAVE_SSE

/**
 * Eight independent accumulators, no loop-carried dependence between
 * consecutive same-register ops beyond the FU latency; the "+x"
 * constraints stop the compiler from folding the chain away.
 */
#define SMITE_FU_CHUNK(op)                                              \
    do {                                                                \
        __m128 x0 = _mm_set1_ps(1.0001f), x1 = x0, x2 = x0, x3 = x0;    \
        __m128 x4 = x0, x5 = x0, x6 = x0, x7 = x0;                      \
        for (std::uint64_t i = 0; i < kChunkOps / 8; ++i) {             \
            x0 = op(x0); x1 = op(x1); x2 = op(x2); x3 = op(x3);         \
            x4 = op(x4); x5 = op(x5); x6 = op(x6); x7 = op(x7);         \
            __asm__ __volatile__(""                                     \
                : "+x"(x0), "+x"(x1), "+x"(x2), "+x"(x3),               \
                  "+x"(x4), "+x"(x5), "+x"(x6), "+x"(x7));              \
        }                                                               \
    } while (0)

inline __m128 mulOp(__m128 v) { return _mm_mul_ps(v, v); }
inline __m128 addOp(__m128 v) { return _mm_add_ps(v, v); }
inline __m128 shfOp(__m128 v)
{
    return _mm_shuffle_ps(v, v, 0x1B);
}

void
chunkFpMul()
{
    SMITE_FU_CHUNK(mulOp);
}

void
chunkFpAdd()
{
    SMITE_FU_CHUNK(addOp);
}

void
chunkFpShf()
{
    SMITE_FU_CHUNK(shfOp);
}

#else // !SMITE_HAVE_SSE

/** Scalar fallbacks for non-x86 hosts. */
void
chunkGenericFp(float mul)
{
    float x0 = 1.0001f, x1 = x0, x2 = x0, x3 = x0;
    for (std::uint64_t i = 0; i < kChunkOps / 4; ++i) {
        x0 = x0 * mul; x1 = x1 * mul; x2 = x2 * mul; x3 = x3 * mul;
        __asm__ __volatile__("" : "+r"(x0), "+r"(x1), "+r"(x2),
                                  "+r"(x3));
    }
}

void chunkFpMul() { chunkGenericFp(1.0001f); }
void chunkFpAdd() { chunkGenericFp(1.0002f); }
void chunkFpShf() { chunkGenericFp(1.0003f); }

#endif // SMITE_HAVE_SSE

void
chunkIntAdd()
{
    std::uint32_t x0 = 1, x1 = 2, x2 = 3, x3 = 4;
    std::uint32_t x4 = 5, x5 = 6, x6 = 7, x7 = 8;
    for (std::uint64_t i = 0; i < kChunkOps / 8; ++i) {
        x0 += x0; x1 += x1; x2 += x2; x3 += x3;
        x4 += x4; x5 += x5; x6 += x6; x7 += x7;
        __asm__ __volatile__(""
            : "+r"(x0), "+r"(x1), "+r"(x2), "+r"(x3),
              "+r"(x4), "+r"(x5), "+r"(x6), "+r"(x7));
    }
}

void
runChunk(FuKind kind)
{
    switch (kind) {
      case FuKind::kFpMul:  chunkFpMul(); break;
      case FuKind::kFpAdd:  chunkFpAdd(); break;
      case FuKind::kFpShf:  chunkFpShf(); break;
      case FuKind::kIntAdd: chunkIntAdd(); break;
    }
}

} // namespace

StressorResult
runFuStressor(FuKind kind, double seconds, const std::atomic<bool> *stop)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration<double>(seconds);

    StressorResult result;
    while (Clock::now() < deadline &&
           (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
        runChunk(kind);
        result.operations += kChunkOps;
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.seconds > 0.0) {
        result.opsPerSecond =
            static_cast<double>(result.operations) / result.seconds;
    }
    return result;
}

} // namespace smite::hwrulers
