/**
 * @file
 * Real-hardware memory stressors: the LFSR random-increment kernel
 * of Figure 9(e) (L1/L2 ruler) and the 64-byte-stride two-chunk walk
 * of Figure 9(f) (L3 ruler). The working-set size is the intensity
 * knob, exactly as in the paper.
 */

#ifndef SMITE_HWRULERS_MEM_STRESSORS_H
#define SMITE_HWRULERS_MEM_STRESSORS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "hwrulers/fu_stressors.h"

namespace smite::hwrulers {

/**
 * Figure 9(e): `data_chunk[RAND % FOOTPRINT]++` with a 32-bit LFSR
 * random index, run for approximately @p seconds.
 *
 * @param footprintBytes working set size (>= 64)
 * @param seconds target duration
 * @param stop optional external cancellation flag
 * @return throughput in memory update operations per second
 */
StressorResult runMemRandomStressor(std::size_t footprintBytes,
                                    double seconds,
                                    const std::atomic<bool> *stop = nullptr);

/**
 * Figure 9(f): alternately write each half of the footprint from the
 * other half with a cache-line stride.
 *
 * @param footprintBytes working set size (>= 128)
 * @param seconds target duration
 * @param stop optional external cancellation flag
 * @return throughput in cache-line update operations per second
 */
StressorResult runMemStrideStressor(std::size_t footprintBytes,
                                    double seconds,
                                    const std::atomic<bool> *stop = nullptr);

/** The 32-bit Galois LFSR of Figure 9(e), exposed for testing. */
class Lfsr32
{
  public:
    explicit Lfsr32(std::uint32_t seed = 0xACE1ACE1u)
        : state_(seed == 0 ? 1 : seed)
    {}

    /** Advance and return the new state. */
    std::uint32_t
    next()
    {
        state_ = (state_ >> 1) ^
                 (static_cast<std::uint32_t>(-(state_ & 1u)) &
                  0xd0000001u);
        return state_;
    }

  private:
    std::uint32_t state_;
};

} // namespace smite::hwrulers

#endif // SMITE_HWRULERS_MEM_STRESSORS_H
