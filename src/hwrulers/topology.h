/**
 * @file
 * Host CPU topology discovery and thread pinning.
 *
 * Characterizing on real hardware requires placing the application
 * and the Ruler on *sibling SMT contexts of the same physical core*;
 * this module finds those sibling pairs from sysfs and pins threads.
 */

#ifndef SMITE_HWRULERS_TOPOLOGY_H
#define SMITE_HWRULERS_TOPOLOGY_H

#include <string>
#include <utility>
#include <vector>

namespace smite::hwrulers {

/**
 * Snapshot of the host's logical-CPU topology.
 */
class CpuTopology
{
  public:
    /** Discover the topology from /sys (best effort). */
    static CpuTopology detect();

    /** Parse a sysfs CPU list string like "0-3,8,10-11" (for tests). */
    static std::vector<int> parseCpuList(const std::string &list);

    /** Number of online logical CPUs. */
    int numLogicalCpus() const
    {
        return static_cast<int>(onlineCpus_.size());
    }

    /** Online logical CPU ids. */
    const std::vector<int> &onlineCpus() const { return onlineCpus_; }

    /** Does any core expose two or more hardware contexts? */
    bool hasSmt() const { return !siblingPairs_.empty(); }

    /**
     * Pairs of logical CPUs that are SMT siblings on one physical
     * core (first two siblings of each core).
     */
    const std::vector<std::pair<int, int>> &
    smtSiblingPairs() const
    {
        return siblingPairs_;
    }

  private:
    std::vector<int> onlineCpus_;
    std::vector<std::pair<int, int>> siblingPairs_;
};

/**
 * Pin the calling thread to one logical CPU.
 * @return true on success
 */
bool pinToCpu(int cpu);

} // namespace smite::hwrulers

#endif // SMITE_HWRULERS_TOPOLOGY_H
