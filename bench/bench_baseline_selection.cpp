/**
 * @file
 * Baseline model selection (paper §IV-B1): "after experimenting
 * with a number of PMUs and various regression strategies including
 * linear regression, decision tree, higher order polynomial
 * regression, we found the best performing model to be a linear
 * regression model using 11 PMU measurements."
 *
 * This harness repeats that search on our substrate: the same 22 PMU
 * features (victim + aggressor solo rates) fed to a linear model, a
 * quadratic-expanded linear model, and a CART regression tree, all
 * trained on the even split and tested on the odd split.
 */

#include "bench/common.h"
#include "stats/decision_tree.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_baseline_selection");
    bench::banner("PMU baseline selection (Section IV-B1)",
                  "Linear vs quadratic vs decision-tree PMU models");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto mode = core::CoLocationMode::kSmt;
    const auto train = workload::spec2006::evenNumbered();
    const auto test = workload::spec2006::oddNumbered();

    auto dataset = [&](const std::vector<workload::WorkloadProfile> &apps) {
        std::pair<std::vector<std::vector<double>>,
                  std::vector<double>> data;
        for (const auto &a : apps) {
            for (const auto &b : apps) {
                if (a.name == b.name)
                    continue;
                data.first.push_back(core::PmuModel::features(
                    lab.pmuProfile(a), lab.pmuProfile(b)));
                data.second.push_back(
                    lab.pairDegradation(a, b, mode));
            }
        }
        return data;
    };

    const auto [x_train, y_train] = dataset(train);
    const auto [x_test, y_test] = dataset(test);

    auto squared = [](const std::vector<std::vector<double>> &rows) {
        std::vector<std::vector<double>> out;
        out.reserve(rows.size());
        for (const auto &row : rows)
            out.push_back(stats::withSquares(row));
        return out;
    };

    const auto linear = stats::LinearModel::fit(x_train, y_train, 1e-6);
    const auto quadratic = stats::LinearModel::fit(
        squared(x_train), y_train, 1e-6);
    const auto tree = stats::RegressionTree::fit(x_train, y_train, 5, 4);

    std::printf("%-28s %12s %12s\n", "PMU model", "train MAE",
                "test MAE");
    std::printf("%-28s %11.2f%% %11.2f%%\n", "linear (Eq. 9)",
                100 * linear.meanAbsoluteError(x_train, y_train),
                100 * linear.meanAbsoluteError(x_test, y_test));
    std::printf("%-28s %11.2f%% %11.2f%%\n", "quadratic expansion",
                100 * quadratic.meanAbsoluteError(squared(x_train),
                                                  y_train),
                100 * quadratic.meanAbsoluteError(squared(x_test),
                                                  y_test));
    std::printf("%-28s %11.2f%% %11.2f%% (%d leaves)\n",
                "decision tree (CART)",
                100 * tree.meanAbsoluteError(x_train, y_train),
                100 * tree.meanAbsoluteError(x_test, y_test),
                tree.leafCount());

    bench::paperReference(
        "the paper selected the linear 11-PMU model as the strongest "
        "baseline after comparing regression strategies; expect the "
        "flexible models to fit the training pairs better but "
        "generalize worse");
    return 0;
}
