/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulation substrate:
 * machine throughput, cache/TLB lookup costs, trace generation and
 * model fitting. These guard the performance of the experiment
 * harnesses rather than reproducing a paper figure.
 */

#include <benchmark/benchmark.h>

#include "core/smite.h"

using namespace smite;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    sim::SetAssocCache cache(
        sim::CacheConfig{"L2", 256 * 1024, 8, 12});
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(line, false));
        line = (line * 2654435761u + 1) % 8192;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    sim::Tlb tlb(sim::TlbConfig{512, 30});
    std::uint64_t page = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(page));
        page = (page * 48271 + 1) % 1024;
    }
}
BENCHMARK(BM_TlbAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::ProfileUopSource source(
        workload::spec2006::byName("403.gcc"));
    for (auto _ : state)
        benchmark::DoNotOptimize(source.next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_MachineSoloCycles(benchmark::State &state)
{
    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    workload::ProfileUopSource source(
        workload::spec2006::byName("456.hmmer"));
    const sim::Cycle cycles = state.range(0);
    for (auto _ : state) {
        source.reset();
        benchmark::DoNotOptimize(
            machine.runSolo(source, 0, cycles));
    }
    state.SetItemsProcessed(state.iterations() * cycles);
}
BENCHMARK(BM_MachineSoloCycles)->Arg(10000)->Arg(50000);

void
BM_MachinePairSmtCycles(benchmark::State &state)
{
    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    workload::ProfileUopSource a(
        workload::spec2006::byName("456.hmmer"));
    workload::ProfileUopSource b(
        workload::spec2006::byName("470.lbm"));
    const sim::Cycle cycles = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            machine.runPairSmt(a, b, 0, cycles));
    }
    state.SetItemsProcessed(state.iterations() * cycles);
}
BENCHMARK(BM_MachinePairSmtCycles)->Arg(10000)->Arg(50000);

void
BM_RegressionFit(benchmark::State &state)
{
    workload::Rng rng(42);
    const int dims = 22, samples = 200;
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int s = 0; s < samples; ++s) {
        std::vector<double> row(dims);
        for (double &v : row)
            v = rng.nextDouble();
        x.push_back(std::move(row));
        y.push_back(rng.nextDouble());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::LinearModel::fit(x, y, 1e-6));
    }
}
BENCHMARK(BM_RegressionFit);

void
BM_QueueSim(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            queueing::simulateMm1(1200, 2000, 20000, 1));
    }
}
BENCHMARK(BM_QueueSim);

} // namespace

BENCHMARK_MAIN();
