/**
 * @file
 * Microbenchmark harness for the simulation substrate: machine
 * throughput (simulated cycles and uops per second, solo and SMT
 * pair), cache/TLB lookup cost, trace generation, model fitting and
 * the queueing kernel.
 *
 * Unlike the figure harnesses this guards the *performance* of the
 * simulator, not its outputs. Every kernel is timed on CPU time
 * (median of several repeats, so scheduler noise on a shared box
 * mostly cancels) and the results are written to a machine-readable
 * `BENCH_sim.json` (schema `smite-run-report/1`) next to the
 * human-readable summary on stdout.
 *
 * The committed BENCH_sim.json at the repository root is the perf
 * baseline: `scripts/tier1.sh` re-runs this harness in Release and
 * diffs the fresh report against the baseline with `report_diff
 * --tol 0.6`, so an accidental 2x slowdown of the simulator hot path
 * fails tier-1 while ordinary machine-to-machine variance passes.
 *
 *   bench_sim_micro [output.json]   (default: BENCH_sim.json)
 */

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "core/smite.h"
#include "obs/report.h"

using namespace smite;

namespace {

/** CPU time of this process in seconds (immune to co-runner load). */
double
cpuSeconds()
{
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
}

/** Repeats per kernel; the median is reported. */
constexpr int kRepeats = 5;

/**
 * Median CPU time of @p kRepeats runs of @p fn, in seconds. One
 * untimed warmup run first so cold caches and lazy allocations don't
 * land in the first repeat.
 */
template <typename Fn>
double
medianSeconds(Fn &&fn)
{
    fn();
    std::vector<double> times;
    times.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        const double t0 = cpuSeconds();
        fn();
        times.push_back(cpuSeconds() - t0);
    }
    std::sort(times.begin(), times.end());
    return times[kRepeats / 2];
}

/** Defeat dead-code elimination without a compiler intrinsic. */
volatile std::uint64_t g_sink;

struct Reporter {
    obs::RunReport report{"bench_sim_micro"};

    void
    record(const char *key, double value, const char *unit)
    {
        std::printf("%-28s %14.3f %s\n", key, value, unit);
        report.addResult(key, obs::json::Value(value));
    }
};

/** Co-location shape of a machine-throughput benchmark. */
enum class Shape { kSolo, kSmtPair, kCmpPair };

/** Simulated-cycles/uops throughput of one placement shape. */
void
benchMachine(Reporter &out, const char *tag, sim::Cycle cycles,
             int iters, Shape shape)
{
    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    workload::ProfileUopSource a(
        workload::spec2006::byName("456.hmmer"));
    workload::ProfileUopSource b(workload::spec2006::byName("470.lbm"));

    std::uint64_t uops = 0;
    const double seconds = medianSeconds([&] {
        uops = 0;
        for (int i = 0; i < iters; ++i) {
            switch (shape) {
              case Shape::kSolo:
                uops += machine.runSolo(a, 0, cycles).uops;
                break;
              case Shape::kSmtPair:
                for (const auto &c :
                     machine.runPairSmt(a, b, 0, cycles))
                    uops += c.uops;
                break;
              case Shape::kCmpPair:
                for (const auto &c :
                     machine.runPairCmp(a, b, 0, cycles))
                    uops += c.uops;
                break;
            }
        }
    });
    const double sim_cycles = static_cast<double>(cycles) * iters;
    out.record((std::string(tag) + "_cycles_per_sec").c_str(),
               sim_cycles / seconds, "sim cycles/s");
    out.record((std::string(tag) + "_uops_per_sec").c_str(),
               static_cast<double>(uops) / seconds, "uops/s");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim.json";
    Reporter out;
    out.report.setConfig("machine", obs::json::Value("Ivy Bridge"));
    out.report.setConfig("repeats", obs::json::Value(kRepeats));

    std::printf("simulation-substrate microbenchmarks "
                "(median of %d CPU-time repeats)\n\n",
                kRepeats);

    // Machine throughput: the headline numbers. 50k-cycle runs are
    // the shape every Lab measurement takes; 10k-cycle runs keep the
    // fixed per-run setup cost (construction + prewarm) visible.
    benchMachine(out, "solo_50k", 50'000, 4, Shape::kSolo);
    benchMachine(out, "solo_10k", 10'000, 10, Shape::kSolo);
    benchMachine(out, "pair_50k", 50'000, 2, Shape::kSmtPair);
    benchMachine(out, "pair_10k", 10'000, 8, Shape::kSmtPair);
    // CMP pair: two cores, one context each — the multi-core shape
    // whose wake-list behavior differs most from the SMT pair (cores
    // can sleep independently).
    benchMachine(out, "cmp_pair", 50'000, 2, Shape::kCmpPair);

    // Cache lookup: hit-heavy pseudo-random pattern over an L2-sized
    // array, the single hottest comparison loop in the simulator.
    {
        sim::SetAssocCache cache(
            sim::CacheConfig{"L2", 256 * 1024, 8, 12});
        constexpr int kOps = 1'000'000;
        const double seconds = medianSeconds([&] {
            std::uint64_t line = 0, hits = 0;
            for (int i = 0; i < kOps; ++i) {
                hits += cache.access(line, false).hit ? 1 : 0;
                line = (line * 2654435761u + 1) % 8192;
            }
            g_sink = hits;
        });
        out.record("cache_access_ns", seconds / kOps * 1e9, "ns/op");
    }

    // TLB lookup: same shape, page-granular.
    {
        sim::Tlb tlb(sim::TlbConfig{512, 30});
        constexpr int kOps = 1'000'000;
        const double seconds = medianSeconds([&] {
            std::uint64_t page = 0, hits = 0;
            for (int i = 0; i < kOps; ++i) {
                hits += tlb.access(page) ? 1 : 0;
                page = (page * 48271 + 1) % 1024;
            }
            g_sink = hits;
        });
        out.record("tlb_access_ns", seconds / kOps * 1e9, "ns/op");
    }

    // Trace generation: the synthetic-workload uop stream by itself.
    {
        workload::ProfileUopSource source(
            workload::spec2006::byName("403.gcc"));
        constexpr int kUops = 1'000'000;
        constexpr int kBatch = 64;
        sim::Uop buf[kBatch];
        const double seconds = medianSeconds([&] {
            std::uint64_t sum = 0;
            for (int i = 0; i < kUops / kBatch; ++i) {
                source.nextBatch(buf, kBatch);
                sum += buf[0].pc;
            }
            g_sink = sum;
        });
        out.record("trace_gen_uops_per_sec", kUops / seconds,
                   "uops/s");
    }

    // Model fitting: the ridge regression behind SMiTe training.
    {
        workload::Rng rng(42);
        const int dims = 22, samples = 200;
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        for (int s = 0; s < samples; ++s) {
            std::vector<double> row(dims);
            for (double &v : row)
                v = rng.nextDouble();
            x.push_back(std::move(row));
            y.push_back(rng.nextDouble());
        }
        const double seconds = medianSeconds([&] {
            const auto model = stats::LinearModel::fit(x, y, 1e-6);
            g_sink = static_cast<std::uint64_t>(
                model.weights().size());
        });
        out.record("regression_fit_ms", seconds * 1e3, "ms/fit");
    }

    // Queueing kernel: the tail-latency discrete-event simulation.
    {
        const double seconds = medianSeconds([&] {
            g_sink = static_cast<std::uint64_t>(
                queueing::simulateMm1(1200, 2000, 20000, 1)
                    .responseTimes.size());
        });
        out.record("queue_sim_ms", seconds * 1e3, "ms/run");
    }

    if (!out.report.writeTo(out_path))
        return 1;
    std::printf("\nreport written to %s\n", out_path.c_str());
    return 0;
}
