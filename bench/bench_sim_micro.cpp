/**
 * @file
 * Microbenchmark harness for the simulation substrate: machine
 * throughput (simulated cycles and uops per second, solo and SMT
 * pair), cache/TLB lookup cost, trace generation, model fitting and
 * the queueing kernel.
 *
 * Unlike the figure harnesses this guards the *performance* of the
 * simulator, not its outputs. Every kernel is timed on CPU time
 * (median of several repeats, so scheduler noise on a shared box
 * mostly cancels) and the results are written to a machine-readable
 * `BENCH_sim.json` (schema `smite-run-report/1`) next to the
 * human-readable summary on stdout. The per-kernel min/median/max
 * across repeats lands in the report's `timings` block so the
 * run-to-run scatter behind each headline number is visible in the
 * committed baseline.
 *
 * The machine-throughput kernels construct fresh uop sources on every
 * iteration — the fig-grid shape, where each measurement builds its
 * own streams — so repeated intervals hit the run-level ReplayStore
 * (sim/replay.h). The `*_nomemo` variants re-run the same shape with
 * replay and snapshots disabled, timing the full live path; the ratio
 * between the two is the replay win.
 *
 * The committed BENCH_sim.json at the repository root is the perf
 * baseline: `scripts/tier1.sh` re-runs this harness in Release and
 * diffs the fresh report against the baseline with `report_diff
 * --tol 0.6`, so an accidental 2x slowdown of the simulator hot path
 * fails tier-1 while ordinary machine-to-machine variance passes.
 * (`timings` are wall-clock and never diffed.)
 *
 *   bench_sim_micro [output.json]   (default: BENCH_sim.json)
 */

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/smite.h"
#include "obs/report.h"

using namespace smite;

namespace {

/** CPU time of this process in seconds (immune to co-runner load). */
double
cpuSeconds()
{
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
}

/** Repeats per kernel; the median is the headline number. */
constexpr int kRepeats = 5;

/** CPU-time scatter of one kernel across the repeats. */
struct Times {
    double min_s = 0;
    double median_s = 0;
    double max_s = 0;
};

/**
 * Time @p kRepeats runs of @p fn. One untimed warmup run first so
 * cold caches and lazy allocations don't land in the first repeat
 * (for the replay-enabled kernels the warmup run also populates the
 * store, so the timed repeats measure the steady state).
 */
template <typename Fn>
Times
timeRepeats(Fn &&fn)
{
    fn();
    std::vector<double> times;
    times.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        const double t0 = cpuSeconds();
        fn();
        times.push_back(cpuSeconds() - t0);
    }
    std::sort(times.begin(), times.end());
    return Times{times.front(), times[kRepeats / 2], times.back()};
}

/** Defeat dead-code elimination without a compiler intrinsic. */
volatile std::uint64_t g_sink;

/** Print + record one result on the active report. */
void
record(obs::RunReport &report, const std::string &key, double value,
       const char *unit)
{
    std::printf("%-28s %14.3f %s\n", key.c_str(), value, unit);
    report.addResult(key, obs::json::Value(value));
}

/** Record one kernel's repeat scatter in the report's timings. */
void
recordTimes(obs::RunReport &report, const std::string &tag,
            const Times &t)
{
    report.addTiming(tag + "_s_min", t.min_s);
    report.addTiming(tag + "_s_median", t.median_s);
    report.addTiming(tag + "_s_max", t.max_s);
}

/** Co-location shape of a machine-throughput benchmark. */
enum class Shape { kSolo, kSmtPair, kCmpPair };

/** Simulated-cycles/uops throughput of one placement shape. */
void
benchMachine(obs::RunReport &report, const std::string &tag,
             sim::Cycle cycles, int iters, Shape shape)
{
    const sim::Machine machine(sim::MachineConfig::ivyBridge());

    std::uint64_t uops = 0;
    const Times t = timeRepeats([&] {
        uops = 0;
        for (int i = 0; i < iters; ++i) {
            // Fresh sources every iteration: the fig-grid shape,
            // where each measurement constructs its own streams.
            // Identical (profile, seed) pairs give identical stream
            // digests, so with replay enabled every interval after
            // the first is a ReplayStore hit.
            workload::ProfileUopSource a(
                workload::spec2006::byName("456.hmmer"));
            workload::ProfileUopSource b(
                workload::spec2006::byName("470.lbm"));
            switch (shape) {
              case Shape::kSolo:
                uops += machine.runSolo(a, 0, cycles).uops;
                break;
              case Shape::kSmtPair:
                for (const auto &c :
                     machine.runPairSmt(a, b, 0, cycles))
                    uops += c.uops;
                break;
              case Shape::kCmpPair:
                for (const auto &c :
                     machine.runPairCmp(a, b, 0, cycles))
                    uops += c.uops;
                break;
            }
        }
    });
    const double sim_cycles = static_cast<double>(cycles) * iters;
    record(report, tag + "_cycles_per_sec", sim_cycles / t.median_s,
           "sim cycles/s");
    record(report, tag + "_uops_per_sec",
           static_cast<double>(uops) / t.median_s, "uops/s");
    recordTimes(report, tag, t);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim.json";
    bench::ReportScope scope("bench_sim_micro");
    obs::RunReport &report = scope.report();
    report.setConfig("machine", obs::json::Value("Ivy Bridge"));
    report.setConfig("repeats", obs::json::Value(kRepeats));
    report.setConfig("replay_enabled",
                     obs::json::Value(sim::replayEnabled()));

    std::printf("simulation-substrate microbenchmarks "
                "(median of %d CPU-time repeats)\n\n",
                kRepeats);

    // Machine throughput: the headline numbers. 50k-cycle runs are
    // the shape every Lab measurement takes; 10k-cycle runs keep the
    // fixed per-run setup cost (construction + key digest) visible.
    // Iteration counts are high because replay hits are microseconds
    // each — hundreds of iterations keep every timed repeat in the
    // milliseconds, where the CPU-time clock is trustworthy.
    benchMachine(report, "solo_50k", 50'000, 500, Shape::kSolo);
    benchMachine(report, "solo_10k", 10'000, 1'000, Shape::kSolo);
    benchMachine(report, "pair_50k", 50'000, 500, Shape::kSmtPair);
    benchMachine(report, "pair_10k", 10'000, 1'000, Shape::kSmtPair);
    // CMP pair: two cores, one context each — the multi-core shape
    // whose wake-list behavior differs most from the SMT pair (cores
    // can sleep independently).
    benchMachine(report, "cmp_pair", 50'000, 500, Shape::kCmpPair);

    // The same headline shapes with the replay + snapshot stores
    // disabled: the full live path, every iteration re-simulated.
    // memo-on / nomemo on the pair shape is the replay win the docs
    // quote (docs/PERFORMANCE.md).
    {
        const bool prev = sim::setReplayEnabled(false);
        benchMachine(report, "solo_50k_nomemo", 50'000, 4,
                     Shape::kSolo);
        benchMachine(report, "pair_50k_nomemo", 50'000, 2,
                     Shape::kSmtPair);
        sim::setReplayEnabled(prev);
    }

    // Cache lookup: hit-heavy pseudo-random pattern over an L2-sized
    // array, the single hottest comparison loop in the simulator.
    {
        sim::SetAssocCache cache(
            sim::CacheConfig{"L2", 256 * 1024, 8, 12});
        constexpr int kOps = 1'000'000;
        const Times t = timeRepeats([&] {
            std::uint64_t line = 0, hits = 0;
            for (int i = 0; i < kOps; ++i) {
                hits += cache.access(line, false).hit ? 1 : 0;
                line = (line * 2654435761u + 1) % 8192;
            }
            g_sink = hits;
        });
        record(report, "cache_access_ns", t.median_s / kOps * 1e9,
               "ns/op");
        recordTimes(report, "cache_access", t);
    }

    // TLB lookup: same shape, page-granular.
    {
        sim::Tlb tlb(sim::TlbConfig{512, 30});
        constexpr int kOps = 1'000'000;
        const Times t = timeRepeats([&] {
            std::uint64_t page = 0, hits = 0;
            for (int i = 0; i < kOps; ++i) {
                hits += tlb.access(page) ? 1 : 0;
                page = (page * 48271 + 1) % 1024;
            }
            g_sink = hits;
        });
        record(report, "tlb_access_ns", t.median_s / kOps * 1e9,
               "ns/op");
        recordTimes(report, "tlb_access", t);
    }

    // Trace generation: the synthetic-workload uop stream by itself.
    {
        workload::ProfileUopSource source(
            workload::spec2006::byName("403.gcc"));
        constexpr int kUops = 1'000'000;
        constexpr int kBatch = 64;
        sim::Uop buf[kBatch];
        const Times t = timeRepeats([&] {
            std::uint64_t sum = 0;
            for (int i = 0; i < kUops / kBatch; ++i) {
                source.nextBatch(buf, kBatch);
                sum += buf[0].pc;
            }
            g_sink = sum;
        });
        record(report, "trace_gen_uops_per_sec", kUops / t.median_s,
               "uops/s");
        recordTimes(report, "trace_gen", t);
    }

    // Model fitting: the ridge regression behind SMiTe training.
    {
        workload::Rng rng(42);
        const int dims = 22, samples = 200;
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        for (int s = 0; s < samples; ++s) {
            std::vector<double> row(dims);
            for (double &v : row)
                v = rng.nextDouble();
            x.push_back(std::move(row));
            y.push_back(rng.nextDouble());
        }
        const Times t = timeRepeats([&] {
            const auto model = stats::LinearModel::fit(x, y, 1e-6);
            g_sink = static_cast<std::uint64_t>(
                model.weights().size());
        });
        record(report, "regression_fit_ms", t.median_s * 1e3,
               "ms/fit");
        recordTimes(report, "regression_fit", t);
    }

    // Queueing kernel: the tail-latency discrete-event simulation.
    {
        const Times t = timeRepeats([&] {
            g_sink = static_cast<std::uint64_t>(
                queueing::simulateMm1(1200, 2000, 20000, 1)
                    .responseTimes.size());
        });
        record(report, "queue_sim_ms", t.median_s * 1e3, "ms/run");
        recordTimes(report, "queue_sim", t);
    }

    // Fold the scope's own artifacts (metrics/trace, when enabled)
    // before writing the perf baseline itself, which is unconditional.
    scope.finish();
    if (!scope.report().writeTo(out_path))
        return 1;
    std::printf("\nreport written to %s\n", out_path.c_str());
    return 0;
}
