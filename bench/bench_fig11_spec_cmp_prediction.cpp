/**
 * @file
 * Figure 11: performance prediction accuracy for CMP co-location on
 * SPEC CPU2006 (the two applications on different cores, sharing
 * only L3 and memory bandwidth).
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig11_spec_cmp_prediction");
    bench::banner("Figure 11",
                  "CMP co-location prediction accuracy on SPEC "
                  "CPU2006 (SMiTe vs PMU baseline)");
    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    bench::runSpecPredictionExperiment(lab, core::CoLocationMode::kCmp,
                                       2.80, 9.43);
    bench::paperReference(
        "PMU model averages 9.43% error on CMP co-locations, SMiTe "
        "2.80%");
    return 0;
}
