/**
 * @file
 * Predictor-zoo shoot-out (beyond the paper): every predictor behind
 * the core::Predictor interface — the paper's SMiTe Ruler regression,
 * its PMU-counter baseline, the MISE-style memory-rate estimator and
 * the Alves-Drummond saturating interference model — trained on the
 * identical measured-pair corpus and scored head-to-head on the same
 * held-out pairs, on both Table 1 machines.
 *
 * Three axes per predictor:
 *   accuracy   mean absolute error of predicted vs. measured
 *              degradation over the held-out ordered pairs
 *              (the Figures 10/11 protocol: train even-numbered
 *              SPEC, test odd-numbered)
 *   cost       machine runs needed to signature a *new* workload
 *              (Ruler-based predictors pay one co-run per dimension;
 *              counter-based ones a single solo run)
 *   latency    CPU time per predictDegradation() call, recorded in
 *              the report's `timings` block only — wall-clock never
 *              lands in `results`, so the committed baseline diff
 *              stays machine-independent
 *
 * The committed BENCH_pred.json at the repository root is the
 * baseline: `scripts/tier1.sh` re-runs this harness and diffs the
 * fresh report against it with `report_diff --tol 0.6`, and
 * byte-compares stdout across SMITE_THREADS settings (stdout carries
 * results and cost only, so it is deterministic by construction).
 *
 *   bench_predictor_zoo [output.json]   (default: BENCH_pred.json)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/smite.h"
#include "obs/report.h"

using namespace smite;

namespace {

/** CPU time of this process in seconds (immune to co-runner load). */
double
cpuSeconds()
{
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
}

/** Repeats for the latency kernel; the median is recorded. */
constexpr int kRepeats = 5;

/** Defeat dead-code elimination without a compiler intrinsic. */
volatile double g_sink;

/** One held-out pair with its measured-oracle degradation. */
struct OraclePair {
    const core::WorkloadSignature *victim;
    const core::WorkloadSignature *aggressor;
    double measured;
};

/** Run the shoot-out on one machine; returns rows for the summary. */
void
shootOut(obs::RunReport &report, const char *tag,
         const sim::MachineConfig &config)
{
    std::printf("\n--- %s ---\n", config.microarchitecture.c_str());
    core::Lab lab = bench::makeLab(config);
    const auto mode = core::CoLocationMode::kSmt;
    const auto train_set = workload::spec2006::evenNumbered();
    const auto test_set = workload::spec2006::oddNumbered();

    // No thread count in this banner: tier-1 byte-compares this
    // harness's stdout across SMITE_THREADS settings.
    std::printf("training the zoo on %zu benchmarks, testing on all "
                "ordered pairs of %zu held-out ones\n",
                train_set.size(), test_set.size());
    const core::PredictorZoo zoo =
        core::trainPredictorZoo(lab, train_set, mode);

    // Held-out signatures + measured oracle, fanned out through the
    // batch APIs so the serial loops below run on cache hits. A pair
    // whose measurement failed past the retry budget is skipped for
    // every predictor alike.
    const std::vector<core::WorkloadSignature> test_sigs =
        core::signaturesOf(lab, test_set, mode);
    lab.measureAllPairs(test_set, mode);
    std::vector<OraclePair> oracle;
    int skipped = 0;
    for (std::size_t v = 0; v < test_set.size(); ++v) {
        for (std::size_t a = 0; a < test_set.size(); ++a) {
            if (v == a)
                continue;
            if (!test_sigs[v].valid || !test_sigs[a].valid) {
                ++skipped;
                continue;
            }
            try {
                oracle.push_back(
                    {&test_sigs[v], &test_sigs[a],
                     lab.pairDegradation(test_set[v], test_set[a],
                                         mode)});
            } catch (const fault::MeasurementError &err) {
                ++skipped;
                obs::IncidentLog::global().record(
                    std::string("predictor zoo: skipped pair ") +
                    test_set[v].name + "|" + test_set[a].name + ": " +
                    err.what());
            }
        }
    }
    if (skipped > 0)
        std::printf("(%d held-out pair%s skipped after measurement "
                    "failures)\n",
                    skipped, skipped == 1 ? "" : "s");

    std::printf("%-16s %14s %16s\n", "predictor", "MAE", "sig runs");
    for (const auto &predictor : zoo.predictors) {
        double abs_err = 0;
        for (const OraclePair &p : oracle) {
            abs_err += std::abs(
                predictor->predictDegradation(*p.victim, *p.aggressor) -
                p.measured);
        }
        const double mae =
            oracle.empty()
                ? 0.0
                : abs_err / static_cast<double>(oracle.size());
        const std::string name(predictor->name());
        report.addResult(std::string(tag) + "_" + name + "_mae",
                         obs::json::Value(mae));
        report.addResult(std::string(tag) + "_" + name +
                             "_signature_runs",
                         obs::json::Value(predictor->signatureRuns()));
        std::printf("%-16s %13.2f%% %16d\n", name.c_str(), 100 * mae,
                    predictor->signatureRuns());

        // Prediction latency: timings only (never diffed, see the
        // file header). One untimed warmup sweep, then the median of
        // kRepeats timed sweeps over every held-out pair.
        if (!oracle.empty()) {
            std::vector<double> times;
            for (int r = 0; r <= kRepeats; ++r) {
                const double t0 = cpuSeconds();
                double sum = 0;
                for (const OraclePair &p : oracle)
                    sum += predictor->predictDegradation(*p.victim,
                                                         *p.aggressor);
                g_sink = sum;
                if (r > 0)
                    times.push_back(cpuSeconds() - t0);
            }
            std::sort(times.begin(), times.end());
            const double per_call_ns =
                times[kRepeats / 2] /
                static_cast<double>(oracle.size()) * 1e9;
            report.addTiming(std::string(tag) + "_" + name +
                                 "_predict_ns",
                             per_call_ns);
        }
    }
    std::printf("measured oracle: %zu held-out pairs\n",
                oracle.size());
    report.addResult(std::string(tag) + "_oracle_pairs",
                     obs::json::Value(
                         static_cast<int>(oracle.size())));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_pred.json";
    bench::ReportScope scope("bench_predictor_zoo");
    obs::RunReport &report = scope.report();
    bench::banner("Predictor zoo (beyond the paper)",
                  "SMiTe vs PMU vs MISE-style vs Alves-Drummond "
                  "predictors, one corpus, head to head");

    shootOut(report, "snb", sim::MachineConfig::sandyBridgeEN());
    shootOut(report, "ivb", sim::MachineConfig::ivyBridge());

    bench::paperReference(
        "beyond the paper: Subramanian et al. (MISE) and Alves & "
        "Drummond ground the two non-paper predictors; the protocol "
        "is Figure 10's train-even/test-odd split");

    // Fold the scope's own artifacts before writing the committed
    // baseline itself, which is unconditional.
    scope.finish();
    if (!scope.report().writeTo(out_path))
        return 1;
    std::printf("\nreport written to %s\n", out_path.c_str());
    return 0;
}
