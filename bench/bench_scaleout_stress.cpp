/**
 * @file
 * Warehouse-scale scheduler stress benchmark: the ShardedCluster
 * streaming engine (src/scheduler/shard.h) at 4k / 32k / 128k
 * servers under continuous churn, on a heterogeneous Table 1 fleet
 * (Sandy Bridge-EN + Ivy Bridge classes) with mixed QoS tiers.
 *
 * Two engines run the *identical* keyed churn trace at every scale:
 *
 * - shards=1: the lockstep reference — every epoch scans every
 *   server, the O(cluster) cost the paper-scale Cluster pays;
 * - shards=N: the streaming engine — per-shard event calendars touch
 *   only the servers with due churn, O(churn) per epoch (and the
 *   shard passes additionally spread across SMITE_THREADS).
 *
 * Their results must be byte-identical (digest-checked here, and a
 * hard failure if not); the throughput gap between them is therefore
 * honest, measured work avoidance. Like bench_sim_micro this guards
 * *performance*, not figures: it writes `BENCH_sched.json`
 * (schema `smite-run-report/1`), and the committed copy at the
 * repository root is the baseline `scripts/tier1.sh` re-checks with
 * `report_diff --tol 0.6`. Throughput is wall-clock medians (not CPU
 * time) because the sharded engine is allowed to win by using more
 * than one core where the machine has them.
 *
 *   bench_scaleout_stress [output.json]   (default: BENCH_sched.json)
 *   bench_scaleout_stress --determinism
 *
 * --determinism runs the 4k fleet at shard counts 1 / 4 / 16,
 * prints the epoch timeline, digests and conservation identities,
 * and exits non-zero unless every run is identical — no timings in
 * the output, so tier-1 can byte-compare stdout across SMITE_THREADS
 * settings.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "obs/report.h"
#include "scheduler/keyed.h"
#include "scheduler/shard.h"
#include "sim/config.h"

using namespace smite;
using scheduler::ChurnConfig;
using scheduler::MachineClass;
using scheduler::ShardedCluster;
using scheduler::StreamResult;
using scheduler::TierPolicy;

namespace {

/** Streaming-engine shard count used at every scale. */
constexpr int kShards = 64;
/** Wall-clock repeats per timing; the median is reported. */
constexpr int kRepeats = 5;
/** Keyed seed of the synthetic pairing tables. */
constexpr std::uint64_t kTableSeed = 2014;

constexpr TierPolicy kTiers{0.90, 0.60};

const char *const kLatencyApps[] = {"web-search", "media-streaming",
                                    "data-serving", "graph-analytics"};
const char *const kBatchApps[] = {"456.hmmer", "470.lbm", "403.gcc",
                                  "433.milc", "450.soplex",
                                  "464.h264ref"};

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <typename Fn>
double
medianSeconds(Fn &&fn)
{
    fn();  // warmup
    std::vector<double> times;
    times.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        const double t0 = wallSeconds();
        fn();
        times.push_back(wallSeconds() - t0);
    }
    std::sort(times.begin(), times.end());
    return times[kRepeats / 2];
}

/**
 * One machine class of the fleet, parameterized by a Table 1 config:
 * the latency app owns one context per core (the paper's half-loaded
 * baseline), batch capacity is the sibling contexts, and the
 * synthetic QoS tables scale contention with the machine's L3 — the
 * same batch job degrades its victim more on the smaller-cache part,
 * which is exactly what makes "which machine" a placement decision.
 */
MachineClass
classFrom(const sim::MachineConfig &config, int class_index)
{
    MachineClass mc;
    mc.name = config.microarchitecture;
    mc.latencyThreads = config.numCores;
    mc.contextsPerServer = config.totalContexts();

    // Cache-pressure factor relative to an 8MB L3.
    const double pressure =
        std::sqrt(8.0 * 1024 * 1024 /
                  static_cast<double>(config.l3.sizeBytes));
    const int cap = mc.maxInstances();
    const int n_lat = static_cast<int>(std::size(kLatencyApps));
    const int n_batch = static_cast<int>(std::size(kBatchApps));
    for (int l = 0; l < n_lat; ++l) {
        for (int b = 0; b < n_batch; ++b) {
            scheduler::Pairing p;
            p.latencyApp = kLatencyApps[l];
            p.batchApp = kBatchApps[b];
            const std::uint64_t h = scheduler::keyed::draw(
                kTableSeed, static_cast<std::uint64_t>(class_index),
                static_cast<std::uint64_t>(l),
                static_cast<std::uint64_t>(b));
            // Per-instance QoS slope in [0.02, 0.10), scaled by the
            // machine's cache pressure; the model's slope misses by
            // up to +/-25%, so some placements violate and some
            // capacity is left on the table — both tiers see
            // realistic prediction error.
            const double slope =
                (0.02 + 0.08 * scheduler::keyed::toUnit(h)) * pressure;
            const double err =
                0.50 * scheduler::keyed::toUnit(
                           scheduler::keyed::mix64(h)) -
                0.25;
            for (int k = 1; k <= cap; ++k) {
                scheduler::CoLocationOption option;
                option.actualQos = std::max(0.0, 1.0 - slope * k);
                option.predictedQos =
                    std::max(0.0, 1.0 - slope * (1.0 + err) * k);
                p.byInstances.push_back(option);
            }
            mc.pairings.push_back(std::move(p));
        }
    }
    return mc;
}

std::vector<MachineClass>
fleetClasses()
{
    return {classFrom(sim::MachineConfig::sandyBridgeEN(), 0),
            classFrom(sim::MachineConfig::ivyBridge(), 1)};
}

/** 60/40 Sandy Bridge-EN / Ivy Bridge split of @p servers. */
std::vector<std::int64_t>
fleetMix(std::int64_t servers)
{
    const std::int64_t snb = servers * 3 / 5;
    return {snb, servers - snb};
}

ChurnConfig
churnFor(std::int64_t servers)
{
    ChurnConfig churn;
    churn.arrivalsPerEpoch = static_cast<int>(servers / 128);
    churn.departProb = 0.01;
    churn.failProb = 0.002;
    churn.recoverProb = 0.25;
    churn.probesPerJob = 4;
    churn.seed = 1234;
    return churn;
}

bool
sameResult(const StreamResult &a, const StreamResult &b)
{
    if (a.digest != b.digest || a.timeline.size() != b.timeline.size())
        return false;
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        const auto &x = a.timeline[i];
        const auto &y = b.timeline[i];
        if (x.failures != y.failures || x.recoveries != y.recoveries ||
            x.departures != y.departures || x.placed != y.placed ||
            x.rejected != y.rejected || x.lost != y.lost ||
            x.replacements != y.replacements ||
            x.fillerPlaced != y.fillerPlaced ||
            x.fillerEvicted != y.fillerEvicted ||
            x.events != y.events ||
            x.guaranteedInstances != y.guaranteedInstances ||
            x.bestEffortInstances != y.bestEffortInstances ||
            x.liveServers != y.liveServers)
            return false;
    }
    return a.guaranteedInstances == b.guaranteedInstances &&
           a.bestEffortInstances == b.bestEffortInstances &&
           a.violatingServers == b.violatingServers &&
           a.lost == b.lost && a.placed == b.placed;
}

/** The PR 5 conservation identity, extended to both tiers. */
bool
conservationHolds(const StreamResult &r)
{
    return r.placed - r.departures - r.lost ==
               r.guaranteedInstances &&
           r.evictions == r.replacements + r.lost &&
           r.fillerPlaced - r.fillerEvicted == r.bestEffortInstances;
}

void
printResultSummary(const StreamResult &r)
{
    std::printf("  final: %" PRId64 "/%" PRId64
                " servers up, guaranteed %" PRId64
                ", best-effort %" PRId64 ", violating %" PRId64 "\n",
                r.liveServers, r.servers, r.guaranteedInstances,
                r.bestEffortInstances, r.violatingServers);
    std::printf("  totals: placed %" PRId64 " (+%" PRId64
                " replaced), rejected %" PRId64 ", departed %" PRId64
                ", lost %" PRId64 ", filler +%" PRId64 "/-%" PRId64
                "\n",
                r.placed, r.replacements, r.rejected, r.departures,
                r.lost, r.fillerPlaced, r.fillerEvicted);
    std::printf("  utilization %.6f, goodput %.6f, violation rate "
                "%.6f\n",
                r.utilization(), r.goodputUtilization(),
                r.violationRate());
    std::printf("  conservation: placed - departures - lost = %" PRId64
                " == guaranteed %" PRId64 "; evictions %" PRId64
                " == replacements + lost %" PRId64 "  [%s]\n",
                r.placed - r.departures - r.lost,
                r.guaranteedInstances, r.evictions,
                r.replacements + r.lost,
                conservationHolds(r) ? "ok" : "VIOLATED");
    std::printf("  digest %016" PRIx64 "\n", r.digest);
}

int
runDeterminismMode()
{
    const std::int64_t servers = 4000;
    const int epochs = 32;
    const ChurnConfig churn = churnFor(servers);
    const int shard_counts[] = {1, 4, 16};

    std::printf("determinism mode: %" PRId64
                " servers, %d epochs, shard counts 1/4/16\n\n",
                servers, epochs);

    std::vector<StreamResult> results;
    bool ok = true;
    for (const int shards : shard_counts) {
        ShardedCluster cluster(fleetClasses(), fleetMix(servers),
                               shards);
        results.push_back(cluster.runStream(kTiers, churn, epochs));
        if (!cluster.verifyAggregates()) {
            std::printf("shards=%d: aggregate cross-check FAILED\n",
                        shards);
            ok = false;
        }
        std::printf("shards=%-3d digest %016" PRIx64 "\n", shards,
                    results.back().digest);
        if (!conservationHolds(results.back()))
            ok = false;
    }

    const StreamResult &ref = results.front();
    for (std::size_t i = 1; i < results.size(); ++i) {
        if (!sameResult(ref, results[i])) {
            std::printf("\nshards=%d diverged from shards=1\n",
                        shard_counts[i]);
            ok = false;
        }
    }

    std::printf("\nepoch timeline (identical for every shard count):"
                "\n%6s %6s %6s %6s %6s %6s %6s %10s %10s\n",
                "epoch", "fail", "recov", "depart", "placed", "lost",
                "events", "util", "goodput");
    for (const auto &row : ref.timeline) {
        std::printf("%6" PRId64 " %6" PRId64 " %6" PRId64 " %6" PRId64
                    " %6" PRId64 " %6" PRId64 " %6" PRId64
                    " %10.6f %10.6f\n",
                    row.epoch, row.failures, row.recoveries,
                    row.departures, row.placed, row.lost, row.events,
                    row.utilization, row.goodputUtilization);
    }
    std::printf("\n");
    printResultSummary(ref);
    std::printf("\nbyte-identical across shard counts: %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--determinism") == 0)
        return runDeterminismMode();

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sched.json";

    obs::RunReport report("bench_scaleout_stress");
    report.setConfig("shards", obs::json::Value(kShards));
    report.setConfig("repeats", obs::json::Value(kRepeats));
    report.setConfig("qos_target", obs::json::Value(kTiers.qosTarget));
    report.setConfig("best_effort_floor",
                     obs::json::Value(kTiers.bestEffortFloor));

    std::printf("warehouse-scale scheduler stress "
                "(lockstep reference vs streaming shards=%d, "
                "wall-clock median of %d)\n\n",
                kShards, kRepeats);

    struct Scale {
        const char *tag;
        std::int64_t servers;
        int epochs;
    };
    const Scale scales[] = {
        {"s4k", 4000, 256}, {"s32k", 32000, 96}, {"s128k", 128000, 64}};

    bool ok = true;
    for (const Scale &scale : scales) {
        const ChurnConfig churn = churnFor(scale.servers);
        ShardedCluster lockstep(fleetClasses(),
                                fleetMix(scale.servers), 1);
        ShardedCluster sharded(fleetClasses(),
                               fleetMix(scale.servers), kShards);

        // Equivalence self-check first: both engines, same trace,
        // identical results — otherwise any speedup is meaningless.
        const StreamResult a =
            lockstep.runStream(kTiers, churn, scale.epochs);
        const StreamResult b =
            sharded.runStream(kTiers, churn, scale.epochs);
        if (!sameResult(a, b) || !conservationHolds(b) ||
            !lockstep.verifyAggregates() ||
            !sharded.verifyAggregates()) {
            std::printf("%s: ENGINE MISMATCH (lockstep %016" PRIx64
                        " vs sharded %016" PRIx64 ")\n",
                        scale.tag, a.digest, b.digest);
            ok = false;
            continue;
        }

        const double t_lockstep = medianSeconds([&] {
            lockstep.runStream(kTiers, churn, scale.epochs);
        });
        const double t_sharded = medianSeconds([&] {
            sharded.runStream(kTiers, churn, scale.epochs);
        });
        const double eps_lockstep = scale.epochs / t_lockstep;
        const double eps_sharded = scale.epochs / t_sharded;

        std::printf("%-6s %7" PRId64 " servers, %3d epochs: "
                    "lockstep %9.1f epochs/s, sharded %9.1f epochs/s "
                    "(%.2fx)\n",
                    scale.tag, scale.servers, scale.epochs,
                    eps_lockstep, eps_sharded,
                    eps_sharded / eps_lockstep);
        printResultSummary(b);
        std::printf("\n");

        const std::string tag = scale.tag;
        report.setConfig(tag + "_servers",
                         obs::json::Value(scale.servers));
        report.setConfig(tag + "_epochs",
                         obs::json::Value(scale.epochs));
        report.addResult(tag + "_lockstep_epochs_per_sec",
                         obs::json::Value(eps_lockstep));
        report.addResult(tag + "_sharded_epochs_per_sec",
                         obs::json::Value(eps_sharded));
        report.addResult(tag + "_utilization",
                         obs::json::Value(b.utilization()));
        report.addResult(tag + "_goodput_utilization",
                         obs::json::Value(b.goodputUtilization()));
        report.addResult(tag + "_violation_rate",
                         obs::json::Value(b.violationRate()));
        report.addResult(
            tag + "_guaranteed_instances",
            obs::json::Value(
                static_cast<double>(b.guaranteedInstances)));
        report.addResult(
            tag + "_best_effort_instances",
            obs::json::Value(
                static_cast<double>(b.bestEffortInstances)));
        report.addResult(tag + "_lost_instances",
                         obs::json::Value(
                             static_cast<double>(b.lost)));
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016" PRIx64, b.digest);
        report.addResult(tag + "_digest",
                         obs::json::Value(std::string(digest)));
    }

    if (!ok)
        return 1;
    if (!report.writeTo(out_path))
        return 1;
    std::printf("report written to %s\n", out_path.c_str());
    return 0;
}
