/**
 * @file
 * Figure 7: |Pearson correlation| among all 14 sensitivity and
 * contentiousness dimensions across the applications. The paper's
 * headline: 97.96% of dimension pairs correlate below 0.80 and the
 * majority below 0.50 — the decoupling that motivates SMiTe.
 */

#include "bench/common.h"
#include "stats/correlation.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig07_dimension_correlation");
    bench::banner("Figure 7",
                  "|Pearson| among the 14 Sen/Con dimensions across "
                  "all applications");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto mode = core::CoLocationMode::kSmt;

    std::vector<workload::WorkloadProfile> apps =
        workload::spec2006::all();
    for (const auto &p : workload::cloudsuite::all())
        apps.push_back(p);

    // 14 series: S0..S6 then C0..C6, one value per application.
    constexpr int kSeries = 2 * rulers::kNumDimensions;
    std::vector<std::vector<double>> series(kSeries);
    for (const auto &app : apps) {
        const auto &c = lab.characterization(app, mode);
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            series[d].push_back(c.sensitivity[d]);
            series[rulers::kNumDimensions + d].push_back(
                c.contentiousness[d]);
        }
    }

    auto label = [](int i) {
        std::string s = i < rulers::kNumDimensions ? "S:" : "C:";
        s += rulers::dimensionName(
            rulers::kAllDimensions[i % rulers::kNumDimensions]);
        return s;
    };

    std::printf("%-16s", "");
    for (int j = 0; j < kSeries; ++j)
        std::printf(" %4d", j);
    std::printf("\n");

    int below_08 = 0, below_05 = 0, total = 0;
    for (int i = 0; i < kSeries; ++i) {
        std::printf("%2d %-13s", i, label(i).c_str());
        for (int j = 0; j < kSeries; ++j) {
            const double r =
                std::abs(stats::pearson(series[i], series[j]));
            std::printf(" %4.2f", r);
            if (j > i) {
                ++total;
                below_08 += r < 0.80 ? 1 : 0;
                below_05 += r < 0.50 ? 1 : 0;
            }
        }
        std::printf("\n");
    }

    std::printf("\n%d/%d = %.2f%% of dimension pairs below |r| = 0.80; "
                "%.2f%% below 0.50\n",
                below_08, total, 100.0 * below_08 / total,
                100.0 * below_05 / total);

    bench::paperReference(
        "97.96% of the pairs have a correlation coefficient lower "
        "than 0.80, and the majority lower than 0.50 (Finding 9)");
    return 0;
}
