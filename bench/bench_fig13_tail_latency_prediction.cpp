/**
 * @file
 * Figure 13: 90th-percentile latency prediction for Web-Search and
 * Data-Caching co-located with SPEC batch applications (the other
 * two CloudSuite applications do not report percentile statistics).
 *
 * Measured tail latency: the open-loop discrete-event simulation
 * (queueing::simulateOpenLoop behind TailLatencyPredictor::
 * measurePercentile) whose service rate is degraded by the *measured*
 * co-location degradation. Predicted: Equation 6 applied to the
 * SMiTe-predicted degradation. The closed-form M/M/1 percentile at
 * the measured degradation is printed alongside as a cross-check
 * column ("mm1 p90"); in the stable low-load regime (degraded
 * utilization <= 0.75) the DES and the closed form must agree within
 * a tolerance, and the bench exits nonzero if they do not.
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig13_tail_latency_prediction");
    bench::banner("Figure 13",
                  "90th-percentile latency prediction under SMT "
                  "co-location (Sandy Bridge-EN)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const int threads = 6;
    const auto train = workload::spec2006::oddNumbered();
    const auto test = workload::spec2006::evenNumbered();
    const core::SmiteModel model = lab.trainSmite(train, mode);

    // Cross-check gate: where the degraded queue is comfortably
    // stable, the DES measurement and the closed form describe the
    // same M/M/1 and must agree within sampling noise.
    const double kStableUtilization = 0.75;
    const double kCrossCheckTolerance = 0.12;
    int cross_checks = 0;
    int cross_check_failures = 0;

    for (const auto &cloud : workload::cloudsuite::all()) {
        if (!cloud.reportsPercentile)
            continue;
        const core::TailLatencyPredictor predictor(cloud);
        const double solo_p90 = predictor.soloPercentile(0.90);
        const auto &cloud_char =
            lab.characterization(cloud, mode, threads);

        std::printf("\n%s: solo p90 = %.3f ms "
                    "(lambda %.0f/s, mu %.0f/s)\n", cloud.name.c_str(),
                    1e3 * solo_p90, cloud.arrivalRate,
                    cloud.serviceRate);
        std::printf("%-16s %10s %12s %12s %12s %8s\n", "batch app",
                    "meas deg", "des p90", "mm1 p90", "pred p90",
                    "err");

        double err_sum = 0;
        int n = 0;
        // Two batch instances: the operating point tail-QoS targets
        // actually admit (deeper co-locations drive the queue toward
        // instability, where percentiles diverge).
        const int instances = 2;
        for (const auto &batch : test) {
            const double actual = lab.multiInstanceDegradation(
                cloud, threads, batch, instances, mode);
            const double predicted_deg = core::Lab::scaleToInstances(
                model.predict(cloud_char,
                              lab.characterization(batch, mode)),
                instances, threads);
            const double clamped =
                std::min(std::max(actual, 0.0), 0.95);
            const double measured_p90 =
                predictor.measurePercentile(0.90, clamped);
            const double mm1_p90 =
                predictor.queue().degradedPercentileLatency(0.90,
                                                            clamped);
            const double predicted_p90 =
                predictor.predictPercentile(0.90, predicted_deg);
            const double err =
                std::abs(predicted_p90 - measured_p90) / measured_p90;
            std::printf(
                "%-16s %9.1f%% %10.3fms %10.3fms %10.3fms %7.2f%%\n",
                batch.name.c_str(), 100 * actual, 1e3 * measured_p90,
                1e3 * mm1_p90, 1e3 * predicted_p90, 100 * err);
            err_sum += err;
            ++n;

            const double utilization =
                predictor.queue().lambda() /
                ((1.0 - clamped) * predictor.queue().mu());
            if (utilization <= kStableUtilization) {
                ++cross_checks;
                const double gap =
                    std::abs(measured_p90 - mm1_p90) / mm1_p90;
                if (gap > kCrossCheckTolerance) {
                    ++cross_check_failures;
                    std::printf("  CROSS-CHECK FAIL: |des - mm1| = "
                                "%.2f%% > %.0f%% at utilization "
                                "%.2f\n", 100 * gap,
                                100 * kCrossCheckTolerance,
                                utilization);
                }
            }
        }
        std::printf("%-16s average absolute p90 prediction error: "
                    "%.2f%%\n", cloud.name.c_str(), 100 * err_sum / n);
    }

    std::printf("\ncross-check: DES vs closed-form M/M/1 within "
                "%.0f%% on %d stable-regime points (%d failures)\n",
                100 * kCrossCheckTolerance, cross_checks,
                cross_check_failures);

    bench::paperReference(
        "average absolute prediction error 4.61% for Web-Search and "
        "6.17% for Data-Caching; the queueing model captures the "
        "correlation between degradation and tail latency");
    return cross_check_failures == 0 && cross_checks > 0 ? 0 : 1;
}
