/**
 * @file
 * Shared setup for the scale-out study benches (Figures 14-18):
 * builds the per-(latency app, batch app, instance count) QoS tables
 * the cluster policies consume, for both QoS metrics.
 */

#ifndef SMITE_BENCH_SCALEOUT_H
#define SMITE_BENCH_SCALEOUT_H

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench/common.h"
#include "scheduler/cluster.h"

namespace smite::bench {

/** Latency threads per server in the half-loaded baseline. */
inline constexpr int kLatencyThreads = 6;

/** Servers dedicated to each latency application (paper: 1,000). */
inline constexpr int kServersPerApp = 1000;

/**
 * Fan the full measurement grid of a scale-out sweep — latency-app
 * and batch-app characterizations plus every (latency, batch,
 * 1..kLatencyThreads) multi-instance degradation — out across the
 * Lab's thread pool (width: SMITE_THREADS). The serial table-assembly
 * loops below then run entirely on cache hits, so their output is
 * byte-identical to the all-serial protocol (verified by
 * bench_parallel_scaling).
 */
inline void
prefetchScaleoutGrid(core::Lab &lab,
                     const std::vector<workload::WorkloadProfile> &latency,
                     const std::vector<workload::WorkloadProfile> &batch)
{
    const auto mode = core::CoLocationMode::kSmt;
    lab.characterizeAll(latency, mode, kLatencyThreads);
    lab.characterizeAll(batch, mode);
    lab.multiInstancePrefetch(latency, kLatencyThreads, batch,
                              kLatencyThreads, mode);
}

/**
 * Average-performance QoS tables: QoS = 1 - degradation, actual from
 * many-instance co-location measurements, predicted from the SMiTe
 * model scaled to the instance count.
 */
inline std::vector<scheduler::Pairing>
buildAvgPerfPairings(core::Lab &lab, const core::SmiteModel &model,
                     const std::vector<workload::WorkloadProfile> &latency,
                     const std::vector<workload::WorkloadProfile> &batch)
{
    const auto mode = core::CoLocationMode::kSmt;
    prefetchScaleoutGrid(lab, latency, batch);
    std::vector<scheduler::Pairing> pairings;
    for (const auto &cloud : latency) {
        const auto &cloud_char =
            lab.characterization(cloud, mode, kLatencyThreads);
        for (const auto &b : batch) {
            const double pair_prediction = model.predict(
                cloud_char, lab.characterization(b, mode));
            scheduler::Pairing pairing;
            pairing.latencyApp = cloud.name;
            pairing.batchApp = b.name;
            for (int k = 1; k <= kLatencyThreads; ++k) {
                scheduler::CoLocationOption option;
                option.actualQos =
                    1.0 - lab.multiInstanceDegradation(
                              cloud, kLatencyThreads, b, k, mode);
                option.predictedQos =
                    1.0 - core::Lab::scaleToInstances(
                              pair_prediction, k, kLatencyThreads);
                pairing.byInstances.push_back(option);
            }
            pairings.push_back(std::move(pairing));
        }
    }
    return pairings;
}

/**
 * Tail-latency QoS tables: QoS = solo p90 / degraded p90, so a QoS
 * target of q allows the 90th percentile to stretch by 1/q. Actual
 * tail latency comes from a queueing simulation driven by the
 * measured degradation; predicted from Equation 6 on the predicted
 * degradation.
 */
inline std::vector<scheduler::Pairing>
buildTailPairings(core::Lab &lab, const core::SmiteModel &model,
                  const std::vector<workload::WorkloadProfile> &latency,
                  const std::vector<workload::WorkloadProfile> &batch)
{
    const auto mode = core::CoLocationMode::kSmt;
    prefetchScaleoutGrid(lab, latency, batch);
    std::vector<scheduler::Pairing> pairings;
    for (const auto &cloud : latency) {
        const core::TailLatencyPredictor predictor(cloud);
        const double solo_p90 = predictor.soloPercentile(0.90);
        const auto &cloud_char =
            lab.characterization(cloud, mode, kLatencyThreads);
        for (const auto &b : batch) {
            const double pair_prediction = model.predict(
                cloud_char, lab.characterization(b, mode));
            scheduler::Pairing pairing;
            pairing.latencyApp = cloud.name;
            pairing.batchApp = b.name;
            for (int k = 1; k <= kLatencyThreads; ++k) {
                const double actual_deg = std::clamp(
                    lab.multiInstanceDegradation(
                        cloud, kLatencyThreads, b, k, mode),
                    0.0, 0.95);
                const double predicted_deg = std::max(
                    core::Lab::scaleToInstances(pair_prediction, k,
                                                kLatencyThreads),
                    0.0);
                scheduler::CoLocationOption option;
                option.actualQos =
                    solo_p90 /
                    predictor.measurePercentile(0.90, actual_deg);
                const double predicted_p90 =
                    predictor.predictPercentile(0.90, predicted_deg);
                option.predictedQos =
                    std::isfinite(predicted_p90)
                        ? solo_p90 / predicted_p90
                        : 0.0;
                pairing.byInstances.push_back(option);
            }
            pairings.push_back(std::move(pairing));
        }
    }
    return pairings;
}

/** Names of a latency-app set (cluster constructor input). */
inline std::vector<std::string>
namesOf(const std::vector<workload::WorkloadProfile> &apps)
{
    std::vector<std::string> names;
    for (const auto &a : apps)
        names.push_back(a.name);
    return names;
}

} // namespace smite::bench

#endif // SMITE_BENCH_SCALEOUT_H
