/**
 * @file
 * Figure 16: utilization improvement when QoS is defined as the 90th
 * percentile latency (Web-Search and Data-Caching, 2,000 servers
 * each). Tail latency grows super-linearly with degradation, so
 * these targets admit far fewer co-locations than Figure 14's.
 */

#include "bench/scaleout.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig16_utilization_tail");
    bench::banner("Figure 16",
                  "Utilization improvement under 90th-percentile "
                  "latency QoS targets (SMiTe vs Oracle)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::oddNumbered(), mode);

    std::vector<workload::WorkloadProfile> latency = {
        workload::cloudsuite::byName("Web-Search"),
        workload::cloudsuite::byName("Data-Caching")};
    const auto pairings = bench::buildTailPairings(
        lab, model, latency, workload::spec2006::evenNumbered());
    // 4,000 machines split between the two applications.
    const scheduler::Cluster cluster(pairings, bench::namesOf(latency),
                                     2 * bench::kServersPerApp);

    const double paper_smite[] = {0.00, 10.72, 22.03};
    const double paper_oracle[] = {0.59, 12.50, 24.99};
    const double targets[] = {0.95, 0.90, 0.85};

    std::printf("%-10s %16s %16s %14s %14s\n", "QoS target",
                "SMiTe util gain", "Oracle util gain", "paper SMiTe",
                "paper Oracle");
    for (int i = 0; i < 3; ++i) {
        const auto smite = cluster.runPredictedPolicy(targets[i]);
        const auto oracle = cluster.runOraclePolicy(targets[i]);
        std::printf("%9.0f%% %15.2f%% %15.2f%% %13.2f%% %13.2f%%\n",
                    100 * targets[i],
                    100 * smite.utilizationImprovement(),
                    100 * oracle.utilizationImprovement(),
                    paper_smite[i], paper_oracle[i]);
    }

    bench::paperReference(
        "SMiTe achieves 0/10.72/22.03% utilization gain at "
        "95/90/85% tail-QoS targets vs Oracle's 0.59/12.50/24.99%; "
        "tail targets admit far fewer co-locations than "
        "average-performance targets");
    return 0;
}
