/**
 * @file
 * Section III-B1 validation: the linear relationship between Ruler
 * intensity and the interference it causes.
 *
 *  - Memory rulers: working-set size vs the degradation of SPEC
 *    applications (the paper reports Pearson coefficients of 0.92
 *    for L1, 0.89 for L2 and 0.95 for L3).
 *  - FU rulers: duty cycle vs victim degradation within the
 *    unsaturated range.
 */

#include <memory>

#include "bench/common.h"
#include "stats/correlation.h"

using namespace smite;

namespace {

double
degradationUnderRuler(core::Lab &lab,
                      const workload::WorkloadProfile &app,
                      const rulers::Ruler &ruler)
{
    workload::ProfileUopSource victim(app, 1);
    auto stressor = ruler.makeSource();
    const auto counters =
        lab.machine().runPairSmt(victim, *stressor);
    const double solo = lab.soloIpc(app);
    return solo > 0.0 ? (solo - counters[0].ipc()) / solo : 0.0;
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_ruler_linearity");
    bench::banner("Ruler linearity (Section III-B1)",
                  "Intensity vs induced degradation; Pearson r per "
                  "cache level");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto &config = lab.machine().config();

    // A spread of victims: cache-resident, L2-bound, memory-bound.
    const std::vector<std::string> victims = {
        "454.calculix", "453.povray", "401.bzip2", "447.dealII",
        "482.sphinx3", "471.omnetpp"};

    struct Level {
        rulers::Dimension dim;
        std::vector<std::uint64_t> workingSets;
        double paperPearson;
    };
    const std::vector<Level> levels = {
        {rulers::Dimension::kL1,
         {config.l1d.sizeBytes / 4, config.l1d.sizeBytes / 2,
          3 * config.l1d.sizeBytes / 4, config.l1d.sizeBytes},
         0.92},
        // The L2 sweep is anchored below the L1 capacity so every
        // victim sees the pressure ramp; the L3 sweep stays within
        // the filling regime (beyond ~the L3 size the ruler becomes
        // DRAM-bound and its private-cache pollution shrinks again,
        // leaving the linear range the paper exploits).
        {rulers::Dimension::kL2,
         {16 * 1024, config.l2.sizeBytes / 2,
          3 * config.l2.sizeBytes / 4, config.l2.sizeBytes},
         0.89},
        {rulers::Dimension::kL3,
         {config.l3.sizeBytes / 4, config.l3.sizeBytes / 2,
          3 * config.l3.sizeBytes / 4, config.l3.sizeBytes},
         0.95},
    };

    for (const Level &level : levels) {
        std::printf("\n%s ruler, working-set sweep:\n",
                    rulers::dimensionName(level.dim).data());
        double r_sum = 0.0;
        for (const auto &name : victims) {
            const auto &app = workload::spec2006::byName(name);
            std::vector<double> ws, deg;
            std::printf("  %-14s", name.c_str());
            for (std::uint64_t bytes : level.workingSets) {
                const rulers::Ruler ruler =
                    rulers::Ruler::memory(level.dim, bytes);
                const double d = degradationUnderRuler(lab, app, ruler);
                ws.push_back(static_cast<double>(bytes));
                deg.push_back(d);
                std::printf("  %4lluKB:%5.1f%%",
                            static_cast<unsigned long long>(bytes >> 10),
                            100 * d);
            }
            const double r = stats::pearson(ws, deg);
            r_sum += r;
            std::printf("   r=%.2f\n", r);
        }
        std::printf("  mean Pearson r = %.2f  (paper: %.2f)\n",
                    r_sum / victims.size(), level.paperPearson);
    }

    // FU ruler duty sweep in the unsaturated range.
    std::printf("\nFP_ADD ruler duty-cycle sweep (port-1-bound victim "
                "444.namd):\n");
    const auto &namd = workload::spec2006::byName("444.namd");
    std::vector<double> duty, deg;
    for (double d : {0.05, 0.10, 0.15, 0.20, 0.25}) {
        const rulers::Ruler ruler =
            rulers::Ruler::functionalUnit(rulers::Dimension::kFpAdd, d);
        const double x = degradationUnderRuler(lab, namd, ruler);
        duty.push_back(d);
        deg.push_back(x);
        std::printf("  duty %.2f -> degradation %5.1f%%\n", d, 100 * x);
    }
    std::printf("  Pearson r = %.2f\n", stats::pearson(duty, deg));

    bench::paperReference(
        "Pearson between working-set size and degradation: 0.92 (L1), "
        "0.89 (L2), 0.95 (L3); the linearity lets the sensitivity "
        "curve be interpolated from its endpoints");
    return 0;
}
