/**
 * @file
 * Figure 2: sensitivity and contentiousness of SPEC CPU2006 and
 * CloudSuite workloads on the four functional-unit resources
 * (FP_MUL/port 0, FP_ADD/port 1, FP_SHF/port 5, INT_ADD/ports 0-1-5).
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig02_fu_sensitivity");
    bench::banner("Figure 2",
                  "Functional-unit sensitivity (S) and contentiousness "
                  "(C) per application, SMT co-location with Rulers");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto mode = core::CoLocationMode::kSmt;

    std::vector<workload::WorkloadProfile> apps =
        workload::spec2006::all();
    for (const auto &p : workload::cloudsuite::all())
        apps.push_back(p);

    const rulers::Dimension fu_dims[] = {
        rulers::Dimension::kFpMul, rulers::Dimension::kFpAdd,
        rulers::Dimension::kFpShf, rulers::Dimension::kIntAdd};

    std::printf("%-18s %-10s", "application", "suite");
    for (auto dim : fu_dims)
        std::printf("  S:%-11s", rulers::dimensionName(dim).data());
    for (auto dim : fu_dims)
        std::printf("  C:%-11s", rulers::dimensionName(dim).data());
    std::printf("\n");

    double max_sen = 0.0, min_sen = 1.0;
    for (const auto &app : apps) {
        const auto &c = lab.characterization(app, mode);
        std::printf("%-18s %-10s", app.name.c_str(),
                    workload::suiteName(app.suite));
        for (auto dim : fu_dims) {
            const double s = c.sensitivity[rulers::dimensionIndex(dim)];
            std::printf("  %12.1f%%", 100 * s);
            if (app.suite != workload::Suite::kCloudSuite) {
                max_sen = std::max(max_sen, s);
                min_sen = std::min(min_sen, s);
            }
        }
        for (auto dim : fu_dims) {
            std::printf("  %12.1f%%",
                        100 * c.contentiousness
                                  [rulers::dimensionIndex(dim)]);
        }
        std::printf("\n");
    }

    std::printf("\nSPEC sensitivity range across FU dimensions: "
                "%.1f%% .. %.1f%%\n",
                100 * min_sen, 100 * max_sen);
    const auto &namd = lab.characterization(
        workload::spec2006::byName("444.namd"), mode);
    const auto &mcf = lab.characterization(
        workload::spec2006::byName("429.mcf"), mode);
    std::printf("444.namd port-1 sensitivity: %.1f%%   "
                "429.mcf port-1 sensitivity: %.1f%%\n",
                100 * namd.sensitivity[1], 100 * mcf.sensitivity[1]);

    bench::paperReference(
        "applications suffer 5-70% from contention on a single FU "
        "type; 429.mcf suffers ~6% on port 1 while 444.namd suffers "
        "~71% (Findings 1-5)");
    return 0;
}
